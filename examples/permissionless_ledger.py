#!/usr/bin/env python3
"""A toy permissionless ledger built on the dynamic total-ordering protocol.

The paper's motivation is networks — such as Nakamoto-style blockchains —
whose participant set changes over time and is never known exactly.  This
example runs Algorithm 6 (total ordering of events in a dynamic network):

* five genesis replicas and one Byzantine node start the system;
* clients submit "transactions" (events) through their local replica every
  round;
* two new replicas join mid-run via the ``present``/``ack`` handshake and
  one genesis replica announces ``absent`` and leaves;
* at the end, every correct replica holds the same totally ordered ledger
  (chain-prefix), and the ledger keeps growing (chain-growth).

Run with::

    python examples/permissionless_ledger.py
"""

from __future__ import annotations

from repro.adversary import ByzantineProcess, make_strategy
from repro.analysis import chains_are_prefixes
from repro.core.total_order import TotalOrderProcess
from repro.sim import SynchronousNetwork


def transaction_stream(replica_id: int):
    """Each replica's clients submit one transaction every other round."""

    def witness(round_index: int):
        if round_index % 2 == replica_id % 2:
            return f"tx(replica={replica_id}, seq={round_index})"
        return None

    return witness


def main() -> None:
    genesis = [101, 205, 317, 442, 568]
    byzantine = [666]
    members = set(genesis) | set(byzantine)

    replicas = [
        TotalOrderProcess(
            node,
            initial_members=members,
            events=transaction_stream(node),
            leave_round=25 if node == genesis[-1] else None,
        )
        for node in genesis
    ]
    adversary = [
        ByzantineProcess(node, make_strategy("random-noise"), seed=node)
        for node in byzantine
    ]

    network = SynchronousNetwork(replicas + adversary, seed=7)
    # Two replicas join while the system is running.
    for joiner, join_round in ((700, 10), (815, 18)):
        network.add_process(
            TotalOrderProcess(joiner, initial_members=None, events=transaction_stream(joiner)),
            at_round=join_round,
        )

    rounds = 60
    network.run(max_rounds=rounds, stop_when=lambda net: False)

    chains = {node: network.process(node).chain for node in genesis}
    reference = max(chains.values(), key=len)

    print(f"ran {rounds} rounds with joins at 10 and 18 and a leave at 25\n")
    print("ledger prefix (first 12 ordered transactions):")
    for entry in reference[:12]:
        print(f"  round {entry.instance_round:>3}  reporter {entry.reporter:>4}  {entry.event}")
    print(f"  ... {len(reference)} ordered transactions in total\n")

    lengths = {node: len(chain) for node, chain in chains.items()}
    print(f"ledger lengths per genesis replica: {lengths}")
    print(f"chain-prefix property holds        : {chains_are_prefixes(list(chains.values()))}")
    late_replica = network.process(815)
    print(f"late joiner caught up               : joined={late_replica.joined}, "
          f"ledger length={len(late_replica.chain)}")


if __name__ == "__main__":
    main()
