#!/usr/bin/env python3
"""A toy permissionless ledger built on the dynamic total-ordering protocol.

The paper's motivation is networks — such as Nakamoto-style blockchains —
whose participant set changes over time and is never known exactly.  This
example runs Algorithm 6 (total ordering of events in a dynamic network)
through the declarative ``repro.api`` layer:

* five genesis replicas and one Byzantine node start the system;
* clients submit "transactions" (events) through their local replica every
  round;
* the churn options generate a random-but-reproducible schedule of
  replicas joining via the ``present``/``ack`` handshake and genesis
  replicas announcing ``absent`` and leaving — always preserving n > 3f;
* at the end, every correct replica holds the same totally ordered ledger
  (chain-prefix), and the ledger keeps growing (chain-growth).

Run with::

    python examples/permissionless_ledger.py
"""

from __future__ import annotations

from repro.analysis import chains_are_prefixes
from repro.api import ScenarioSpec, run_scenario


def main() -> None:
    rounds = 60
    outcome = run_scenario(
        ScenarioSpec(
            protocol="total-order",
            n=6,                       # five genesis replicas + one Byzantine
            f=1,
            adversary="random-noise",
            churn={
                "rounds": rounds,
                "join_rate": 0.10,     # new replicas appear via present/ack
                "leave_rate": 0.05,    # genesis replicas wind down via absent
            },
            seed=7,
        )
    )

    schedule = outcome.system.params["schedule"]
    network = outcome.network
    genesis = outcome.system.correct_ids
    joins = [e for e in schedule.events if e.kind == "join"]
    leaves = [e for e in schedule.events if e.kind == "leave"]

    departed = {e.node_id for e in leaves}
    stayed = [node for node in genesis if node not in departed]
    chains = {node: network.process(node).chain for node in stayed}
    reference = max(chains.values(), key=len)

    print(f"ran {rounds} rounds with {len(joins)} joins and {len(leaves)} leaves "
          f"(schedule generated from the scenario seed)\n")
    print("ledger prefix (first 12 ordered transactions):")
    for entry in reference[:12]:
        print(f"  round {entry.instance_round:>3}  reporter {entry.reporter:>8}  {entry.event}")
    print(f"  ... {len(reference)} ordered transactions in total\n")

    lengths = {node: len(chain) for node, chain in chains.items()}
    print(f"ledger lengths per surviving genesis replica: {lengths}")
    print(f"chain-prefix property holds                 : "
          f"{chains_are_prefixes(list(chains.values()))}")
    if joins:
        joiner = network.process(joins[0].node_id)
        print(f"first joiner caught up                      : joined={joiner.joined}, "
              f"ledger length={len(joiner.chain)}")


if __name__ == "__main__":
    main()
