#!/usr/bin/env python3
"""Sensor fusion with iterated approximate agreement.

A wireless sensor network measures a physical quantity (say, temperature).
Sensors drift, some are compromised, nodes join and drop out — and crucially
nobody knows how many sensors are currently alive or how many are
compromised.  The iterated id-only approximate-agreement algorithm
(Algorithm 4, used as in Section XI) lets every correct sensor converge to
a common estimate that is guaranteed to lie inside the range of the correct
readings, no matter what the compromised sensors report.

The whole deployment is one declarative ``repro.api`` scenario: the
``listed`` input kind assigns the drifting readings to the sensors by rank,
and the ``approx-outlier`` adversary makes every compromised sensor report
±1e9 "degrees" (a different lie per receiver).

Run with::

    python examples/sensor_fusion.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.api import ScenarioSpec, run_scenario


def main() -> None:
    n, f = 16, 5                      # 16 sensors, up to 5 compromised (n > 3f)
    iterations = 8

    # True temperature is ~21.5°C; correct sensors read it with drift.
    readings = [21.5 + ((i * 37) % 100 - 50) / 25.0 for i in range(n - f)]

    outcome = run_scenario(
        ScenarioSpec(
            protocol="iterated-approximate-agreement",
            n=n,
            f=f,
            inputs="listed",
            input_params={"values": readings},
            adversary="approx-outlier",
            params={"iterations": iterations},
            max_rounds=iterations + 3,
            stop="never",
            seed=99,
        )
    )

    correct = outcome.system.correct_ids
    histories = {node: outcome.network.process(node).history for node in correct}
    rows = []
    for iteration in range(iterations + 1):
        values = [history[iteration] for history in histories.values()]
        rows.append(
            {
                "iteration": iteration,
                "min estimate": round(min(values), 4),
                "max estimate": round(max(values), 4),
                "spread": round(max(values) - min(values), 5),
            }
        )

    print(f"{len(correct)} correct sensors, {f} compromised, "
          f"{iterations} fusion iterations\n")
    print(render_table(rows, title="convergence of the fused estimate"))
    in_lo, in_hi = min(readings), max(readings)
    finals = [h[-1] for h in histories.values()]
    print(f"\ncorrect readings ranged over [{in_lo:.3f}, {in_hi:.3f}] °C")
    print(f"final estimates range over   [{min(finals):.3f}, {max(finals):.3f}] °C")
    print("every estimate stays inside the correct range despite the ±1e9° lies,")
    print("and the spread halves (at least) every iteration.")


if __name__ == "__main__":
    main()
