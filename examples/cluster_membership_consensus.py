#!/usr/bin/env python3
"""Agreeing on many configuration keys at once with parallel consensus.

A database cluster that scales elastically cannot bake the cluster size or
a fault bound into its configuration-agreement protocol.  This example uses
ParallelConsensus (Algorithm 5) to agree on a whole configuration map in
one shot — every key is its own consensus instance, all running in
parallel — while a Byzantine member equivocates and also injects consensus
traffic for keys nobody proposed.

The scenario is declared through ``repro.api``: the configuration snapshot
travels as the ``pairs`` protocol parameter, so the identical agreement run
can be replayed from the spec's JSON form alone.

Run with::

    python examples/cluster_membership_consensus.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.api import ScenarioSpec, run_scenario


def main() -> None:
    # Every correct member proposes the same configuration snapshot (e.g.
    # produced by a deterministic reconciliation step).
    proposed_config = {
        "replication_factor": 3,
        "read_quorum": 2,
        "write_quorum": 2,
        "compaction": "leveled",
        "max_connections": 512,
    }

    n, f = 10, 3
    outcome = run_scenario(
        ScenarioSpec(
            protocol="parallel-consensus",
            n=n,
            f=f,
            adversary="consensus-split-vote",
            params={"pairs": proposed_config},
            max_rounds=60,
            seed=3,
        )
    )

    correct = outcome.system.correct_ids
    outputs = outcome.outputs()
    reference = outputs[correct[0]]
    rows = [
        {"key": key, "agreed value": value, "matches proposal": proposed_config[key] == value}
        for key, value in sorted(reference.items())
    ]
    print(f"cluster of {n} members, {f} Byzantine, "
          f"{len(proposed_config)} configuration keys agreed in parallel\n")
    print(render_table(rows, title="agreed configuration"))
    identical = all(output == reference for output in outputs.values())
    print(f"\nall correct members hold the identical configuration: {identical}")
    print(f"decided within {outcome.result.metrics.latest_decision_round()} rounds, "
          f"{outcome.messages} messages total")


if __name__ == "__main__":
    main()
