#!/usr/bin/env python3
"""Agreeing on many configuration keys at once with parallel consensus.

A database cluster that scales elastically cannot bake the cluster size or
a fault bound into its configuration-agreement protocol.  This example uses
ParallelConsensus (Algorithm 5) to agree on a whole configuration map in
one shot — every key is its own consensus instance, all running in
parallel — while a Byzantine member equivocates and also injects consensus
traffic for keys nobody proposed.

Run with::

    python examples/cluster_membership_consensus.py
"""

from __future__ import annotations

from repro.analysis import render_table
from repro.core.parallel_consensus import ParallelConsensusProcess
from repro.workloads import build_network, sparse_ids, split_correct_byzantine


def main() -> None:
    n, f = 10, 3
    ids = sparse_ids(n, seed=5)
    correct, byzantine = split_correct_byzantine(ids, f, seed=6)

    # Every correct member proposes the same configuration snapshot (e.g.
    # produced by a deterministic reconciliation step).
    proposed_config = {
        "replication_factor": 3,
        "read_quorum": 2,
        "write_quorum": 2,
        "compaction": "leveled",
        "max_connections": 512,
    }

    spec = build_network(
        correct_factory=lambda node: ParallelConsensusProcess(
            node, input_pairs=proposed_config
        ),
        correct_ids=correct,
        byzantine_ids=byzantine,
        strategy="consensus-split-vote",
        seed=3,
    )
    result = spec.network.run(max_rounds=60)

    outputs = {node: spec.network.process(node).output for node in correct}
    reference = outputs[correct[0]]
    rows = [
        {"key": key, "agreed value": value, "matches proposal": proposed_config[key] == value}
        for key, value in sorted(reference.items())
    ]
    print(f"cluster of {n} members, {f} Byzantine, "
          f"{len(proposed_config)} configuration keys agreed in parallel\n")
    print(render_table(rows, title="agreed configuration"))
    identical = all(output == reference for output in outputs.values())
    print(f"\nall correct members hold the identical configuration: {identical}")
    print(f"decided within {result.metrics.latest_decision_round()} rounds, "
          f"{result.metrics.total_messages} messages total")


if __name__ == "__main__":
    main()
