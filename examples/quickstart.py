#!/usr/bin/env python3
"""Quickstart: Byzantine consensus without knowing n or f.

Builds a 10-node system in which 3 nodes are Byzantine (the maximum the
n > 3f bound allows), runs the id-only consensus algorithm (Algorithm 3 of
the paper) against a vote-splitting adversary, and prints what every
correct node decided, how many rounds it took and how many messages were
exchanged.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import consensus_system
from repro.analysis import consensus_agreement, consensus_validity, render_table


def main() -> None:
    n, f = 10, 3
    spec = consensus_system(
        n,
        f,
        ones_fraction=0.5,                # half the correct nodes start with 1
        strategy="consensus-split-vote",  # the adversary equivocates on every message
        seed=2024,
    )
    print(f"system: n = {spec.n} nodes, f = {spec.f} Byzantine "
          f"(ids are sparse, and no node knows n or f)")
    print(f"correct inputs: {spec.params['inputs']}")

    result = spec.network.run(max_rounds=100)

    outputs = result.decided_outputs()
    rows = [
        {
            "node": node,
            "input": spec.params["inputs"][node],
            "decision": outputs[node],
            "decided in round": result.metrics.decision_round(node),
        }
        for node in spec.correct_ids
    ]
    print()
    print(render_table(rows, title="per-node decisions"))
    print()
    print(f"agreement reached : {consensus_agreement(outputs)}")
    print(f"validity satisfied: {consensus_validity(outputs, spec.params['inputs'])}")
    print(f"rounds executed   : {result.rounds_executed}")
    print(f"messages exchanged: {result.metrics.total_messages}")


if __name__ == "__main__":
    main()
