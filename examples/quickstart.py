#!/usr/bin/env python3
"""Quickstart: Byzantine consensus without knowing n or f.

Declares a 10-node scenario in which 3 nodes are Byzantine (the maximum
the n > 3f bound allows), runs the id-only consensus algorithm (Algorithm
3 of the paper) against a vote-splitting adversary through the unified
``repro.api`` layer, and prints what every correct node decided, how many
rounds it took and how many messages were exchanged.

The whole experiment is one declarative :class:`repro.api.ScenarioSpec` —
the same value round-trips through JSON, ships to worker processes in
parallel sweeps, and reproduces bit-identically from its seed.

Migration note: older revisions used ``repro.consensus_system(n, f, ...)``;
that helper still works but is deprecated — this spec + ``run_scenario``
pair is the replacement.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import json

from repro.analysis import consensus_agreement, consensus_validity, render_table
from repro.api import ScenarioSpec, run_scenario


def main() -> None:
    spec = ScenarioSpec(
        protocol="consensus",
        n=10,
        f=3,
        input_params={"ones_fraction": 0.5},  # half the correct nodes start with 1
        adversary="consensus-split-vote",     # the adversary equivocates on every message
        seed=2024,
        max_rounds=100,
    )
    print("scenario:", json.dumps(spec.to_dict(), sort_keys=True))

    outcome = run_scenario(spec)
    inputs = outcome.system.params["inputs"]
    print(f"\nsystem: n = {spec.n} nodes, f = {spec.f} Byzantine "
          f"(ids are sparse, and no node knows n or f)")
    print(f"correct inputs: {inputs}")

    outputs = outcome.result.decided_outputs()
    rows = [
        {
            "node": node,
            "input": inputs[node],
            "decision": outputs[node],
            "decided in round": outcome.result.metrics.decision_round(node),
        }
        for node in outcome.system.correct_ids
    ]
    print()
    print(render_table(rows, title="per-node decisions"))
    print()
    print(f"agreement reached : {consensus_agreement(outputs)}")
    print(f"validity satisfied: {consensus_validity(outputs, inputs)}")
    print(f"rounds executed   : {outcome.rounds}")
    print(f"messages exchanged: {outcome.messages}")


if __name__ == "__main__":
    main()
