"""Tests for Algorithm 5 — EarlyConsensus / ParallelConsensus."""

from __future__ import annotations

import pytest

from repro.adversary import ByzantineProcess, make_strategy
from repro.core.parallel_consensus import (
    BOTTOM,
    ParallelConsensusEngine,
    ParallelConsensusProcess,
    PCInput,
)
from repro.core.quorums import max_faults_tolerated
from repro.sim import Inbox, SynchronousNetwork
from repro.workloads import build_network, sparse_ids, split_correct_byzantine


def build_pc_network(n, f, pairs_for, strategy="silent", seed=0):
    ids = sparse_ids(n, seed=seed)
    correct, byz = split_correct_byzantine(ids, f, seed=seed + 1)
    spec = build_network(
        correct_factory=lambda node: ParallelConsensusProcess(
            node, input_pairs=pairs_for(node, correct)
        ),
        correct_ids=correct,
        byzantine_ids=byz,
        strategy=strategy,
        seed=seed,
    )
    return spec


def outputs_of(spec):
    return {i: spec.network.process(i).output for i in spec.correct_ids}


def frozen(outputs):
    return {
        i: (tuple(sorted(o.items())) if o is not None else None)
        for i, o in outputs.items()
    }


class TestBottom:
    def test_bottom_is_a_singleton_value(self):
        from repro.core.parallel_consensus import _Bottom

        assert BOTTOM == _Bottom()
        assert hash(BOTTOM) == hash(_Bottom())
        assert BOTTOM != None  # noqa: E711 - deliberate: ⊥ is not None
        assert repr(BOTTOM) == "⊥"


class TestValidityAndAgreement:
    @pytest.mark.parametrize("k", [1, 3, 8])
    @pytest.mark.parametrize("strategy", ["silent", "consensus-split-vote", "random-noise"])
    def test_shared_pairs_are_output_by_everyone(self, k, strategy):
        shared = {f"key-{i}": i * 11 for i in range(k)}
        spec = build_pc_network(10, 3, lambda node, correct: shared, strategy=strategy, seed=k)
        spec.network.run(max_rounds=60)
        outs = outputs_of(spec)
        assert all(o is not None for o in outs.values())
        assert len(set(frozen(outs).values())) == 1, "agreement violated"
        for o in outs.values():
            assert o == shared, "validity violated"

    def test_pair_held_by_single_node_is_consistent(self):
        # A pair input at only one correct node need not be output, but the
        # output sets must still agree.
        def pairs(node, correct):
            return {"solo": 99} if node == correct[0] else {}

        spec = build_pc_network(10, 3, pairs, strategy="random-noise", seed=4)
        spec.network.run(max_rounds=60)
        outs = outputs_of(spec)
        assert len(set(frozen(outs).values())) == 1

    def test_byzantine_injected_identifier_is_never_output(self):
        # The adversary injects consensus traffic for identifiers no correct
        # node has; agreement requires nobody outputs them.
        spec = build_pc_network(
            10, 3, lambda node, correct: {"real": 1}, strategy="consensus-split-vote", seed=5
        )
        spec.network.run(max_rounds=60)
        for o in outputs_of(spec).values():
            assert set(o) == {"real"}

    def test_disjoint_pairs_still_agree(self):
        def pairs(node, correct):
            return {("owned", node): node % 3}

        spec = build_pc_network(7, 2, pairs, strategy="silent", seed=6)
        spec.network.run(max_rounds=60)
        outs = outputs_of(spec)
        assert len(set(frozen(outs).values())) == 1


class TestTermination:
    def test_unanimous_instances_decide_in_first_phase(self):
        spec = build_pc_network(7, 2, lambda n, c: {"a": 1, "b": 2}, seed=7)
        run = spec.network.run(max_rounds=30)
        assert run.metrics.latest_decision_round() == 7  # 2 init + 5 phase rounds

    def test_engine_all_decided_without_inputs(self):
        engine = ParallelConsensusEngine(1, {})
        for r in range(1, 9):
            engine.step(r, Inbox.empty())
        assert engine.all_decided
        assert engine.outputs == {}


class TestEngineUnit:
    def test_engine_tracks_instances_from_inputs(self):
        engine = ParallelConsensusEngine(1, {"x": 5})
        assert engine.instances == ("x",)
        assert engine.opinion("x") == 5

    def test_new_instance_only_started_in_first_phase(self):
        engine = ParallelConsensusEngine(1, {})
        # Drive through init and first phase without traffic.
        for r in range(1, 8):
            engine.step(r, Inbox.empty())
        assert engine.phase == 1
        # Second phase: a PCInput for an unknown id must be discarded.
        engine.step(8, Inbox.empty())
        engine.step(9, Inbox.from_pairs([(42, PCInput("late", 3))]))
        assert "late" not in engine.instances

    def test_allowed_senders_filtering(self):
        engine = ParallelConsensusEngine(1, {"x": 5}, allowed_senders=frozenset({1, 2}))
        engine.step(1, Inbox.empty())
        engine.step(2, Inbox.from_pairs([(99, PCInput("x", 7))]))
        # Sender 99 is outside the allowed set; nv only counts allowed ids.
        assert 99 not in engine._known.ids or engine.nv <= 2


class TestLazyInstanceState:
    def test_inputs_are_not_materialised_before_their_first_phase_round(self):
        engine = ParallelConsensusEngine(1, {"x": 5, "y": 6})
        # The public view exposes the inputs immediately …
        assert engine.instances == ("x", "y")
        assert engine.opinion("x") == 5
        assert not engine.all_decided
        assert not engine.idle
        # … but no per-identifier state exists through the init rounds.
        engine.step(1, Inbox.empty())
        engine.step(2, Inbox.empty())
        assert engine._instances == {}
        # The first phase round is the first input touch: everything
        # pending materialises and speaks.
        payloads = engine.step(3, Inbox.empty())
        assert set(engine._instances) == {"x", "y"}
        assert [p for p in payloads if isinstance(p, PCInput)] == [
            PCInput("x", 5),
            PCInput("y", 6),
        ]

    def test_engine_killed_before_phase_one_never_allocates_state(self):
        # The total-order run tail: engines created in the last rounds of a
        # run step only through their init rounds and are then dropped.
        engine = ParallelConsensusEngine(1, {f"i{k}": k for k in range(50)})
        engine.step(1, Inbox.empty())
        engine.step(2, Inbox.empty())
        assert engine._instances == {}
        assert len(engine.instances) == 50

    def test_lazy_engine_matches_eager_outputs(self):
        # End-to-end: a quorum of unanimous inputs still decides each
        # instance exactly as before the lazy rewrite.
        senders = (1, 2, 3, 4)
        engines = {s: ParallelConsensusEngine(s, {"a": 1, "b": 2}) for s in senders}
        inbox = Inbox.empty()
        for local_round in range(1, 9):
            outgoing = {s: e.step(local_round, inbox) for s, e in engines.items()}
            inbox = Inbox.from_pairs(
                [(s, p) for s, payloads in outgoing.items() for p in payloads]
            )
        assert all(e.all_decided for e in engines.values())
        assert all(e.outputs == {"a": 1, "b": 2} for e in engines.values())
