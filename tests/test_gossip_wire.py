"""Property tests for the delta-coded candidate-gossip wire format.

The wire contract (see :mod:`repro.core.rotor_coordinator`):

* a node's per-round echoes travel as the ``adds`` of one
  :class:`CandidateGossip`, carrying exactly the per-round support the
  legacy one-``RotorEcho``-per-candidate encoding carried;
* every :data:`GOSSIP_ANCHOR_PERIOD`-th gossip carries a full-set anchor
  (with a cached digest) so a receiver that missed deltas can reconstruct
  the sender's exact full set;
* decoding is deterministic for arbitrary — including Byzantine — streams.

The properties below drive random candidate churn, random message
filtering (dropped gossips) and Byzantine senders through the encoder /
decoder pair and through two :class:`RotorCoordinatorCore` instances fed
the gossip vs the equivalent full per-candidate baseline, asserting
``decode(encode(·)) ≡ full-set baseline`` at both layers.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.core.rotor_coordinator import (
    GOSSIP_ANCHOR_PERIOD,
    CandidateGossip,
    GossipDecoder,
    GossipEncoder,
    RotorCoordinatorCore,
    RotorEcho,
    RotorInit,
)
from repro.sim import Inbox

# A round's newly-echoed candidates: small ids so churn revisits candidates.
adds_rounds = st.lists(
    st.lists(st.integers(0, 12), min_size=0, max_size=4), min_size=1, max_size=20
)


@given(adds=adds_rounds)
def test_decoder_reconstructs_exact_full_set_without_drops(adds):
    encoder = GossipEncoder()
    decoder = GossipDecoder()
    for round_adds in adds:
        gossip = encoder.emit(round_adds)
        if gossip is None:
            assert not round_adds
            continue
        decoder.observe(1, gossip)
        # With no drops the reconstruction tracks the encoder exactly,
        # anchor rounds and delta rounds alike.
        assert decoder.full_set(1) == encoder.echoed


@given(adds=adds_rounds, drops=st.sets(st.integers(0, 19)))
def test_decoder_recovers_after_drops_at_every_anchor(adds, drops):
    """Random message filtering: each anchor restores the exact full set."""

    encoder = GossipEncoder()
    decoder = GossipDecoder()
    emitted = 0
    for index, round_adds in enumerate(adds):
        gossip = encoder.emit(round_adds)
        if gossip is None:
            continue
        emitted += 1
        if index in drops:
            continue
        decoder.observe(1, gossip)
        if gossip.anchor is not None:
            assert decoder.full_set(1) == encoder.echoed
        else:
            # Deltas only ever add real echoes: no fabricated members.
            assert decoder.full_set(1) <= encoder.echoed
    assert emitted <= len(adds)


@settings(deadline=None)
@given(
    # sender -> candidates echoed per round (correct senders), over rounds
    rounds=st.lists(
        st.dictionaries(
            st.integers(1, 6), st.sets(st.integers(1, 9), max_size=4), max_size=6
        ),
        min_size=1,
        max_size=8,
    ),
    # (round, sender) deliveries dropped by the network, identically for
    # both encodings (the model loses *messages*, not encodings)
    dropped=st.sets(st.tuples(st.integers(0, 7), st.integers(1, 6))),
    # Byzantine junk: senders 7-9 emit arbitrary adds/anchors
    byz=st.lists(
        st.tuples(
            st.integers(0, 7),
            st.integers(7, 9),
            st.sets(st.integers(1, 9), max_size=3),
            st.one_of(st.none(), st.sets(st.integers(1, 9), max_size=4)),
        ),
        max_size=6,
    ),
)
def test_core_candidate_sets_match_full_set_baseline(rounds, dropped, byz):
    """Per-round gossip support ≡ the full per-candidate echo baseline."""

    gossip_core = RotorCoordinatorCore(1)
    legacy_core = RotorCoordinatorCore(1)
    init = [(s, RotorInit()) for s in (1, 2, 3, 4, 5, 6)]
    gossip_core.init_round_two(Inbox.from_pairs(init))
    legacy_core.init_round_two(Inbox.from_pairs(init))
    encoders = {sender: GossipEncoder() for sender in range(1, 7)}

    for round_index, echoes_by_sender in enumerate(rounds):
        gossip_pairs = []
        legacy_pairs = []
        for sender, candidates in sorted(echoes_by_sender.items()):
            if (round_index, sender) in dropped:
                continue
            gossip = encoders[sender].emit(sorted(candidates))
            if gossip is None:
                continue
            gossip_pairs.append((sender, gossip))
            # The baseline sender ships one RotorEcho per candidate of the
            # *same delta* — the legacy encoding of the same logical round.
            legacy_pairs.extend(
                (sender, RotorEcho(candidate)) for candidate in gossip.adds
            )
        for br, sender, adds, anchor in byz:
            if br != round_index or (round_index, sender) in dropped:
                continue
            payload = CandidateGossip(
                adds=tuple(sorted(adds)),
                anchor=None if anchor is None else tuple(sorted(anchor)),
            )
            gossip_pairs.append((sender, payload))
            # Anchors carry no support, so the baseline equivalent of a
            # Byzantine gossip is its adds only; an adds-less gossip still
            # makes the sender count towards nv, so the baseline sender
            # must speak too (with junk) to keep the quorum denominators
            # aligned.
            if payload.adds:
                legacy_pairs.extend((sender, RotorEcho(c)) for c in payload.adds)
            else:
                legacy_pairs.append((sender, "byzantine-junk"))
        gossip_core.observe(Inbox.from_pairs(gossip_pairs))
        legacy_core.observe(Inbox.from_pairs(legacy_pairs))
        assert gossip_core.candidates == legacy_core.candidates
        assert gossip_core.nv == legacy_core.nv
