"""The property-guided scenario search: mutation validity (Hypothesis
stateful), planted-violation discovery, store persistence + bit-identical
replay, and the ``--search`` CLI entry point."""

from __future__ import annotations

import json

import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.api import ScenarioSpec
from repro.api.registry import REGISTRY
from repro.api.sweep import run_scenario
from repro.harness.runner import main as runner_main
from repro.search import (
    FINDING_ROW_FN,
    MUTATION_OPS,
    ScenarioSearch,
    SpecMutator,
    applicable_engines,
    evaluate_outcome,
    replay_run,
    score_outcome,
)
from repro.sim.rng import make_rng
from repro.store import RunStore

#: The planted E6-style regime: consensus at n=4 under uniform-random
#: delay loses agreement for a healthy fraction of seeds.
BASE = ScenarioSpec(
    protocol="consensus",
    n=4,
    f=1,
    adversary="crash",
    seed=0,
    delay="uniform-random",
    delay_params={"max_delay": 6},
    max_rounds=30,
)

#: Mutation vocabulary that keeps the search inside the uniform-random
#: delay family (no "delay" op), mirroring the CI smoke job.
PINNED_OPS = ("seed", "delay-params", "adversary", "inputs", "size")


# ---------------------------------------------------------------------------
# Mutation layer
# ---------------------------------------------------------------------------


class ConsensusMutationMachine(RuleBasedStateMachine):
    """Every mutation op, in any order, must yield a valid, buildable,
    JSON-round-trippable spec."""

    def __init__(self):
        super().__init__()
        self.mutator = SpecMutator(make_rng(0), max_n=10)
        self.spec = BASE

    @rule(op=st.sampled_from(MUTATION_OPS))
    def apply(self, op):
        self.spec = self.mutator.mutate(self.spec, op)

    @invariant()
    def json_round_trips(self):
        payload = json.loads(json.dumps(self.spec.to_dict()))
        assert ScenarioSpec.from_dict(payload) == self.spec

    @invariant()
    def registry_accepts(self):
        REGISTRY.build(self.spec)

    @invariant()
    def protocol_is_stable(self):
        assert self.spec.protocol == "consensus"


class TotalOrderMutationMachine(RuleBasedStateMachine):
    """Same contract over the churn-capable protocol (exercises the churn
    op, including flash-crowd schedules)."""

    def __init__(self):
        super().__init__()
        self.mutator = SpecMutator(make_rng(1), max_n=8)
        self.spec = ScenarioSpec(
            protocol="total-order", n=6, f=1, seed=0,
            churn={"rounds": 12, "join_rate": 0.2},
        )

    @rule(op=st.sampled_from(("seed", "churn", "adversary", "size")))
    def apply(self, op):
        self.spec = self.mutator.mutate(self.spec, op)

    @invariant()
    def json_round_trips(self):
        payload = json.loads(json.dumps(self.spec.to_dict()))
        assert ScenarioSpec.from_dict(payload) == self.spec

    @invariant()
    def registry_accepts(self):
        REGISTRY.build(self.spec)


TestConsensusMutations = ConsensusMutationMachine.TestCase
TestConsensusMutations.settings = settings(
    max_examples=15, stateful_step_count=8, deadline=None
)
TestTotalOrderMutations = TotalOrderMutationMachine.TestCase
TestTotalOrderMutations.settings = settings(
    max_examples=10, stateful_step_count=6, deadline=None
)


class TestMutatorDeterminism:
    def test_same_seed_same_trajectory(self):
        runs = []
        for _ in range(2):
            mutator = SpecMutator(make_rng(7))
            spec = BASE
            trail = []
            for _ in range(20):
                spec = mutator.mutate(spec)
                trail.append(spec.digest())
            runs.append(trail)
        assert runs[0] == runs[1]

    def test_restricted_ops_pin_the_delay_family(self):
        mutator = SpecMutator(make_rng(3), ops=PINNED_OPS)
        spec = BASE
        for _ in range(30):
            spec = mutator.mutate(spec)
            assert spec.delay == "uniform-random"

    def test_unknown_op_rejected(self):
        mutator = SpecMutator(make_rng(0))
        with pytest.raises(ValueError, match="unknown mutation op"):
            mutator.mutate(BASE, op="teleport")
        with pytest.raises(ValueError, match="unknown mutation ops"):
            SpecMutator(make_rng(0), ops=("seed", "teleport"))


# ---------------------------------------------------------------------------
# Scoring
# ---------------------------------------------------------------------------


class TestScoring:
    def test_clean_synchronous_run_has_no_violations(self):
        spec = ScenarioSpec(protocol="consensus", n=7, f=2,
                            adversary="consensus-split-vote", seed=0)
        outcome = run_scenario(spec)
        assert evaluate_outcome(outcome) == []

    def test_uniform_random_consensus_violates_agreement(self):
        # The planted break: BASE at seed 0 splits the decided values.
        outcome = run_scenario(BASE)
        names = {v.property_name for v in evaluate_outcome(outcome)}
        assert "consensus-agreement" in names

    def test_violations_dominate_the_score(self):
        outcome = run_scenario(BASE)
        assert score_outcome(outcome) > 1000
        assert score_outcome(outcome, objective="rounds") == outcome.rounds
        with pytest.raises(ValueError, match="objective"):
            score_outcome(outcome, objective="speed")


# ---------------------------------------------------------------------------
# The search harness
# ---------------------------------------------------------------------------


class TestApplicableEngines:
    def test_synchronous_gets_all_four(self):
        spec = ScenarioSpec(protocol="consensus", n=4, f=1)
        assert applicable_engines(spec) == ("vector", "fast", "queue", "legacy")

    def test_delayed_gets_queue_and_legacy(self):
        assert applicable_engines(BASE) == ("queue", "legacy")


class TestScenarioSearch:
    def test_rediscovers_planted_uniform_random_violation(self):
        search = ScenarioSearch(
            BASE, seed=1, escalate_n=(8,), mutation_ops=PINNED_OPS,
            code_version="test",
        )
        result = search.run(150)
        found = [
            f for f in result.findings
            if f.spec.delay == "uniform-random"
            and any(v.property_name == "consensus-agreement" for v in f.violations)
        ]
        assert found, "search failed to re-find the planted E6-style break"
        finding = found[0]
        # Confirmed on every applicable engine, escalated to n=8.
        assert finding.engines == ("queue", "legacy")
        assert finding.escalations and finding.escalations[0]["n"] == 8

    def test_search_is_deterministic(self):
        results = [
            ScenarioSearch(
                BASE, seed=5, mutation_ops=PINNED_OPS, code_version="test"
            ).run(40)
            for _ in range(2)
        ]
        digests = [
            [f.spec_digest for f in result.findings] for result in results
        ]
        assert digests[0] == digests[1]
        assert results[0].evaluations == results[1].evaluations

    def test_findings_persist_and_replay_bit_identically(self, tmp_path):
        store = RunStore(str(tmp_path / "search.sqlite"))
        try:
            search = ScenarioSearch(
                BASE, seed=1, store=store, mutation_ops=PINNED_OPS,
                code_version="test",
            )
            result = search.run(60)
            assert result.findings, "need at least one finding to test replay"
            finding = result.findings[0]
            assert set(finding.run_keys) == set(finding.engines)
            for engine, run_key in finding.run_keys.items():
                # The whole point: a stored counterexample reproduces
                # bit-identically from its persisted spec, per engine.
                assert replay_run(store, run_key), (engine, run_key)
                row = store.get_row(run_key, FINDING_ROW_FN)
                assert row is not None and row["violations"]
            # Findable by spec digest alone.
            stored = store.query(spec_digest=finding.spec_digest)
            assert {r.engine for r in stored} == set(finding.engines)
            assert stored[0].spec == finding.spec
        finally:
            store.close()

    def test_replay_run_unknown_key_raises(self, tmp_path):
        store = RunStore(str(tmp_path / "empty.sqlite"))
        try:
            with pytest.raises(KeyError):
                replay_run(store, "no-such-key")
        finally:
            store.close()

    def test_budget_is_respected(self):
        search = ScenarioSearch(BASE, seed=0, code_version="test")
        result = search.run(10)
        assert result.evaluations == 10
        with pytest.raises(ValueError, match="budget"):
            search.run(0)


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestSearchCli:
    def test_search_entry_point_smoke(self, tmp_path, capsys):
        out = tmp_path / "counterexamples.json"
        store_path = tmp_path / "runs.sqlite"
        code = runner_main([
            "--search",
            "--search-budget", "80",
            "--search-ops", ",".join(PINNED_OPS),
            "--seed", "1",
            "--store", str(store_path),
            "--search-out", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "confirmed finding(s)" in captured
        payload = json.loads(out.read_text())
        assert payload["evaluations"] == 80
        uniform = [
            f for f in payload["findings"]
            if f["spec"]["delay"] == "uniform-random"
        ]
        assert uniform, "CLI search must re-find the uniform-random break"
        # Every reported counterexample is persisted and replayable.
        store = RunStore(str(store_path))
        try:
            for finding in payload["findings"]:
                for run_key in finding["run_keys"].values():
                    assert replay_run(store, run_key)
        finally:
            store.close()

    def test_search_spec_file_round_trip(self, tmp_path, capsys):
        spec_path = tmp_path / "base.json"
        spec_path.write_text(json.dumps(BASE.to_dict()))
        code = runner_main([
            "--search", "--search-budget", "5",
            "--search-spec", str(spec_path),
            "--search-escalate", "",
        ])
        assert code == 0
        assert "scenarios evaluated" in capsys.readouterr().out
