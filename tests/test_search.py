"""The property-guided scenario search: mutation validity (Hypothesis
stateful), planted-violation discovery, store persistence + bit-identical
replay, and the ``--search`` CLI entry point."""

from __future__ import annotations

import json

import pytest
from hypothesis import settings
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule
from hypothesis import strategies as st

from repro.api import ScenarioSpec
from repro.api.registry import REGISTRY
from repro.api.sweep import run_scenario
from repro.harness.runner import main as runner_main
from repro.search import (
    FINDING_ROW_FN,
    MUTATION_OPS,
    ScenarioSearch,
    SpecMutator,
    applicable_engines,
    evaluate_outcome,
    evaluation_row,
    replay_run,
    score_outcome,
    score_row,
)
from repro.sim.rng import make_rng
from repro.store import RunStore

#: The planted E6-style regime: consensus at n=4 under uniform-random
#: delay loses agreement for a healthy fraction of seeds.
BASE = ScenarioSpec(
    protocol="consensus",
    n=4,
    f=1,
    adversary="crash",
    seed=0,
    delay="uniform-random",
    delay_params={"max_delay": 6},
    max_rounds=30,
)

#: Mutation vocabulary that keeps the search inside the uniform-random
#: delay family (no "delay" op), mirroring the CI smoke job.
PINNED_OPS = ("seed", "delay-params", "adversary", "inputs", "size")


# ---------------------------------------------------------------------------
# Mutation layer
# ---------------------------------------------------------------------------


class ConsensusMutationMachine(RuleBasedStateMachine):
    """Every mutation op, in any order, must yield a valid, buildable,
    JSON-round-trippable spec."""

    def __init__(self):
        super().__init__()
        self.mutator = SpecMutator(make_rng(0), max_n=10)
        self.spec = BASE

    @rule(op=st.sampled_from(MUTATION_OPS))
    def apply(self, op):
        self.spec = self.mutator.mutate(self.spec, op)

    @invariant()
    def json_round_trips(self):
        payload = json.loads(json.dumps(self.spec.to_dict()))
        assert ScenarioSpec.from_dict(payload) == self.spec

    @invariant()
    def registry_accepts(self):
        REGISTRY.build(self.spec)

    @invariant()
    def protocol_is_stable(self):
        assert self.spec.protocol == "consensus"


class TotalOrderMutationMachine(RuleBasedStateMachine):
    """Same contract over the churn-capable protocol (exercises the churn
    op, including flash-crowd schedules)."""

    def __init__(self):
        super().__init__()
        self.mutator = SpecMutator(make_rng(1), max_n=8)
        self.spec = ScenarioSpec(
            protocol="total-order", n=6, f=1, seed=0,
            churn={"rounds": 12, "join_rate": 0.2},
        )

    @rule(op=st.sampled_from(("seed", "churn", "adversary", "size")))
    def apply(self, op):
        self.spec = self.mutator.mutate(self.spec, op)

    @invariant()
    def json_round_trips(self):
        payload = json.loads(json.dumps(self.spec.to_dict()))
        assert ScenarioSpec.from_dict(payload) == self.spec

    @invariant()
    def registry_accepts(self):
        REGISTRY.build(self.spec)


TestConsensusMutations = ConsensusMutationMachine.TestCase
TestConsensusMutations.settings = settings(
    max_examples=15, stateful_step_count=8, deadline=None
)
TestTotalOrderMutations = TotalOrderMutationMachine.TestCase
TestTotalOrderMutations.settings = settings(
    max_examples=10, stateful_step_count=6, deadline=None
)


class TestMutatorDeterminism:
    def test_same_seed_same_trajectory(self):
        runs = []
        for _ in range(2):
            mutator = SpecMutator(make_rng(7))
            spec = BASE
            trail = []
            for _ in range(20):
                spec = mutator.mutate(spec)
                trail.append(spec.digest())
            runs.append(trail)
        assert runs[0] == runs[1]

    def test_restricted_ops_pin_the_delay_family(self):
        mutator = SpecMutator(make_rng(3), ops=PINNED_OPS)
        spec = BASE
        for _ in range(30):
            spec = mutator.mutate(spec)
            assert spec.delay == "uniform-random"

    def test_unknown_op_rejected(self):
        mutator = SpecMutator(make_rng(0))
        with pytest.raises(ValueError, match="unknown mutation op"):
            mutator.mutate(BASE, op="teleport")
        with pytest.raises(ValueError, match="unknown mutation ops"):
            SpecMutator(make_rng(0), ops=("seed", "teleport"))


# ---------------------------------------------------------------------------
# Scoring
# ---------------------------------------------------------------------------


class TestScoring:
    def test_clean_synchronous_run_has_no_violations(self):
        spec = ScenarioSpec(protocol="consensus", n=7, f=2,
                            adversary="consensus-split-vote", seed=0)
        outcome = run_scenario(spec)
        assert evaluate_outcome(outcome) == []

    def test_uniform_random_consensus_violates_agreement(self):
        # The planted break: BASE at seed 0 splits the decided values.
        outcome = run_scenario(BASE)
        names = {v.property_name for v in evaluate_outcome(outcome)}
        assert "consensus-agreement" in names

    def test_violations_dominate_the_score(self):
        outcome = run_scenario(BASE)
        assert score_outcome(outcome) > 1000
        assert score_outcome(outcome, objective="rounds") == outcome.rounds
        with pytest.raises(ValueError, match="objective"):
            score_outcome(outcome, objective="speed")

    def test_evaluation_row_scores_like_the_outcome(self):
        outcome = run_scenario(BASE)
        row = evaluation_row(outcome)
        for objective in ("violations", "rounds", "message_volume"):
            assert score_row(row, objective=objective) == score_outcome(
                outcome, objective=objective
            )
        with pytest.raises(ValueError, match="objective"):
            score_row(row, objective="speed")

    def test_message_volume_counts_messages_first(self):
        # One extra delivered message outranks a within-reason byte bump.
        light = {"messages": 101, "payload_bytes": 0, "peak_payload_bytes": 0}
        chatty = {
            "messages": 100,
            "payload_bytes": 50_000_000,
            "peak_payload_bytes": 10_000,
        }
        volume = lambda row: score_row(row, objective="message_volume")
        assert volume(light) > volume(chatty)
        # Equal counts: total bytes, then the peak payload, break the tie.
        heavier = dict(chatty, payload_bytes=50_000_001)
        assert volume(heavier) > volume(chatty)
        peakier = dict(chatty, peak_payload_bytes=20_000)
        assert volume(peakier) > volume(chatty)


# ---------------------------------------------------------------------------
# The search harness
# ---------------------------------------------------------------------------


class TestApplicableEngines:
    def test_synchronous_gets_all_four(self):
        spec = ScenarioSpec(protocol="consensus", n=4, f=1)
        assert applicable_engines(spec) == ("vector", "fast", "queue", "legacy")

    def test_delayed_gets_queue_and_legacy(self):
        assert applicable_engines(BASE) == ("queue", "legacy")


class TestScenarioSearch:
    def test_rediscovers_planted_uniform_random_violation(self):
        search = ScenarioSearch(
            BASE, seed=1, escalate_n=(8,), mutation_ops=PINNED_OPS,
            code_version="test",
        )
        result = search.run(150)
        found = [
            f for f in result.findings
            if f.spec.delay == "uniform-random"
            and any(v.property_name == "consensus-agreement" for v in f.violations)
        ]
        assert found, "search failed to re-find the planted E6-style break"
        finding = found[0]
        # Confirmed on every applicable engine, escalated to n=8.
        assert finding.engines == ("queue", "legacy")
        assert finding.escalations and finding.escalations[0]["n"] == 8

    def test_search_is_deterministic(self):
        results = [
            ScenarioSearch(
                BASE, seed=5, mutation_ops=PINNED_OPS, code_version="test"
            ).run(40)
            for _ in range(2)
        ]
        digests = [
            [f.spec_digest for f in result.findings] for result in results
        ]
        assert digests[0] == digests[1]
        assert results[0].evaluations == results[1].evaluations

    def test_findings_persist_and_replay_bit_identically(self, tmp_path):
        store = RunStore(str(tmp_path / "search.sqlite"))
        try:
            search = ScenarioSearch(
                BASE, seed=1, store=store, jobs=2, mutation_ops=PINNED_OPS,
                code_version="test",
            )
            result = search.run(60)
            assert result.findings, "need at least one finding to test replay"
            finding = result.findings[0]
            assert set(finding.run_keys) == set(finding.engines)
            for engine, run_key in finding.run_keys.items():
                # The whole point: a stored counterexample reproduces
                # bit-identically from its persisted spec, per engine —
                # including counterexamples found by worker processes.
                assert replay_run(store, run_key), (engine, run_key)
                row = store.get_row(run_key, FINDING_ROW_FN)
                assert row is not None and row["violations"]
            # Findable by spec digest alone.  Besides the per-engine
            # confirmation runs, the candidate evaluation itself is
            # persisted as an "auto" run (the search's resume cache).
            stored = store.query(spec_digest=finding.spec_digest)
            assert {r.engine for r in stored} == set(finding.engines) | {"auto"}
            assert stored[0].spec == finding.spec
        finally:
            store.close()

    def test_same_store_twice_executes_nothing_new(self, tmp_path):
        store = RunStore(str(tmp_path / "resume.sqlite"))
        try:
            kwargs = dict(
                seed=1, store=store, mutation_ops=PINNED_OPS, code_version="test"
            )
            first = ScenarioSearch(BASE, jobs=2, **kwargs).run(30)
            second = ScenarioSearch(BASE, jobs=1, **kwargs).run(30)
            assert first.executed > 0
            # Run-key dedupe observable: the repeat search is served
            # entirely from the store, at any jobs count …
            assert second.executed == 0
            assert second.cached == first.executed
            # … and returns the same findings and best candidate.
            assert [f.spec_digest for f in second.findings] == [
                f.spec_digest for f in first.findings
            ]
            assert second.best_score == first.best_score
        finally:
            store.close()

    def test_replay_run_unknown_key_raises(self, tmp_path):
        store = RunStore(str(tmp_path / "empty.sqlite"))
        try:
            with pytest.raises(KeyError):
                replay_run(store, "no-such-key")
        finally:
            store.close()

    def test_budget_is_respected(self):
        search = ScenarioSearch(BASE, seed=0, code_version="test")
        result = search.run(10)
        assert result.evaluations == 10
        with pytest.raises(ValueError, match="budget"):
            search.run(0)

    def test_bad_jobs_and_objective_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            ScenarioSearch(BASE, jobs=0, code_version="test")
        with pytest.raises(ValueError, match="objective"):
            ScenarioSearch(BASE, objective="speed", code_version="test")


class TestParallelSearch:
    """The tentpole contract: fan-out changes wall-clock, never results."""

    def test_findings_bit_identical_across_jobs(self):
        results = {
            jobs: ScenarioSearch(
                BASE, seed=1, jobs=jobs, mutation_ops=PINNED_OPS,
                code_version="test",
            ).run(40).as_dict()
            for jobs in (1, 2, 4)
        }
        serial = json.dumps(results[1], sort_keys=True)
        assert json.dumps(results[2], sort_keys=True) == serial
        assert json.dumps(results[4], sort_keys=True) == serial

    def test_parallel_found_counterexample_replays(self, tmp_path):
        # A finding surfaced by a worker process must replay from the
        # parent-written store exactly like a serially-found one.
        store = RunStore(str(tmp_path / "parallel.sqlite"))
        try:
            result = ScenarioSearch(
                BASE, seed=1, store=store, jobs=4, mutation_ops=PINNED_OPS,
                code_version="test",
            ).run(40)
            assert result.findings
            for finding in result.findings:
                for run_key in finding.run_keys.values():
                    assert replay_run(store, run_key)
        finally:
            store.close()


class TestMessageVolumeSearch:
    """The planted traffic blowup: churned total-order whose membership
    acks go out un-delta-coded (one unicast per member per joiner)."""

    CHURNED = ScenarioSpec(
        protocol="total-order",
        n=6,
        f=0,
        adversary="silent",
        seed=0,
        max_rounds=30,
        churn={
            "pattern": "flash-crowd",
            "rounds": 30,
            "burst_round": 4,
            "burst_size": 3,
            "burst_byzantine_fraction": 0.0,
        },
        params={"membership_wire": "delta"},
    )

    def test_refinds_undelta_coded_membership_as_top_candidate(self):
        # Start from the delta-coded wire; the only mutations available
        # are reseeds and wire flips, so topping the volume ranking means
        # the search singled out the unicast ack traffic specifically.
        search = ScenarioSearch(
            self.CHURNED,
            seed=0,
            jobs=2,
            objective="message_volume",
            mutation_ops=("wire", "seed"),
            code_version="test",
        )
        result = search.run(16)
        assert result.best_spec is not None
        assert result.best_spec.params.get("membership_wire") == "unicast"

    def test_wire_modes_order_the_same_events(self):
        # The wire format trades traffic, never outputs: both modes order
        # the exact same chain at every correct node, and the unicast mode
        # delivers strictly more messages.
        outcomes = {}
        for wire in ("unicast", "delta"):
            spec = self.CHURNED.replace(params={"membership_wire": wire})
            outcomes[wire] = run_scenario(spec, payload_accounting=True)
        assert outcomes["unicast"].outputs() == outcomes["delta"].outputs()
        assert outcomes["unicast"].messages > outcomes["delta"].messages


# ---------------------------------------------------------------------------
# CLI
# ---------------------------------------------------------------------------


class TestSearchCli:
    def test_search_entry_point_smoke(self, tmp_path, capsys):
        out = tmp_path / "counterexamples.json"
        store_path = tmp_path / "runs.sqlite"
        code = runner_main([
            "--search",
            "--search-budget", "80",
            "--search-ops", ",".join(PINNED_OPS),
            "--search-jobs", "2",
            "--seed", "1",
            "--store", str(store_path),
            "--search-out", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr().out
        assert "confirmed finding(s)" in captured
        payload = json.loads(out.read_text())
        assert payload["evaluations"] == 80
        uniform = [
            f for f in payload["findings"]
            if f["spec"]["delay"] == "uniform-random"
        ]
        assert uniform, "CLI search must re-find the uniform-random break"
        # Every reported counterexample is persisted and replayable.
        store = RunStore(str(store_path))
        try:
            for finding in payload["findings"]:
                for run_key in finding["run_keys"].values():
                    assert replay_run(store, run_key)
        finally:
            store.close()

    def test_search_spec_file_round_trip(self, tmp_path, capsys):
        spec_path = tmp_path / "base.json"
        spec_path.write_text(json.dumps(BASE.to_dict()))
        code = runner_main([
            "--search", "--search-budget", "5",
            "--search-spec", str(spec_path),
            "--search-escalate", "",
        ])
        assert code == 0
        assert "scenarios evaluated" in capsys.readouterr().out
