"""Delay-model edge cases and engine equivalence for the new models.

Covers the ungrouped-node semantics of the partition-style models (the
pre-fix ``-1`` sentinel let two ungrouped nodes — churn joiners in
particular — talk synchronously through any partition), the
``heal_round <= sent_round`` causality boundary, ``split_into_groups``
validation, and queue/legacy bit-identity for ``HeavyTailDelay`` and
``JitteredSynchronousDelay``.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ScenarioSpec
from repro.api.sweep import run_scenario
from repro.sim import (
    BoundedUnknownDelay,
    HeavyTailDelay,
    JitteredSynchronousDelay,
    PartitionDelay,
    UniformRandomDelay,
    make_rng,
    split_into_groups,
)
from repro.sim.delays import UNGROUPED_POLICIES

NEVER = 1_000_000  # the "effectively never" horizon PartitionDelay uses


class TestUngroupedPolicy:
    def test_policies_constant(self):
        assert UNGROUPED_POLICIES == ("isolated", "default_group")

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown ungrouped policy"):
            PartitionDelay(groups=(frozenset({1}),), ungrouped="clique")
        with pytest.raises(ValueError, match="unknown ungrouped policy"):
            BoundedUnknownDelay(groups=(frozenset({1}),), ungrouped="clique")

    def test_isolated_is_the_default(self):
        assert PartitionDelay(groups=()).ungrouped == "isolated"
        assert BoundedUnknownDelay(groups=()).ungrouped == "isolated"

    def test_two_ungrouped_nodes_do_not_tunnel_through_a_partition(self):
        # The regression the -1 sentinel caused: 7 and 8 are absent from
        # the groups, compared equal, and crossed the partition in one
        # round.  Isolated semantics treats the pair as cross-group.
        model = PartitionDelay(groups=(frozenset({1, 2}), frozenset({3, 4})))
        rng = make_rng(0)
        assert model.delivery_round(7, 8, 3, rng) >= NEVER

    def test_ungrouped_to_grouped_is_cross_group_when_isolated(self):
        model = PartitionDelay(groups=(frozenset({1, 2}),))
        rng = make_rng(0)
        assert model.delivery_round(7, 1, 3, rng) >= NEVER  # ungrouped sender
        assert model.delivery_round(1, 7, 3, rng) >= NEVER  # ungrouped dest

    def test_isolated_node_still_reaches_itself(self):
        model = PartitionDelay(groups=(frozenset({1}),))
        assert model.delivery_round(7, 7, 3, make_rng(0)) == 4

    def test_default_group_restores_the_historic_clique(self):
        model = PartitionDelay(
            groups=(frozenset({1, 2}),), ungrouped="default_group"
        )
        rng = make_rng(0)
        assert model.delivery_round(7, 8, 3, rng) == 4  # both ungrouped
        assert model.delivery_round(7, 1, 3, rng) >= NEVER  # mixed stays cross

    def test_bounded_unknown_ungrouped_pays_delta(self):
        model = BoundedUnknownDelay(groups=(frozenset({1, 2}),), delta=9)
        rng = make_rng(0)
        assert model.delivery_round(7, 8, 3, rng) == 12
        assert (
            BoundedUnknownDelay(
                groups=(frozenset({1, 2}),), delta=9, ungrouped="default_group"
            ).delivery_round(7, 8, 3, rng)
            == 4
        )


class TestJoinerCrossesPartitionMidRun:
    """End-to-end regression: a churn joiner must not bypass the partition.

    iterated-approximate-agreement supports churn *and* delay.  The spec's
    partition groups only cover the genesis ids when ``sizes`` exhausts
    ``n`` — the joiners drawn from the churn pool land in the remainder
    group (ids beyond the listed sizes), so the registry keeps them
    covered; this test instead drives the raw model the way the pre-fix
    sentinel failed.
    """

    def test_joiners_outside_groups_stay_isolated(self):
        # Two "joiners" (9, 10) minted after the partition was built: under
        # the old sentinel they formed a synchronous clique with each
        # other; now every cross pair is partitioned.
        model = PartitionDelay(groups=(frozenset({1, 2}), frozenset({3, 4})))
        rng = make_rng(0)
        for sender, dest in [(9, 10), (10, 9), (9, 1), (3, 10)]:
            assert model.delivery_round(sender, dest, 5, rng) >= NEVER

    def test_registry_remainder_group_covers_churn_pool(self):
        # The registry resolves the partition over *all* minted ids
        # (pool extras included): the spec lists sizes for the first half
        # only, and the remainder group absorbs the rest, so a joiner is
        # grouped — and partitioned — from round one.
        spec = ScenarioSpec(
            protocol="iterated-approximate-agreement",
            n=6,
            f=1,
            adversary="silent",
            seed=3,
            delay="partition",
            delay_params={"sizes": [3]},
            churn={"pool": 4, "join_fraction": 0.5, "join_start": 3},
            params={"iterations": 3},
        )
        outcome = run_scenario(spec)
        model = outcome.system.network._delay_model
        joiners = outcome.system.params["joiners"]
        assert joiners, "scenario must actually exercise joiners"
        covered = set().union(*model.groups)
        assert set(joiners) <= covered

    def test_registry_ungrouped_option_round_trips(self):
        spec = ScenarioSpec(
            protocol="consensus",
            n=4,
            f=1,
            seed=0,
            delay="partition",
            delay_params={"sizes": [2], "ungrouped": "default_group"},
        )
        outcome = run_scenario(spec)
        assert outcome.system.network._delay_model.ungrouped == "default_group"
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec


class TestHealRoundBoundary:
    def test_heal_round_at_or_before_send_still_respects_causality(self):
        model = PartitionDelay(
            groups=(frozenset({1}), frozenset({2})), heal_round=3
        )
        rng = make_rng(0)
        # Sent before the heal: delivered at the heal round.
        assert model.delivery_round(1, 2, 1, rng) == 3
        # Sent at / after the heal: delivery can never precede sent+1.
        assert model.delivery_round(1, 2, 3, rng) == 4
        assert model.delivery_round(1, 2, 7, rng) == 8


class TestNewModels:
    def test_heavy_tail_bounds_and_validation(self):
        model = HeavyTailDelay(alpha=0.8, scale=2.0, max_delay=5)
        rng = make_rng(1)
        for _ in range(500):
            delay = model.delivery_round(1, 2, 10, rng) - 10
            assert 1 <= delay <= 5
        for bad in (
            dict(alpha=0),
            dict(scale=0),
            dict(max_delay=0),
        ):
            with pytest.raises(ValueError):
                HeavyTailDelay(**bad)

    def test_heavy_tail_has_a_tail(self):
        model = HeavyTailDelay(alpha=1.0, scale=2.0, max_delay=10)
        rng = make_rng(2)
        delays = {model.delivery_round(1, 2, 0, rng) for _ in range(500)}
        assert len(delays) > 3  # genuinely multi-round, not degenerate

    def test_jittered_bounds_and_validation(self):
        model = JitteredSynchronousDelay(jitter_probability=0.5, max_extra=3)
        rng = make_rng(3)
        delays = [model.delivery_round(1, 2, 10, rng) - 10 for _ in range(300)]
        assert set(delays) <= {1, 2, 3, 4}
        assert 1 in set(delays) and max(delays) > 1
        with pytest.raises(ValueError):
            JitteredSynchronousDelay(jitter_probability=1.5)
        with pytest.raises(ValueError):
            JitteredSynchronousDelay(max_extra=0)

    def test_zero_jitter_is_synchronous_in_behaviour(self):
        model = JitteredSynchronousDelay(jitter_probability=0.0)
        rng = make_rng(4)
        assert all(model.delivery_round(1, 2, r, rng) == r + 1 for r in range(20))

    @pytest.mark.parametrize("delay,delay_params", [
        ("heavy-tail", {"alpha": 1.2, "scale": 1.0, "max_delay": 8}),
        ("jittered", {"jitter_probability": 0.3, "max_extra": 2}),
    ])
    @pytest.mark.parametrize("seed", (0, 1))
    def test_queue_and_legacy_bit_identical_for_new_models(
        self, delay, delay_params, seed
    ):
        spec = ScenarioSpec(
            protocol="consensus",
            n=5,
            f=1,
            adversary="consensus-split-vote",
            seed=seed,
            delay=delay,
            delay_params=delay_params,
            max_rounds=40,
            trace=True,
        )
        outcomes = {
            engine: run_scenario(spec, engine=engine)
            for engine in ("queue", "legacy")
        }

        def fingerprint(outcome):
            events = tuple(
                (e.kind, e.round_index, e.node_id, e.peer_id, e.payload, e.detail)
                for e in outcome.result.trace
            )
            return (
                events,
                outcome.outputs(),
                outcome.rounds,
                outcome.result.stop_reason,
            )

        assert fingerprint(outcomes["queue"]) == fingerprint(outcomes["legacy"])


class TestDeliveryBoundsProperty:
    """Hypothesis contract for every randomised model: a message sent at
    round ``r`` is delivered in ``[r + 1, r + bound]`` whatever the
    parameters — including the degenerate corner (``max_delay=1``,
    extreme ``alpha``/``scale``) where the heavy-tail model used to
    overflow ``int()`` or overshoot its own bound."""

    @settings(max_examples=60, deadline=None)
    @given(
        alpha=st.floats(min_value=0.01, max_value=100.0),
        scale=st.floats(min_value=1e-6, max_value=1e308),
        max_delay=st.integers(min_value=1, max_value=16),
        sent=st.integers(min_value=0, max_value=200),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_heavy_tail_delivery_in_bounds(self, alpha, scale, max_delay, sent, seed):
        model = HeavyTailDelay(alpha=alpha, scale=scale, max_delay=max_delay)
        rng = make_rng(seed)
        for _ in range(10):
            delivered = model.delivery_round(1, 2, sent, rng)
            assert sent + 1 <= delivered <= sent + max_delay

    @settings(max_examples=60, deadline=None)
    @given(
        probability=st.floats(min_value=0.0, max_value=1.0),
        max_extra=st.integers(min_value=1, max_value=8),
        sent=st.integers(min_value=0, max_value=200),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_jittered_delivery_in_bounds(self, probability, max_extra, sent, seed):
        model = JitteredSynchronousDelay(
            jitter_probability=probability, max_extra=max_extra
        )
        rng = make_rng(seed)
        for _ in range(10):
            delivered = model.delivery_round(1, 2, sent, rng)
            assert sent + 1 <= delivered <= sent + 1 + max_extra

    @settings(max_examples=60, deadline=None)
    @given(
        max_delay=st.integers(min_value=1, max_value=16),
        sent=st.integers(min_value=0, max_value=200),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_uniform_random_delivery_in_bounds(self, max_delay, sent, seed):
        model = UniformRandomDelay(max_delay=max_delay)
        rng = make_rng(seed)
        for _ in range(10):
            delivered = model.delivery_round(1, 2, sent, rng)
            assert sent + 1 <= delivered <= sent + max_delay

    def test_heavy_tail_max_delay_one_is_synchronous(self):
        # The boundary that used to overflow: with max_delay=1 every
        # delivery lands at sent+1 no matter how wild the tail draw is.
        model = HeavyTailDelay(alpha=0.01, scale=1e300, max_delay=1)
        rng = make_rng(0)
        assert all(model.delivery_round(1, 2, r, rng) == r + 1 for r in range(50))

    @pytest.mark.parametrize("bad", [
        dict(alpha=math.nan),
        dict(alpha=math.inf),
        dict(alpha=-1.0),
        dict(scale=math.nan),
        dict(scale=math.inf),
        dict(scale=0.0),
    ])
    def test_degenerate_heavy_tail_params_rejected(self, bad):
        with pytest.raises(ValueError):
            HeavyTailDelay(**bad)

    def test_degenerate_jitter_probability_rejected(self):
        with pytest.raises(ValueError):
            JitteredSynchronousDelay(jitter_probability=math.nan)


class TestSplitIntoGroups:
    def test_undershoot_keeps_trailing_remainder_group(self):
        groups = split_into_groups([5, 1, 9, 3, 7], [2, 2])
        assert groups == (frozenset({1, 3}), frozenset({5, 7}), frozenset({9}))

    def test_oversized_sizes_raise(self):
        with pytest.raises(ValueError, match="sum to 4"):
            split_into_groups([1, 2, 3], [2, 2])

    def test_nonpositive_sizes_raise(self):
        with pytest.raises(ValueError, match="must be positive"):
            split_into_groups([1, 2, 3], [2, 0])
        with pytest.raises(ValueError, match="must be positive"):
            split_into_groups([1, 2, 3], [-1])

    def test_exact_cover_has_no_remainder(self):
        assert split_into_groups([1, 2, 3, 4], [2, 2]) == (
            frozenset({1, 2}),
            frozenset({3, 4}),
        )
