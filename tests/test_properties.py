"""Property-based tests (Hypothesis) over random scenarios.

Rather than checking hand-picked configurations, these tests draw random
``(n, f, seed, adversary)`` scenarios — with ``n > 3f``, the paper's
resiliency assumption — and assert the protocol theorems' safety
properties on every one of them: consensus agreement and validity,
reliable-broadcast correctness and no-forgery, approximate-agreement
range containment.  A second group checks structural invariants of the
declarative API (``ScenarioSpec`` JSON round-trips) and the engine
equivalence metamorphic relation on random scenarios.

The suite is derandomized so CI runs are reproducible; bump
``max_examples`` locally to fuzz harder.
"""

from __future__ import annotations

import json

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.analysis import chains_are_prefixes
from repro.analysis.properties import (
    approx_outputs_in_range,
    consensus_agreement,
    consensus_validity,
    reliable_broadcast_correctness,
)
from repro.api import ScenarioSpec
from repro.api.sweep import run_scenario
from repro.dynamic import build_total_order_system, generate_churn_schedule
from repro.sim.events import EventKind, Trace, TraceEvent

COMMON = settings(
    max_examples=15,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

seeds = st.integers(min_value=0, max_value=2**16)


@st.composite
def populations(draw, min_n=4, max_n=10):
    """A random ``(n, f)`` pair satisfying the paper's ``n > 3f``."""

    n = draw(st.integers(min_value=min_n, max_value=max_n))
    f = draw(st.integers(min_value=0, max_value=(n - 1) // 3))
    return n, f


# ---------------------------------------------------------------------------
# Protocol safety invariants
# ---------------------------------------------------------------------------


@COMMON
@given(
    nf=populations(),
    seed=seeds,
    adversary=st.sampled_from(
        ["silent", "crash", "consensus-split-vote", "equivocate-value", "random-noise"]
    ),
    ones_fraction=st.sampled_from([0.0, 0.3, 0.5, 1.0]),
)
def test_consensus_agreement_and_validity(nf, seed, adversary, ones_fraction):
    n, f = nf
    spec = ScenarioSpec(
        protocol="consensus",
        n=n,
        f=f,
        adversary=adversary,
        seed=seed,
        inputs="binary",
        input_params={"ones_fraction": ones_fraction},
    )
    outcome = run_scenario(spec)
    outputs = outcome.outputs()
    inputs = outcome.system.params["inputs"]
    assert consensus_agreement(outputs), f"agreement violated: {outputs}"
    assert consensus_validity(outputs, inputs), f"validity violated: {outputs}"


@COMMON
@given(
    nf=populations(),
    seed=seeds,
    adversary=st.sampled_from(
        ["silent", "crash", "rb-false-echo", "rb-forged-source", "replay"]
    ),
)
def test_reliable_broadcast_correctness_and_no_forgery(nf, seed, adversary):
    n, f = nf
    spec = ScenarioSpec(
        protocol="reliable-broadcast", n=n, f=f, adversary=adversary, seed=seed
    )
    outcome = run_scenario(spec)
    procs = list(outcome.correct_processes().values())
    message = outcome.system.params["message"]
    source = outcome.system.params["source"]
    # Theorem 1 correctness: every correct node accepts the correct
    # sender's message.
    assert reliable_broadcast_correctness(procs, message, source)
    # No-forgery: nothing is ever accepted *from the correct source* other
    # than what it actually broadcast, no matter what the adversary claims.
    for proc in procs:
        for record in proc.accepted:
            if record.source == source:
                assert record.message == message


@COMMON
@given(
    nf=populations(),
    seed=seeds,
    adversary=st.sampled_from(["silent", "crash", "approx-outlier", "random-noise"]),
)
def test_approximate_agreement_outputs_stay_in_correct_range(nf, seed, adversary):
    n, f = nf
    spec = ScenarioSpec(
        protocol="approximate-agreement", n=n, f=f, adversary=adversary, seed=seed
    )
    outcome = run_scenario(spec)
    outputs = outcome.outputs()
    inputs = outcome.system.params["inputs"]
    assert approx_outputs_in_range(outputs, inputs), (
        f"outputs {outputs} escaped the correct input range "
        f"[{min(inputs.values())}, {max(inputs.values())}]"
    )


@COMMON
@given(
    initial_correct=st.integers(min_value=4, max_value=8),
    initial_byzantine=st.integers(min_value=0, max_value=2),
    join_rate=st.sampled_from([0.0, 0.15, 0.3]),
    leave_rate=st.sampled_from([0.0, 0.1, 0.2]),
    adversary=st.sampled_from(
        ["silent", "crash", "random-noise", "equivocate-value"]
    ),
    seed=st.integers(min_value=0, max_value=2**10),
)
def test_total_order_safety_under_random_churn(
    initial_correct, initial_byzantine, join_rate, leave_rate, adversary, seed
):
    """Theorem 6 safety on random churn schedules.

    * genesis-correct chains are prefix-consistent;
    * no chain carries two entries for the same ``(instance_round,
      reporter)`` (correct reporters witness at most one event per round,
      and none of the sampled adversaries forges ``EventMsg`` payloads);
    * a correct joiner's chain converges with the stayers': on every
      instance round both chains cover, the decided entries are identical.
    """

    rounds = 40
    if initial_correct <= 3 * initial_byzantine:
        initial_correct = 3 * initial_byzantine + 1
    schedule = generate_churn_schedule(
        initial_correct=initial_correct,
        initial_byzantine=initial_byzantine,
        rounds=rounds,
        join_rate=join_rate,
        leave_rate=leave_rate,
        seed=seed,
    )
    system = build_total_order_system(schedule, strategy=adversary, seed=seed)
    system.network.run(max_rounds=rounds, stop_when=lambda _net: False)

    genesis_chains = list(system.chains().values())
    assert chains_are_prefixes(genesis_chains)

    correct_nodes = {
        node_id: process
        for node_id, process in system.network.processes().items()
        if not process.is_byzantine
    }
    for node_id, process in correct_nodes.items():
        keys = [(entry.instance_round, entry.reporter) for entry in process.chain]
        assert len(keys) == len(set(keys)), f"duplicate entry in chain of {node_id}"

    # Joiner convergence: compare every correct node (joiners included)
    # against the longest genesis chain, grouped by instance round.
    reference = max(genesis_chains, key=len, default=())
    by_round: dict[int, list] = {}
    for entry in reference:
        by_round.setdefault(entry.instance_round, []).append(entry)
    for node_id, process in correct_nodes.items():
        groups: dict[int, list] = {}
        for entry in process.chain:
            groups.setdefault(entry.instance_round, []).append(entry)
        for instance_round, group in groups.items():
            if instance_round in by_round:
                assert group == by_round[instance_round], (
                    f"node {node_id} diverged from the genesis chain on "
                    f"instance round {instance_round}"
                )


# ---------------------------------------------------------------------------
# Structural invariants
# ---------------------------------------------------------------------------


scenario_specs = st.builds(
    ScenarioSpec,
    protocol=st.sampled_from(["consensus", "reliable-broadcast", "total-order"]),
    n=st.integers(min_value=4, max_value=50),
    f=st.integers(min_value=0, max_value=1),
    adversary=st.sampled_from(["silent", "crash", "replay"]),
    seed=seeds,
    max_rounds=st.one_of(st.none(), st.integers(min_value=1, max_value=500)),
    inputs=st.sampled_from(["default", "binary"]),
    input_params=st.dictionaries(
        st.sampled_from(["ones_fraction"]), st.sampled_from([0.25, 0.5]), max_size=1
    ),
    params=st.dictionaries(
        st.sampled_from(["message", "substitution"]),
        st.sampled_from(["hello", "narrow"]),
        max_size=2,
    ),
    stop=st.sampled_from(["default", "decided", "never"]),
    trace=st.booleans(),
)


@COMMON
@given(spec=scenario_specs)
def test_scenario_spec_round_trips_through_json(spec):
    payload = json.loads(json.dumps(spec.to_dict()))
    restored = ScenarioSpec.from_dict(payload)
    assert restored == spec
    assert restored.to_dict() == spec.to_dict()


@COMMON
@given(
    nf=populations(max_n=8),
    seed=seeds,
    protocol=st.sampled_from(
        ["consensus", "reliable-broadcast", "approximate-agreement"]
    ),
    adversary=st.sampled_from(["silent", "crash", "equivocate-value"]),
)
def test_fast_and_queue_engines_agree_on_random_scenarios(nf, seed, protocol, adversary):
    n, f = nf
    spec = ScenarioSpec(
        protocol=protocol, n=n, f=f, adversary=adversary, seed=seed, trace=True
    )
    outcomes = {
        engine: run_scenario(spec, engine=engine) for engine in ("fast", "queue")
    }
    events = {
        engine: [
            (e.kind, e.round_index, e.node_id, e.peer_id, e.payload)
            for e in outcome.result.trace
        ]
        for engine, outcome in outcomes.items()
    }
    assert events["fast"] == events["queue"]
    assert (
        outcomes["fast"].result.metrics.as_dict()
        == outcomes["queue"].result.metrics.as_dict()
    )
    assert outcomes["fast"].outputs() == outcomes["queue"].outputs()


# ---------------------------------------------------------------------------
# Columnar trace backend: round-trip against the object reference model
# ---------------------------------------------------------------------------


trace_node_ids = st.one_of(st.none(), st.integers(min_value=0, max_value=9))
trace_payloads = st.one_of(
    st.none(),
    st.integers(min_value=-5, max_value=5),
    st.text(max_size=3),
    st.tuples(st.integers(0, 3), st.text(max_size=2)),
)
trace_details = st.one_of(st.none(), st.integers(-3, 3), st.text(max_size=3))

trace_events = st.builds(
    TraceEvent,
    kind=st.sampled_from(list(EventKind)),
    round_index=st.integers(min_value=0, max_value=30),
    node_id=trace_node_ids,
    peer_id=trace_node_ids,
    payload=trace_payloads,
    detail=trace_details,
)

#: One recording action: a pre-built event through ``record``, a scalar
#: append through ``record_event``, or a bulk fan-out through one of the
#: columnar variants.
trace_ops = st.one_of(
    st.tuples(st.just("record"), trace_events),
    st.tuples(st.just("record_event"), trace_events),
    st.tuples(
        st.sampled_from(["sends", "deliveries"]),
        st.integers(min_value=0, max_value=30),  # round index
        st.integers(min_value=0, max_value=9),  # sender
        trace_payloads,
        st.lists(st.integers(min_value=0, max_value=9), max_size=6).map(tuple),
    ),
)


def apply_trace_ops(trace: Trace, ops) -> list[TraceEvent]:
    """Drive ``trace`` through a recording script; return the reference model.

    The reference is what the pre-columnar backend stored: one
    :class:`TraceEvent` dataclass per recorded event, in order.
    """

    reference: list[TraceEvent] = []
    for op in ops:
        if op[0] == "record":
            trace.record(op[1])
            reference.append(op[1])
        elif op[0] == "record_event":
            event = op[1]
            trace.record_event(
                event.kind,
                event.round_index,
                node_id=event.node_id,
                peer_id=event.peer_id,
                payload=event.payload,
                detail=event.detail,
            )
            reference.append(event)
        else:
            _, round_index, sender, payload, dests = op
            if op[0] == "sends":
                trace.record_sends_columnar(round_index, sender, payload, dests)
                kind, node_of, peer_of = (
                    EventKind.MESSAGE_SENT,
                    lambda d: sender,
                    lambda d: d,
                )
            else:
                trace.record_deliveries_columnar(round_index, sender, payload, dests)
                kind, node_of, peer_of = (
                    EventKind.MESSAGE_DELIVERED,
                    lambda d: d,
                    lambda d: sender,
                )
            reference.extend(
                TraceEvent(kind, round_index, node_of(d), peer_of(d), payload)
                for d in dests
            )
    return reference


@COMMON
@given(ops=st.lists(trace_ops, max_size=12))
def test_columnar_trace_round_trips_against_object_model(ops):
    """Every query helper agrees with a list-of-dataclass reference model."""

    trace = Trace()
    reference = apply_trace_ops(trace, ops)

    assert len(trace) == len(reference)
    assert list(trace) == reference
    assert trace.events == reference
    for kind in EventKind:
        assert trace.of_kind(kind) == [e for e in reference if e.kind == kind]
        want_first = next((e for e in reference if e.kind == kind), None)
        assert trace.first(kind) == want_first
    for node_id in {e.node_id for e in reference}:
        assert trace.for_node(node_id) == [
            e for e in reference if e.node_id == node_id
        ]
    for round_index in {e.round_index for e in reference}:
        assert trace.in_round(round_index) == [
            e for e in reference if e.round_index == round_index
        ]
    predicate = lambda e: e.round_index % 2 == 0 and e.payload is not None  # noqa: E731
    assert trace.where(predicate) == [e for e in reference if predicate(e)]
    assert trace.decisions() == [
        e for e in reference if e.kind == EventKind.NODE_DECIDED
    ]


@COMMON
@given(ops=st.lists(trace_ops, max_size=8))
def test_disabled_trace_ignores_every_recording_path(ops):
    trace = Trace(enabled=False)
    apply_trace_ops(trace, ops)
    assert len(trace) == 0
    assert list(trace) == []
