"""Unit and property-based tests for the relative-quorum arithmetic."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.quorums import (
    best_supported_value,
    is_resilient,
    max_faults_tolerated,
    meets_one_third,
    meets_two_thirds,
    one_third,
    two_thirds,
    values_meeting,
)


class TestThresholds:
    def test_exact_fractions(self):
        assert one_third(9) == 3.0
        assert two_thirds(9) == 6.0
        assert one_third(10) == pytest.approx(10 / 3)

    def test_negative_nv_rejected(self):
        with pytest.raises(ValueError):
            one_third(-1)
        with pytest.raises(ValueError):
            two_thirds(-1)

    def test_zero_count_never_meets_a_threshold(self):
        assert not meets_one_third(0, 0)
        assert not meets_two_thirds(0, 0)
        assert not meets_one_third(0, 9)

    def test_boundary_counts(self):
        # "at least nv/3" is not floored: for nv = 10 a count of 4 is needed
        # to meet 10/3 ≈ 3.33, and 3 is not enough... 3 < 3.33.
        assert not meets_one_third(3, 10)
        assert meets_one_third(4, 10)
        assert meets_two_thirds(7, 10)
        assert not meets_two_thirds(6, 10)

    def test_exact_thirds_meet(self):
        assert meets_one_third(3, 9)
        assert meets_two_thirds(6, 9)

    @given(st.integers(0, 500), st.integers(0, 500))
    def test_property_two_thirds_implies_one_third(self, count, nv):
        if meets_two_thirds(count, nv):
            assert meets_one_third(count, nv)

    @given(st.integers(1, 500))
    def test_property_full_count_always_meets_both(self, nv):
        assert meets_one_third(nv, nv)
        assert meets_two_thirds(nv, nv)


class TestValueSelection:
    def test_values_meeting_sorted(self):
        support = {"b": 7, "a": 7, "c": 1}
        assert values_meeting(support, 9) == ["a", "b"]

    def test_values_meeting_accepts_collections(self):
        support = {"a": {1, 2, 3, 4, 5, 6}, "b": {7}}
        assert values_meeting(support, 9) == ["a"]

    def test_best_supported_value_picks_highest_count(self):
        assert best_supported_value({"x": 8, "y": 6}, 9) == "x"

    def test_best_supported_value_none_when_no_quorum(self):
        assert best_supported_value({"x": 2}, 9) is None

    def test_best_supported_value_tie_break_is_deterministic(self):
        assert best_supported_value({"b": 7, "a": 7}, 9) == "a"

    def test_one_third_fraction_selection(self):
        assert best_supported_value({"x": 3}, 9, fraction="one_third") == "x"
        assert best_supported_value({"x": 2}, 9, fraction="one_third") is None


class TestResiliency:
    @pytest.mark.parametrize(
        "n,expected",
        [(1, 0), (3, 0), (4, 1), (6, 1), (7, 2), (10, 3), (13, 4), (100, 33)],
    )
    def test_max_faults_tolerated(self, n, expected):
        assert max_faults_tolerated(n) == expected

    def test_is_resilient_matches_bound(self):
        assert is_resilient(4, 1)
        assert not is_resilient(3, 1)
        assert not is_resilient(9, 3)

    @given(st.integers(1, 300))
    def test_property_max_faults_is_the_largest_resilient_f(self, n):
        f = max_faults_tolerated(n)
        assert is_resilient(n, f)
        assert not is_resilient(n, f + 1)


class TestKeyObservation:
    """Section III's observation: if all g correct nodes broadcast, a correct
    node receives fewer than nv/3 Byzantine messages, whatever the Byzantine
    nodes do."""

    @given(st.integers(1, 200), st.integers(0, 66))
    def test_byzantine_share_is_below_one_third(self, g, f):
        # Constrain to the paper's assumption n > 3f with n = g + f.
        if g + f <= 3 * f:
            return
        for byz_known in range(f + 1):
            nv = g + byz_known
            assert not meets_one_third(byz_known, nv) or byz_known == 0
