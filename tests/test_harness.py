"""Tests for the experiment harness (E1–E10 definitions and the runner)."""

from __future__ import annotations

import io

import pytest

from repro.harness import (
    EXPERIMENTS,
    ExperimentResult,
    all_experiment_ids,
    run_experiment,
    run_many,
    write_markdown_report,
)


class TestRegistry:
    def test_all_ten_experiments_are_registered(self):
        assert all_experiment_ids() == [f"E{i}" for i in range(1, 11)]

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("E99")


class TestExperimentResult:
    def test_rendering(self):
        result = ExperimentResult(
            experiment_id="EX",
            title="demo",
            claim="claims",
            rows=[{"n": 4, "ok": True}],
            notes="a note",
        )
        text = result.to_text()
        assert "[EX] demo" in text and "claims" in text and "a note" in text
        md = result.to_markdown()
        assert md.startswith("### EX — demo")
        assert "| n | ok |" in md


class TestSmallScaleRuns:
    """Run the cheap experiments end to end at scale 1 and sanity-check the
    headline numbers (the full sweeps are exercised by the benchmarks)."""

    def test_e5_resiliency_boundary_rows_cover_both_sides(self):
        result = run_experiment("E5")
        resilient = [r for r in result.rows if r["resilient_config"]]
        broken = [r for r in result.rows if not r["resilient_config"]]
        assert resilient and broken
        # Inside the bound the agreement rate must be 1.0.
        assert all(r["agreement"] == 1.0 for r in resilient)

    def test_e6_synchrony_necessity_shape(self):
        result = run_experiment("E6")
        by_model = {r["model"]: r for r in result.rows}
        assert by_model["asynchronous"]["disagreement"] == 1.0
        assert by_model["semi-synchronous"]["disagreement"] == 1.0
        assert by_model["synchronous-control"]["agreement"] == 1.0

    def test_runner_prints_and_reports(self, tmp_path):
        stream = io.StringIO()
        results = run_many(["E6"], scale=1, stream=stream)
        assert len(results) == 1
        assert "[E6]" in stream.getvalue()
        report = tmp_path / "report.md"
        write_markdown_report(results, str(report))
        assert report.read_text().startswith("# Reproduction results")
