"""Tests for the experiment harness (E1–E10 definitions and the runner)."""

from __future__ import annotations

import io
import json

import pytest

from repro.harness import (
    EXPERIMENTS,
    ExperimentDefinition,
    ExperimentResult,
    all_experiment_ids,
    run_experiment,
    run_many,
    write_json_report,
    write_markdown_report,
)
from repro.harness.runner import main


class TestRegistry:
    def test_all_ten_experiments_are_registered(self):
        assert all_experiment_ids() == [f"E{i}" for i in range(1, 11)]

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            run_experiment("E99")

    def test_experiments_are_declarative_definitions(self):
        for definition in EXPERIMENTS.values():
            assert isinstance(definition, ExperimentDefinition)
            sweeps = definition.sweeps(1, definition.default_seed)
            assert sweeps, definition.experiment_id
            assert definition.group_by and definition.metrics


class TestExperimentResult:
    def test_rendering(self):
        result = ExperimentResult(
            experiment_id="EX",
            title="demo",
            claim="claims",
            rows=[{"n": 4, "ok": True}],
            notes="a note",
        )
        text = result.to_text()
        assert "[EX] demo" in text and "claims" in text and "a note" in text
        md = result.to_markdown()
        assert md.startswith("### EX — demo")
        assert "| n | ok |" in md


class TestSmallScaleRuns:
    """Run the cheap experiments end to end at scale 1 and sanity-check the
    headline numbers (the full sweeps are exercised by the benchmarks)."""

    def test_e5_resiliency_boundary_rows_cover_both_sides(self):
        result = run_experiment("E5")
        resilient = [r for r in result.rows if r["resilient_config"]]
        broken = [r for r in result.rows if not r["resilient_config"]]
        assert resilient and broken
        # Inside the bound the agreement rate must be 1.0.
        assert all(r["agreement"] == 1.0 for r in resilient)

    def test_e6_synchrony_necessity_shape(self):
        result = run_experiment("E6")
        by_model = {r["model"]: r for r in result.rows}
        assert by_model["asynchronous"]["disagreement"] == 1.0
        assert by_model["semi-synchronous"]["disagreement"] == 1.0
        assert by_model["synchronous-control"]["agreement"] == 1.0

    def test_runner_prints_and_reports(self, tmp_path):
        stream = io.StringIO()
        results = run_many(["E6"], scale=1, stream=stream)
        assert len(results) == 1
        assert "[E6]" in stream.getvalue()
        report = tmp_path / "report.md"
        write_markdown_report(results, str(report))
        assert report.read_text().startswith("# Reproduction results")

    def test_run_many_forwards_seed(self):
        stream = io.StringIO()
        first = run_many(["E6"], seed=123, stream=stream)
        second = run_many(["E6"], seed=123, stream=stream)
        assert first[0].to_json() == second[0].to_json()
        # The forwarded seed must actually re-draw the sweep: the derived
        # per-scenario seeds differ from the default-seed run.
        definition = EXPERIMENTS["E6"]
        default_scenarios = [
            spec.seed for sweep in definition.sweeps(1, definition.default_seed)
            for spec in sweep.scenarios()
        ]
        seeded_scenarios = [
            spec.seed for sweep in definition.sweeps(1, 123)
            for spec in sweep.scenarios()
        ]
        assert default_scenarios != seeded_scenarios

    def test_json_report_round_trips(self, tmp_path):
        results = run_many(["E6"], stream=io.StringIO())
        report = tmp_path / "results.json"
        write_json_report(results, str(report))
        payload = json.loads(report.read_text())
        assert payload[0]["experiment_id"] == "E6"
        assert payload[0]["rows"]
        assert json.loads(results[0].to_json())["rows"] == payload[0]["rows"]

    def test_cli_json_and_jobs(self, tmp_path, capsys):
        report = tmp_path / "cli.json"
        assert main(["E6", "--jobs", "2", "--json", str(report)]) == 0
        payload = json.loads(report.read_text())
        assert [entry["experiment_id"] for entry in payload] == ["E6"]
        sequential = run_experiment("E6", jobs=1)
        assert payload[0]["rows"] == json.loads(sequential.to_json())["rows"]
        capsys.readouterr()  # swallow the CLI's table output
