"""Tests for Algorithm 2 — the rotor-coordinator."""

from __future__ import annotations

import pytest

from repro.analysis import rotor_good_round_exists
from repro.core.quorums import max_faults_tolerated
from repro.core.rotor_coordinator import (
    Opinion,
    RotorCoordinatorCore,
    RotorEcho,
    RotorInit,
)
from repro.sim import Inbox, all_correct_halted
from repro.workloads import rotor_coordinator_system


def inbox(pairs):
    return Inbox.from_pairs(pairs)


class TestCore:
    def test_init_rounds(self):
        core = RotorCoordinatorCore(1)
        assert core.init_round_one() == [RotorInit()]
        echoes = core.init_round_two(inbox([(2, RotorInit()), (3, RotorInit()), (3, "junk")]))
        assert echoes == [RotorEcho(2), RotorEcho(3)]

    def test_candidate_added_on_two_thirds_quorum(self):
        core = RotorCoordinatorCore(1)
        core.init_round_two(inbox([(i, RotorInit()) for i in (1, 2, 3, 4, 5, 6)]))
        relays = core.observe(inbox([(i, RotorEcho(2)) for i in (1, 2, 3, 4)]))
        assert core.candidates == (2,)
        # In the round where the quorum is reached the echo is still relayed
        # (the ``p ∉ Cv`` guard is evaluated before ``p`` joins ``Cv``) …
        assert RotorEcho(2) in relays
        # … but once 2 is a candidate, further echoes for it are not relayed.
        later = core.observe(inbox([(i, RotorEcho(2)) for i in (1, 2, 3, 4)]))
        assert RotorEcho(2) not in later

    def test_relay_on_one_third_quorum_without_adding(self):
        core = RotorCoordinatorCore(1)
        core.init_round_two(inbox([(i, RotorInit()) for i in range(1, 10)]))  # nv = 9
        relays = core.observe(inbox([(i, RotorEcho(7)) for i in (1, 2, 3)]))
        assert RotorEcho(7) in relays
        assert core.candidates == ()

    def test_candidates_kept_sorted_by_identifier(self):
        core = RotorCoordinatorCore(1)
        core.init_round_two(inbox([(i, RotorInit()) for i in (1, 2, 3)]))
        core.observe(inbox([(i, RotorEcho(30)) for i in (1, 2, 3)]))
        core.observe(inbox([(i, RotorEcho(10)) for i in (1, 2, 3)]))
        assert core.candidates == (10, 30)

    def test_selection_rotates_in_identifier_order(self):
        core = RotorCoordinatorCore(1)
        core.init_round_two(inbox([(i, RotorInit()) for i in (1, 2, 3)]))
        core.observe(inbox([(i, RotorEcho(c)) for i in (1, 2, 3) for c in (5, 9)]))
        first = core.execute_selection(Inbox.empty(), "op", round_index=3)
        second = core.execute_selection(Inbox.empty(), "op", round_index=4)
        assert (first.selected, second.selected) == (5, 9)
        assert core.selected == {5, 9}

    def test_reselection_terminates(self):
        core = RotorCoordinatorCore(1)
        core.init_round_two(inbox([(i, RotorInit()) for i in (1, 2, 3)]))
        core.observe(inbox([(i, RotorEcho(5)) for i in (1, 2, 3)]))
        core.execute_selection(Inbox.empty(), "op", round_index=3)
        outcome = core.execute_selection(Inbox.empty(), "op", round_index=4)
        assert outcome.terminated
        assert core.terminated

    def test_self_selection_broadcasts_opinion(self):
        core = RotorCoordinatorCore(5)
        core.init_round_two(inbox([(i, RotorInit()) for i in (1, 2, 3)]))
        core.observe(inbox([(i, RotorEcho(5)) for i in (1, 2, 3)]))
        outcome = core.execute_selection(Inbox.empty(), "mine", round_index=3)
        assert outcome.selected == 5
        assert Opinion("mine") in outcome.payloads

    def test_opinion_accepted_from_previous_coordinator_only(self):
        core = RotorCoordinatorCore(1)
        core.init_round_two(inbox([(i, RotorInit()) for i in (1, 2, 3)]))
        core.observe(inbox([(i, RotorEcho(c)) for i in (1, 2, 3) for c in (5, 9)]))
        core.execute_selection(Inbox.empty(), "op", round_index=3)  # selects 5
        outcome = core.execute_selection(
            inbox([(5, Opinion("from5")), (9, Opinion("from9"))]), "op", round_index=4
        )
        assert outcome.accepted_opinion == "from5"
        assert outcome.opinion_received

    def test_empty_candidate_set_selects_nothing(self):
        core = RotorCoordinatorCore(1)
        outcome = core.execute_selection(Inbox.empty(), "op", round_index=3)
        assert outcome.selected is None
        assert not outcome.terminated


class TestSystem:
    @pytest.mark.parametrize("n", [4, 7, 10])
    @pytest.mark.parametrize(
        "strategy", ["silent", "rotor-candidate-stuffer", "rotor-split-echo", "rotor-usurper"]
    )
    def test_termination_and_good_round(self, n, strategy):
        f = max_faults_tolerated(n)
        spec = rotor_coordinator_system(n, f, strategy=strategy, seed=n * 31 + len(strategy))
        run = spec.network.run(max_rounds=6 * n + 20, stop_when=all_correct_halted)
        assert run.stop_reason == "stop_condition", "every correct node must terminate"
        procs = [spec.network.process(i) for i in spec.correct_ids]
        assert rotor_good_round_exists(procs, spec.correct_ids)

    def test_termination_is_linear_in_n(self):
        rounds = {}
        for n in (4, 10, 16):
            f = max_faults_tolerated(n)
            spec = rotor_coordinator_system(n, f, strategy="rotor-candidate-stuffer", seed=5)
            run = spec.network.run(max_rounds=10 * n, stop_when=all_correct_halted)
            rounds[n] = run.rounds_executed
        # Theorem 2: O(n) rounds.  Allow a generous constant.
        for n, executed in rounds.items():
            assert executed <= 3 * n + 6

    def test_all_correct_nodes_select_same_sequence_without_adversary(self):
        spec = rotor_coordinator_system(7, 0, strategy=None, seed=9)
        spec.network.run(max_rounds=60, stop_when=all_correct_halted)
        histories = [
            tuple(rec.coordinator for rec in spec.network.process(i).selection_history)
            for i in spec.correct_ids
        ]
        assert len(set(histories)) == 1

    def test_candidate_stuffer_cannot_prevent_correct_candidates(self):
        spec = rotor_coordinator_system(10, 3, strategy="rotor-candidate-stuffer", seed=11)
        spec.network.run(max_rounds=80, stop_when=all_correct_halted)
        for i in spec.correct_ids:
            candidates = set(spec.network.process(i).core.candidates)
            assert set(spec.correct_ids) <= candidates


class TestCandidateMaintenanceAfterSaturation:
    def test_late_echo_quorum_is_accepted_even_when_len_cv_reaches_nv(self):
        """|Cv| >= nv must not stop candidate maintenance.

        Cv can contain nodes outside the local known set (a candidate's own
        messages may never have arrived, while everyone else's echoes did),
        so the candidate count reaching ``nv`` does not mean every *known*
        sender is a candidate.  A later echo quorum for a known-but-slow
        node must still be accepted — a size-based short-circuit here once
        dropped it.
        """

        from repro.core.rotor_coordinator import RotorCoordinatorCore, RotorEcho
        from repro.sim.messages import Inbox

        a, b, c, p, me = 1, 2, 3, 99, 7
        core = RotorCoordinatorCore(me)
        # known = {a, b, c}: only their messages ever arrived.
        core._known.observe(Inbox({a: ["x"], b: ["x"], c: ["x"]}))
        core._known.freeze()
        # Everyone echoes p (whose own init never reached us): p is accepted
        # although p is not a known sender, so |Cv| can reach nv without
        # Cv covering the known set.
        core.observe(Inbox.from_pairs(
            [(a, RotorEcho(p)), (b, RotorEcho(p)), (c, RotorEcho(p)),
             (a, RotorEcho(a)), (b, RotorEcho(a)), (c, RotorEcho(a)),
             (a, RotorEcho(b)), (b, RotorEcho(b)), (c, RotorEcho(b))]
        ))
        assert set(core.candidates) == {a, b, p}
        assert len(core.candidates) >= core.nv
        # The late quorum for known node c must still be accepted.
        core.observe(Inbox.from_pairs(
            [(a, RotorEcho(c)), (b, RotorEcho(c))]
        ))
        assert c in core.candidates
