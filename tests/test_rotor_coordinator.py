"""Tests for Algorithm 2 — the rotor-coordinator."""

from __future__ import annotations

import pytest

from repro.analysis import rotor_good_round_exists
from repro.core.quorums import max_faults_tolerated
from repro.core.rotor_coordinator import (
    GOSSIP_ANCHOR_PERIOD,
    CandidateGossip,
    GossipDecoder,
    GossipEncoder,
    Opinion,
    RotorCoordinatorCore,
    RotorEcho,
    RotorInit,
)
from repro.sim import Inbox, all_correct_halted
from repro.workloads import rotor_coordinator_system


def inbox(pairs):
    return Inbox.from_pairs(pairs)


def gossiped(payloads):
    """The candidates announced by a round's delta-coded gossip payloads."""

    announced: list[int] = []
    for payload in payloads:
        assert isinstance(payload, CandidateGossip)
        announced.extend(payload.adds)
    return announced


class TestCore:
    def test_init_rounds(self):
        core = RotorCoordinatorCore(1)
        assert core.init_round_one() == [RotorInit()]
        echoes = core.init_round_two(inbox([(2, RotorInit()), (3, RotorInit()), (3, "junk")]))
        # The whole echo wave travels as one delta-coded gossip payload.
        assert echoes == [CandidateGossip(adds=(2, 3))]

    def test_candidate_added_on_two_thirds_quorum(self):
        core = RotorCoordinatorCore(1)
        core.init_round_two(inbox([(i, RotorInit()) for i in (1, 2, 3, 4, 5, 6)]))
        relays = core.observe(inbox([(i, RotorEcho(2)) for i in (1, 2, 3, 4)]))
        assert core.candidates == (2,)
        # In the round where the quorum is reached the echo is still relayed
        # (the ``p ∉ Cv`` guard is evaluated before ``p`` joins ``Cv``) …
        assert 2 in gossiped(relays)
        # … but once 2 is a candidate, further echoes for it are not relayed.
        later = core.observe(inbox([(i, RotorEcho(2)) for i in (1, 2, 3, 4)]))
        assert 2 not in gossiped(later)

    def test_relay_on_one_third_quorum_without_adding(self):
        core = RotorCoordinatorCore(1)
        core.init_round_two(inbox([(i, RotorInit()) for i in range(1, 10)]))  # nv = 9
        relays = core.observe(inbox([(i, RotorEcho(7)) for i in (1, 2, 3)]))
        assert gossiped(relays) == [7]
        assert core.candidates == ()

    def test_gossip_and_legacy_echoes_build_identical_candidate_sets(self):
        """decode(encode(·)): gossip support ≡ one RotorEcho per candidate."""

        legacy = RotorCoordinatorCore(1)
        modern = RotorCoordinatorCore(1)
        init = [(i, RotorInit()) for i in (1, 2, 3)]
        legacy.init_round_two(inbox(init))
        modern.init_round_two(inbox(init))
        echoes = {s: (5, 9) for s in (1, 2, 3)}
        legacy.observe(
            inbox([(s, RotorEcho(c)) for s, cs in echoes.items() for c in cs])
        )
        modern.observe(
            inbox([(s, CandidateGossip(adds=cs)) for s, cs in echoes.items()])
        )
        assert legacy.candidates == modern.candidates == (5, 9)

    def test_gossip_anchor_is_not_counted_as_support(self):
        core = RotorCoordinatorCore(1)
        core.init_round_two(inbox([(i, RotorInit()) for i in (1, 2, 3)]))
        # Every sender *anchors* candidate 5 without freshly adding it; a
        # replayed anchor must not manufacture quorum support.
        core.observe(
            inbox([(s, CandidateGossip(adds=(), anchor=(5,))) for s in (1, 2, 3)])
        )
        assert core.candidates == ()

    def test_candidates_kept_sorted_by_identifier(self):
        core = RotorCoordinatorCore(1)
        core.init_round_two(inbox([(i, RotorInit()) for i in (1, 2, 3)]))
        core.observe(inbox([(i, RotorEcho(30)) for i in (1, 2, 3)]))
        core.observe(inbox([(i, RotorEcho(10)) for i in (1, 2, 3)]))
        assert core.candidates == (10, 30)

    def test_selection_rotates_in_identifier_order(self):
        core = RotorCoordinatorCore(1)
        core.init_round_two(inbox([(i, RotorInit()) for i in (1, 2, 3)]))
        core.observe(inbox([(i, RotorEcho(c)) for i in (1, 2, 3) for c in (5, 9)]))
        first = core.execute_selection(Inbox.empty(), "op", round_index=3)
        second = core.execute_selection(Inbox.empty(), "op", round_index=4)
        assert (first.selected, second.selected) == (5, 9)
        assert core.selected == {5, 9}

    def test_reselection_terminates(self):
        core = RotorCoordinatorCore(1)
        core.init_round_two(inbox([(i, RotorInit()) for i in (1, 2, 3)]))
        core.observe(inbox([(i, RotorEcho(5)) for i in (1, 2, 3)]))
        core.execute_selection(Inbox.empty(), "op", round_index=3)
        outcome = core.execute_selection(Inbox.empty(), "op", round_index=4)
        assert outcome.terminated
        assert core.terminated

    def test_self_selection_broadcasts_opinion(self):
        core = RotorCoordinatorCore(5)
        core.init_round_two(inbox([(i, RotorInit()) for i in (1, 2, 3)]))
        core.observe(inbox([(i, RotorEcho(5)) for i in (1, 2, 3)]))
        outcome = core.execute_selection(Inbox.empty(), "mine", round_index=3)
        assert outcome.selected == 5
        assert Opinion("mine") in outcome.payloads

    def test_opinion_accepted_from_previous_coordinator_only(self):
        core = RotorCoordinatorCore(1)
        core.init_round_two(inbox([(i, RotorInit()) for i in (1, 2, 3)]))
        core.observe(inbox([(i, RotorEcho(c)) for i in (1, 2, 3) for c in (5, 9)]))
        core.execute_selection(Inbox.empty(), "op", round_index=3)  # selects 5
        outcome = core.execute_selection(
            inbox([(5, Opinion("from5")), (9, Opinion("from9"))]), "op", round_index=4
        )
        assert outcome.accepted_opinion == "from5"
        assert outcome.opinion_received

    def test_empty_candidate_set_selects_nothing(self):
        core = RotorCoordinatorCore(1)
        outcome = core.execute_selection(Inbox.empty(), "op", round_index=3)
        assert outcome.selected is None
        assert not outcome.terminated


class TestGossipWireFormat:
    def test_encoder_emits_nothing_for_empty_rounds(self):
        encoder = GossipEncoder()
        assert encoder.emit(()) is None
        assert encoder.echoed == frozenset()

    def test_encoder_anchor_periodicity_and_contents(self):
        encoder = GossipEncoder()
        emitted = [encoder.emit((i,)) for i in range(1, 2 * GOSSIP_ANCHOR_PERIOD + 1)]
        for index, gossip in enumerate(emitted, start=1):
            if index % GOSSIP_ANCHOR_PERIOD == 0:
                # The anchor is the full echoed set including this round's
                # adds, sorted — and its digest is precomputed and cached.
                assert gossip.anchor == tuple(range(1, index + 1))
                assert gossip.anchor_digest() == hash(gossip.anchor)
            else:
                assert gossip.anchor is None
                assert gossip.anchor_digest() is None
        assert encoder.echoed == frozenset(range(1, 2 * GOSSIP_ANCHOR_PERIOD + 1))

    def test_round2_gossip_is_interned_across_nodes(self):
        # Every correct node echoes the same init wave, so the round's
        # dominant payload collapses onto one canonical interned instance.
        init = inbox([(i, RotorInit()) for i in (4, 5, 6)])
        first = RotorCoordinatorCore(4).init_round_two(init)
        second = RotorCoordinatorCore(5).init_round_two(init)
        assert first == second
        assert first[0] is second[0]

    def test_decoder_tracks_full_sets_without_gaps(self):
        encoder = GossipEncoder()
        decoder = GossipDecoder()
        for adds in ((1, 2), (3,), (4, 5), (6,)):
            decoder.observe(7, encoder.emit(adds))
            assert decoder.full_set(7) == encoder.echoed
        assert decoder.senders == {7}

    def test_decoder_resyncs_from_anchor_after_dropped_deltas(self):
        encoder = GossipEncoder()
        decoder = GossipDecoder()
        emitted = [encoder.emit((i,)) for i in range(1, GOSSIP_ANCHOR_PERIOD + 1)]
        # Deliver only the first gossip, drop the middle of the stream …
        decoder.observe(7, emitted[0])
        assert decoder.full_set(7) == {1}
        # … then the anchored gossip restores the exact full set.
        assert emitted[-1].anchor is not None
        decoder.observe(7, emitted[-1])
        assert decoder.full_set(7) == encoder.echoed

    def test_anchor_digest_cache_is_stripped_on_pickling(self):
        import pickle

        gossip = CandidateGossip(adds=(1,), anchor=(1,))
        before = pickle.dumps(gossip)
        gossip.anchor_digest()  # populate the cache
        hash(gossip)
        after = pickle.dumps(gossip)
        # Caches must neither inflate the wire size nor carry a
        # process-salted hash into sweep workers.
        assert before == after
        assert pickle.loads(after).__dict__ == {"adds": (1,), "anchor": (1,)}

    def test_decoder_resync_ignores_digest_collisions(self):
        # hash((-1,)) == hash((-2,)) in CPython: a digest-based resync
        # check would skip the resync here.  The decoder must compare sets.
        decoder = GossipDecoder()
        decoder.observe(5, CandidateGossip(adds=(-1,), anchor=(-2,)))
        assert decoder.full_set(5) == {-2, -1}

    def test_decoder_is_deterministic_for_byzantine_streams(self):
        # Arbitrary (even inconsistent) gossips must decode deterministically:
        # anchors replace the state, deltas accumulate onto it.
        stream = (
            CandidateGossip(adds=(9, 1)),
            CandidateGossip(adds=(2,), anchor=(1, 2, 999)),
            CandidateGossip(adds=(3,)),
        )
        decoders = [GossipDecoder() for _ in range(2)]
        for decoder in decoders:
            for gossip in stream:
                decoder.observe(5, gossip)
        assert decoders[0].full_set(5) == decoders[1].full_set(5) == {1, 2, 3, 999}


class TestSystem:
    @pytest.mark.parametrize("n", [4, 7, 10])
    @pytest.mark.parametrize(
        "strategy", ["silent", "rotor-candidate-stuffer", "rotor-split-echo", "rotor-usurper"]
    )
    def test_termination_and_good_round(self, n, strategy):
        f = max_faults_tolerated(n)
        spec = rotor_coordinator_system(n, f, strategy=strategy, seed=n * 31 + len(strategy))
        run = spec.network.run(max_rounds=6 * n + 20, stop_when=all_correct_halted)
        assert run.stop_reason == "stop_condition", "every correct node must terminate"
        procs = [spec.network.process(i) for i in spec.correct_ids]
        assert rotor_good_round_exists(procs, spec.correct_ids)

    def test_termination_is_linear_in_n(self):
        rounds = {}
        for n in (4, 10, 16):
            f = max_faults_tolerated(n)
            spec = rotor_coordinator_system(n, f, strategy="rotor-candidate-stuffer", seed=5)
            run = spec.network.run(max_rounds=10 * n, stop_when=all_correct_halted)
            rounds[n] = run.rounds_executed
        # Theorem 2: O(n) rounds.  Allow a generous constant.
        for n, executed in rounds.items():
            assert executed <= 3 * n + 6

    def test_all_correct_nodes_select_same_sequence_without_adversary(self):
        spec = rotor_coordinator_system(7, 0, strategy=None, seed=9)
        spec.network.run(max_rounds=60, stop_when=all_correct_halted)
        histories = [
            tuple(rec.coordinator for rec in spec.network.process(i).selection_history)
            for i in spec.correct_ids
        ]
        assert len(set(histories)) == 1

    def test_candidate_stuffer_cannot_prevent_correct_candidates(self):
        spec = rotor_coordinator_system(10, 3, strategy="rotor-candidate-stuffer", seed=11)
        spec.network.run(max_rounds=80, stop_when=all_correct_halted)
        for i in spec.correct_ids:
            candidates = set(spec.network.process(i).core.candidates)
            assert set(spec.correct_ids) <= candidates


class TestCandidateMaintenanceAfterSaturation:
    def test_late_echo_quorum_is_accepted_even_when_len_cv_reaches_nv(self):
        """|Cv| >= nv must not stop candidate maintenance.

        Cv can contain nodes outside the local known set (a candidate's own
        messages may never have arrived, while everyone else's echoes did),
        so the candidate count reaching ``nv`` does not mean every *known*
        sender is a candidate.  A later echo quorum for a known-but-slow
        node must still be accepted — a size-based short-circuit here once
        dropped it.
        """

        from repro.core.rotor_coordinator import RotorCoordinatorCore, RotorEcho
        from repro.sim.messages import Inbox

        a, b, c, p, me = 1, 2, 3, 99, 7
        core = RotorCoordinatorCore(me)
        # known = {a, b, c}: only their messages ever arrived.
        core._known.observe(Inbox({a: ["x"], b: ["x"], c: ["x"]}))
        core._known.freeze()
        # Everyone echoes p (whose own init never reached us): p is accepted
        # although p is not a known sender, so |Cv| can reach nv without
        # Cv covering the known set.
        core.observe(Inbox.from_pairs(
            [(a, RotorEcho(p)), (b, RotorEcho(p)), (c, RotorEcho(p)),
             (a, RotorEcho(a)), (b, RotorEcho(a)), (c, RotorEcho(a)),
             (a, RotorEcho(b)), (b, RotorEcho(b)), (c, RotorEcho(b))]
        ))
        assert set(core.candidates) == {a, b, p}
        assert len(core.candidates) >= core.nv
        # The late quorum for known node c must still be accepted.
        core.observe(Inbox.from_pairs(
            [(a, RotorEcho(c)), (b, RotorEcho(c))]
        ))
        assert c in core.candidates
