"""Tests for Algorithm 4 — approximate agreement."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis import approx_outputs_in_range, approx_range_reduced
from repro.core.approximate_agreement import trim_and_midpoint
from repro.core.quorums import max_faults_tolerated
from repro.workloads import approximate_agreement_system


class TestTrimAndMidpoint:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            trim_and_midpoint([])

    def test_single_value(self):
        assert trim_and_midpoint([5.0]) == 5.0

    def test_trims_one_third_from_both_ends(self):
        # nv = 6 → discard 2 smallest and 2 largest.
        values = [0, 0, 10, 20, 100, 100]
        assert trim_and_midpoint(values) == 15.0

    def test_outliers_are_removed(self):
        values = [50, 51, 52, -1e9, 1e9, 49]
        assert 49 <= trim_and_midpoint(values) <= 52

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=60))
    def test_property_output_within_min_max(self, values):
        out = trim_and_midpoint(values)
        assert min(values) - 1e-9 <= out <= max(values) + 1e-9

    @given(
        st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=40),
        st.integers(0, 12),
    )
    def test_property_byzantine_values_cannot_escape_correct_range(self, correct, f):
        # With g correct values and at most f ≤ ⌊nv/3⌋-compatible Byzantine
        # values (n > 3f), the output stays within the correct range — this
        # is Lemma 12 as a property test.
        g = len(correct)
        if g + f <= 3 * f:  # enforce n > 3f
            return
        byzantine = [1e12] * ((f + 1) // 2) + [-1e12] * (f // 2)
        out = trim_and_midpoint(list(correct) + byzantine)
        assert min(correct) - 1e-9 <= out <= max(correct) + 1e-9


class TestSingleShotSystem:
    @pytest.mark.parametrize("n", [4, 7, 10, 16])
    @pytest.mark.parametrize("strategy", ["silent", "approx-outlier", "equivocate-value"])
    def test_theorem4_properties(self, n, strategy):
        f = max_faults_tolerated(n)
        spec = approximate_agreement_system(n, f, strategy=strategy, seed=n * 3 + 1)
        spec.network.run(max_rounds=6)
        inputs = spec.params["inputs"]
        outputs = {i: spec.network.process(i).output for i in spec.correct_ids}
        assert approx_outputs_in_range(outputs, inputs)
        assert approx_range_reduced(outputs, inputs)

    def test_output_range_at_most_half_of_input_range(self):
        spec = approximate_agreement_system(13, 4, strategy="approx-outlier", seed=5)
        spec.network.run(max_rounds=6)
        inputs = spec.params["inputs"]
        outputs = [spec.network.process(i).output for i in spec.correct_ids]
        in_range = max(inputs.values()) - min(inputs.values())
        out_range = max(outputs) - min(outputs)
        assert out_range <= in_range / 2 + 1e-9

    def test_identical_inputs_produce_identical_outputs(self):
        spec = approximate_agreement_system(
            7,
            2,
            inputs=None,
            low=42.0,
            high=42.0,
            strategy="approx-outlier",
            seed=6,
        )
        spec.network.run(max_rounds=6)
        outputs = {spec.network.process(i).output for i in spec.correct_ids}
        assert outputs == {42.0}


class TestIteratedConvergence:
    def test_range_halves_every_iteration(self):
        iterations = 5
        spec = approximate_agreement_system(
            10, 3, iterations=iterations, strategy="approx-outlier", seed=8
        )
        spec.network.run(max_rounds=iterations + 3, stop_when=lambda net: False)
        histories = [spec.network.process(i).history for i in spec.correct_ids]
        ranges = [
            max(h[k] for h in histories) - min(h[k] for h in histories)
            for k in range(iterations + 1)
        ]
        for before, after in zip(ranges, ranges[1:]):
            assert after <= before / 2 + 1e-9

    def test_iterated_outputs_stay_in_input_range(self):
        spec = approximate_agreement_system(10, 3, iterations=4, strategy="approx-outlier", seed=9)
        spec.network.run(max_rounds=8, stop_when=lambda net: False)
        inputs = spec.params["inputs"]
        for i in spec.correct_ids:
            proc = spec.network.process(i)
            assert min(inputs.values()) <= proc.output <= max(inputs.values())

    def test_history_records_every_iteration(self):
        spec = approximate_agreement_system(7, 2, iterations=3, strategy="silent", seed=10)
        spec.network.run(max_rounds=7, stop_when=lambda net: False)
        for i in spec.correct_ids:
            history = spec.network.process(i).history
            assert len(history) == 4  # input + 3 iterations
            assert spec.network.process(i).iterations_completed == 3

    def test_iterations_must_be_positive(self):
        from repro.core.approximate_agreement import IteratedApproximateAgreementProcess

        with pytest.raises(ValueError):
            IteratedApproximateAgreementProcess(1, input_value=0.0, iterations=0)
