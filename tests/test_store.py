"""Tests for the persistent run store (:mod:`repro.store`).

Covers the run-key contract (digest stability across processes, code
fingerprinting), serialization round-trips (Hypothesis over random
specs, metrics columns, trace segments), resumable-sweep bit-identity
across three protocols including a churned total-order scenario, lazy
trace queries on persisted segments, corruption handling and the
query/pivot/diff report layer.
"""

from __future__ import annotations

import os
import subprocess
import sys
import textwrap

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.api import ScenarioSpec, SweepRunner, SweepSpec
from repro.api.sweep import run_scenario
from repro.sim.events import EventKind, Trace
from repro.sim.metrics import RunMetrics
from repro.store import (
    ResumableSweep,
    RunStore,
    StoreError,
    code_fingerprint,
    json_normalize,
    record_from_outcome,
    run_key,
    spec_digest,
    sweep_digest,
)

def small_spec(**overrides) -> ScenarioSpec:
    base = dict(protocol="consensus", n=4, f=1, seed=3, max_rounds=30)
    base.update(overrides)
    return ScenarioSpec(**base)


@pytest.fixture
def store(tmp_path):
    with RunStore(tmp_path / "runs.db") as handle:
        yield handle


# ---------------------------------------------------------------------------
# Digests and run keys
# ---------------------------------------------------------------------------


def test_spec_digest_ignores_dict_insertion_order():
    a = ScenarioSpec(
        protocol="consensus", n=4, f=1, seed=3, params={"x": 1, "y": 2}
    )
    b = ScenarioSpec(
        protocol="consensus", n=4, f=1, seed=3, params={"y": 2, "x": 1}
    )
    assert a.digest() == b.digest()
    assert spec_digest(a) == a.digest()


def test_spec_digest_distinguishes_every_field():
    base = small_spec()
    assert base.digest() != small_spec(seed=4).digest()
    assert base.digest() != small_spec(n=5).digest()
    assert base.digest() != small_spec(trace=True).digest()


def test_spec_digest_stable_across_processes():
    spec = small_spec(params={"k_instances": 2}, input_params={"ones_fraction": 0.5})
    script = textwrap.dedent(
        """
        from repro.api import ScenarioSpec
        spec = ScenarioSpec(
            protocol="consensus", n=4, f=1, seed=3, max_rounds=30,
            input_params={"ones_fraction": 0.5}, params={"k_instances": 2},
        )
        print(spec.digest())
        """
    )
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    out = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        check=True,
        env={**os.environ, "PYTHONPATH": src_dir, "PYTHONHASHSEED": "1"},
    )
    assert out.stdout.strip() == spec.digest()


def test_run_key_separates_engine_and_code_version():
    spec = small_spec()
    auto = run_key(spec, code_version="v1")
    assert run_key(spec, engine="fast", code_version="v1") != auto
    assert run_key(spec, code_version="v2") != auto
    assert run_key(spec, code_version="v1") == auto


def test_code_fingerprint_env_override(monkeypatch):
    real = code_fingerprint()
    assert real == code_fingerprint()  # cached, deterministic
    monkeypatch.setenv("REPRO_CODE_VERSION", "pinned")
    assert code_fingerprint() == "pinned"
    monkeypatch.delenv("REPRO_CODE_VERSION")
    assert code_fingerprint() == real


def test_sweep_digest_depends_on_expansion_order():
    sweep = SweepSpec(protocol="consensus", grid={"n": [4, 5]}, max_rounds=20)
    specs = list(sweep.scenarios())
    assert sweep_digest(specs) != sweep_digest(reversed(specs))
    assert sweep_digest(specs) == sweep_digest(iter(specs))


# ---------------------------------------------------------------------------
# Serialization round-trips
# ---------------------------------------------------------------------------

spec_strategy = st.builds(
    lambda n_and_f, seed, protocol, trace: ScenarioSpec(
        protocol=protocol,
        n=n_and_f[0],
        f=n_and_f[1],
        seed=seed,
        max_rounds=12,
        trace=trace,
    ),
    n_and_f=st.integers(min_value=4, max_value=7).flatmap(
        lambda n: st.tuples(
            st.just(n), st.integers(min_value=0, max_value=(n - 1) // 3)
        )
    ),
    seed=st.integers(min_value=0, max_value=2**16),
    protocol=st.sampled_from(
        ["consensus", "reliable-broadcast", "rotor-coordinator"]
    ),
    trace=st.booleans(),
)


@settings(
    max_examples=10,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(spec=spec_strategy)
def test_persisted_run_round_trips(tmp_path_factory, spec):
    """Persist a random run; everything loads back equal to the original."""

    outcome = run_scenario(spec)
    record = record_from_outcome(outcome, code_version="test")
    path = tmp_path_factory.mktemp("store") / "rt.db"
    with RunStore(path) as store:
        store.put_run(record)
        loaded = store.get_run(record.run_key)
        assert loaded is not None
        assert loaded.spec == spec
        assert loaded.spec_digest == spec.digest()
        expected_summary = json_normalize(outcome.result.metrics.summary())
        expected_summary["tally_backend"] = outcome.network.tally_backend()
        assert loaded.summary == expected_summary
        assert loaded.summary["tally_backend"] in ("scalar", "numpy")
        assert loaded.metrics() == outcome.result.metrics
        assert loaded.outputs() == outcome.outputs()
        assert [
            (d.node_id, d.round_index, d.value) for d in loaded.decisions()
        ] == [
            (d.node_id, d.round_index, d.value)
            for d in outcome.result.metrics.decisions
        ]
        if spec.trace:
            stored = loaded.trace()
            assert len(stored) == len(outcome.result.trace)
            assert stored.kind_counts() == outcome.result.trace.kind_counts()


def test_metrics_columns_round_trip():
    outcome = run_scenario(small_spec())
    metrics = outcome.result.metrics
    rebuilt = RunMetrics.from_columns(
        metrics.export_columns(),
        per_node_sent=dict(metrics.per_node_sent),
        per_node_delivered=dict(metrics.per_node_delivered),
        decisions=[
            (d.node_id, d.round_index, d.value) for d in metrics.decisions
        ],
        peak_payload_bytes=metrics.peak_payload_bytes,
    )
    assert rebuilt == metrics
    assert rebuilt.summary() == metrics.summary()
    assert [r.as_dict() for r in rebuilt.rounds] == [
        r.as_dict() for r in metrics.rounds
    ]


def test_trace_segments_round_trip():
    trace = run_scenario(small_spec(trace=True)).result.trace
    segments = trace.export_segments(max_events=32)
    assert sum(f["events"] for f, _ in segments) == len(trace)
    rebuilt = [e for _, blobs in segments for e in Trace.from_segment(blobs)]
    assert rebuilt == trace.events


def test_empty_trace_exports_no_segments():
    assert Trace().export_segments() == []


# ---------------------------------------------------------------------------
# Resumable sweeps: bit-identity across protocols
# ---------------------------------------------------------------------------

RESUME_SWEEPS = [
    SweepSpec(protocol="consensus", grid={"n": [4, 5]}, max_rounds=30),
    SweepSpec(protocol="reliable-broadcast", grid={"n": [4, 7]}, repetitions=2),
    # The E8-style churned total-order scenario: joins/leaves mid-run.
    SweepSpec(
        protocol="total-order",
        n=6,
        f=1,
        adversary="random-noise",
        churn={"join_rate": 0.10, "leave_rate": 0.05, "rounds": 10},
        repetitions=2,
    ),
]


def test_resumable_sweep_bit_identical_across_protocols(store):
    runner = ResumableSweep(store, code_version="test")
    first = runner.run(RESUME_SWEEPS)
    assert (first.ran, first.skipped) == (first.total, 0)
    second = runner.run(RESUME_SWEEPS)
    assert (second.ran, second.skipped) == (0, first.total)
    assert second.rows == first.rows
    assert second.run_keys == first.run_keys
    # A plain (store-less) sweep agrees cell for cell once normalised.
    fresh = SweepRunner().run(RESUME_SWEEPS)
    assert [json_normalize(row) for row in fresh] == first.rows


def test_resumed_outputs_and_metrics_match_fresh_run(store):
    """Stored protocol results equal a fresh run exactly — incl. churn."""

    for sweep in RESUME_SWEEPS:
        for spec in sweep.scenarios():
            outcome = run_scenario(spec)
            key = run_key(spec, code_version="test")
            store.put_run(record_from_outcome(outcome, code_version="test"))
            loaded = store.get_run(key)
            assert loaded.outputs() == outcome.outputs()
            assert loaded.metrics() == outcome.result.metrics


def test_resumable_sweep_partial_resume(store):
    runner = ResumableSweep(store, code_version="test")
    small = SweepSpec(protocol="consensus", grid={"n": [4]}, max_rounds=30)
    both = SweepSpec(protocol="consensus", grid={"n": [4, 5]}, max_rounds=30)
    runner.run(small)
    report = runner.run(both)
    assert (report.ran, report.skipped) == (1, 1)
    assert report.rows == [json_normalize(r) for r in SweepRunner().run(both)]


def test_resumable_sweep_deduplicates_identical_cells(store):
    sweep = SweepSpec(
        protocol="consensus", grid={"n": [4, 4]}, max_rounds=30
    )
    report = ResumableSweep(store, code_version="test").run(sweep)
    # Duplicate grid values expand to identical specs and seeds: the run
    # executes once, both rows are served, and they are identical.
    assert (report.ran, report.total) == (1, 2)
    assert report.rows[0] == report.rows[1]


def test_code_version_change_invalidates_cache(store):
    sweep = SweepSpec(protocol="consensus", grid={"n": [4]}, max_rounds=30)
    assert ResumableSweep(store, code_version="v1").run(sweep).ran == 1
    assert ResumableSweep(store, code_version="v1").run(sweep).ran == 0
    assert ResumableSweep(store, code_version="v2").run(sweep).ran == 1


def test_on_cell_fires_in_expansion_order(store):
    sweep = SweepSpec(protocol="consensus", grid={"n": [4, 5]}, max_rounds=30)
    runner = ResumableSweep(store, code_version="test")
    seen: list[tuple[int, int, bool]] = []
    runner.run(sweep, on_cell=lambda i, spec, row, rec, cached: seen.append((i, spec.n, cached)))
    assert seen == [(0, 4, False), (1, 5, False)]
    seen.clear()
    runner.run(sweep, on_cell=lambda i, spec, row, rec, cached: seen.append((i, spec.n, cached)))
    assert seen == [(0, 4, True), (1, 5, True)]


def test_sweep_runner_on_cell_complete_callback():
    sweep = SweepSpec(protocol="consensus", grid={"n": [4, 5]}, max_rounds=30)
    seen: list[tuple[int, int]] = []
    rows = SweepRunner().run(
        sweep, on_cell_complete=lambda i, spec, row: seen.append((i, spec.n))
    )
    assert seen == [(0, 4), (1, 5)]
    assert rows == SweepRunner().run(sweep)  # default behaviour unchanged


# ---------------------------------------------------------------------------
# Lazy trace queries on persisted segments
# ---------------------------------------------------------------------------


def test_stored_trace_queries_are_lazy(store):
    spec = small_spec(trace=True)
    outcome = run_scenario(spec)
    store.put_run(
        record_from_outcome(outcome, code_version="test", segment_events=64)
    )
    trace = store.get_run(run_key(spec, code_version="test")).trace()
    original = outcome.result.trace
    assert trace.segment_count > 1
    # Counting and sizing are footer-only.
    assert trace.kind_counts() == original.kind_counts()
    assert len(trace) == len(original)
    assert trace.loaded_segment_count == 0
    # Kind queries load only segments whose footer admits the kind.
    decided = trace.of_kind(EventKind.NODE_DECIDED)
    assert decided == original.of_kind(EventKind.NODE_DECIDED)
    assert 0 < trace.loaded_segment_count < trace.segment_count
    assert trace.decisions() == original.decisions()
    assert trace.first(EventKind.ROUND_START) == original.first(
        EventKind.ROUND_START
    )
    # Round queries prune on the footer round range.
    last_round = outcome.result.rounds_executed
    assert trace.in_round(last_round) == original.in_round(last_round)
    # Full scans still agree.
    assert trace.events == original.events
    node = decided[0].node_id
    assert trace.for_node(node) == original.for_node(node)


# ---------------------------------------------------------------------------
# Corruption and validation
# ---------------------------------------------------------------------------


def test_non_database_file_raises_store_error(tmp_path):
    path = tmp_path / "garbage.db"
    path.write_bytes(b"this is not a sqlite database, not even close...")
    with pytest.raises(StoreError):
        RunStore(path)


def test_truncated_database_raises_store_error(tmp_path):
    path = tmp_path / "trunc.db"
    with RunStore(path) as store:
        outcome = run_scenario(small_spec(trace=True))
        store.put_run(record_from_outcome(outcome, code_version="test"))
    data = path.read_bytes()
    path.write_bytes(data[: len(data) // 3])
    with pytest.raises(StoreError):
        RunStore(path)


def test_schema_version_mismatch_raises(tmp_path):
    path = tmp_path / "old.db"
    with RunStore(path) as store:
        store._conn.execute(
            "UPDATE meta SET value = '999' WHERE key = 'schema_version'"
        )
        store._conn.commit()
    with pytest.raises(StoreError, match="schema version"):
        RunStore(path)


# ---------------------------------------------------------------------------
# Query / pivot / diff
# ---------------------------------------------------------------------------


def test_query_filters_and_rows(store):
    runner = ResumableSweep(store, code_version="test")
    runner.run(
        [
            SweepSpec(protocol="consensus", grid={"n": [4, 5]}, max_rounds=30),
            SweepSpec(protocol="reliable-broadcast", grid={"n": [4]}),
        ]
    )
    assert len(store.query()) == 3
    assert len(store.query(protocol="consensus")) == 2
    assert len(store.query(protocol="consensus", n=4)) == 1
    assert store.query(protocol="nope") == []
    assert len(store.query(limit=1)) == 1
    assert store.has_run(store.query()[0].run_key)
    assert not store.has_run("0" * 64)


def test_pivot_feeds_table_renderers(store):
    from repro.analysis.tables import render_table
    from repro.store.resumable import row_fn_name

    runner = ResumableSweep(store, code_version="test")
    runner.run(
        SweepSpec(
            protocol="consensus",
            grid={"n": [4, 5]},
            repetitions=2,
            max_rounds=30,
        )
    )
    table = store.pivot(
        ("n", "f"), ("rounds", "messages"), row_fn=row_fn_name(None)
    )
    assert [row["n"] for row in table] == [4, 5]
    assert all(row["samples"] == 2 for row in table)
    assert "rounds" in render_table(table)  # renders without error


def test_diff_reports_spec_summary_and_divergence(store):
    spec_a, spec_b = small_spec(seed=1), small_spec(seed=2)
    key_a, key_b = (
        run_key(s, code_version="test") for s in (spec_a, spec_b)
    )
    for spec in (spec_a, spec_b):
        store.put_run(
            record_from_outcome(run_scenario(spec), code_version="test")
        )
    assert store.diff(key_a, key_a) == {
        "spec": {},
        "summary": {},
        "per_round": {},
        "trace": {},
    }
    diff = store.diff(key_a, key_b)
    assert diff["spec"] == {"seed": [1, 2]}
    with pytest.raises(StoreError, match="not in the store"):
        store.diff(key_a, "0" * 64)


def test_diff_marks_missing_round_columns(store):
    spec_a, spec_b = small_spec(seed=1), small_spec(seed=2)
    record_a = record_from_outcome(run_scenario(spec_a), code_version="test")
    record_b = record_from_outcome(run_scenario(spec_b), code_version="test")
    # A lightweight record (e.g. a bench cell) stores no per-round columns.
    record_b.round_columns = {}
    store.put_run(record_a)
    store.put_run(record_b)
    diff = store.diff(record_a.run_key, record_b.run_key)
    assert diff["per_round"]
    assert set(diff["per_round"].values()) == {"missing"}
    # Differing column *sets* mark only the asymmetric columns.
    record_c = record_from_outcome(run_scenario(spec_b), code_version="other")
    dropped = sorted(record_c.round_columns)[0]
    del record_c.round_columns[dropped]
    store.put_run(record_c)
    diff = store.diff(record_a.run_key, record_c.run_key)
    assert diff["per_round"][dropped] == "missing"


def test_diff_trace_section_reports_divergence(store):
    spec_a, spec_b = (
        small_spec(seed=1, trace=True),
        small_spec(seed=2, trace=True),
    )
    record_a = record_from_outcome(run_scenario(spec_a), code_version="test")
    record_b = record_from_outcome(run_scenario(spec_b), code_version="test")
    store.put_run(record_a)
    store.put_run(record_b)
    # Identical traces: empty section (and no segment decoded to prove it).
    assert store.diff(record_a.run_key, record_a.run_key)["trace"] == {}
    section = store.diff(record_a.run_key, record_b.run_key)["trace"]
    assert section["events"] == [
        sum(f["events"] for f, _ in record_a.trace_segments),
        sum(f["events"] for f, _ in record_b.trace_segments),
    ]
    divergence = section["first_divergence"]
    assert divergence is not None
    assert set(divergence) == {"segment", "index", "kind", "round"}
    assert divergence["segment"] == 0
    # The divergent event is a real position in both traces: re-query it.
    trace_a = store.get_trace(record_a.run_key)
    event = list(trace_a)[divergence["index"]]
    assert event.kind.value == divergence["kind"][0]
    assert event.round_index == divergence["round"][0]


def test_diff_trace_section_one_sided_trace(store):
    traced = record_from_outcome(
        run_scenario(small_spec(seed=1, trace=True)), code_version="test"
    )
    untraced = record_from_outcome(
        run_scenario(small_spec(seed=1)), code_version="other"
    )
    store.put_run(traced)
    store.put_run(untraced)
    section = store.diff(traced.run_key, untraced.run_key)["trace"]
    assert section["events"][1] == 0 and section["events"][0] > 0
    assert section["first_divergence"] == {
        "segment": 0,
        "index": 0,
        "kind": [EventKind.ROUND_START.value, None],
        "round": [1, None],
    }
    # And the mirrored direction:
    flipped = store.diff(untraced.run_key, traced.run_key)["trace"]
    assert flipped["events"] == section["events"][::-1]
    assert flipped["first_divergence"]["kind"] == [
        None,
        EventKind.ROUND_START.value,
    ]


def test_experiment_report_carries_schema_and_sweep_digest(store, tmp_path):
    import json

    from repro.harness.experiments import run_experiment
    from repro.harness.runner import write_json_report
    from repro.store import SCHEMA_VERSION

    fresh = run_experiment("E6", scale=1)
    resumed = run_experiment("E6", scale=1, store=store)
    assert fresh.to_json() == resumed.to_json()
    payload = fresh.as_dict()
    assert payload["schema_version"] == SCHEMA_VERSION
    assert payload["sweep_digest"] == resumed.sweep_digest != ""
    out = tmp_path / "report.json"
    write_json_report([fresh], str(out))
    assert json.loads(out.read_text())[0] == payload
