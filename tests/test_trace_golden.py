"""Trace-golden differential suite for the columnar trace backend.

``tests/fixtures/trace_golden.json`` pins the full event stream of traced
runs — kind, round index, node id, peer id, payload and detail, in
recording order — as recorded from the object-per-event ``Trace`` backend
that predates the columnar rewrite.  Any change to the trace store or the
kernels' recording paths must reproduce these fixtures event-for-event.

Regenerate (only when the *intended* observable event stream changes)::

    PYTHONPATH=src python tests/make_trace_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import ScenarioSpec
from repro.api.sweep import run_scenario
from repro.sim.events import EventKind

from make_trace_golden import KIND_VALUES, serialize_trace

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "trace_golden.json"

with FIXTURE_PATH.open() as handle:
    FIXTURES = json.load(handle)

SCENARIOS = {scenario["key"]: scenario for scenario in FIXTURES["scenarios"]}

COLUMNS = ("kind", "round", "node", "peer", "payload", "detail")


def test_kind_code_table_is_stable():
    """The fixture's kind codes must match the enum member order."""

    assert tuple(FIXTURES["kinds"]) == KIND_VALUES
    assert KIND_VALUES == tuple(kind.value for kind in EventKind)


@pytest.mark.parametrize("key", sorted(SCENARIOS))
def test_columnar_backend_reproduces_golden_traces(key):
    scenario = SCENARIOS[key]
    outcome = run_scenario(ScenarioSpec.from_dict(scenario["spec"]))
    assert outcome.result.rounds_executed == scenario["rounds_executed"]
    assert outcome.result.stop_reason == scenario["stop_reason"]
    # The serialisation projection is shared with the fixture generator so
    # both sides always compare the same fields under the same encoding.
    got = serialize_trace(outcome.result.trace)
    assert got["payload_table"] == scenario["payload_table"], (
        f"{key}: payload intern table diverged"
    )
    assert got["detail_table"] == scenario["detail_table"], (
        f"{key}: detail table diverged"
    )
    want_events = scenario["events"]
    for column in COLUMNS:
        if got["events"][column] != want_events[column]:
            first = next(
                i
                for i, (g, w) in enumerate(
                    zip(got["events"][column], want_events[column])
                )
                if g != w
            )
            raise AssertionError(
                f"{key}: column {column!r} diverged at event {first}: "
                f"got {got['events'][column][first]!r}, "
                f"want {want_events[column][first]!r}"
            )
        assert len(got["events"][column]) == len(want_events[column]), (
            f"{key}: column {column!r} length diverged"
        )


@pytest.mark.parametrize(
    "engine,key",
    [
        ("queue", "consensus-n6-f1-consensus-split-vote-static-s0"),
        ("legacy", "consensus-n6-f1-consensus-split-vote-static-s0"),
        ("queue", "total-order-n5-f1-equivocate-value-churn-s0"),
        ("legacy", "total-order-n5-f1-equivocate-value-churn-s0"),
    ],
)
def test_reference_kernels_reproduce_golden_traces(engine, key):
    """The scalar recording paths of the reference kernels are pinned too.

    The fixtures were recorded on the (auto-resolved) fast kernel, and the
    kernels are bit-identical, so the queue/legacy event streams must match
    the same golden columns.
    """

    scenario = SCENARIOS[key]
    outcome = run_scenario(ScenarioSpec.from_dict(scenario["spec"]), engine=engine)
    got = serialize_trace(outcome.result.trace)
    assert got["payload_table"] == scenario["payload_table"]
    assert got["events"] == scenario["events"]


def test_fixture_grid_is_nontrivial():
    """Guard the guard: the grid must exercise every recorded event kind."""

    seen_kinds: set[str] = set()
    seen_protocols: set[str] = set()
    churn_scenarios = 0
    byzantine_scenarios = 0
    total_events = 0
    for scenario in SCENARIOS.values():
        kinds = scenario["events"]["kind"]
        total_events += len(kinds)
        seen_kinds.update(FIXTURES["kinds"][code] for code in set(kinds))
        seen_protocols.add(scenario["spec"]["protocol"])
        if scenario["spec"]["churn"]:
            churn_scenarios += 1
        if scenario["spec"]["f"] > 0 and scenario["spec"]["adversary"] != "silent":
            byzantine_scenarios += 1
    assert seen_kinds == {kind.value for kind in EventKind}
    assert len(seen_protocols) >= 10
    assert churn_scenarios >= 2
    assert byzantine_scenarios >= 5
    assert total_events > 5000
