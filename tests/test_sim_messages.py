"""Unit tests for the message model (Inbox, Envelope, wire format)."""

from __future__ import annotations

import pickle
from dataclasses import dataclass

import pytest
from hypothesis import given, strategies as st

from repro.sim import Broadcast, Envelope, Inbox, Unicast
from repro.sim.messages import (
    cached_payload_hash,
    clear_intern_table,
    intern_payload,
    intern_table_size,
    payload_nbytes,
)


class TestInbox:
    def test_empty_inbox(self):
        inbox = Inbox.empty()
        assert len(inbox) == 0
        assert not inbox
        assert inbox.senders == frozenset()
        assert inbox.payloads_from(1) == ()

    def test_groups_by_sender(self):
        inbox = Inbox.from_pairs([(1, "a"), (2, "b"), (1, "c")])
        assert inbox.senders == {1, 2}
        assert set(inbox.payloads_from(1)) == {"a", "c"}
        assert inbox.payloads_from(2) == ("b",)

    def test_duplicates_from_same_sender_in_a_round_are_discarded(self):
        # Section IV: "duplicate messages from the same node in a round are
        # simply discarded".
        inbox = Inbox.from_pairs([(1, "x"), (1, "x"), (1, "x")])
        assert len(inbox) == 1
        assert inbox.payloads_from(1) == ("x",)

    def test_distinct_payloads_from_same_sender_are_kept(self):
        inbox = Inbox.from_pairs([(1, "x"), (1, "y")])
        assert len(inbox) == 2

    def test_unhashable_payloads_fall_back_without_losing_messages(self):
        # unhashable payloads break the model's contract but must degrade to
        # the ordered dedup scan, even when handed a one-shot iterator
        inbox = Inbox({1: iter([[9], "a", [9]])})
        assert inbox.payloads_from(1) == ([9], "a")
        assert len(inbox) == 2

    def test_unhashable_fallback_preserves_first_occurrence_order(self):
        # The TypeError fallback must behave exactly like the hash-based
        # dedup: first occurrence wins, later duplicates are discarded.
        inbox = Inbox({1: [[2], [1], [2], [3], [1]]})
        assert inbox.payloads_from(1) == ([2], [1], [3])
        assert len(inbox) == 3

    def test_unhashable_fallback_is_per_sender(self):
        # One sender with unhashable payloads must not disturb hash-based
        # dedup for other senders in the same inbox.
        inbox = Inbox({1: [[9], [9]], 2: ["x", "x", "y"]})
        assert inbox.payloads_from(1) == ([9],)
        assert inbox.payloads_from(2) == ("x", "y")
        assert inbox.senders == {1, 2}

    def test_single_unhashable_payload_takes_the_single_payload_fast_path(self):
        # A single payload cannot be a duplicate, so it must never be hashed
        # at all — this is the path batched wrappers rely on.
        inbox = Inbox({1: [[7]]})
        assert inbox.payloads_from(1) == ([7],)
        assert len(inbox) == 1
        assert inbox.received_from(1, [7])

    def test_count_counts_distinct_senders_not_messages(self):
        inbox = Inbox.from_pairs([(1, "x"), (2, "x"), (2, "x"), (3, "y")])
        assert inbox.count("x") == 2
        assert inbox.count("y") == 1
        assert inbox.count("z") == 0

    def test_senders_of_and_received_from(self):
        inbox = Inbox.from_pairs([(1, "x"), (2, "y")])
        assert inbox.senders_of("x") == {1}
        assert inbox.received_from(1, "x")
        assert not inbox.received_from(1, "y")

    def test_senders_matching_predicate(self):
        inbox = Inbox.from_pairs([(1, ("echo", 5)), (2, ("vote", 5)), (3, ("echo", 6))])
        echoers = inbox.senders_matching(lambda p: p[0] == "echo")
        assert echoers == {1, 3}

    def test_items_iteration_and_contains(self):
        inbox = Inbox.from_pairs([(1, "x"), (2, "y")])
        assert sorted(inbox.items()) == [(1, "x"), (2, "y")]
        assert 1 in inbox and 3 not in inbox

    def test_group_by_type(self):
        inbox = Inbox.from_pairs([(1, "x"), (2, 42)])
        grouped = inbox.group_by_type()
        assert grouped[str] == [(1, "x")]
        assert grouped[int] == [(2, 42)]

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 3)), min_size=0, max_size=40
        )
    )
    def test_property_counts_never_exceed_sender_count(self, pairs):
        inbox = Inbox.from_pairs(pairs)
        for _, payload in pairs:
            assert inbox.count(payload) <= len(inbox.senders)

    @given(
        st.lists(
            st.tuples(st.integers(0, 5), st.integers(0, 3)), min_size=1, max_size=40
        )
    )
    def test_property_every_pair_is_retrievable(self, pairs):
        inbox = Inbox.from_pairs(pairs)
        for sender, payload in pairs:
            assert inbox.received_from(sender, payload)


@cached_payload_hash
@dataclass(frozen=True)
class _WirePayload:
    values: tuple[int, ...]


class TestWireFormat:
    def test_cached_hash_matches_structural_hash_and_is_cached(self):
        payload = _WirePayload((1, 2, 3))
        first = hash(payload)
        assert first == hash(_WirePayload((1, 2, 3)))
        assert payload.__dict__["_wire_hash"] == first
        assert hash(payload) == first

    def test_cached_hash_is_stripped_on_pickling(self):
        # String hashing is salted per process, so a cached hash must never
        # travel to the sweep workers inside a pickle.
        payload = _WirePayload((1, 2))
        hash(payload)
        payload_nbytes(payload)
        clone = pickle.loads(pickle.dumps(payload))
        assert "_wire_hash" not in clone.__dict__
        assert "_wire_nbytes" not in clone.__dict__
        assert clone == payload

    def test_interning_returns_one_canonical_instance(self):
        clear_intern_table()
        first = intern_payload(_WirePayload((5, 6)))
        second = intern_payload(_WirePayload((5, 6)))
        other = intern_payload(_WirePayload((5, 7)))
        assert first is second
        assert other is not first
        assert intern_table_size() == 2

    def test_interning_passes_unhashable_values_through(self):
        unhashable = [1, 2]
        assert intern_payload(unhashable) is unhashable

    def test_payload_nbytes_is_positive_and_cached(self):
        payload = _WirePayload(tuple(range(100)))
        small = _WirePayload((1,))
        assert payload_nbytes(payload) > payload_nbytes(small) > 0
        assert payload.__dict__["_wire_nbytes"] == payload_nbytes(payload)
        # builtins without a __dict__ are measured but not cached
        assert payload_nbytes("hello") > 0

    def test_restricted_reuses_inbox_when_nothing_to_strip(self):
        inbox = Inbox.from_pairs([(1, "a"), (2, "b")])
        assert inbox.restricted(frozenset({1, 2, 3})) is inbox

    def test_restricted_is_memoized_per_allowed_set(self):
        inbox = Inbox.from_pairs([(1, "a"), (2, "b"), (3, "c")])
        allowed = frozenset({1, 2})
        first = inbox.restricted(allowed)
        second = inbox.restricted(frozenset({1, 2}))
        assert first is second  # equal keys share one restriction
        assert first.senders == {1, 2}
        assert first.payloads_from(3) == ()
        other = inbox.restricted(frozenset({3}))
        assert other.senders == {3}
        assert other is not first


class TestEnvelope:
    def test_delivery_must_be_after_send(self):
        with pytest.raises(ValueError):
            Envelope(sender=1, dest=2, payload="x", sent_round=3, deliver_round=3)

    def test_valid_envelope(self):
        env = Envelope(sender=1, dest=2, payload="x", sent_round=3, deliver_round=4)
        assert env.deliver_round == 4


class TestOutgoing:
    def test_broadcast_and_unicast_are_value_types(self):
        assert Broadcast("m") == Broadcast("m")
        assert Unicast(2, "m") == Unicast(2, "m")
        assert Broadcast("m") != Unicast(2, "m")
