"""Churn-schedule generators: membership replay, id minting, flash crowds."""

from __future__ import annotations

import pytest

from repro.api import ScenarioSpec
from repro.api.sweep import run_scenario
from repro.dynamic.churn import (
    ChurnEvent,
    ChurnSchedule,
    generate_churn_schedule,
    generate_flash_crowd_schedule,
)


class TestMembershipAt:
    def test_exact_event_round_is_included(self):
        schedule = ChurnSchedule(
            initial_correct=(1, 2, 3),
            initial_byzantine=(),
            events=(
                ChurnEvent(5, 9, "join"),
                ChurnEvent(7, 1, "leave"),
            ),
        )
        # A join at round r is visible from the start of round r onward.
        assert 9 not in schedule.membership_at(4)[0]
        assert 9 in schedule.membership_at(5)[0]
        # A leave at round r removes the node from round r onward.
        assert 1 in schedule.membership_at(6)[0]
        assert 1 not in schedule.membership_at(7)[0]

    def test_byzantine_joiner_lands_in_byzantine_set(self):
        schedule = ChurnSchedule(
            initial_correct=(1, 2, 3),
            initial_byzantine=(4,),
            events=(ChurnEvent(3, 9, "join"),),
            byzantine_joiners=frozenset({9}),
        )
        correct, byzantine = schedule.membership_at(3)
        assert 9 in byzantine and 9 not in correct


class TestGenerateChurnSchedule:
    def test_default_behaviour_unchanged_for_existing_seeds(self):
        # leave_candidates="live" must be the bit-identical historic
        # default — golden fixtures and stored runs depend on it.
        a = generate_churn_schedule(
            initial_correct=6, initial_byzantine=1, rounds=25,
            join_rate=0.4, leave_rate=0.4, seed=11,
        )
        b = generate_churn_schedule(
            initial_correct=6, initial_byzantine=1, rounds=25,
            join_rate=0.4, leave_rate=0.4, seed=11, leave_candidates="live",
        )
        assert a == b

    def test_live_leaves_may_include_joiners(self):
        # The docstring used to promise genesis-only departures while the
        # code drew from all live correct nodes; behaviour (and now doc)
        # is "live".  With aggressive join/leave rates some joiner leaves.
        for seed in range(30):
            schedule = generate_churn_schedule(
                initial_correct=8, initial_byzantine=0, rounds=40,
                join_rate=0.9, leave_rate=0.9, seed=seed,
            )
            genesis = set(schedule.initial_correct)
            joiner_left = any(
                e.kind == "leave" and e.node_id not in genesis
                for e in schedule.events
            )
            if joiner_left:
                return
        pytest.fail("no joiner ever left under leave_candidates='live'")

    def test_genesis_leave_candidates_keep_joiners_alive(self):
        for seed in range(10):
            schedule = generate_churn_schedule(
                initial_correct=8, initial_byzantine=0, rounds=40,
                join_rate=0.9, leave_rate=0.9, seed=seed,
                leave_candidates="genesis",
            )
            genesis = set(schedule.initial_correct)
            assert all(
                e.node_id in genesis
                for e in schedule.events
                if e.kind == "leave"
            )

    def test_unknown_leave_candidates_rejected(self):
        with pytest.raises(ValueError, match="leave_candidates"):
            generate_churn_schedule(
                initial_correct=4, initial_byzantine=0, rounds=10,
                leave_candidates="everyone",
            )

    def test_resiliency_always_preserved(self):
        for seed in range(5):
            schedule = generate_churn_schedule(
                initial_correct=7, initial_byzantine=2, rounds=30,
                join_rate=0.5, leave_rate=0.5,
                byzantine_join_fraction=0.5, seed=seed,
            )
            assert schedule.satisfies_resiliency(30)

    def test_id_pool_collision_with_genesis_id_raises(self):
        # 1_000_000 is the first genesis correct id.
        with pytest.raises(ValueError, match="collides"):
            generate_churn_schedule(
                initial_correct=3, initial_byzantine=0, rounds=60,
                join_rate=1.0, id_pool=iter([1_000_000]), seed=0,
            )

    def test_id_pool_collision_with_issued_id_raises(self):
        with pytest.raises(ValueError, match="collides"):
            generate_churn_schedule(
                initial_correct=3, initial_byzantine=0, rounds=60,
                join_rate=1.0, id_pool=iter([42, 42]), seed=0,
            )

    def test_id_pool_fresh_ids_accepted(self):
        schedule = generate_churn_schedule(
            initial_correct=3, initial_byzantine=0, rounds=20,
            join_rate=1.0, id_pool=iter(range(100, 200)), seed=0,
        )
        joined = {e.node_id for e in schedule.events if e.kind == "join"}
        assert joined and joined <= set(range(100, 200))


class TestFlashCrowd:
    def test_burst_joins_land_on_one_round(self):
        schedule = generate_flash_crowd_schedule(
            initial_correct=6, initial_byzantine=1, rounds=20,
            burst_round=5, burst_size=4, seed=0,
        )
        joins = schedule.joins()
        assert set(joins) == {5} and len(joins[5]) == 4
        assert schedule.satisfies_resiliency(20)

    def test_exodus_prefers_burst_joiners(self):
        schedule = generate_flash_crowd_schedule(
            initial_correct=6, initial_byzantine=0, rounds=20,
            burst_round=4, burst_size=3, exodus_round=10,
            exodus_fraction=0.3, seed=1,
        )
        leaves = schedule.leaves()
        assert set(leaves) == {10}
        burst = {e.node_id for e in schedule.events if e.kind == "join"}
        assert set(leaves[10]) <= burst

    def test_byzantine_burst_respects_resiliency(self):
        schedule = generate_flash_crowd_schedule(
            initial_correct=4, initial_byzantine=1, rounds=20,
            burst_round=5, burst_size=10, burst_byzantine_fraction=1.0,
            seed=2,
        )
        assert schedule.satisfies_resiliency(20)

    def test_parameter_validation(self):
        common = dict(initial_correct=4, initial_byzantine=0, rounds=10)
        with pytest.raises(ValueError, match="burst_round"):
            generate_flash_crowd_schedule(burst_round=11, **common)
        with pytest.raises(ValueError, match="exodus_round"):
            generate_flash_crowd_schedule(burst_round=5, exodus_round=4, **common)
        with pytest.raises(ValueError, match="exodus_fraction"):
            generate_flash_crowd_schedule(exodus_fraction=1.5, **common)
        with pytest.raises(ValueError, match="burst_size"):
            generate_flash_crowd_schedule(burst_size=-1, **common)

    def test_id_pool_guarded_like_random_generator(self):
        with pytest.raises(ValueError, match="collides"):
            generate_flash_crowd_schedule(
                initial_correct=3, initial_byzantine=1, rounds=10,
                burst_round=5, burst_size=2,
                id_pool=iter([2_000_000, 300]), seed=0,
            )


class TestSpecRouting:
    def test_flash_crowd_pattern_via_total_order_spec(self):
        spec = ScenarioSpec(
            protocol="total-order",
            n=7,
            f=1,
            adversary="silent",
            seed=4,
            churn={
                "pattern": "flash-crowd",
                "rounds": 18,
                "burst_round": 5,
                "burst_size": 3,
                "exodus_round": 12,
                "exodus_fraction": 0.4,
            },
        )
        outcome = run_scenario(spec)
        schedule = outcome.system.params["schedule"]
        assert set(schedule.joins()) == {5}
        assert set(schedule.leaves()) == {12}
        assert ScenarioSpec.from_dict(spec.to_dict()) == spec

    def test_random_pattern_is_the_default_and_unchanged(self):
        base = dict(
            protocol="total-order", n=7, f=1, seed=4,
            churn={"rounds": 15, "join_rate": 0.3, "leave_rate": 0.2},
        )
        explicit = dict(base)
        explicit["churn"] = dict(base["churn"], pattern="random")
        a = run_scenario(ScenarioSpec(**base)).system.params["schedule"]
        b = run_scenario(ScenarioSpec(**explicit)).system.params["schedule"]
        assert a == b

    def test_unknown_pattern_rejected(self):
        spec = ScenarioSpec(
            protocol="total-order", n=7, f=1, seed=4,
            churn={"pattern": "tsunami", "rounds": 10},
        )
        with pytest.raises(ValueError, match="unknown churn pattern"):
            run_scenario(spec)

    @pytest.mark.parametrize("engine", ("fast", "queue", "legacy"))
    def test_flash_crowd_runs_on_every_engine(self, engine):
        spec = ScenarioSpec(
            protocol="total-order", n=6, f=1, seed=2,
            churn={
                "pattern": "flash-crowd", "rounds": 15,
                "burst_round": 4, "burst_size": 2,
            },
        )
        outcome = run_scenario(spec, engine=engine)
        assert outcome.rounds == 15

    def test_flash_crowd_engines_bit_identical(self):
        spec = ScenarioSpec(
            protocol="total-order", n=6, f=1, seed=2,
            adversary="coordinated-equivocation",
            churn={
                "pattern": "flash-crowd", "rounds": 15,
                "burst_round": 4, "burst_size": 2,
                "exodus_round": 9, "exodus_fraction": 0.5,
            },
            trace=True,
        )
        prints = {}
        for engine in ("fast", "queue", "legacy"):
            outcome = run_scenario(spec, engine=engine)
            events = tuple(
                (e.kind, e.round_index, e.node_id, e.peer_id, e.payload, e.detail)
                for e in outcome.result.trace
            )
            prints[engine] = (events, outcome.outputs(), outcome.rounds)
        assert prints["fast"] == prints["queue"] == prints["legacy"]
