"""Tests for Algorithm 1 — reliable broadcast in the id-only model."""

from __future__ import annotations

import pytest

from repro.analysis import reliable_broadcast_correctness, reliable_broadcast_relay
from repro.core.quorums import max_faults_tolerated
from repro.core.reliable_broadcast import Echo, Initial, Present, ReliableBroadcastProcess
from repro.sim import Broadcast
from repro.workloads import reliable_broadcast_system


def run_system(spec, max_rounds=12):
    return spec.network.run(
        max_rounds=max_rounds,
        stop_when=lambda net: all(p.decided for p in net.correct_processes()),
    )


class TestUnitBehaviour:
    def test_sender_broadcasts_initial_in_round_one(self, make_view):
        proc = ReliableBroadcastProcess(5, source=5, message="m")
        out = proc.step(make_view(1))
        assert out == [Broadcast(Initial("m", 5))]

    def test_non_sender_broadcasts_present_in_round_one(self, make_view):
        proc = ReliableBroadcastProcess(7, source=5)
        out = proc.step(make_view(1))
        assert out == [Broadcast(Present())]

    def test_round_two_echoes_only_the_designated_sender(self, make_view):
        proc = ReliableBroadcastProcess(7, source=5)
        proc.step(make_view(1))
        view = make_view(2, [(5, Initial("m", 5)), (9, Initial("fake", 5))])
        out = proc.step(view)
        assert out == [Broadcast(Echo("m", 5))]

    def test_acceptance_requires_two_thirds_of_nv(self, make_view):
        proc = ReliableBroadcastProcess(1, source=5)
        proc.step(make_view(1))
        proc.step(make_view(2, [(i, Present()) for i in range(10, 19)]))  # nv = 9
        # 5 echoes from distinct nodes: 5 < 6 = 2*9/3 → no acceptance yet,
        # but ≥ 3 = 9/3 → relay.
        out = proc.step(make_view(3, [(i, Echo("m", 5)) for i in range(10, 15)]))
        assert Broadcast(Echo("m", 5)) in out
        assert not proc.has_accepted("m", 5)
        # 6 echoes meet the two-thirds quorum (nv is still 9).
        proc.step(make_view(4, [(i, Echo("m", 5)) for i in range(10, 16)]))
        assert proc.has_accepted("m", 5)

    def test_no_double_acceptance_record(self, make_view):
        proc = ReliableBroadcastProcess(1, source=5)
        proc.step(make_view(1))
        proc.step(make_view(2, [(i, Present()) for i in range(10, 13)]))
        echoes = [(i, Echo("m", 5)) for i in range(10, 13)]
        proc.step(make_view(3, echoes))
        proc.step(make_view(4, echoes))
        assert len(proc.accepted) == 1

    def test_never_halts_on_its_own(self, make_view):
        proc = ReliableBroadcastProcess(1, source=1, message="m")
        for r in range(1, 8):
            proc.step(make_view(r))
        assert not proc.halted


class TestCorrectSender:
    @pytest.mark.parametrize("n", [4, 7, 10, 13])
    @pytest.mark.parametrize("strategy", ["silent", "rb-false-echo", "replay"])
    def test_correctness_property(self, n, strategy):
        f = max_faults_tolerated(n)
        spec = reliable_broadcast_system(n, f, strategy=strategy, seed=n * 13 + 1)
        run_system(spec)
        procs = [spec.network.process(i) for i in spec.correct_ids]
        assert reliable_broadcast_correctness(
            procs, spec.params["message"], spec.params["source"]
        )

    def test_acceptance_happens_by_round_three_when_sender_correct(self):
        spec = reliable_broadcast_system(10, 3, strategy="silent", seed=2)
        run_system(spec)
        for i in spec.correct_ids:
            records = spec.network.process(i).accepted
            assert records and records[0].round_index == 3

    def test_relay_property(self):
        spec = reliable_broadcast_system(13, 4, strategy="rb-false-echo", seed=3)
        run_system(spec)
        procs = [spec.network.process(i) for i in spec.correct_ids]
        assert reliable_broadcast_relay(procs)


class TestUnforgeability:
    @pytest.mark.parametrize("strategy", ["rb-false-echo", "rb-forged-source"])
    def test_fabricated_messages_are_never_accepted(self, strategy):
        spec = reliable_broadcast_system(10, 3, strategy=strategy, seed=5)
        spec.network.run(max_rounds=10, stop_when=lambda net: False)
        for i in spec.correct_ids:
            for record in spec.network.process(i).accepted:
                assert record.message not in ("forged", "phantom")

    def test_no_acceptance_without_any_broadcast(self):
        # The designated sender is correct but broadcasts nothing because it
        # has message None?  Use a system where the source never speaks: all
        # correct nodes only ever see false echoes from the adversary.
        spec = reliable_broadcast_system(
            10, 3, strategy="rb-false-echo", byzantine_sender=True, seed=6
        )
        # The Byzantine "sender" runs the false-echo strategy, so no Initial
        # for a correct source exists; correct nodes must not accept the
        # forged message for a correct victim.
        spec.network.run(max_rounds=10, stop_when=lambda net: False)
        for i in spec.correct_ids:
            proc = spec.network.process(i)
            assert all(rec.message != "forged" for rec in proc.accepted)


class TestByzantineSender:
    def test_equivocating_sender_consistency(self):
        # A Byzantine designated sender may get one (or both, or neither) of
        # its conflicting messages accepted, but acceptance must be
        # consistent across correct nodes (relay property).
        spec = reliable_broadcast_system(
            13, 4, strategy="rb-equivocating-sender", byzantine_sender=True, seed=7
        )
        spec.network.run(max_rounds=12, stop_when=lambda net: False)
        procs = [spec.network.process(i) for i in spec.correct_ids]
        assert reliable_broadcast_relay(procs)

    def test_silent_byzantine_sender_never_delivers(self):
        spec = reliable_broadcast_system(
            10, 3, strategy="silent", byzantine_sender=True, seed=8
        )
        spec.network.run(max_rounds=10, stop_when=lambda net: False)
        for i in spec.correct_ids:
            assert spec.network.process(i).accepted == ()
