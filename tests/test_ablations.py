"""Tests for the ablation studies (DESIGN.md §4) and their regression guards."""

from __future__ import annotations

import pytest

from repro.analysis import consensus_agreement
from repro.harness import ABLATIONS
from repro.harness.ablations import a2_misconfigured_fault_bound
from repro.workloads import consensus_system


class TestSubstitutionRuleRegression:
    """The guard referenced from ``repro/core/consensus.py``: the narrow
    substitution rule must keep agreement in the exact configuration where
    the broad rule demonstrably loses it."""

    # Seed 0 at n = 13 is a configuration where the split-vote adversary's
    # per-destination halves line up with the correct nodes' input split.
    FAILING_CONFIG = dict(n=13, f=4, ones_fraction=0.5, seed=0)

    def _run(self, substitution):
        spec = consensus_system(
            self.FAILING_CONFIG["n"],
            self.FAILING_CONFIG["f"],
            ones_fraction=self.FAILING_CONFIG["ones_fraction"],
            strategy="consensus-split-vote",
            seed=self.FAILING_CONFIG["seed"],
            substitution=substitution,
        )
        spec.network.run(max_rounds=80)
        return {i: spec.network.process(i).output for i in spec.correct_ids}

    def test_consensus_split_vote_agreement(self):
        outputs = self._run("narrow")
        assert consensus_agreement(outputs)

    def test_broad_substitution_is_demonstrably_unsound(self):
        outputs = self._run("broad")
        assert not consensus_agreement(outputs)

    def test_invalid_substitution_mode_rejected(self):
        from repro.core.consensus import ConsensusProcess

        with pytest.raises(ValueError):
            ConsensusProcess(1, input_value=0, substitution="everything")


class TestMisconfiguredFaultBoundAblation:
    def test_a2_shape(self):
        result = a2_misconfigured_fault_bound(scale=1)
        by_f = {row["assumed_f"]: row for row in result.rows}
        # With the true bound configured the classic algorithm is safe…
        assert by_f[3]["classic_accepts_forgery"] == 0.0
        # …underestimating it is fatal…
        assert by_f[0]["classic_accepts_forgery"] == 1.0
        # …and the id-only algorithm never accepts a forgery on any of the
        # identical workloads because it has no bound to misconfigure.
        assert all(row["id_only_accepts_forgery"] == 0.0 for row in result.rows)


class TestRegistry:
    def test_ablation_registry(self):
        assert set(ABLATIONS) == {"A1", "A2"}
        for fn in ABLATIONS.values():
            assert callable(fn)
