"""Regenerate the trace-golden differential fixtures.

The fixtures pin the *full event stream* a traced run produces — kind,
round index, node id, peer id, payload and detail, in recording order —
over a small per-protocol scenario grid (including churn and Byzantine
cases), as recorded from the object-per-event ``Trace`` backend that
predates the columnar rewrite.  ``tests/test_trace_golden.py`` asserts
that the columnar backend reproduces every fixture event-for-event, which
is what makes the store behaviourally invisible to callers.

Usage::

    PYTHONPATH=src python tests/make_trace_golden.py

Payloads and details are serialised with ``repr`` (frozen dataclasses and
scalars, so the encoding is deterministic across processes) and interned
into per-scenario tables; the event stream itself is stored as parallel
columns, mirroring the columnar backend's own layout.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import ScenarioSpec  # noqa: E402
from repro.api.sweep import run_scenario  # noqa: E402
from repro.sim.events import EventKind  # noqa: E402

FIXTURE_PATH = Path(__file__).resolve().parent / "fixtures" / "trace_golden.json"

#: ``EventKind`` member values in enum order; the fixture stores kind codes
#: as indexes into this list so it stays readable without being bulky.
KIND_VALUES = tuple(kind.value for kind in EventKind)

#: One scenario per registered protocol plus dedicated churn and Byzantine
#: variants.  Small n and tight round caps keep the fixture compact while
#: still exercising every event kind the simulator records (round starts,
#: sends, deliveries, decisions, halts, joins and leaves).
GRID: tuple[dict, ...] = (
    dict(protocol="reliable-broadcast", n=6, f=1, seed=0,
         adversary="rb-equivocating-sender", params={"byzantine_sender": True}),
    dict(protocol="reliable-broadcast", n=5, f=1, seed=3, adversary="rb-false-echo"),
    dict(protocol="rotor-coordinator", n=5, f=1, seed=0, adversary="rotor-split-echo"),
    dict(protocol="rotor-coordinator", n=6, f=1, seed=2, adversary="silent"),
    dict(protocol="consensus", n=6, f=1, seed=0, adversary="consensus-split-vote"),
    dict(protocol="consensus", n=7, f=2, seed=1, adversary="equivocate-value"),
    dict(protocol="approximate-agreement", n=6, f=1, seed=0, adversary="approx-outlier"),
    dict(protocol="iterated-approximate-agreement", n=6, f=1, seed=0,
         adversary="approx-outlier", churn={"join_fraction": 0.5, "pool": 3}),
    dict(protocol="parallel-consensus", n=6, f=1, seed=0, adversary="random-noise"),
    dict(protocol="total-order", n=5, f=1, seed=0, adversary="equivocate-value",
         churn={"rounds": 14, "join_rate": 0.15, "leave_rate": 0.1}),
    dict(protocol="total-order", n=6, f=0, seed=1, adversary="silent",
         churn={"rounds": 12, "join_rate": 0.2, "leave_rate": 0.05}),
    dict(protocol="srikanth-toueg-broadcast", n=6, f=1, seed=0, adversary="rb-false-echo"),
    dict(protocol="known-f-consensus", n=6, f=1, seed=0, adversary="equivocate-value"),
    dict(protocol="dolev-approx", n=6, f=1, seed=0, adversary="approx-outlier"),
)


def scenario_key(options: dict) -> str:
    churn = "churn" if options.get("churn") else "static"
    return (
        f"{options['protocol']}-n{options['n']}-f{options['f']}"
        f"-{options['adversary']}-{churn}-s{options['seed']}"
    )


def make_spec(options: dict) -> ScenarioSpec:
    return ScenarioSpec(trace=True, **options)


def serialize_trace(trace) -> dict:
    """Project a trace onto JSON-stable parallel columns.

    Payload/detail values are ``repr``-encoded and interned into tables so
    broadcast fan-outs (the same payload delivered to every node) cost one
    table entry plus small integer references.  ``None`` payloads/details
    map to JSON ``null`` rather than an interned ``repr(None)`` so "absent"
    stays distinguishable from a literal ``None`` value.
    """

    payload_table: list[str] = []
    payload_index: dict[str, int] = {}
    detail_table: list[str] = []
    detail_index: dict[str, int] = {}

    def intern(value, table: list[str], index: dict[str, int]):
        if value is None:
            return None
        encoded = repr(value)
        slot = index.get(encoded)
        if slot is None:
            index[encoded] = slot = len(table)
            table.append(encoded)
        return slot

    columns = {
        "kind": [],
        "round": [],
        "node": [],
        "peer": [],
        "payload": [],
        "detail": [],
    }
    for event in trace:
        columns["kind"].append(KIND_VALUES.index(event.kind.value))
        columns["round"].append(event.round_index)
        columns["node"].append(event.node_id)
        columns["peer"].append(event.peer_id)
        columns["payload"].append(intern(event.payload, payload_table, payload_index))
        columns["detail"].append(intern(event.detail, detail_table, detail_index))
    return {
        "payload_table": payload_table,
        "detail_table": detail_table,
        "events": columns,
    }


def generate() -> dict:
    scenarios = []
    for options in GRID:
        spec = make_spec(options)
        outcome = run_scenario(spec)
        serialized = serialize_trace(outcome.result.trace)
        key = scenario_key(options)
        scenarios.append(
            {
                "key": key,
                "spec": spec.to_dict(),
                "rounds_executed": outcome.result.rounds_executed,
                "stop_reason": outcome.result.stop_reason,
                **serialized,
            }
        )
        kinds = serialized["events"]["kind"]
        print(
            f"{key:64s} {len(kinds):6d} events, "
            f"{len(serialized['payload_table']):4d} payloads",
            file=sys.stderr,
        )
    return {
        "description": (
            "Trace-golden differential fixtures: the full event stream of "
            "traced runs over a per-protocol scenario grid, recorded from "
            "the object-per-event Trace backend that predates the columnar "
            "rewrite.  Kind codes index into `kinds`; payload/detail codes "
            "index into per-scenario repr tables."
        ),
        "regenerate": "PYTHONPATH=src python tests/make_trace_golden.py",
        "kinds": list(KIND_VALUES),
        "scenarios": scenarios,
    }


def main() -> int:
    report = generate()
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(json.dumps(report, indent=1) + "\n")
    total = sum(len(s["events"]["kind"]) for s in report["scenarios"])
    print(f"wrote {FIXTURE_PATH} ({len(report['scenarios'])} scenarios, {total} events)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
