"""Regenerate the total-order golden-chain differential fixtures.

The fixtures pin the *observable* behaviour of Algorithm 6 — per-node chain
entries, ``final_round`` and membership views — over a grid of
``(n, f, rounds, adversary, churn schedule, seed)`` scenarios, so the
instance-lifecycle internals can be refactored freely while
``tests/test_total_order_golden.py`` asserts bit-identical outputs.

Usage::

    PYTHONPATH=src python tests/make_total_order_golden.py

The grid deliberately avoids observation-dependent adversaries (``replay``
re-broadcasts whatever payloads it saw, so its behaviour tracks the wire
format rather than the protocol); ``silent``/``crash``/``random-noise``/
``equivocate-value`` act independently of the payload encoding.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import ScenarioSpec  # noqa: E402
from repro.api.sweep import run_scenario  # noqa: E402

FIXTURE_PATH = Path(__file__).resolve().parent / "fixtures" / "total_order_golden.json"

#: (n, f, rounds, adversary, join_rate, leave_rate, seeds)
GRID: tuple[tuple, ...] = (
    (4, 1, 45, "silent", 0.0, 0.0, (0, 1)),
    (7, 2, 40, "random-noise", 0.0, 0.0, (0, 1)),
    (7, 1, 40, "silent", 0.2, 0.1, (0, 1, 2)),
    (10, 2, 45, "equivocate-value", 0.15, 0.1, (0, 1)),
    (13, 3, 50, "crash", 0.1, 0.05, (0, 1)),
    (16, 4, 60, "silent", 0.1, 0.1, (0, 1)),
    (24, 7, 75, "silent", 0.05, 0.05, (0,)),
)


def scenario_spec(n, f, rounds, adversary, join_rate, leave_rate, seed) -> ScenarioSpec:
    return ScenarioSpec(
        protocol="total-order",
        n=n,
        f=f,
        adversary=adversary,
        seed=seed,
        churn={"rounds": rounds, "join_rate": join_rate, "leave_rate": leave_rate},
    )


def snapshot(outcome) -> dict:
    """Everything the differential suite compares, per correct node."""

    nodes = {}
    for node_id, process in sorted(outcome.result.processes.items()):
        if process.is_byzantine:
            continue
        nodes[str(node_id)] = {
            "chain": [
                [entry.instance_round, entry.reporter, repr(entry.event)]
                for entry in process.chain
            ],
            "final_round": process.final_round,
            "members": sorted(process.members),
            "joined": process.joined,
            "protocol_round": process.protocol_round,
        }
    return nodes


def generate() -> dict:
    scenarios = []
    for n, f, rounds, adversary, join_rate, leave_rate, seeds in GRID:
        for seed in seeds:
            spec = scenario_spec(n, f, rounds, adversary, join_rate, leave_rate, seed)
            outcome = run_scenario(spec)
            key = f"n{n}-f{f}-r{rounds}-{adversary}-j{join_rate}-l{leave_rate}-s{seed}"
            scenarios.append(
                {
                    "key": key,
                    "spec": {
                        "n": n,
                        "f": f,
                        "rounds": rounds,
                        "adversary": adversary,
                        "join_rate": join_rate,
                        "leave_rate": leave_rate,
                        "seed": seed,
                    },
                    "nodes": snapshot(outcome),
                }
            )
            chains = [len(node["chain"]) for node in scenarios[-1]["nodes"].values()]
            print(
                f"{key:48s} nodes={len(chains):3d} "
                f"chain lengths {min(chains)}..{max(chains)}",
                file=sys.stderr,
            )
    return {
        "description": (
            "Golden-chain differential fixtures for the total-order protocol "
            "(Algorithm 6): per-node chain entries, final_round and membership "
            "views pinned over a grid of churn scenarios."
        ),
        "regenerate": "PYTHONPATH=src python tests/make_total_order_golden.py",
        "scenarios": scenarios,
    }


def main() -> int:
    report = generate()
    FIXTURE_PATH.parent.mkdir(parents=True, exist_ok=True)
    FIXTURE_PATH.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {FIXTURE_PATH} ({len(report['scenarios'])} scenarios)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
