"""Trace analytics: columnar aggregation, spill mode, stored-trace queries.

Differential guarantees, mirroring the golden-trace pattern:

* ``Trace.aggregate`` == ``StoredTrace.aggregate`` (and every other query)
  over the full golden-trace scenario grid — persisted answers are
  bit-identical to in-memory answers;
* a run traced with in-run spill (``Trace(spill_to=...)``) produces
  byte-identical segments, event streams and aggregates to the same run
  traced in memory and exported post-hoc;
* ``StoredTrace`` footer pruning is observable (``loaded_segment_count``)
  and correct at the edges: exact round-range boundaries, empty traces,
  kinds with zero footer counts;
* concurrent store readers during an active spill-writing run see only
  complete sealed segments (WAL single-writer discipline).
"""

from __future__ import annotations

import sys
import threading
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).resolve().parent))

from make_trace_golden import GRID, make_spec, scenario_key  # noqa: E402

from repro.analysis.tables import attach_trace_columns, trace_table  # noqa: E402
from repro.api.registry import REGISTRY  # noqa: E402
from repro.api.sweep import resolve_stop, run_scenario  # noqa: E402
from repro.sim.events import EventKind, Trace, TraceEvent  # noqa: E402
from repro.store import RunStore, StoredTrace, record_from_outcome  # noqa: E402

SEGMENT_EVENTS = 64  # small, so every scenario spans multiple segments

AGG_CASES = [
    dict(kinds=None, by="round", reduce="count"),
    dict(kinds=None, by="node", reduce="count"),
    dict(kinds=None, by="kind", reduce="count"),
    dict(kinds=None, by="round", reduce=("count", "payload_bytes")),
    dict(kinds=EventKind.MESSAGE_DELIVERED, by="round", reduce="payload_bytes"),
    dict(
        kinds=(EventKind.MESSAGE_SENT, EventKind.MESSAGE_DELIVERED),
        by="node",
        reduce=("count", "payload_bytes"),
    ),
    dict(kinds=EventKind.NODE_DECIDED, by="kind", reduce="count"),
]


def stored_view(trace: Trace, *, max_events: int = SEGMENT_EVENTS) -> StoredTrace:
    """A StoredTrace over an in-memory export (no database needed)."""

    segments = trace.export_segments(max_events=max_events)
    return StoredTrace(
        [footer for footer, _ in segments],
        lambda index: Trace.from_segment(segments[index][1]),
    )


class ListSink:
    """An in-memory spill sink with the RunStore.trace_sink interface."""

    def __init__(self) -> None:
        self.segments: list[tuple[dict, dict[str, bytes]]] = []

    def write(self, index: int, footer: dict, blobs: dict[str, bytes]) -> None:
        assert index == len(self.segments), "segments must arrive in order"
        self.segments.append((footer, blobs))

    def stored_trace(self) -> StoredTrace:
        return StoredTrace(
            [footer for footer, _ in self.segments],
            lambda index: Trace.from_segment(self.segments[index][1]),
        )


def run_spilled(spec, sink, *, segment_events: int = SEGMENT_EVENTS):
    """Mirror ``run_scenario`` with in-run trace spill enabled."""

    info = REGISTRY.info(spec.protocol)
    system = REGISTRY.build(spec)
    system.network.enable_trace_spill(sink, segment_events=segment_events)
    max_rounds = (
        spec.max_rounds
        if spec.max_rounds is not None
        else info.default_max_rounds(spec)
    )
    return system.network.run(
        max_rounds=max_rounds, stop_when=resolve_stop(spec, info)
    )


# ---------------------------------------------------------------------------
# Aggregation: in-memory == stored, over the golden scenario grid
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "options", GRID, ids=[scenario_key(o) for o in GRID]
)
def test_stored_trace_matches_in_memory_on_golden_grid(options):
    trace = run_scenario(make_spec(options)).result.trace
    stored = stored_view(trace)
    assert len(stored) == len(trace)
    assert stored.kind_counts() == trace.kind_counts()
    assert list(stored) == list(trace)
    for case in AGG_CASES:
        expected = trace.aggregate(
            case["kinds"], by=case["by"], reduce=case["reduce"]
        )
        assert (
            stored.aggregate(case["kinds"], by=case["by"], reduce=case["reduce"])
            == expected
        ), case
    rounds = sorted({e.round_index for e in trace})
    probe = rounds[len(rounds) // 2]
    assert stored.select(
        kind=EventKind.MESSAGE_DELIVERED, round_index=probe
    ) == trace.select(kind=EventKind.MESSAGE_DELIVERED, round_index=probe)


@pytest.mark.parametrize(
    "options",
    GRID[:4],
    ids=[scenario_key(o) for o in GRID[:4]],
)
def test_spill_is_bit_identical_to_in_memory(options):
    spec = make_spec(options)
    reference = run_scenario(spec).result.trace
    sink = ListSink()
    result = run_spilled(spec, sink)
    spilled = result.trace
    assert isinstance(spilled, StoredTrace)
    # Byte-identical segments: spill seals exactly the slices export cuts.
    exported = reference.export_segments(max_events=SEGMENT_EVENTS)
    assert len(sink.segments) == len(exported)
    for (footer_s, blobs_s), (footer_e, blobs_e) in zip(sink.segments, exported):
        assert footer_s == footer_e
        assert blobs_s == blobs_e
    # Identical query answers.
    assert list(spilled) == list(reference)
    assert spilled.kind_counts() == reference.kind_counts()
    for case in AGG_CASES:
        assert spilled.aggregate(
            case["kinds"], by=case["by"], reduce=case["reduce"]
        ) == reference.aggregate(
            case["kinds"], by=case["by"], reduce=case["reduce"]
        ), case


def test_spill_through_run_store_round_trips(tmp_path):
    spec = make_spec(GRID[0])
    reference = run_scenario(spec).result.trace
    with RunStore(tmp_path / "runs.db") as store:
        sink = store.trace_sink("spill-key")
        result = run_spilled(spec, sink, segment_events=50)
        assert sink.segments_written == result.trace.segment_count
        # The sink's view and a fresh load agree with the in-memory trace.
        assert list(result.trace) == list(reference)
        reloaded = store._load_trace("spill-key")
        assert list(reloaded) == list(reference)
        assert reloaded.aggregate(by="kind") == reference.aggregate(by="kind")


def test_put_run_preserves_spilled_segments(tmp_path):
    spec = make_spec(GRID[0])
    with RunStore(tmp_path / "runs.db") as store:
        outcome = run_scenario(spec)
        record = record_from_outcome(outcome, code_version="test")
        sink = store.trace_sink(record.run_key)
        result = run_spilled(spec, sink)
        record.trace_segments = []
        record.trace_spilled = True
        store.put_run(record, row={"ok": True})
        stored = store.get_trace(record.run_key)
        assert stored is not None
        assert stored.segment_count == result.trace.segment_count
        assert list(stored) == list(outcome.result.trace)
        # Without the flag, put_run would have wiped the streamed segments.
        record.trace_spilled = False
        store.put_run(record, row={"ok": True})
        assert store.get_trace(record.run_key).segment_count == 0


# ---------------------------------------------------------------------------
# Spill mechanics: memory bound, guard rails
# ---------------------------------------------------------------------------


def make_event(round_index: int, kind=EventKind.MESSAGE_SENT) -> TraceEvent:
    return TraceEvent(kind, round_index, node_id=round_index % 7, peer_id=1)


def test_spill_bounds_live_memory_to_one_segment():
    sink = ListSink()
    trace = Trace(spill_to=sink, segment_events=100)
    for i in range(1000):
        trace.record(make_event(i // 50))
        assert trace.live_events < 100  # sealing happens the moment it fills
    assert trace.spilled_segment_count == 10
    assert len(trace) == 1000
    assert trace.kind_counts() == {"message_sent": 1000}
    stored = trace.finalize_spill()
    assert stored.segment_count == 10
    assert len(stored) == 1000


def test_spill_finalize_seals_partial_tail():
    sink = ListSink()
    trace = Trace(spill_to=sink, segment_events=100)
    for i in range(250):
        trace.record(make_event(i))
    stored = trace.finalize_spill()
    assert stored.segment_count == 3
    assert [f["events"] for f in stored._footers] == [100, 100, 50]
    assert [e.round_index for e in stored] == list(range(250))


def test_spilling_trace_refuses_export_and_requires_fresh_network():
    trace = Trace(spill_to=ListSink(), segment_events=10)
    trace.record(make_event(0))
    with pytest.raises(ValueError, match="finalize_spill"):
        trace.export_segments()
    with pytest.raises(ValueError, match="no spill sink"):
        Trace().finalize_spill()
    with pytest.raises(ValueError, match="segment_events"):
        Trace(spill_to=ListSink(), segment_events=0)


def test_enable_trace_spill_guards():
    from repro.api import ScenarioSpec
    from repro.sim.network import ConfigurationError

    spec = ScenarioSpec(protocol="consensus", n=4, f=1, seed=3, max_rounds=5)
    system = REGISTRY.build(spec)  # untraced
    with pytest.raises(ConfigurationError, match="requires tracing"):
        system.network.enable_trace_spill(ListSink())
    traced = REGISTRY.build(
        ScenarioSpec(
            protocol="consensus", n=4, f=1, seed=3, max_rounds=5, trace=True
        )
    )
    traced.network.run(max_rounds=2, stop_when=lambda network: False)
    with pytest.raises(ConfigurationError, match="before the run starts"):
        traced.network.enable_trace_spill(ListSink())


# ---------------------------------------------------------------------------
# StoredTrace footer-pruning edge cases (regressions)
# ---------------------------------------------------------------------------


def boundary_trace() -> Trace:
    # Rounds 0..9, five events each; segments of 10 split exactly on
    # round boundaries: segment k covers rounds [2k, 2k+1].
    return Trace(
        [make_event(i // 5) for i in range(50)]
    )


def test_in_round_at_exact_segment_boundary():
    stored = stored_view(boundary_trace(), max_events=10)
    assert stored.segment_count == 5
    # Round 1 is segment 0's round_max; round 2 is segment 1's round_min.
    for probe, segment_loads in ((1, 1), (2, 1)):
        view = stored_view(boundary_trace(), max_events=10)
        events = view.in_round(probe)
        assert [e.round_index for e in events] == [probe] * 5
        assert view.loaded_segment_count == segment_loads
    # A round no segment covers loads nothing.
    view = stored_view(boundary_trace(), max_events=10)
    assert view.in_round(99) == []
    assert view.loaded_segment_count == 0


def test_first_on_empty_stored_trace():
    empty = stored_view(Trace())
    assert empty.segment_count == 0
    assert len(empty) == 0
    assert empty.first(EventKind.NODE_DECIDED) is None
    assert empty.of_kind(EventKind.MESSAGE_SENT) == []
    assert empty.in_round(0) == []
    assert empty.kind_counts() == {}
    assert empty.aggregate(by="round") == []
    assert list(empty.select_batches()) == []


def test_of_kind_with_zero_footer_count_loads_nothing():
    stored = stored_view(boundary_trace(), max_events=10)
    assert stored.of_kind(EventKind.NODE_DECIDED) == []
    assert stored.loaded_segment_count == 0
    assert stored.first(EventKind.NODE_DECIDED) is None
    assert stored.loaded_segment_count == 0
    # Aggregating a kind no footer mentions is also free.
    assert stored.aggregate(EventKind.NODE_DECIDED, by="round") == []
    assert stored.loaded_segment_count == 0


def test_kind_count_only_aggregate_is_pure_footer_arithmetic():
    stored = stored_view(boundary_trace(), max_events=10)
    assert stored.aggregate(by="kind", reduce="count") == [
        {"kind": "message_sent", "count": 50}
    ]
    assert stored.loaded_segment_count == 0


def test_aggregate_argument_validation():
    trace = boundary_trace()
    with pytest.raises(ValueError, match="by must be one of"):
        trace.aggregate(by="color")
    with pytest.raises(ValueError, match="reduce must draw from"):
        trace.aggregate(reduce="median")
    with pytest.raises(ValueError, match="at least one reducer"):
        trace.aggregate(reduce=())
    stored = stored_view(trace)
    with pytest.raises(ValueError, match="by must be one of"):
        stored.aggregate(by="color")


# ---------------------------------------------------------------------------
# Concurrent readers during an active spill (WAL discipline)
# ---------------------------------------------------------------------------


def test_concurrent_reader_sees_only_sealed_segments(tmp_path):
    path = tmp_path / "runs.db"
    with RunStore(path) as writer:
        sink = writer.trace_sink("live-run")
        trace = Trace(spill_to=sink, segment_events=10)
        with RunStore(path) as reader:
            for sealed in range(5):
                for i in range(10):
                    trace.record(make_event(sealed))
                view = reader._load_trace("live-run")
                # Exactly the sealed segments, each complete.
                assert view.segment_count == sealed + 1
                assert len(view) == (sealed + 1) * 10
                assert [e.round_index for e in view] == [
                    r for r in range(sealed + 1) for _ in range(10)
                ]


def test_reader_thread_never_observes_torn_segments(tmp_path):
    path = tmp_path / "runs.db"
    stop = threading.Event()
    failures: list[str] = []

    def read_loop() -> None:
        with RunStore(path) as reader:
            while not stop.is_set():
                view = reader._load_trace("live-run")
                for index, footer in enumerate(view._footers):
                    segment = view._segment(index)
                    if len(segment) != footer["events"]:
                        failures.append(
                            f"segment {index}: {len(segment)} events, "
                            f"footer says {footer['events']}"
                        )
                        return

    with RunStore(path) as writer:
        sink = writer.trace_sink("live-run")
        trace = Trace(spill_to=sink, segment_events=25)
        thread = threading.Thread(target=read_loop)
        thread.start()
        try:
            for i in range(2000):
                trace.record(make_event(i % 13))
            stored = trace.finalize_spill()
        finally:
            stop.set()
            thread.join(timeout=30)
    assert not failures, failures
    assert stored.segment_count == 80


# ---------------------------------------------------------------------------
# analysis.tables integration
# ---------------------------------------------------------------------------


def test_attach_trace_columns_joins_per_round_rows():
    outcome = run_scenario(make_spec(GRID[4]))
    trace = outcome.result.trace
    rows = [r.as_dict() for r in outcome.result.metrics.rounds]
    joined = attach_trace_columns(
        rows, trace, kinds=EventKind.MESSAGE_DELIVERED
    )
    assert rows[0].get("trace_count") is None  # inputs not mutated
    for row in joined:
        # Per-round delivered counts from the trace must agree with the
        # metrics column computed independently by the engine.
        assert row["trace_count"] == row["messages_delivered"]
    # The stored view joins identically.
    stored_join = attach_trace_columns(
        rows, stored_view(trace), kinds=EventKind.MESSAGE_DELIVERED
    )
    assert stored_join == joined


def test_attach_trace_columns_zero_fills_and_passthrough():
    trace = boundary_trace()  # rounds 0..9
    rows = [{"round": 9}, {"round": 42}, {"note": "no round key"}]
    joined = attach_trace_columns(rows, trace)
    assert joined[0]["trace_count"] == 5
    assert joined[1]["trace_count"] == 0
    assert joined[2] == {"note": "no round key"}


def test_trace_table_renders_for_both_backends():
    trace = run_scenario(make_spec(GRID[0])).result.trace
    text = trace_table(trace, by="kind", title="events by kind")
    assert "events by kind" in text and "message_delivered" in text
    assert trace_table(stored_view(trace), by="kind", title="events by kind") == text
