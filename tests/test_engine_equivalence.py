"""Metamorphic engine-equivalence suite.

The round engine runs on one of four kernels (``vector``, ``fast``,
``queue``, ``legacy`` — see :mod:`repro.sim.network`).  These tests are
the core guard for the structured paths: for every registered protocol,
over a grid of seeds, all applicable kernels must produce
**bit-identical** executions —
the same trace events in the same order, the same metrics (including
per-node counter *insertion order*), the same outputs, the same stop
reason.  A divergence anywhere means the fast path changed observable
semantics, not just speed.
"""

from __future__ import annotations

import pytest

from repro.api import ScenarioSpec, available_protocols
from repro.api.sweep import run_scenario
from repro.sim import ConfigurationError, SynchronousNetwork
from repro.sim.node import NullProcess

SEEDS = (0, 1, 2)

#: One representative (deliberately adversarial) scenario per registered
#: protocol.  Churn-capable protocols get churn so the fast path's
#: delivery-time membership filtering is exercised, not just the steady
#: state.
SCENARIOS = {
    "reliable-broadcast": dict(
        n=7, f=2, adversary="rb-equivocating-sender", params={"byzantine_sender": True}
    ),
    "rotor-coordinator": dict(n=5, f=1, adversary="rotor-split-echo"),
    "consensus": dict(n=7, f=2, adversary="consensus-split-vote"),
    "approximate-agreement": dict(n=7, f=2, adversary="approx-outlier"),
    "iterated-approximate-agreement": dict(
        n=7, f=2, adversary="approx-outlier", churn={"join_fraction": 0.5, "pool": 4}
    ),
    "parallel-consensus": dict(n=7, f=2, adversary="random-noise"),
    "total-order": dict(
        n=6, f=1, adversary="equivocate-value",
        churn={"rounds": 20, "join_rate": 0.1, "leave_rate": 0.05},
    ),
    "srikanth-toueg-broadcast": dict(n=7, f=2, adversary="rb-false-echo"),
    "known-f-consensus": dict(n=7, f=2, adversary="equivocate-value"),
    "dolev-approx": dict(n=7, f=1, adversary="approx-outlier"),
}


def fingerprint(outcome):
    """Everything observable about a finished run, order included."""

    result = outcome.result
    events = tuple(
        (e.kind, e.round_index, e.node_id, e.peer_id, e.payload, e.detail)
        for e in result.trace
    )
    metrics = result.metrics
    return (
        events,
        metrics.as_dict(),
        tuple(metrics.per_node_sent.items()),
        tuple(metrics.per_node_delivered.items()),
        tuple((d.node_id, d.round_index, d.value) for d in metrics.decisions),
        tuple(sorted((i, p.output, p.halted) for i, p in result.processes.items())),
        result.rounds_executed,
        result.stop_reason,
    )


def test_scenario_table_covers_every_registered_protocol():
    assert sorted(SCENARIOS) == available_protocols()


@pytest.mark.parametrize("protocol", sorted(SCENARIOS))
@pytest.mark.parametrize("seed", SEEDS)
def test_vector_fast_queue_and_legacy_are_trace_identical(protocol, seed):
    spec = ScenarioSpec(protocol=protocol, seed=seed, trace=True, **SCENARIOS[protocol])
    prints = {
        engine: fingerprint(run_scenario(spec, engine=engine))
        for engine in ("vector", "fast", "queue", "legacy")
    }
    assert prints["vector"] == prints["legacy"]
    assert prints["fast"] == prints["legacy"]
    assert prints["queue"] == prints["legacy"]


def test_total_order_churn_n50_is_trace_identical_across_kernels():
    """Total-order at n=50 with churn, across all four kernels.

    Before the instance-lifecycle rewrite the protocol's own chain/ack
    bookkeeping made n=50 too slow to run on the reference kernels; now
    that per-round cost is bounded by the decide+linger window, the
    four-kernel bit-identical guarantee is enforced at a size where
    batching, quiescence (first transition ≈ round 20: decide + linger)
    and churn-time delivery filtering are all exercised for real.  Churn
    also forces the vector kernel through its unicast/non-shared fallback
    rounds mid-run.
    """

    spec = ScenarioSpec(
        protocol="total-order",
        n=50,
        f=12,
        adversary="equivocate-value",
        seed=1,
        trace=True,
        churn={"rounds": 24, "join_rate": 0.2, "leave_rate": 0.1},
    )
    prints = {
        engine: fingerprint(run_scenario(spec, engine=engine))
        for engine in ("vector", "fast", "queue", "legacy")
    }
    assert prints["vector"] == prints["legacy"]
    assert prints["fast"] == prints["legacy"]
    assert prints["queue"] == prints["legacy"]


@pytest.mark.parametrize("protocol", ("consensus", "total-order"))
def test_trace_with_payload_accounting_is_kernel_identical(protocol):
    """``trace=True`` + ``enable_payload_accounting()`` on all four kernels.

    The columnar trace store and the byte accounting hook into the same
    send/delivery paths of each kernel; running them *together* pins that
    neither feature perturbs the other's recording order or totals — the
    full fingerprint (trace events, payload_bytes per round, peak payload)
    must stay bit-identical across kernels.
    """

    from repro.api.registry import REGISTRY
    from repro.api.sweep import ScenarioOutcome, resolve_stop

    spec = ScenarioSpec(protocol=protocol, seed=2, trace=True, **SCENARIOS[protocol])
    info = REGISTRY.info(spec.protocol)
    prints = {}
    for engine in ("vector", "fast", "queue", "legacy"):
        system = REGISTRY.build(spec, engine=engine)
        system.network.enable_payload_accounting()
        result = system.network.run(
            max_rounds=info.default_max_rounds(spec),
            stop_when=resolve_stop(spec, info),
        )
        outcome = ScenarioOutcome(spec=spec, system=system, result=result)
        assert len(result.trace) > 0
        assert result.metrics.total_payload_bytes > 0
        prints[engine] = fingerprint(outcome)
    assert prints["vector"] == prints["legacy"]
    assert prints["fast"] == prints["legacy"]
    assert prints["queue"] == prints["legacy"]


@pytest.mark.parametrize(
    "delay,delay_params",
    [
        ("uniform-random", {"max_delay": 3}),
        ("bounded-unknown", {"sizes": [4, 3], "delta": 6}),
        ("partition", {"sizes": [4, 3], "heal_round": 5}),
    ],
)
@pytest.mark.parametrize("seed", SEEDS)
def test_queue_matches_legacy_under_delay_models(delay, delay_params, seed):
    spec = ScenarioSpec(
        protocol="consensus",
        n=7,
        f=2,
        adversary="consensus-split-vote",
        seed=seed,
        trace=True,
        delay=delay,
        delay_params=delay_params,
        max_rounds=25,
    )
    queued = fingerprint(run_scenario(spec, engine="queue"))
    legacy = fingerprint(run_scenario(spec, engine="legacy"))
    assert queued == legacy


def test_auto_resolves_to_vector_only_for_synchronous_delay(monkeypatch):
    monkeypatch.delenv("REPRO_ENGINE", raising=False)
    sync = SynchronousNetwork([NullProcess(1)])
    assert sync.resolved_engine() == "vector"
    assert sync.tally_backend() == "numpy"
    from repro.sim import UniformRandomDelay

    delayed = SynchronousNetwork([NullProcess(1)], delay_model=UniformRandomDelay())
    assert delayed.resolved_engine() == "queue"
    assert delayed.tally_backend() == "scalar"


@pytest.mark.parametrize("engine", ("fast", "vector"))
def test_synchronous_only_engines_reject_delayed_delivery(engine):
    from repro.sim import UniformRandomDelay

    with pytest.raises(ConfigurationError):
        SynchronousNetwork(
            [NullProcess(1)], delay_model=UniformRandomDelay(), engine=engine
        )
    spec = ScenarioSpec(
        protocol="consensus", n=4, f=1, delay="uniform-random", seed=0
    )
    with pytest.raises(ConfigurationError):
        run_scenario(spec, engine=engine)


def test_engine_cannot_change_mid_run():
    net = SynchronousNetwork([NullProcess(1)], engine="fast")
    net.step_round()
    with pytest.raises(ConfigurationError):
        net.set_engine("legacy")
    net.set_engine(net.engine)  # a no-op reassignment stays allowed


def test_unknown_engine_is_rejected_eagerly_with_choices():
    from repro.sim.errors import UnknownEngineError
    from repro.sim.network import ENGINE_CHOICES

    # Still a ConfigurationError (backwards compatible) *and* a plain
    # ValueError, raised at construction — never at mid-run resolution —
    # with a message listing every known engine.
    with pytest.raises(ConfigurationError):
        SynchronousNetwork([NullProcess(1)], engine="warp")
    with pytest.raises(ValueError) as excinfo:
        SynchronousNetwork([NullProcess(1)], engine="warp")
    message = str(excinfo.value)
    assert "warp" in message
    for choice in ENGINE_CHOICES:
        assert choice in message
    assert excinfo.value.choices == ENGINE_CHOICES
    net = SynchronousNetwork([NullProcess(1)])
    with pytest.raises(UnknownEngineError):
        net.set_engine("warp")


def test_engine_env_var_is_validated_eagerly(monkeypatch):
    # A bad REPRO_ENGINE fails at construction even when an explicit
    # engine argument would win, and the message names the env var.
    monkeypatch.setenv("REPRO_ENGINE", "warp")
    with pytest.raises(ValueError) as excinfo:
        SynchronousNetwork([NullProcess(1)], engine="fast")
    assert "REPRO_ENGINE" in str(excinfo.value)


def test_engine_env_var_overrides_auto(monkeypatch):
    monkeypatch.setenv("REPRO_ENGINE", "legacy")
    net = SynchronousNetwork([NullProcess(1)])
    assert net.resolved_engine() == "legacy"
    # an explicit constructor choice beats the environment
    explicit = SynchronousNetwork([NullProcess(1)], engine="queue")
    assert explicit.resolved_engine() == "queue"


@pytest.mark.parametrize("env_engine", ("fast", "vector"))
def test_engine_env_var_sync_only_falls_back_for_delayed_models(
    monkeypatch, env_engine
):
    # REPRO_ENGINE=fast/vector A/B-tests whole sweeps; a network those
    # kernels cannot drive must stay on auto instead of crashing the sweep
    from repro.sim import UniformRandomDelay

    monkeypatch.setenv("REPRO_ENGINE", env_engine)
    sync = SynchronousNetwork([NullProcess(1)])
    assert sync.resolved_engine() == env_engine
    delayed = SynchronousNetwork([NullProcess(1)], delay_model=UniformRandomDelay())
    assert delayed.resolved_engine() == "queue"
    monkeypatch.setenv("REPRO_ENGINE", "warp")
    with pytest.raises(ConfigurationError):
        SynchronousNetwork([NullProcess(1)])


def test_sweep_runner_engine_is_result_identical():
    from repro.api import SweepRunner, SweepSpec

    sweep = SweepSpec(
        protocol="consensus",
        grid={"n": (4, 7), "adversary": ("silent", "consensus-split-vote")},
        repetitions=2,
        base_seed=11,
    )
    by_engine = {
        engine: SweepRunner(jobs=1, engine=engine).run(sweep)
        for engine in (None, "vector", "fast", "queue", "legacy")
    }
    baseline = by_engine[None]
    assert all(rows == baseline for rows in by_engine.values())
