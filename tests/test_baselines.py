"""Tests for the classic known-(n, f) baseline algorithms."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.analysis import consensus_agreement, consensus_validity
from repro.baselines import (
    DolevApproxProcess,
    KnownFConsensusProcess,
    SrikanthTouegBroadcastProcess,
    trim_f_and_midpoint,
)
from repro.core.quorums import max_faults_tolerated
from repro.workloads import build_network, sparse_ids, split_correct_byzantine


class TestSrikanthToueg:
    def build(self, n, f, strategy="silent", seed=0, assumed_f=None):
        ids = sparse_ids(n, seed=seed)
        correct, byz = split_correct_byzantine(ids, f, seed=seed + 1)
        source = correct[0]
        assumed = f if assumed_f is None else assumed_f
        spec = build_network(
            correct_factory=lambda node: SrikanthTouegBroadcastProcess(
                node, source=source, assumed_f=assumed, message="classic"
            ),
            correct_ids=correct,
            byzantine_ids=byz,
            strategy=strategy,
            seed=seed,
        )
        return spec, source

    def test_correct_sender_is_accepted_by_all(self):
        spec, source = self.build(10, 3)
        spec.network.run(
            max_rounds=10,
            stop_when=lambda net: all(p.decided for p in net.correct_processes()),
        )
        for i in spec.correct_ids:
            assert spec.network.process(i).has_accepted("classic", source)

    def test_false_echo_not_accepted_with_correct_f(self):
        spec, _ = self.build(10, 3, strategy="rb-false-echo")
        spec.network.run(max_rounds=10, stop_when=lambda net: False)
        for i in spec.correct_ids:
            for rec in spec.network.process(i).accepted:
                assert rec.message != "forged"

    def test_misconfigured_f_can_accept_forgeries(self):
        # The classic algorithm's guarantee depends on the configured f being
        # a true upper bound: with assumed_f = 0 the acceptance quorum drops
        # to one echo and three Byzantine echoers forge a message — the
        # failure mode the id-only algorithm structurally avoids.
        spec, _ = self.build(10, 3, strategy="rb-false-echo", assumed_f=0)
        spec.network.run(max_rounds=10, stop_when=lambda net: False)
        forged = any(
            rec.message == "forged"
            for i in spec.correct_ids
            for rec in spec.network.process(i).accepted
        )
        assert forged


class TestKnownFConsensus:
    def build(self, n, f, *, ones_fraction=0.5, strategy="consensus-split-vote", seed=0):
        ids = sparse_ids(n, seed=seed)
        correct, byz = split_correct_byzantine(ids, f, seed=seed + 1)
        inputs = {node: (1 if index < ones_fraction * len(correct) else 0) for index, node in enumerate(correct)}
        spec = build_network(
            correct_factory=lambda node: KnownFConsensusProcess(
                node, input_value=inputs[node], membership=ids, assumed_f=f
            ),
            correct_ids=correct,
            byzantine_ids=byz,
            strategy=strategy,
            seed=seed,
        )
        return spec, inputs

    @pytest.mark.parametrize("n", [4, 7, 10, 13])
    def test_agreement_and_validity(self, n):
        f = max_faults_tolerated(n)
        spec, inputs = self.build(n, f, seed=n)
        spec.network.run(max_rounds=80)
        outputs = {i: spec.network.process(i).output for i in spec.correct_ids}
        assert consensus_agreement(outputs)
        assert consensus_validity(outputs, inputs)

    def test_unanimous_inputs_fast_path(self):
        spec, inputs = self.build(10, 3, ones_fraction=1.0, strategy="silent", seed=3)
        run = spec.network.run(max_rounds=40)
        outputs = {i: spec.network.process(i).output for i in spec.correct_ids}
        assert set(outputs.values()) == {1}
        assert run.metrics.latest_decision_round() <= 8

    def test_king_rotation_uses_smallest_identifiers(self):
        ids = list(range(100, 113))
        proc = KnownFConsensusProcess(100, input_value=0, membership=ids, assumed_f=4)
        assert [proc.king_of_phase(k) for k in range(1, 6)] == [100, 101, 102, 103, 104]
        assert proc.king_of_phase(6) == 100


class TestDolevApprox:
    def test_trim_f_and_midpoint(self):
        assert trim_f_and_midpoint([0, 5, 10], 1) == 5
        assert trim_f_and_midpoint([1.0], 0) == 1.0
        with pytest.raises(ValueError):
            trim_f_and_midpoint([], 1)

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=30), st.integers(0, 9))
    def test_property_output_within_received_range(self, values, f):
        out = trim_f_and_midpoint(values, f)
        assert min(values) - 1e-9 <= out <= max(values) + 1e-9

    def test_correctly_configured_f_tolerates_outliers(self):
        ids = sparse_ids(10, seed=5)
        correct, byz = split_correct_byzantine(ids, 3, seed=6)
        inputs = {node: 50.0 + index for index, node in enumerate(correct)}
        spec = build_network(
            correct_factory=lambda node: DolevApproxProcess(
                node, input_value=inputs[node], assumed_f=3
            ),
            correct_ids=correct,
            byzantine_ids=byz,
            strategy="approx-outlier",
            seed=7,
        )
        spec.network.run(max_rounds=4)
        for i in spec.correct_ids:
            out = spec.network.process(i).output
            assert min(inputs.values()) <= out <= max(inputs.values())

    def test_underestimated_f_lets_outliers_through(self):
        ids = sparse_ids(10, seed=8)
        correct, byz = split_correct_byzantine(ids, 3, seed=9)
        inputs = {node: 50.0 for node in correct}
        spec = build_network(
            correct_factory=lambda node: DolevApproxProcess(
                node, input_value=inputs[node], assumed_f=0
            ),
            correct_ids=correct,
            byzantine_ids=byz,
            strategy="approx-outlier",
            seed=10,
        )
        spec.network.run(max_rounds=4)
        outputs = [spec.network.process(i).output for i in spec.correct_ids]
        assert any(abs(out - 50.0) > 1.0 for out in outputs)
