"""Tests for workload generation, statistics, tables and property checkers."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis import (
    aggregate_rows,
    chains_are_prefixes,
    consensus_agreement,
    consensus_validity,
    fraction_true,
    mean,
    render_markdown_table,
    render_table,
    stdev,
    summarize,
)
from repro.core.total_order import ChainEntry
from repro.sim.rng import derive, make_rng, sample_without_replacement, shuffled, spawn
from repro.workloads import (
    binary_inputs,
    real_inputs,
    sparse_ids,
    split_correct_byzantine,
)


class TestSparseIds:
    def test_unique_and_sorted(self):
        ids = sparse_ids(50, seed=1)
        assert len(ids) == 50 == len(set(ids))
        assert ids == sorted(ids)

    def test_not_consecutive(self):
        ids = sparse_ids(20, seed=2)
        gaps = [b - a for a, b in zip(ids, ids[1:])]
        assert any(g > 1 for g in gaps)

    def test_deterministic_per_seed(self):
        assert sparse_ids(10, seed=3) == sparse_ids(10, seed=3)
        assert sparse_ids(10, seed=3) != sparse_ids(10, seed=4)

    def test_rejects_impossible_requests(self):
        with pytest.raises(ValueError):
            sparse_ids(0)
        with pytest.raises(ValueError):
            sparse_ids(100, low=0, high=10)

    @given(st.integers(1, 80), st.integers(0, 1000))
    def test_property_requested_count_is_honoured(self, n, seed):
        assert len(sparse_ids(n, seed=seed)) == n


class TestSplitAndInputs:
    def test_split_sizes(self):
        ids = sparse_ids(10, seed=5)
        correct, byz = split_correct_byzantine(ids, 3, seed=5)
        assert len(correct) == 7 and len(byz) == 3
        assert set(correct) | set(byz) == set(ids)
        assert not set(correct) & set(byz)

    def test_split_rejects_bad_f(self):
        with pytest.raises(ValueError):
            split_correct_byzantine([1, 2, 3], 4)

    def test_binary_inputs_fraction(self):
        inputs = binary_inputs(list(range(100)), ones_fraction=0.3, seed=1)
        assert sum(inputs.values()) == 30

    def test_real_inputs_within_bounds(self):
        inputs = real_inputs(list(range(50)), low=-5.0, high=5.0, seed=2)
        assert all(-5.0 <= v <= 5.0 for v in inputs.values())


class TestRng:
    def test_derive_is_stable_and_sensitive(self):
        assert derive(1, "a", 2) == derive(1, "a", 2)
        assert derive(1, "a", 2) != derive(1, "a", 3)
        assert derive(1, "a") != derive(2, "a")

    def test_spawn_produces_independent_generators(self):
        children = spawn(make_rng(0), 3)
        draws = [g.integers(0, 1_000_000) for g in children]
        assert len(set(int(d) for d in draws)) == 3

    def test_shuffled_preserves_multiset(self):
        rng = make_rng(1)
        items = list(range(20))
        assert sorted(shuffled(rng, items)) == items

    def test_sample_without_replacement(self):
        rng = make_rng(2)
        sample = sample_without_replacement(rng, list(range(10)), 4)
        assert len(sample) == 4 == len(set(sample))
        with pytest.raises(ValueError):
            sample_without_replacement(rng, [1], 2)


class TestStats:
    def test_mean_and_stdev(self):
        assert mean([1, 2, 3]) == 2
        assert stdev([1, 1, 1]) == 0
        assert math.isnan(mean([]))

    def test_fraction_true(self):
        assert fraction_true([True, False, True, True]) == 0.75
        assert math.isnan(fraction_true([]))

    def test_summarize(self):
        s = summarize([1.0, 3.0])
        assert s["mean"] == 2.0 and s["min"] == 1.0 and s["max"] == 3.0

    def test_aggregate_rows_groups_and_averages(self):
        rows = [
            {"n": 4, "ok": True, "rounds": 10},
            {"n": 4, "ok": False, "rounds": 20},
            {"n": 7, "ok": True, "rounds": 30},
        ]
        out = aggregate_rows(rows, group_by=["n"], metrics=["ok", "rounds"])
        assert out[0] == {"n": 4, "samples": 2, "ok": 0.5, "rounds": 15.0}
        assert out[1]["n"] == 7 and out[1]["samples"] == 1


class TestTables:
    def test_render_table_contains_headers_and_rows(self):
        text = render_table([{"a": 1, "b": 2.5}, {"a": 3, "b": True}], title="t")
        assert "t" in text and "a" in text and "2.5" in text and "yes" in text

    def test_render_table_empty(self):
        assert "(no rows)" in render_table([], title="empty")

    def test_render_markdown_table(self):
        md = render_markdown_table([{"x": 1}])
        assert md.splitlines()[0] == "| x |"
        assert md.splitlines()[-1] == "| 1 |"


class TestPropertyCheckers:
    def test_consensus_agreement(self):
        assert consensus_agreement({1: "a", 2: "a"})
        assert not consensus_agreement({1: "a", 2: "b"})
        assert not consensus_agreement({1: "a", 2: None})
        assert not consensus_agreement({})

    def test_consensus_validity(self):
        inputs = {1: 0, 2: 1}
        assert consensus_validity({1: 0, 2: 0}, inputs)
        assert not consensus_validity({1: 2, 2: 2}, inputs)
        assert not consensus_validity({1: 0}, {1: 1, 2: 1})

    def test_chains_are_prefixes(self):
        a = [ChainEntry(1, 1, "x"), ChainEntry(2, 2, "y")]
        b = a + [ChainEntry(3, 1, "z")]
        assert chains_are_prefixes([a, b])
        c = [ChainEntry(1, 1, "x"), ChainEntry(2, 2, "DIFFERENT")]
        assert not chains_are_prefixes([c, b])
