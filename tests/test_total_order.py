"""Tests for Algorithm 6 — total ordering of events in a dynamic network."""

from __future__ import annotations

import pytest

from repro.analysis import chain_common_prefix_length, chains_are_prefixes
from repro.core.total_order import TotalOrderProcess, finality_horizon
from repro.adversary import ByzantineProcess, make_strategy
from repro.dynamic import build_total_order_system, generate_churn_schedule
from repro.sim import SynchronousNetwork
from repro.workloads import sparse_ids, split_correct_byzantine


def build_static_system(n, f, *, rounds, strategy="silent", seed=0, event_period=1):
    ids = sparse_ids(n, seed=seed)
    correct, byz = split_correct_byzantine(ids, f, seed=seed + 3)
    members = set(ids)

    def events(node):
        return lambda r: f"ev:{node}:{r}" if r % event_period == 0 else None

    procs = [
        TotalOrderProcess(i, initial_members=members, events=events(i)) for i in correct
    ]
    procs += [ByzantineProcess(b, make_strategy(strategy), seed=seed + b) for b in byz]
    net = SynchronousNetwork(procs, seed=seed)
    net.run(max_rounds=rounds, stop_when=lambda _net: False)
    return net, correct


class TestFinalityHorizon:
    def test_horizon_formula(self):
        assert finality_horizon(4) == 12.0
        assert finality_horizon(7) == 19.5

    def test_horizon_grows_with_membership(self):
        assert finality_horizon(10) > finality_horizon(5)


class TestStaticMembership:
    def test_chain_prefix_and_growth(self):
        net, correct = build_static_system(7, 2, rounds=50, strategy="random-noise", seed=1)
        chains = [net.process(i).chain for i in correct]
        assert chains_are_prefixes(chains)
        assert min(len(c) for c in chains) > 0, "chain-growth violated"
        # Events from many different protocol rounds must be included.
        instance_rounds = {entry.instance_round for entry in max(chains, key=len)}
        assert len(instance_rounds) >= 10

    def test_chain_is_identically_ordered_everywhere(self):
        net, correct = build_static_system(7, 2, rounds=45, strategy="silent", seed=2)
        chains = [net.process(i).chain for i in correct]
        common = chain_common_prefix_length(chains)
        assert common == min(len(c) for c in chains)

    def test_events_appear_in_instance_round_order(self):
        net, correct = build_static_system(4, 1, rounds=45, seed=3)
        chain = net.process(correct[0]).chain
        rounds_sequence = [entry.instance_round for entry in chain]
        assert rounds_sequence == sorted(rounds_sequence)

    def test_every_correct_event_is_eventually_ordered(self):
        net, correct = build_static_system(4, 1, rounds=50, seed=4)
        chain = net.process(correct[0]).chain
        ordered_events = {entry.event for entry in chain}
        final_round = net.process(correct[0]).final_round
        # Every event witnessed by a correct node early enough must appear.
        for node in correct:
            for r in range(1, max(final_round - 2, 0)):
                event = f"ev:{node}:{r}"
                assert event in ordered_events

    def test_no_duplicate_chain_entries(self):
        net, correct = build_static_system(4, 1, rounds=45, seed=5)
        chain = net.process(correct[0]).chain
        assert len(chain) == len(set(chain))


class TestDynamicMembership:
    def test_leaving_node_is_removed_from_membership(self):
        ids = sparse_ids(4, seed=6)
        members = set(ids)
        procs = [
            TotalOrderProcess(
                i,
                initial_members=members,
                events={},
                leave_round=8 if i == ids[-1] else None,
            )
            for i in ids
        ]
        net = SynchronousNetwork(procs, seed=6)
        net.run(max_rounds=20, stop_when=lambda _net: False)
        for i in ids[:-1]:
            assert ids[-1] not in net.process(i).members

    def test_joining_node_completes_handshake(self):
        ids = sparse_ids(5, seed=7)
        members = set(ids[:4])
        procs = [
            TotalOrderProcess(i, initial_members=members, events={}) for i in ids[:4]
        ]
        net = SynchronousNetwork(procs, seed=7)
        joiner = TotalOrderProcess(ids[4], initial_members=None, events={})
        net.add_process(joiner, at_round=5)
        net.run(max_rounds=30, stop_when=lambda _net: False)
        assert joiner.joined
        assert joiner.members >= set(ids[:4])
        for i in ids[:4]:
            assert ids[4] in net.process(i).members

    def test_join_handshake_retries_after_silent_rounds(self):
        """A `present` lost to churn is re-broadcast after three silent rounds.

        The joiner starts alone, so its first `present` reaches nobody (the
        broadcast fans out to the active set, which is just itself).  After
        three ack-less rounds it must restart the handshake; the stayers
        arriving later answer the *second* `present` and the join completes.
        """

        from repro.core.total_order import PresentMsg
        from repro.sim.events import EventKind

        ids = sparse_ids(5, seed=9)
        joiner_id, stayers = ids[0], ids[1:]
        joiner = TotalOrderProcess(joiner_id, initial_members=None, events={})
        net = SynchronousNetwork([joiner], seed=9, trace=True)
        for stayer in stayers:
            net.add_process(
                TotalOrderProcess(stayer, initial_members=set(stayers), events={}),
                at_round=5,
            )
        net.run(max_rounds=14, stop_when=lambda _net: False)

        present_rounds = sorted(
            {
                event.round_index
                for event in net.trace
                if event.kind == EventKind.MESSAGE_SENT
                and event.node_id == joiner_id
                and isinstance(event.payload, PresentMsg)
            }
        )
        assert len(present_rounds) >= 2, "handshake was never retried"
        assert present_rounds[1] - present_rounds[0] >= 3, (
            "retry must wait out three silent rounds"
        )
        assert joiner.joined
        assert joiner.members >= set(stayers)
        for stayer in stayers:
            assert joiner_id in net.process(stayer).members

    def test_join_wait_counter_initialized_in_init(self):
        # The retry counter must exist before the first handshake round —
        # it was previously conjured via getattr inside _join_handshake.
        joiner = TotalOrderProcess(1, initial_members=None, events={})
        assert joiner._join_wait == 0

    def test_churn_schedule_preserves_prefix_property(self):
        schedule = generate_churn_schedule(
            initial_correct=5,
            initial_byzantine=1,
            rounds=40,
            join_rate=0.2,
            leave_rate=0.1,
            seed=11,
        )
        assert schedule.satisfies_resiliency(40)
        system = build_total_order_system(schedule, strategy="random-noise", seed=11)
        system.network.run(max_rounds=40, stop_when=lambda _net: False)
        chains = list(system.chains().values())
        assert chains_are_prefixes(chains)
        assert max(len(c) for c in chains) > 0


class TestChurnScheduleGenerator:
    def test_resiliency_invariant(self):
        for seed in range(5):
            schedule = generate_churn_schedule(
                initial_correct=4,
                initial_byzantine=1,
                rounds=30,
                join_rate=0.3,
                leave_rate=0.3,
                byzantine_join_fraction=0.2,
                seed=seed,
            )
            assert schedule.satisfies_resiliency(30)

    def test_membership_replay(self):
        schedule = generate_churn_schedule(
            initial_correct=4, initial_byzantine=1, rounds=20, join_rate=0.5, seed=3
        )
        correct0, byz0 = schedule.membership_at(0)
        assert len(correct0) == 4 and len(byz0) == 1
        correct_end, _ = schedule.membership_at(20)
        joins = sum(1 for e in schedule.events if e.kind == "join")
        leaves = sum(1 for e in schedule.events if e.kind == "leave")
        assert len(correct_end) == 4 + sum(
            1 for e in schedule.events if e.kind == "join" and not schedule.is_byzantine(e.node_id)
        ) - leaves

    def test_event_kind_validation(self):
        from repro.dynamic import ChurnEvent

        with pytest.raises(ValueError):
            ChurnEvent(1, 2, "explode")
