"""Tests for the scenario service (:mod:`repro.store.service`).

Boots the stdlib threaded server on an ephemeral port, launches sweeps
through the HTTP API and reads the NDJSON progress stream end to end.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.store.serve import build_parser
from repro.store.service import create_server

SWEEP_REQUEST = {
    "sweep": {"protocol": "consensus", "grid": {"n": [4, 5]}, "max_rounds": 30}
}


@pytest.fixture
def server(tmp_path):
    srv = create_server(tmp_path / "runs.db", port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


def get_json(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return json.load(response)


def post_json(base: str, path: str, payload: dict):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


def read_stream(base: str, path: str) -> list[dict]:
    with urllib.request.urlopen(base + path, timeout=60) as stream:
        return [json.loads(line) for line in stream]


def test_health(server):
    payload = get_json(server, "/health")
    assert payload["status"] == "ok"
    assert payload["runs"] == 0


def test_sweep_launch_stream_and_resume(server):
    launch = post_json(server, "/sweeps", SWEEP_REQUEST)
    assert launch["cells"] == 2

    events = read_stream(server, launch["stream"])
    assert events[0]["event"] == "sweep-start"
    assert events[-1] == {
        "event": "sweep-complete",
        "ran": 2,
        "skipped": 0,
        "total": 2,
    }
    cells = [e for e in events if e["event"] == "cell"]
    assert [c["index"] for c in cells] == [0, 1]
    assert all(c["cached"] is False for c in cells)
    assert all("rounds" in c["row"] for c in cells)
    # Round-by-round metric progress streams for every cell.
    rounds = [e for e in events if e["event"] == "round"]
    assert {r["index"] for r in rounds} == {0, 1}
    assert all("messages_sent" in r for r in rounds)

    # The job is queryable after completion.
    job = get_json(server, f"/sweeps/{launch['id']}")
    assert job["status"] == "complete"
    assert job["report"] == {"ran": 2, "skipped": 0, "total": 2}

    # Runs landed in the store and are queryable over HTTP.
    runs = get_json(server, "/runs?protocol=consensus")
    assert len(runs) == 2
    run = get_json(server, f"/runs/{runs[0]['run_key']}")
    assert run["summary"]["decisions"] > 0
    per_round = get_json(server, f"/runs/{runs[0]['run_key']}/rounds")
    assert len(per_round) == run["summary"]["rounds"]

    # The same sweep again: everything is served from the store, and the
    # streamed rows are identical to the freshly executed ones.
    fresh_rows = [c["row"] for c in cells]
    second = post_json(server, "/sweeps", SWEEP_REQUEST)
    events = read_stream(server, second["stream"])
    assert events[-1]["ran"] == 0 and events[-1]["skipped"] == 2
    cached_cells = [e for e in events if e["event"] == "cell"]
    assert [c["row"] for c in cached_cells] == fresh_rows
    assert all(c["cached"] is True for c in cached_cells)


def test_stream_replays_for_late_subscribers(server):
    launch = post_json(server, "/sweeps", SWEEP_REQUEST)
    first = read_stream(server, launch["stream"])
    # The sweep is long finished; a late subscriber still sees every event.
    second = read_stream(server, launch["stream"])
    assert second == first


def test_bad_requests(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        get_json(server, "/runs/feedfacefeedface")
    assert excinfo.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        get_json(server, "/sweeps/sweep-999")
    assert excinfo.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        post_json(server, "/sweeps", {"sweep": {"grid": {"n": [4]}}})
    assert excinfo.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        post_json(server, "/sweeps", {"sweep": {"protocol": "consensus", "bogus": 1}})
    assert excinfo.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        get_json(server, "/nonsense")
    assert excinfo.value.code == 404


def test_failed_sweep_reports_error(server):
    launch = post_json(
        server, "/sweeps", {"sweep": {"protocol": "no-such-protocol", "n": 4}}
    )
    events = read_stream(server, launch["stream"])
    assert events[-1]["event"] == "error"
    job = get_json(server, f"/sweeps/{launch['id']}")
    assert job["status"] == "failed"
    assert job["error"]


def test_serve_cli_parser_defaults():
    args = build_parser().parse_args(["--store", "x.db", "--port", "0"])
    assert (args.store, args.host, args.port) == ("x.db", "127.0.0.1", 0)
    assert args.jobs == 1 and args.engine is None
