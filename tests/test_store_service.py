"""Tests for the scenario service (:mod:`repro.store.service`).

Boots the stdlib threaded server on an ephemeral port, launches sweeps
through the HTTP API and reads the NDJSON progress stream end to end.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.store.serve import build_parser
from repro.store.service import ScenarioService, create_server

SWEEP_REQUEST = {
    "sweep": {"protocol": "consensus", "grid": {"n": [4, 5]}, "max_rounds": 30}
}


@pytest.fixture
def server(tmp_path):
    srv = create_server(tmp_path / "runs.db", port=0)
    thread = threading.Thread(target=srv.serve_forever, daemon=True)
    thread.start()
    host, port = srv.server_address[:2]
    try:
        yield f"http://{host}:{port}"
    finally:
        srv.shutdown()
        srv.server_close()
        thread.join(timeout=5)


def get_json(base: str, path: str):
    with urllib.request.urlopen(base + path, timeout=30) as response:
        return json.load(response)


def post_json(base: str, path: str, payload: dict):
    request = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=30) as response:
        return json.load(response)


def read_stream(base: str, path: str) -> list[dict]:
    with urllib.request.urlopen(base + path, timeout=60) as stream:
        return [json.loads(line) for line in stream]


def test_health(server):
    payload = get_json(server, "/health")
    assert payload["status"] == "ok"
    assert payload["runs"] == 0


def test_sweep_launch_stream_and_resume(server):
    launch = post_json(server, "/sweeps", SWEEP_REQUEST)
    assert launch["cells"] == 2

    events = read_stream(server, launch["stream"])
    assert events[0]["event"] == "sweep-start"
    assert events[-1] == {
        "event": "sweep-complete",
        "ran": 2,
        "skipped": 0,
        "total": 2,
    }
    cells = [e for e in events if e["event"] == "cell"]
    assert [c["index"] for c in cells] == [0, 1]
    assert all(c["cached"] is False for c in cells)
    assert all("rounds" in c["row"] for c in cells)
    # Round-by-round metric progress streams for every cell.
    rounds = [e for e in events if e["event"] == "round"]
    assert {r["index"] for r in rounds} == {0, 1}
    assert all("messages_sent" in r for r in rounds)

    # The job is queryable after completion.
    job = get_json(server, f"/sweeps/{launch['id']}")
    assert job["status"] == "complete"
    assert job["report"] == {"ran": 2, "skipped": 0, "total": 2}

    # Runs landed in the store and are queryable over HTTP.
    runs = get_json(server, "/runs?protocol=consensus")
    assert len(runs) == 2
    run = get_json(server, f"/runs/{runs[0]['run_key']}")
    assert run["summary"]["decisions"] > 0
    per_round = get_json(server, f"/runs/{runs[0]['run_key']}/rounds")
    assert len(per_round) == run["summary"]["rounds"]

    # The same sweep again: everything is served from the store, and the
    # streamed rows are identical to the freshly executed ones.
    fresh_rows = [c["row"] for c in cells]
    second = post_json(server, "/sweeps", SWEEP_REQUEST)
    events = read_stream(server, second["stream"])
    assert events[-1]["ran"] == 0 and events[-1]["skipped"] == 2
    cached_cells = [e for e in events if e["event"] == "cell"]
    assert [c["row"] for c in cached_cells] == fresh_rows
    assert all(c["cached"] is True for c in cached_cells)


def test_stream_replays_for_late_subscribers(server):
    launch = post_json(server, "/sweeps", SWEEP_REQUEST)
    first = read_stream(server, launch["stream"])
    # The sweep is long finished; a late subscriber still sees every event.
    second = read_stream(server, launch["stream"])
    assert second == first


def test_bad_requests(server):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        get_json(server, "/runs/feedfacefeedface")
    assert excinfo.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        get_json(server, "/sweeps/sweep-999")
    assert excinfo.value.code == 404
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        post_json(server, "/sweeps", {"sweep": {"grid": {"n": [4]}}})
    assert excinfo.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        post_json(server, "/sweeps", {"sweep": {"protocol": "consensus", "bogus": 1}})
    assert excinfo.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        get_json(server, "/nonsense")
    assert excinfo.value.code == 404


def test_failed_sweep_reports_error(server):
    launch = post_json(
        server, "/sweeps", {"sweep": {"protocol": "no-such-protocol", "n": 4}}
    )
    events = read_stream(server, launch["stream"])
    assert events[-1]["event"] == "error"
    job = get_json(server, f"/sweeps/{launch['id']}")
    assert job["status"] == "failed"
    assert job["error"]


def test_sweep_that_fails_before_subscribers_attach_still_streams(server):
    # The race this pins down: the sweep thread dies before anyone opens
    # the stream.  The stream must still replay the error and terminate —
    # not hang waiting on a job that will never progress.
    launch = post_json(
        server, "/sweeps", {"sweep": {"protocol": "no-such-protocol", "n": 4}}
    )
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        if get_json(server, f"/sweeps/{launch['id']}")["status"] == "failed":
            break
        time.sleep(0.01)
    else:
        pytest.fail("sweep never reached a terminal state")
    # Only now — with the job long dead — does the first subscriber attach.
    events = read_stream(server, launch["stream"])
    assert events and events[-1]["event"] == "error"


def test_thread_start_failure_does_not_strand_subscribers(tmp_path, monkeypatch):
    # Harder variant: the executor thread never starts at all (e.g. the
    # host hits its thread limit).  The job is already registered when
    # start() raises, so without a terminal event every later stream
    # subscriber would block forever.
    service = ScenarioService(tmp_path / "runs.db")

    def refuse_to_start(self):
        raise RuntimeError("can't start new thread")

    monkeypatch.setattr(threading.Thread, "start", refuse_to_start)
    with pytest.raises(RuntimeError, match="can't start new thread"):
        service.launch_sweep(SWEEP_REQUEST)
    monkeypatch.undo()

    job = service.get_job("sweep-1")
    assert job is not None
    assert job.status == "failed"
    assert "failed to start sweep thread" in (job.error or "")
    # events() replays the error and terminates instead of blocking.
    events = list(job.events())
    assert events == [{"event": "error", "message": job.error}]


TRACED_SWEEP = {
    "sweep": {
        "protocol": "consensus",
        "grid": {"n": [4]},
        "max_rounds": 30,
        "trace": True,
    }
}


def run_traced_sweep(server) -> str:
    launch = post_json(server, "/sweeps", TRACED_SWEEP)
    events = read_stream(server, launch["stream"])
    assert events[-1]["event"] == "sweep-complete"
    runs = get_json(server, "/runs?protocol=consensus")
    assert len(runs) == 1
    return runs[0]["run_key"]


def test_trace_stream_endpoint(server):
    key = run_traced_sweep(server)
    events = read_stream(server, f"/runs/{key}/trace")
    start, complete = events[0], events[-1]
    assert start["event"] == "trace-start"
    assert start["run_key"] == key
    assert start["segments"] >= 1 and start["events"] > 0
    batches = [e for e in events if e["event"] == "segment"]
    streamed = [ev for b in batches for ev in b["events"]]
    assert len(streamed) == start["events"]
    assert complete == {"event": "trace-complete", "streamed": len(streamed)}
    assert {"kind", "round", "node", "peer", "payload", "detail"} <= set(
        streamed[0]
    )
    # Replays are identical for late subscribers.
    assert read_stream(server, f"/runs/{key}/trace") == events


def test_trace_stream_filters(server):
    key = run_traced_sweep(server)
    unfiltered = read_stream(server, f"/runs/{key}/trace")
    all_events = [
        ev
        for e in unfiltered
        if e["event"] == "segment"
        for ev in e["events"]
    ]
    by_kind = read_stream(server, f"/runs/{key}/trace?kind=message_delivered")
    delivered = [
        ev for e in by_kind if e["event"] == "segment" for ev in e["events"]
    ]
    assert delivered == [
        ev for ev in all_events if ev["kind"] == "message_delivered"
    ]
    assert by_kind[-1]["streamed"] == len(delivered)
    by_round = read_stream(server, f"/runs/{key}/trace?round=1")
    in_round = [
        ev for e in by_round if e["event"] == "segment" for ev in e["events"]
    ]
    assert in_round == [ev for ev in all_events if ev["round"] == 1]
    combined = read_stream(
        server, f"/runs/{key}/trace?kind=message_sent&round=1"
    )
    both = [
        ev for e in combined if e["event"] == "segment" for ev in e["events"]
    ]
    assert both == [
        ev
        for ev in all_events
        if ev["kind"] == "message_sent" and ev["round"] == 1
    ]


def test_trace_stream_bad_requests(server):
    key = run_traced_sweep(server)
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        read_stream(server, f"/runs/{key}/trace?kind=bogus")
    assert excinfo.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        read_stream(server, f"/runs/{key}/trace?round=soon")
    assert excinfo.value.code == 400
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        read_stream(server, "/runs/feedfacefeedface/trace")
    assert excinfo.value.code == 404


def test_trace_stream_of_untraced_run_is_empty(server):
    launch = post_json(server, "/sweeps", SWEEP_REQUEST)
    read_stream(server, launch["stream"])
    key = get_json(server, "/runs?protocol=consensus")[0]["run_key"]
    events = read_stream(server, f"/runs/{key}/trace")
    assert events[0]["segments"] == 0 and events[0]["events"] == 0
    assert events[-1] == {"event": "trace-complete", "streamed": 0}


def test_client_disconnect_mid_replay_does_not_poison_server(
    server, monkeypatch
):
    """Killing a streaming client must not surface as a handler error.

    The stdlib server calls ``handle_error`` (stack trace to stderr) for
    any exception a handler lets escape.  A client that vanishes mid-write
    is routine, not an error: the handler catches the broken pipe and the
    worker thread exits cleanly, so later requests are unaffected.
    """

    import socket
    import socketserver
    import struct
    import time
    import urllib.parse

    # A trace big enough that the server cannot fit the whole reply into
    # kernel send buffers: the stream must still be in flight when the
    # client dies.
    launch = post_json(
        server,
        "/sweeps",
        {
            "sweep": {
                "protocol": "rotor-coordinator",
                "grid": {"n": [20]},
                "trace": True,
            }
        },
    )
    events = read_stream(server, launch["stream"])
    assert events[-1]["event"] == "sweep-complete"
    key = get_json(server, "/runs?protocol=rotor-coordinator")[0]["run_key"]

    srv_errors = []
    original = socketserver.BaseServer.handle_error

    def recording(self, request, client_address):
        srv_errors.append(client_address)
        original(self, request, client_address)

    monkeypatch.setattr(socketserver.BaseServer, "handle_error", recording)
    parsed = urllib.parse.urlsplit(server)
    raw = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    # Shrink the receive window (before connecting, so it sticks) so the
    # server blocks mid-stream instead of buffering the whole reply.
    raw.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 4096)
    raw.settimeout(10)
    raw.connect((parsed.hostname, parsed.port))
    raw.sendall(f"GET /runs/{key}/trace HTTP/1.0\r\n\r\n".encode("ascii"))
    assert raw.recv(256)  # the stream is live
    # Hard-close (RST) while the server is still writing.
    raw.setsockopt(
        socket.SOL_SOCKET, socket.SO_LINGER, struct.pack("ii", 1, 0)
    )
    raw.close()

    # The server stays healthy and the disconnect never reaches
    # handle_error; give the dying worker thread a moment to finish.
    for _ in range(5):
        assert get_json(server, "/health")["status"] == "ok"
        time.sleep(0.05)
    assert srv_errors == []


def test_serve_cli_parser_defaults():
    args = build_parser().parse_args(["--store", "x.db", "--port", "0"])
    assert (args.store, args.host, args.port) == ("x.db", "127.0.0.1", 0)
    assert args.jobs == 1 and args.engine is None
