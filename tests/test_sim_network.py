"""Unit and integration tests for the synchronous network engine."""

from __future__ import annotations

import pytest

from repro.sim import (
    Broadcast,
    DuplicateNodeError,
    EventKind,
    MembershipError,
    NullProcess,
    PartitionDelay,
    Process,
    RoundLimitExceeded,
    SynchronousNetwork,
    Unicast,
    UniformRandomDelay,
)


class EchoOnce(Process):
    """Broadcasts a greeting in round 1 and records everything it receives."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.received = []

    def step(self, view):
        self.received.append((view.round_index, sorted(view.inbox.items())))
        if view.round_index == 1:
            return [Broadcast(("hello", self.node_id))]
        return ()


class UnicastReplier(Process):
    """Replies to every sender it hears from with a direct message."""

    def __init__(self, node_id):
        super().__init__(node_id)
        self.replies_received = 0

    def step(self, view):
        replies = []
        for sender, payload in view.inbox.items():
            if payload == "ping":
                replies.append(Unicast(sender, "pong"))
            if payload == "pong":
                self.replies_received += 1
        if view.round_index == 1:
            return [Broadcast("ping")]
        return replies


class DeciderAfter(Process):
    def __init__(self, node_id, decide_round):
        super().__init__(node_id)
        self._decide_round = decide_round
        self._output = None

    @property
    def output(self):
        return self._output

    def step(self, view):
        if view.round_index >= self._decide_round:
            self._output = "done"
            self.halt()
        return ()


class TestBasicDelivery:
    def test_broadcast_is_delivered_to_everyone_next_round_including_self(self):
        net = SynchronousNetwork([EchoOnce(i) for i in (10, 20, 30)])
        net.step_round()
        net.step_round()
        for node in (10, 20, 30):
            proc = net.process(node)
            round2 = dict(proc.received)[2]
            senders = {s for s, _ in round2}
            assert senders == {10, 20, 30}

    def test_round1_inbox_is_empty(self):
        net = SynchronousNetwork([EchoOnce(1), EchoOnce(2)])
        net.step_round()
        assert dict(net.process(1).received)[1] == []

    def test_unicast_reaches_only_destination(self):
        net = SynchronousNetwork([UnicastReplier(1), UnicastReplier(2)])
        for _ in range(3):
            net.step_round()
        # Each node's round-1 ping reaches both nodes (broadcast includes
        # self), so each node receives exactly two pong replies — one from
        # itself and one from its peer — and nothing more.
        assert net.process(1).replies_received == 2
        assert net.process(2).replies_received == 2

    def test_duplicate_node_ids_are_rejected(self):
        with pytest.raises(DuplicateNodeError):
            SynchronousNetwork([NullProcess(1), NullProcess(1)])

    def test_metrics_count_messages(self):
        net = SynchronousNetwork([EchoOnce(i) for i in range(3)])
        net.step_round()
        # each of the 3 nodes broadcast to 3 destinations
        assert net.metrics.total_messages == 9
        assert net.metrics.total_broadcasts == 3

    def test_payload_accounting_is_off_by_default(self):
        net = SynchronousNetwork([EchoOnce(i) for i in range(3)])
        net.step_round()
        assert net.metrics.total_payload_bytes == 0
        assert net.metrics.peak_payload_bytes == 0

    @pytest.mark.parametrize("engine", ["fast", "queue", "legacy"])
    def test_payload_accounting_counts_bytes_per_copy(self, engine):
        from repro.sim.messages import payload_nbytes

        net = SynchronousNetwork([EchoOnce(i) for i in range(3)], engine=engine)
        net.enable_payload_accounting()
        net.step_round()
        expected = sum(payload_nbytes(("hello", i)) * 3 for i in range(3))
        assert net.metrics.total_payload_bytes == expected
        assert net.metrics.peak_payload_bytes == max(
            payload_nbytes(("hello", i)) for i in range(3)
        )

    def test_payload_accounting_is_engine_independent(self):
        totals = {}
        for engine in ("fast", "queue", "legacy"):
            net = SynchronousNetwork(
                [UnicastReplier(i) for i in (1, 2)], engine=engine
            )
            net.enable_payload_accounting()
            for _ in range(3):
                net.step_round()
            totals[engine] = (
                net.metrics.total_payload_bytes,
                net.metrics.peak_payload_bytes,
            )
        assert totals["fast"] == totals["queue"] == totals["legacy"]
        assert totals["fast"][0] > 0


class TestRunLoop:
    def test_run_stops_when_all_correct_decided(self):
        net = SynchronousNetwork([DeciderAfter(i, decide_round=4) for i in range(4)])
        result = net.run(max_rounds=20)
        assert result.stop_reason == "stop_condition"
        assert result.rounds_executed == 4
        assert result.agreement_reached()

    def test_run_hits_round_limit(self):
        net = SynchronousNetwork([NullProcess(1)])
        result = net.run(max_rounds=5)
        assert result.stop_reason == "round_limit"
        assert result.rounds_executed == 5

    def test_round_limit_can_raise(self):
        net = SynchronousNetwork([NullProcess(1)])
        with pytest.raises(RoundLimitExceeded):
            net.run(max_rounds=3, raise_on_limit=True)

    def test_run_result_exposes_outputs(self):
        net = SynchronousNetwork([DeciderAfter(1, 2), DeciderAfter(2, 2)])
        result = net.run(max_rounds=10)
        assert result.outputs() == {1: "done", 2: "done"}
        assert result.distinct_decisions() == {"done"}
        assert result.metrics.decision_rounds() == {1: 2, 2: 2}


class TestMembership:
    def test_join_at_round(self):
        class GreetOnFirstStep(Process):
            def __init__(self, node_id):
                super().__init__(node_id)
                self.stepped = 0

            def step(self, view):
                self.stepped += 1
                if self.stepped == 1:
                    return [Broadcast(("joined", self.node_id))]
                return ()

        net = SynchronousNetwork([EchoOnce(1)])
        net.add_process(GreetOnFirstStep(2), at_round=3)
        for _ in range(4):
            net.step_round()
        assert 2 in net.active_ids()
        # The late joiner is first stepped in round 3; its greeting is heard
        # by node 1 in round 4.
        round4 = dict(net.process(1).received)[4]
        assert any(sender == 2 for sender, _ in round4)

    def test_leave_at_round_stops_scheduling_and_delivery(self):
        net = SynchronousNetwork([EchoOnce(1), EchoOnce(2)])
        net.remove_process(2, at_round=2)
        net.step_round()
        net.step_round()
        assert 2 not in net.active_ids()
        # The departed node is no longer stepped: it only ever saw round 1.
        assert [r for r, _ in net.process(2).received] == [1]
        # Messages already in flight to the survivors are still delivered.
        round2_senders = {s for s, _ in dict(net.process(1).received)[2]}
        assert round2_senders == {1, 2}

    def test_leave_of_unknown_node_is_an_error(self):
        net = SynchronousNetwork([NullProcess(1)])
        with pytest.raises(MembershipError):
            net.remove_process(99)


class TestDelayModels:
    def test_partition_blocks_cross_group_messages(self):
        delay = PartitionDelay(groups=(frozenset({1}), frozenset({2})))
        net = SynchronousNetwork([EchoOnce(1), EchoOnce(2)], delay_model=delay)
        for _ in range(5):
            net.step_round()
        # node 1 only ever hears itself
        all_senders = {s for _, pairs in net.process(1).received for s, _ in pairs}
        assert all_senders == {1}

    def test_partition_heals_at_heal_round(self):
        delay = PartitionDelay(groups=(frozenset({1}), frozenset({2})), heal_round=4)
        net = SynchronousNetwork([EchoOnce(1), EchoOnce(2)], delay_model=delay)
        for _ in range(5):
            net.step_round()
        senders_by_round = {r: {s for s, _ in pairs} for r, pairs in net.process(1).received}
        assert 2 not in senders_by_round[2]
        assert 2 in senders_by_round[4]

    def test_random_delay_is_bounded(self):
        delay = UniformRandomDelay(max_delay=3)
        net = SynchronousNetwork([EchoOnce(i) for i in range(4)], delay_model=delay, seed=3)
        for _ in range(6):
            net.step_round()
        # every broadcast from round 1 must have arrived by round 4
        received_rounds = [
            r for r, pairs in net.process(0).received if any(p[1][0] == "hello" for p in pairs)
        ]
        assert received_rounds and max(received_rounds) <= 4


class TestRoundLimit:
    def test_round_limit_exception_carries_partial_result(self):
        net = SynchronousNetwork([EchoOnce(i) for i in (1, 2)], trace=True)
        with pytest.raises(RoundLimitExceeded) as excinfo:
            net.run(max_rounds=3, raise_on_limit=True)
        result = excinfo.value.result
        assert excinfo.value.max_rounds == 3
        assert result.rounds_executed == 3
        assert result.stop_reason == "round_limit"
        # partial progress is inspectable: the round-1 broadcasts happened
        assert result.metrics.total_messages == 4
        assert len(result.trace.of_kind(EventKind.ROUND_START)) == 3

    def test_stop_condition_met_on_final_round_does_not_raise(self):
        net = SynchronousNetwork([DeciderAfter(1, decide_round=5)])
        result = net.run(max_rounds=5, raise_on_limit=True)
        assert result.stop_reason == "stop_condition"
        assert result.rounds_executed == 5

    def test_round_limit_without_raise_flag_returns_normally(self):
        net = SynchronousNetwork([NullProcess(1)])
        result = net.run(max_rounds=2, raise_on_limit=False)
        assert result.stop_reason == "round_limit"
        assert result.metrics.total_rounds == 2


class TestMidRunDeparture:
    """Edge cases around nodes leaving while messages are in flight."""

    def test_messages_in_flight_to_departed_node_are_dropped(self):
        net = SynchronousNetwork([EchoOnce(1), EchoOnce(2), EchoOnce(3)])
        net.remove_process(3, at_round=2)
        net.step_round()  # round 1: everyone broadcasts (to 1, 2 and 3)
        net.step_round()  # round 2: node 3 is gone before delivery
        # the departed node never saw round 2
        assert [r for r, _ in net.process(3).received] == [1]
        # but its own round-1 broadcast still reached the survivors
        assert {s for s, _ in dict(net.process(1).received)[2]} == {1, 2, 3}
        # delivered counters only count the survivors' inboxes: 3 senders
        # times 2 surviving destinations
        assert net.metrics.rounds[-1].messages_delivered == 6

    def test_departure_and_shared_inbox_fast_path_agree_with_legacy(self):
        def build(engine):
            net = SynchronousNetwork(
                [EchoOnce(i) for i in (1, 2, 3, 4)], trace=True, engine=engine
            )
            net.remove_process(4, at_round=2)
            for _ in range(3):
                net.step_round()
            return [
                (e.kind, e.round_index, e.node_id, e.peer_id, e.payload)
                for e in net.trace
            ]

        assert build("fast") == build("legacy")

    def test_unicast_to_node_that_left_is_silently_dropped(self):
        class PesterTheDeparted(Process):
            def step(self, view):
                if view.round_index == 1:
                    return [Unicast(2, "hello?")]
                return ()

        for engine in ("fast", "queue", "legacy"):
            net = SynchronousNetwork(
                [PesterTheDeparted(1), NullProcess(2)], engine=engine
            )
            net.remove_process(2, at_round=2)
            net.step_round()
            net.step_round()
            assert net.metrics.rounds[-1].messages_delivered == 0

    def test_scheduled_leave_of_unknown_node_raises_when_due(self):
        net = SynchronousNetwork([NullProcess(1)])
        net.remove_process(99, at_round=2)
        net.step_round()
        with pytest.raises(MembershipError):
            net.step_round()

    def test_rejoin_after_leave_is_rejected(self):
        net = SynchronousNetwork([NullProcess(1), NullProcess(2)])
        net.step_round()
        net.remove_process(2)
        with pytest.raises(DuplicateNodeError):
            net.add_process(NullProcess(2))


class TestMembershipSortCache:
    def test_static_membership_sorts_exactly_once(self):
        # engine pinned: the legacy kernel deliberately bypasses the cache
        net = SynchronousNetwork([EchoOnce(i) for i in (3, 1, 2)], engine="fast")
        for _ in range(6):
            net.step_round()
        # the old engine re-sorted the active set up to 2 + broadcasts
        # times per round; the cache makes it exactly one rebuild total
        assert net.sorted_rebuilds == 1

    def test_churn_invalidates_the_cache_once_per_event(self):
        net = SynchronousNetwork([EchoOnce(1), EchoOnce(2)], engine="fast")
        net.add_process(EchoOnce(3), at_round=3)
        net.remove_process(1, at_round=5)
        for _ in range(7):
            net.step_round()
        # initial build + join + leave
        assert net.sorted_rebuilds == 3
        assert net.active_ids() == frozenset({2, 3})

    def test_cache_reflects_immediate_membership_changes(self):
        net = SynchronousNetwork([NullProcess(1), NullProcess(3)])
        net.step_round()
        assert [p.node_id for p in net.correct_processes()] == [1, 3]
        net.add_process(NullProcess(2))
        assert [p.node_id for p in net.correct_processes()] == [1, 2, 3]
        net.remove_process(3)
        assert [p.node_id for p in net.correct_processes()] == [1, 2]


class TestDeterminism:
    def test_same_seed_same_trace(self):
        def build():
            return SynchronousNetwork(
                [EchoOnce(i) for i in range(5)], seed=42, trace=True
            )

        first, second = build(), build()
        first.run(max_rounds=4, stop_when=lambda n: False)
        second.run(max_rounds=4, stop_when=lambda n: False)
        events_first = [(e.kind, e.round_index, e.node_id, e.peer_id) for e in first.trace]
        events_second = [(e.kind, e.round_index, e.node_id, e.peer_id) for e in second.trace]
        assert events_first == events_second
