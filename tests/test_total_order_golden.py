"""Golden-chain differential suite for the total-order protocol.

``tests/fixtures/total_order_golden.json`` pins the observable behaviour of
Algorithm 6 — per-node chain entries, ``final_round``, membership views and
join outcomes — as recorded from the implementation that predates the
instance-lifecycle rewrite.  Every refactor of the total-order /
parallel-consensus hot path must reproduce these fixtures bit-identically.

Regenerate (only when the *intended* observable behaviour changes)::

    PYTHONPATH=src python tests/make_total_order_golden.py
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api import ScenarioSpec
from repro.api.sweep import run_scenario

from make_total_order_golden import snapshot

FIXTURE_PATH = Path(__file__).parent / "fixtures" / "total_order_golden.json"

with FIXTURE_PATH.open() as handle:
    FIXTURES = json.load(handle)

SCENARIOS = {scenario["key"]: scenario for scenario in FIXTURES["scenarios"]}


def run_fixture_scenario(spec_dict: dict):
    spec = ScenarioSpec(
        protocol="total-order",
        n=spec_dict["n"],
        f=spec_dict["f"],
        adversary=spec_dict["adversary"],
        seed=spec_dict["seed"],
        churn={
            "rounds": spec_dict["rounds"],
            "join_rate": spec_dict["join_rate"],
            "leave_rate": spec_dict["leave_rate"],
        },
    )
    return run_scenario(spec)


@pytest.mark.parametrize("key", sorted(SCENARIOS))
def test_rewrite_reproduces_golden_chains(key):
    scenario = SCENARIOS[key]
    outcome = run_fixture_scenario(scenario["spec"])
    # The snapshot projection is shared with the fixture generator so both
    # sides always compare the same fields under the same encoding.
    got = snapshot(outcome)
    want = scenario["nodes"]
    assert sorted(got) == sorted(want), "correct-node population diverged"
    for node_id in sorted(want):
        for field in ("chain", "final_round", "members", "joined", "protocol_round"):
            assert got[node_id][field] == want[node_id][field], (
                f"{key}: node {node_id} diverged on {field}"
            )


def test_fixture_grid_is_nontrivial():
    """Guard the guard: the grid must exercise chains, churn and joiners."""

    total_entries = 0
    joined_late = 0
    for scenario in SCENARIOS.values():
        for node in scenario["nodes"].values():
            total_entries += len(node["chain"])
            if node["joined"] and not node["chain"]:
                joined_late += 1
    assert len(SCENARIOS) >= 10
    assert total_entries > 1000
    # Churn scenarios must include correct joiners (their chains start late
    # or stay empty, but their membership handshake completed).
    assert joined_late > 0
