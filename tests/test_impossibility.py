"""Tests for the Section IX constructions (synchrony is necessary)."""

from __future__ import annotations

import pytest

from repro.core.impossibility import (
    asynchronous_partition_execution,
    semi_synchronous_partition_execution,
    synchronous_control_execution,
)


class TestLemma14Asynchronous:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_partitioned_groups_decide_different_values(self, seed):
        outcome = asynchronous_partition_execution(4, 4, seed=seed)
        assert outcome.all_decided, "each partition must decide on its own"
        assert outcome.disagreement, "Lemma 14 predicts disagreement"
        assert set(outcome.decisions_a) == {1}
        assert set(outcome.decisions_b) == {0}

    def test_partition_sizes_are_respected(self):
        outcome = asynchronous_partition_execution(3, 5, seed=7)
        assert len(outcome.group_a) == 3
        assert len(outcome.group_b) == 5


class TestLemma15SemiSynchronous:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_bounded_but_unknown_delay_still_disagrees(self, seed):
        outcome = semi_synchronous_partition_execution(4, 4, delta=40, seed=seed)
        assert outcome.all_decided
        assert outcome.disagreement

    def test_small_delta_restores_agreement(self):
        # When the cross-group delay bound is within the algorithm's decision
        # time the groups hear each other and the construction collapses.
        outcome = semi_synchronous_partition_execution(4, 4, delta=1, seed=3)
        assert outcome.agreement


class TestSynchronousControl:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_synchrony_restores_agreement(self, seed):
        outcome = synchronous_control_execution(4, 4, seed=seed)
        assert outcome.agreement, "the synchronous control must reach agreement"

    def test_outcome_helpers(self):
        outcome = synchronous_control_execution(4, 4, seed=5)
        assert outcome.all_decided
        assert not outcome.disagreement
        assert outcome.delay_model == "SynchronousDelay"
