"""Property suite pinning scalar-vs-numpy tally equality.

:mod:`repro.core.tally` promises that its scalar reference implementation
and the numpy implementation used for :class:`~repro.sim.messages.
ColumnarInbox` are indistinguishable to protocol code: same counts (as
built-in ``int``), same keys, and — critically, because parallel consensus
derives instance-creation order (and through it stored-output pickle
bytes) from the support dict order — the same first-occurrence *insertion
order*.  Hypothesis drives both backends over randomised rounds: random
sender sets, duplicate payloads within a sender's batch, empty rounds,
mixed payload types, and filtered known-sender subsets.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import tally
from repro.core.parallel_consensus import (
    PCInput,
    PCNoPreference,
    PCNoStrongPreference,
    PCPrefer,
    _classify,
)
from repro.core.reliable_broadcast import Echo
from repro.core.consensus import ConsensusInput
from repro.core.rotor_coordinator import CandidateGossip, RotorEcho, RotorInit
from repro.sim.messages import ColumnarInbox, Inbox

COMMON = settings(
    max_examples=60,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

# A deliberately narrow payload universe so collisions (several senders
# sending equal payloads, one sender repeating itself) are common.
PAYLOADS = st.one_of(
    st.builds(Echo, message=st.integers(0, 2), source=st.integers(0, 2)),
    st.builds(ConsensusInput, value=st.sampled_from(["a", "b", 0, 1])),
    st.builds(
        CandidateGossip,
        adds=st.lists(st.integers(0, 4), min_size=1, max_size=4).map(tuple),
    ),
    st.builds(RotorEcho, candidate=st.integers(0, 4)),
    st.builds(RotorInit),
    st.builds(
        PCInput, instance=st.integers(0, 2), value=st.sampled_from(["x", "y"])
    ),
    st.builds(
        PCPrefer, instance=st.integers(0, 2), value=st.sampled_from(["x", "y"])
    ),
    st.builds(PCNoPreference, instance=st.integers(0, 2)),
    st.builds(PCNoStrongPreference, instance=st.integers(0, 2)),
)

ROUNDS = st.lists(
    st.tuples(
        st.integers(0, 9),  # sender
        st.lists(PAYLOADS, min_size=0, max_size=4),
    ),
    min_size=0,
    max_size=8,
    unique_by=lambda item: item[0],
)


def build_pair(round_batches):
    """The same staged round as a ``ColumnarInbox`` and a plain ``Inbox``."""

    staged = [
        (sender, payload, None)
        for sender, batch in round_batches
        for payload in batch
    ]
    columnar = ColumnarInbox.from_staged(staged)
    by_sender: dict[int, list] = {}
    for sender, payload, _dests in staged:
        by_sender.setdefault(sender, []).append(payload)
    plain = Inbox(by_sender)
    return columnar, plain


def assert_int_counts(mapping):
    for value in mapping.values():
        assert type(value) is int


@COMMON
@given(ROUNDS)
def test_columnar_inbox_matches_plain_inbox(round_batches):
    columnar, plain = build_pair(round_batches)
    assert isinstance(columnar, ColumnarInbox)
    assert tally.backend_for(columnar) == "numpy"
    assert tally.backend_for(plain) == "scalar"
    assert list(columnar.items()) == list(plain.items())
    assert columnar.senders == plain.senders
    assert len(columnar) == len(plain)
    assert bool(columnar) == bool(plain)
    for sender, _batch in round_batches:
        assert columnar.payloads_from(sender) == plain.payloads_from(sender)


@COMMON
@given(ROUNDS)
def test_value_and_field_support_agree_including_order(round_batches):
    columnar, plain = build_pair(round_batches)
    for message_type in (ConsensusInput, PCInput):
        scalar = tally.value_support(plain, message_type)
        vector = tally.value_support(columnar, message_type)
        assert list(scalar.items()) == list(vector.items())
        assert_int_counts(vector)
    scalar = tally.field_support(plain, Echo, ("message", "source"))
    vector = tally.field_support(columnar, Echo, ("message", "source"))
    assert list(scalar.items()) == list(vector.items())
    assert_int_counts(vector)


@COMMON
@given(ROUNDS)
def test_candidate_support_agrees_with_pair_dedup(round_batches):
    columnar, plain = build_pair(round_batches)
    scalar = tally.candidate_support(plain, CandidateGossip, RotorEcho)
    vector = tally.candidate_support(columnar, CandidateGossip, RotorEcho)
    # A sender backing one candidate through a gossip *and* an echo (or a
    # duplicated entry inside one ``adds``) must count exactly once.
    assert scalar == vector
    assert_int_counts(vector)
    s_candidates, s_counts = tally.candidate_support_arrays(
        plain, CandidateGossip, RotorEcho
    )
    v_candidates, v_counts = tally.candidate_support_arrays(
        columnar, CandidateGossip, RotorEcho
    )
    assert s_candidates == v_candidates == sorted(scalar)
    assert s_counts.tolist() == v_counts.tolist()


@COMMON
@given(ROUNDS)
def test_init_senders_and_scan_index_agree(round_batches):
    columnar, plain = build_pair(round_batches)
    scalar_inits = tally.init_senders(plain, RotorInit)
    vector_inits = tally.init_senders(columnar, RotorInit)
    assert scalar_inits == vector_inits
    assert all(type(s) is int for s in vector_inits)

    s_support, s_spoken = tally.scan_index(plain, _classify, memo_key="t")
    v_support, v_spoken = tally.scan_index(columnar, _classify, memo_key="t")
    assert list(s_support) == list(v_support)
    for key in s_support:
        assert list(s_support[key].items()) == list(v_support[key].items())
        assert_int_counts(v_support[key])
    assert s_spoken == v_spoken
    for speakers in v_spoken.values():
        assert all(type(s) is int for s in speakers)


@COMMON
@given(ROUNDS)
def test_control_pairs_preserve_row_order(round_batches):
    columnar, plain = build_pair(round_batches)
    bulk = (CandidateGossip, Echo)
    assert tally.control_pairs(plain, bulk) == tally.control_pairs(columnar, bulk)
    # All-bulk and no-bulk filters are the degenerate fast paths.
    assert tally.control_pairs(plain, ()) == tally.control_pairs(columnar, ())


@COMMON
@given(ROUNDS, st.sets(st.integers(0, 9)))
def test_tallies_agree_on_restricted_subsets(round_batches, allowed):
    columnar, plain = build_pair(round_batches)
    allowed = frozenset(allowed)
    c_view = columnar.restricted(allowed)
    p_view = plain.restricted(allowed)
    assert list(c_view.items()) == list(p_view.items())
    scalar = tally.value_support(p_view, ConsensusInput)
    vector = tally.value_support(c_view, ConsensusInput)
    assert list(scalar.items()) == list(vector.items())
    assert tally.candidate_support(
        p_view, CandidateGossip, RotorEcho
    ) == tally.candidate_support(c_view, CandidateGossip, RotorEcho)


def test_from_staged_falls_back_for_non_contiguous_or_unhashable():
    # Interleaved senders: the staging invariant is broken, so the columnar
    # build must fall back to a plain (but equivalent) Inbox.
    staged = [(1, RotorInit(), None), (2, RotorInit(), None), (1, RotorEcho(3), None)]
    inbox = ColumnarInbox.from_staged(staged)
    assert type(inbox) is Inbox
    assert inbox.payloads_from(1) == (RotorInit(), RotorEcho(3))
    # Unhashable payloads cannot join the interned payload table.
    unhashable = ColumnarInbox.from_staged([(1, [1, 2, 3], None)])
    assert type(unhashable) is Inbox
    assert unhashable.payloads_from(1) == ([1, 2, 3],)


def test_empty_round_tallies():
    columnar = ColumnarInbox.from_staged([])
    plain = Inbox({})
    assert isinstance(columnar, ColumnarInbox)
    assert not columnar and not plain
    assert tally.value_support(columnar, ConsensusInput) == {}
    assert tally.candidate_support(columnar, CandidateGossip, RotorEcho) == {}
    assert tally.init_senders(columnar, RotorInit) == ()
    support, spoken = tally.scan_index(columnar, _classify, memo_key="t")
    assert support == {} and spoken == {}
    assert tally.control_pairs(columnar, (Echo,)) == ()


def test_profile_accumulates_build_time():
    tally.reset_profile()
    before = tally.profile_snapshot()
    assert before["builds"] == 0
    columnar, plain = build_pair([(1, [ConsensusInput("a")]), (2, [ConsensusInput("a")])])
    tally.value_support(columnar, ConsensusInput)
    tally.value_support(columnar, ConsensusInput)  # memoized: no second build
    after = tally.profile_snapshot()
    assert after["builds"] == 1
    assert after["seconds"] >= 0.0
    tally.reset_profile()
