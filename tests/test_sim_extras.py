"""Additional coverage for the simulator's delay models, metrics, trace and errors."""

from __future__ import annotations

import pytest

from repro.sim import (
    BoundedUnknownDelay,
    EventKind,
    FixedScheduleDelay,
    HaltedProcessError,
    InvalidOutgoingError,
    NullProcess,
    PartitionDelay,
    RoundLimitExceeded,
    SynchronousDelay,
    SynchronousNetwork,
    Trace,
    TraceEvent,
    UniformRandomDelay,
    UnknownNodeError,
    make_rng,
    split_into_groups,
)
from repro.sim.metrics import RunMetrics
from repro.sim.node import KnownSenders, Process
from repro.sim.messages import Inbox


class TestDelayModels:
    def test_synchronous_delay_is_next_round(self):
        model = SynchronousDelay()
        assert model.synchronous
        assert model.delivery_round(1, 2, 7, make_rng(0)) == 8

    def test_uniform_random_delay_bounds(self):
        model = UniformRandomDelay(max_delay=4)
        rng = make_rng(1)
        for _ in range(200):
            delay = model.delivery_round(1, 2, 10, rng) - 10
            assert 1 <= delay <= 4

    def test_uniform_random_delay_rejects_zero(self):
        with pytest.raises(ValueError):
            UniformRandomDelay(max_delay=0)

    def test_bounded_unknown_delay_cross_group(self):
        model = BoundedUnknownDelay(groups=(frozenset({1}), frozenset({2})), delta=9)
        rng = make_rng(0)
        assert model.delivery_round(1, 1, 5, rng) == 6
        assert model.delivery_round(1, 2, 5, rng) == 14

    def test_partition_delay_unknown_nodes_are_isolated_by_default(self):
        model = PartitionDelay(groups=(frozenset({1}),))
        rng = make_rng(0)
        # Two nodes outside any declared group used to share the sentinel
        # pseudo-group -1 and talk synchronously; the default "isolated"
        # policy keeps them apart (full edge-case matrix in
        # test_delay_models.py).
        assert model.delivery_round(7, 8, 3, rng) >= 1_000_000
        assert model.delivery_round(7, 7, 3, rng) == 4

    def test_fixed_schedule_delay(self):
        model = FixedScheduleDelay(table={(1, 2): 5}, default=2)
        rng = make_rng(0)
        assert model.delivery_round(1, 2, 1, rng) == 6
        assert model.delivery_round(2, 1, 1, rng) == 3

    def test_fixed_schedule_rejects_nonpositive_delay(self):
        model = FixedScheduleDelay(table={(1, 2): 0})
        with pytest.raises(ValueError):
            model.delivery_round(1, 2, 1, make_rng(0))

    def test_split_into_groups(self):
        groups = split_into_groups([5, 1, 9, 3, 7], [2, 2])
        assert groups == (frozenset({1, 3}), frozenset({5, 7}), frozenset({9}))


class TestMetrics:
    def test_summary_and_decision_rounds(self):
        metrics = RunMetrics()
        metrics.start_round(1)
        metrics.record_send(1, fanout=3, broadcast=True)
        metrics.record_delivery(2, 3)
        metrics.record_decision(2, 1, "v")
        metrics.record_decision(2, 2, "v")  # later duplicate is ignored for "first round"
        summary = metrics.summary()
        assert summary["rounds"] == 1
        assert summary["messages"] == 3
        assert metrics.decision_round(2) == 1
        assert metrics.decision_round(99) is None
        assert metrics.messages_per_round() == [3]

    def test_round_metrics_as_dict(self):
        metrics = RunMetrics()
        round_metrics = metrics.start_round(4)
        assert round_metrics.as_dict()["round"] == 4


class TestTrace:
    def test_queries(self):
        trace = Trace()
        trace.record(TraceEvent(EventKind.ROUND_START, 1))
        trace.record(TraceEvent(EventKind.NODE_DECIDED, 2, node_id=7, detail="x"))
        assert len(trace) == 2
        assert trace.first(EventKind.ROUND_START).round_index == 1
        assert trace.of_kind(EventKind.NODE_DECIDED)[0].node_id == 7
        assert trace.for_node(7)
        assert trace.in_round(2)
        assert trace.decisions()[0].detail == "x"
        assert trace.where(lambda e: e.round_index > 1)

    def test_disabled_trace_records_nothing(self):
        trace = Trace(enabled=False)
        trace.record(TraceEvent(EventKind.ROUND_START, 1))
        assert len(trace) == 0

    def test_disabled_trace_ignores_scalar_and_bulk_recording(self):
        trace = Trace(enabled=False)
        trace.record_event(EventKind.ROUND_START, 1)
        trace.record_sends_columnar(1, 3, "m", (1, 2, 3))
        trace.record_deliveries_columnar(2, 3, "m", (1, 2, 3))
        assert len(trace) == 0
        assert list(trace) == []
        assert trace.events == []

    def test_first_miss_returns_none(self):
        trace = Trace()
        trace.record_event(EventKind.ROUND_START, 1)
        assert trace.first(EventKind.NODE_DECIDED) is None

    def test_queries_on_empty_trace(self):
        trace = Trace()
        assert len(trace) == 0
        assert list(trace) == []
        assert trace.events == []
        assert trace.of_kind(EventKind.MESSAGE_SENT) == []
        assert trace.for_node(1) == []
        assert trace.in_round(1) == []
        assert trace.where(lambda e: True) == []
        assert trace.decisions() == []
        assert trace.first(EventKind.ROUND_START) is None
        assert trace.kind_counts() == {}

    def test_constructor_accepts_prebuilt_events(self):
        events = [
            TraceEvent(EventKind.ROUND_START, 1),
            TraceEvent(EventKind.MESSAGE_SENT, 1, node_id=1, peer_id=2, payload="m"),
        ]
        trace = Trace(events)
        assert list(trace) == events

    def test_constructor_seeding_ignores_the_enabled_flag(self):
        # Matching the pre-columnar dataclass: `enabled` gates recording,
        # not the events handed to the constructor.
        events = [TraceEvent(EventKind.ROUND_START, 1)]
        trace = Trace(events, enabled=False)
        assert list(trace) == events
        trace.record(TraceEvent(EventKind.ROUND_START, 2))
        assert len(trace) == 1

    def test_bulk_recording_matches_scalar_recording(self):
        bulk, scalar = Trace(), Trace()
        bulk.record_sends_columnar(1, 9, "m", (1, 2))
        bulk.record_deliveries_columnar(2, 9, "m", (1, 2))
        bulk.record_sends_columnar(2, 9, "m", ())  # empty fan-out is a no-op
        for dest in (1, 2):
            scalar.record_event(
                EventKind.MESSAGE_SENT, 1, node_id=9, peer_id=dest, payload="m"
            )
        for dest in (1, 2):
            scalar.record_event(
                EventKind.MESSAGE_DELIVERED, 2, node_id=dest, peer_id=9, payload="m"
            )
        assert list(bulk) == list(scalar)
        assert bulk.kind_counts() == {
            "message_sent": 2,
            "message_delivered": 2,
        }


class TestKnownSenders:
    def test_observe_and_freeze(self):
        known = KnownSenders()
        known.observe(Inbox.from_pairs([(1, "a"), (2, "b")]))
        assert known.count == 2 and 1 in known
        known.freeze()
        known.observe(Inbox.from_pairs([(3, "c")]))
        assert known.count == 2
        assert 3 not in known
        assert known.frozen


class TestErrors:
    def test_invalid_outgoing_is_rejected(self):
        class Bad(Process):
            def step(self, view):
                return ["not an outgoing action"]

        net = SynchronousNetwork([Bad(1)])
        with pytest.raises(InvalidOutgoingError):
            net.step_round()

    def test_error_types_carry_context(self):
        assert UnknownNodeError(7).node_id == 7
        assert HaltedProcessError(3).node_id == 3
        exc = RoundLimitExceeded(10, result="partial")
        assert exc.max_rounds == 10 and exc.result == "partial"

    def test_null_process_is_inert(self):
        proc = NullProcess(1)
        assert proc.step(None) == ()
        assert not proc.is_byzantine
        assert proc.output is None
