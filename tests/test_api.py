"""Tests for the unified scenario API (repro.api)."""

from __future__ import annotations

import json
import math

import pytest

from repro.analysis.properties import (
    approx_outputs_in_range,
    approx_range_reduced,
    chains_are_prefixes,
    consensus_agreement,
    consensus_validity,
)
from repro.api import (
    REGISTRY,
    ScenarioSpec,
    SweepRunner,
    SweepSpec,
    available_protocols,
    build_system,
    run_scenario,
    run_sweep,
)
from repro.harness import run_experiment
from repro.workloads import (
    approximate_agreement_system,
    consensus_system,
    reliable_broadcast_system,
    rotor_coordinator_system,
)


# ---------------------------------------------------------------------------
# ScenarioSpec validation and round-tripping
# ---------------------------------------------------------------------------


class TestScenarioSpecValidation:
    def test_minimal_spec_is_valid(self):
        spec = ScenarioSpec(protocol="consensus", n=4, f=1)
        assert spec.adversary == "silent"
        assert spec.inputs == "default"

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"protocol": "", "n": 4, "f": 1},
            {"protocol": "consensus", "n": 0, "f": 0},
            {"protocol": "consensus", "n": 4, "f": -1},
            {"protocol": "consensus", "n": 4, "f": 4},
            {"protocol": "consensus", "n": 4, "f": 1, "adversary": "no-such-strategy"},
            {"protocol": "consensus", "n": 4, "f": 1, "max_rounds": 0},
            {"protocol": "consensus", "n": 4, "f": 1, "inputs": "gaussian"},
            {"protocol": "consensus", "n": 4, "f": 1, "delay": "quantum"},
            {"protocol": "consensus", "n": 4, "f": 1, "stop": "eventually"},
            {"protocol": "consensus", "n": 4, "f": 1, "churn": 3},
        ],
    )
    def test_invalid_specs_raise(self, kwargs):
        with pytest.raises(ValueError):
            ScenarioSpec(**kwargs)

    def test_from_dict_rejects_unknown_keys(self):
        payload = ScenarioSpec(protocol="consensus", n=4, f=1).to_dict()
        payload["banana"] = True
        with pytest.raises(ValueError, match="banana"):
            ScenarioSpec.from_dict(payload)

    def test_unknown_protocol_raises_at_build_time(self):
        spec = ScenarioSpec(protocol="raft", n=4, f=1)
        with pytest.raises(KeyError, match="unknown protocol"):
            build_system(spec)

    def test_unsupported_spec_facilities_rejected_at_build_time(self):
        # A facility the builder would silently ignore must be refused, so
        # the spec never misdescribes the execution it produced.
        with pytest.raises(ValueError, match="does not support the 'partition'"):
            build_system(
                ScenarioSpec(
                    protocol="total-order",
                    n=5,
                    f=1,
                    churn={"rounds": 10},
                    delay="partition",
                    delay_params={"sizes": [3, 2]},
                )
            )
        with pytest.raises(ValueError, match="takes no per-node inputs"):
            build_system(
                ScenarioSpec(protocol="rotor-coordinator", n=4, f=1, inputs="binary")
            )
        with pytest.raises(ValueError, match="does not support churn"):
            build_system(
                ScenarioSpec(protocol="consensus", n=4, f=1, churn={"rounds": 5})
            )
        with pytest.raises(ValueError, match="unknown params.*iteratons"):
            build_system(
                ScenarioSpec(
                    protocol="iterated-approximate-agreement",
                    n=4,
                    f=1,
                    params={"iteratons": 3},
                )
            )

    def test_replace(self):
        spec = ScenarioSpec(protocol="consensus", n=4, f=1, seed=3)
        bigger = spec.replace(n=10, f=3)
        assert (bigger.n, bigger.f, bigger.seed) == (10, 3, 3)
        assert spec.n == 4  # original untouched


# ---------------------------------------------------------------------------
# Registry: every protocol builds, runs and satisfies its headline property
# ---------------------------------------------------------------------------

def _canonical_spec(protocol: str) -> ScenarioSpec:
    overrides = {
        "consensus": dict(adversary="consensus-split-vote"),
        "known-f-consensus": dict(adversary="consensus-split-vote"),
        "approximate-agreement": dict(adversary="approx-outlier"),
        "iterated-approximate-agreement": dict(
            adversary="approx-outlier", params={"iterations": 4}
        ),
        "parallel-consensus": dict(params={"k_instances": 3}),
        "total-order": dict(
            n=5,
            f=1,
            adversary="random-noise",
            churn={"rounds": 30, "join_rate": 0.1, "leave_rate": 0.05},
        ),
    }.get(protocol, {})
    base = dict(protocol=protocol, n=7, f=2, seed=5)
    base.update(overrides)
    return ScenarioSpec(**base)


def test_registry_lists_core_and_baseline_protocols():
    names = available_protocols()
    assert len(names) == 10
    assert len(available_protocols(include_baselines=False)) == 7
    for name in names:
        info = REGISTRY.info(name)
        assert info.description
        assert info.default_stop in ("decided", "halted", "never")


@pytest.mark.parametrize("protocol", sorted(REGISTRY))
def test_spec_round_trips_through_json(protocol):
    spec = _canonical_spec(protocol)
    restored = ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
    assert restored == spec


@pytest.mark.parametrize("protocol", sorted(REGISTRY))
def test_build_run_and_headline_property(protocol):
    outcome = run_scenario(_canonical_spec(protocol))
    system, result = outcome.system, outcome.result
    assert system.n == outcome.spec.n and system.f == outcome.spec.f

    if protocol in ("consensus", "known-f-consensus"):
        outputs = outcome.outputs()
        assert consensus_agreement(outputs)
        assert consensus_validity(outputs, system.params["inputs"])
    elif protocol in ("reliable-broadcast", "srikanth-toueg-broadcast"):
        message, source = system.params["message"], system.params["source"]
        for process in outcome.correct_processes().values():
            assert process.has_accepted(message, source)
    elif protocol == "rotor-coordinator":
        assert result.stop_reason == "stop_condition"
        assert all(p.halted for p in outcome.correct_processes().values())
    elif protocol in ("approximate-agreement", "dolev-approx"):
        outputs = outcome.outputs()
        assert approx_outputs_in_range(outputs, system.params["inputs"])
    elif protocol == "iterated-approximate-agreement":
        outputs = outcome.outputs()
        inputs = system.params["inputs"]
        assert approx_outputs_in_range(outputs, inputs)
        assert approx_range_reduced(outputs, inputs)
    elif protocol == "parallel-consensus":
        outputs = outcome.outputs()
        pairs = system.params["pairs"]
        assert all(o == pairs for o in outputs.values())
    elif protocol == "total-order":
        chains = [outcome.network.process(i).chain for i in system.correct_ids]
        assert chains_are_prefixes(chains)
        assert max(len(c) for c in chains) > 0
    else:  # pragma: no cover - fails when a protocol is added untested
        pytest.fail(f"no property check for protocol {protocol!r}")


def test_scenarios_reproduce_from_seed():
    spec = _canonical_spec("consensus")
    first = run_scenario(spec).outputs()
    second = run_scenario(ScenarioSpec.from_dict(spec.to_dict())).outputs()
    assert first == second


# ---------------------------------------------------------------------------
# Sweep expansion
# ---------------------------------------------------------------------------


class TestSweepSpec:
    def test_expansion_covers_grid_and_repetitions(self):
        sweep = SweepSpec(
            protocol="consensus",
            grid={"n": (4, 7), "adversary": ("silent", "crash")},
            repetitions=3,
        )
        scenarios = list(sweep.scenarios())
        assert len(scenarios) == sweep.scenario_count() == 12
        assert {s.n for s in scenarios} == {4, 7}
        assert {s.adversary for s in scenarios} == {"silent", "crash"}
        # derived fault bound: f = ⌊(n − 1)/3⌋
        assert {(s.n, s.f) for s in scenarios} == {(4, 1), (7, 2)}
        # every scenario owns a distinct derived seed
        assert len({s.seed for s in scenarios}) == 12

    def test_dotted_axes_route_into_option_mappings(self):
        sweep = SweepSpec(
            protocol="consensus",
            n=4,
            grid={
                "input_params.ones_fraction": (0.0, 1.0),
                "delay_params.delta": (10,),
                "churn.join_rate": (0.5,),
                "k": (2,),
            },
        )
        scenario = next(iter(sweep.scenarios()))
        assert scenario.input_params["ones_fraction"] in (0.0, 1.0)
        assert scenario.delay_params["delta"] == 10
        assert scenario.churn["join_rate"] == 0.5
        assert scenario.params["k"] == 2

    def test_missing_n_rejected(self):
        with pytest.raises(ValueError, match="needs n"):
            SweepSpec(protocol="consensus", grid={"adversary": ("silent",)})

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="no values"):
            SweepSpec(protocol="consensus", n=4, grid={"adversary": ()})

    def test_seed_tags_disambiguate_identical_grids(self):
        plain = SweepSpec(protocol="consensus", n=4, repetitions=2, base_seed=1)
        tagged = SweepSpec(
            protocol="consensus", n=4, repetitions=2, base_seed=1, seed_tags=("other",)
        )
        assert [s.seed for s in plain.scenarios()] != [s.seed for s in tagged.scenarios()]


# ---------------------------------------------------------------------------
# Parallel execution determinism
# ---------------------------------------------------------------------------


class TestSweepRunnerDeterminism:
    SWEEP = SweepSpec(
        protocol="consensus",
        grid={"n": (4, 7), "adversary": ("silent", "consensus-split-vote")},
        repetitions=2,
        base_seed=17,
    )

    def test_parallel_rows_match_sequential(self):
        sequential = SweepRunner(jobs=1).run(self.SWEEP)
        parallel = SweepRunner(jobs=4).run(self.SWEEP)
        assert sequential == parallel
        assert len(sequential) == 8

    def test_aggregated_results_are_byte_identical(self):
        kwargs = dict(
            group_by=("n", "adversary"), metrics=("agreement", "rounds", "messages")
        )
        sequential = run_sweep(self.SWEEP, jobs=1, **kwargs)
        parallel = run_sweep(self.SWEEP, jobs=4, **kwargs)
        assert json.dumps(sequential, sort_keys=True) == json.dumps(
            parallel, sort_keys=True
        )

    def test_experiment_jobs_determinism(self):
        sequential = run_experiment("E6", jobs=1)
        parallel = run_experiment("E6", jobs=3)
        assert sequential.to_json() == parallel.to_json()

    def test_default_row_without_row_fn(self):
        rows = SweepRunner().run(SweepSpec(protocol="consensus", n=4, base_seed=2))
        (row,) = rows
        assert row["protocol"] == "consensus"
        assert row["decided"] is True
        assert not math.isnan(row["rounds"])

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(jobs=0)

    def test_run_sweep_rejects_half_specified_aggregation(self):
        sweep = SweepSpec(protocol="consensus", n=4)
        with pytest.raises(ValueError, match="together"):
            run_sweep(sweep, metrics=("agreement",))
        with pytest.raises(ValueError, match="together"):
            run_sweep(sweep, group_by=("n",))


# ---------------------------------------------------------------------------
# Deprecated shims
# ---------------------------------------------------------------------------


class TestDeprecatedShims:
    def test_shim_warns_and_matches_api_route(self):
        with pytest.warns(DeprecationWarning, match="consensus_system"):
            legacy = consensus_system(
                7, 2, ones_fraction=0.5, strategy="consensus-split-vote", seed=23
            )
        legacy_run = legacy.network.run(max_rounds=60)
        modern = run_scenario(
            ScenarioSpec(
                protocol="consensus",
                n=7,
                f=2,
                adversary="consensus-split-vote",
                seed=23,
                max_rounds=60,
            )
        )
        assert legacy_run.decided_outputs() == modern.result.decided_outputs()
        assert legacy_run.metrics.total_messages == modern.messages

    @pytest.mark.parametrize(
        "shim,protocol,kwargs,max_rounds",
        [
            (reliable_broadcast_system, "reliable-broadcast", {}, 12),
            (rotor_coordinator_system, "rotor-coordinator", {}, 50),
            (approximate_agreement_system, "approximate-agreement", {}, 8),
        ],
    )
    def test_every_shim_warns_and_is_execution_identical(
        self, shim, protocol, kwargs, max_rounds
    ):
        """Each PR-1 ``*_system`` shim must emit a DeprecationWarning naming
        itself and build the exact system the declarative API builds."""

        with pytest.warns(DeprecationWarning, match=shim.__name__):
            legacy = shim(7, 2, seed=31, **kwargs)
        legacy_run = legacy.network.run(max_rounds=max_rounds)
        modern = run_scenario(
            ScenarioSpec(
                protocol=protocol, n=7, f=2, seed=31, max_rounds=max_rounds
            )
        )
        assert legacy_run.outputs() == modern.result.outputs()
        assert legacy_run.rounds_executed == modern.result.rounds_executed
        assert legacy_run.metrics.total_messages == modern.messages

    def test_shim_accepts_explicit_inputs(self):
        with pytest.warns(DeprecationWarning):
            probe = consensus_system(4, 0, seed=9)
        inputs = {node: 1 for node in probe.correct_ids}
        with pytest.warns(DeprecationWarning):
            spec = consensus_system(4, 0, inputs=inputs, seed=9)
        run = spec.network.run(max_rounds=40)
        assert set(run.decided_outputs().values()) == {1}
