"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro.sim import Inbox, RoundView


@pytest.fixture
def make_view():
    """Factory for hand-crafted RoundViews used by unit tests that drive a
    process directly without a network."""

    def _make(round_index: int, pairs=()):
        return RoundView(round_index=round_index, inbox=Inbox.from_pairs(pairs))

    return _make
