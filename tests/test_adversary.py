"""Tests for the adversary strategies and the Byzantine process wrapper."""

from __future__ import annotations

import pytest

from repro.adversary import (
    ByzantineProcess,
    EquivocateValueStrategy,
    MimicStrategy,
    SilentStrategy,
    available_strategies,
    make_strategy,
)
from repro.adversary.base import AdversaryContext
from repro.core.reliable_broadcast import ReliableBroadcastProcess
from repro.sim import Broadcast, Inbox, RoundView, Unicast
from repro.workloads import consensus_system


def view(round_index, pairs=()):
    return RoundView(round_index=round_index, inbox=Inbox.from_pairs(pairs))


class TestRegistry:
    def test_all_registered_strategies_instantiate(self):
        for name in available_strategies():
            strategy = make_strategy(name)
            assert strategy is not None

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(KeyError, match="unknown adversary strategy"):
            make_strategy("does-not-exist")

    def test_kwargs_are_forwarded(self):
        strategy = make_strategy("consensus-split-vote", value_a=7, value_b=9)
        assert strategy.value_a == 7 and strategy.value_b == 9

    def test_registry_contains_generic_and_protocol_attacks(self):
        names = set(available_strategies())
        assert {"silent", "crash", "consensus-split-vote", "approx-outlier"} <= names


class TestByzantineProcess:
    def test_is_byzantine_and_delegates_to_strategy(self):
        proc = ByzantineProcess(9, SilentStrategy())
        assert proc.is_byzantine
        assert proc.step(view(1)) == []

    def test_known_ids_accumulate_across_rounds(self):
        captured = {}

        class Spy(SilentStrategy):
            def act(self, ctx: AdversaryContext):
                captured["known"] = set(ctx.known_ids)
                return []

        proc = ByzantineProcess(9, Spy())
        proc.step(view(1, [(1, "a")]))
        proc.step(view(2, [(2, "b")]))
        assert captured["known"] == {1, 2}

    def test_equivocation_splits_destinations(self):
        strategy = EquivocateValueStrategy(payload_a="A", payload_b="B")
        proc = ByzantineProcess(9, strategy)
        out = proc.step(view(2, [(1, "x"), (2, "x"), (3, "x"), (4, "x")]))
        assert all(isinstance(o, Unicast) for o in out)
        payloads = {o.payload for o in out}
        assert payloads == {"A", "B"}

    def test_mimic_strategy_behaves_like_a_correct_process(self):
        strategy = MimicStrategy(lambda node_id: ReliableBroadcastProcess(node_id, source=node_id, message="m"))
        proc = ByzantineProcess(5, strategy)
        out = proc.step(view(1))
        assert len(out) == 1 and isinstance(out[0], Broadcast)

    def test_never_forges_sender_field(self):
        # The network stamps the true sender on every envelope; a Byzantine
        # node influences receivers only through payload content.  This is an
        # end-to-end check: the receiver's inbox attributes the adversary's
        # messages to the adversary's own id.
        spec = consensus_system(4, 1, strategy="consensus-split-vote", seed=1, trace=True)
        spec.network.run(max_rounds=10, stop_when=lambda net: False)
        byz = set(spec.byzantine_ids)
        from repro.sim import EventKind

        for event in spec.network.trace.of_kind(EventKind.MESSAGE_DELIVERED):
            if event.peer_id in byz:
                assert event.peer_id in byz  # attribution is to the true sender


class TestStrategyBehaviours:
    def test_silent_sends_nothing_ever(self):
        proc = ByzantineProcess(1, make_strategy("silent"))
        assert all(proc.step(view(r)) == [] for r in range(1, 6))

    def test_crash_stops_after_configured_round(self):
        proc = ByzantineProcess(1, make_strategy("crash", crash_after_round=2))
        assert proc.step(view(1)) != []
        assert proc.step(view(2)) != []
        assert proc.step(view(3)) == []

    def test_replay_rebroadcasts_received_payloads(self):
        proc = ByzantineProcess(1, make_strategy("replay"))
        out = proc.step(view(2, [(3, "hello"), (4, "world")]))
        assert {o.payload for o in out} == {"hello", "world"}

    def test_random_noise_is_deterministic_per_seed(self):
        a = ByzantineProcess(1, make_strategy("random-noise"), seed=5)
        b = ByzantineProcess(1, make_strategy("random-noise"), seed=5)
        assert a.step(view(1)) == b.step(view(1))

    def test_delayed_strategy_waits(self):
        from repro.adversary import DelayedStrategy

        inner = EquivocateValueStrategy()
        proc = ByzantineProcess(1, DelayedStrategy(inner=inner, start_round=4))
        assert proc.step(view(2, [(2, "x")])) == []
        assert proc.step(view(4, [(2, "x")])) != []
