"""Tests for Algorithm 3 — consensus in the id-only model."""

from __future__ import annotations

import pytest

from repro.analysis import consensus_agreement, consensus_validity
from repro.core.consensus import INIT_ROUNDS, PHASE_LENGTH, ConsensusProcess
from repro.core.quorums import max_faults_tolerated
from repro.workloads import consensus_system

ADVERSARIES = [
    "silent",
    "crash",
    "random-noise",
    "consensus-split-vote",
    "consensus-strongprefer-spoofer",
    "rotor-usurper",
]


def run_consensus(n, f, *, ones_fraction, strategy, seed):
    spec = consensus_system(n, f, ones_fraction=ones_fraction, strategy=strategy, seed=seed)
    run = spec.network.run(max_rounds=60 + 10 * f)
    outputs = {i: spec.network.process(i).output for i in spec.correct_ids}
    return spec, run, outputs


class TestFastPath:
    def test_unanimous_inputs_decide_in_one_phase(self):
        spec, run, outputs = run_consensus(10, 3, ones_fraction=1.0, strategy="silent", seed=1)
        assert consensus_agreement(outputs)
        assert set(outputs.values()) == {1}
        # 2 init rounds + one 5-round phase
        assert run.metrics.latest_decision_round() == INIT_ROUNDS + PHASE_LENGTH

    def test_unanimous_zero_inputs(self):
        _, _, outputs = run_consensus(7, 2, ones_fraction=0.0, strategy="crash", seed=2)
        assert set(outputs.values()) == {0}

    def test_no_faults_mixed_inputs(self):
        spec, _, outputs = run_consensus(6, 0, ones_fraction=0.5, strategy=None, seed=3)
        assert consensus_agreement(outputs)
        assert consensus_validity(outputs, spec.params["inputs"])


class TestAgreementAndValidity:
    @pytest.mark.parametrize("strategy", ADVERSARIES)
    @pytest.mark.parametrize("ones_fraction", [0.0, 0.5, 1.0])
    def test_properties_at_maximum_resilience(self, strategy, ones_fraction):
        n = 10
        f = max_faults_tolerated(n)
        spec, _, outputs = run_consensus(
            n, f, ones_fraction=ones_fraction, strategy=strategy, seed=hash((strategy, ones_fraction)) % 10_000
        )
        assert consensus_agreement(outputs), f"agreement violated under {strategy}"
        assert consensus_validity(outputs, spec.params["inputs"])

    @pytest.mark.parametrize("n", [4, 7, 13])
    def test_properties_across_sizes_with_split_vote(self, n):
        f = max_faults_tolerated(n)
        spec, _, outputs = run_consensus(
            n, f, ones_fraction=0.5, strategy="consensus-split-vote", seed=n * 7
        )
        assert consensus_agreement(outputs)
        assert consensus_validity(outputs, spec.params["inputs"])

    def test_real_valued_inputs(self):
        # Section VII considers real-number inputs (needed for total ordering).
        inputs = None
        spec = consensus_system(
            7,
            2,
            inputs=None,
            ones_fraction=0.5,
            strategy="silent",
            seed=11,
        )
        run = spec.network.run(max_rounds=60)
        outputs = {i: spec.network.process(i).output for i in spec.correct_ids}
        assert consensus_agreement(outputs)


class TestRoundComplexity:
    def test_unanimous_case_is_independent_of_f(self):
        rounds = {}
        for n in (4, 10, 16):
            f = max_faults_tolerated(n)
            _, run, _ = run_consensus(n, f, ones_fraction=1.0, strategy="silent", seed=5)
            rounds[n] = run.metrics.latest_decision_round()
        assert len(set(rounds.values())) == 1

    def test_decision_round_is_linear_in_f(self):
        # O(f) rounds: the decision round grows at most linearly with f even
        # under the split-vote adversary.
        for n in (7, 13, 19):
            f = max_faults_tolerated(n)
            _, run, outputs = run_consensus(
                n, f, ones_fraction=0.5, strategy="consensus-split-vote", seed=n
            )
            decision_round = run.metrics.latest_decision_round()
            assert decision_round is not None
            assert decision_round <= INIT_ROUNDS + PHASE_LENGTH * (f + 2)


class TestTermination:
    def test_all_correct_nodes_eventually_halt(self):
        spec, _, _ = run_consensus(10, 3, ones_fraction=0.5, strategy="consensus-split-vote", seed=13)
        # After deciding, nodes linger for one phase then halt; run() stops
        # at the decision, so step the network a bit further.
        for _ in range(2 * PHASE_LENGTH + 2):
            spec.network.step_round()
        assert all(spec.network.process(i).halted for i in spec.correct_ids)

    def test_output_is_stable_after_decision(self):
        spec, run, outputs = run_consensus(7, 2, ones_fraction=0.5, strategy="silent", seed=17)
        for _ in range(PHASE_LENGTH):
            spec.network.step_round()
        later = {i: spec.network.process(i).output for i in spec.correct_ids}
        assert later == outputs


class TestUnitLevel:
    def test_process_exposes_phase_and_nv(self, make_view):
        proc = ConsensusProcess(1, input_value=1)
        proc.step(make_view(1))
        assert proc.phase == 0
        assert proc.input_value == 1
        assert proc.opinion == 1
        assert proc.output is None

    def test_messages_from_unknown_senders_are_discarded(self):
        # A node that did not participate in initialization must not be able
        # to influence the counts (Algorithm 3's filtering rule).
        from repro.core.consensus import ConsensusInput
        from repro.sim import Inbox, RoundView

        proc = ConsensusProcess(1, input_value=0)
        proc.step(RoundView(1, Inbox.empty()))
        init_inbox = Inbox.from_pairs([(i, payload) for i in (1, 2, 3) for payload in proc._rotor.init_round_one()])
        proc.step(RoundView(2, init_inbox))
        proc.step(RoundView(3, Inbox.empty()))
        assert proc.nv == 3
        # Round 4 (phase round 2): 50 unknown senders flood input(1).
        flood = Inbox.from_pairs([(100 + i, ConsensusInput(1)) for i in range(50)])
        proc.step(RoundView(4, flood))
        assert proc.opinion == 0
