"""Legacy setup shim.

The execution environment is offline and its setuptools cannot build wheels
(PEP 517 editable installs need the ``wheel`` package).  Keeping a plain
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works without network access.  All project
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
