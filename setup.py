"""Packaging entry point.

The execution environment is offline and its setuptools cannot build wheels
(PEP 517 editable installs need the ``wheel`` package).  Keeping a plain
``setup.py`` lets ``pip install -e .`` fall back to the legacy
``setup.py develop`` path, which works without network access.
"""

from setuptools import find_packages, setup

setup(
    name="repro-idonly-byzantine",
    version="0.2.0",
    description=(
        "Reproduction of the id-only Byzantine agreement algorithms "
        "(synchronous round simulator, protocols, experiment harness)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    install_requires=["numpy"],
    extras_require={
        # property-based test layer (tests/test_properties.py)
        "test": ["pytest", "hypothesis>=6.100,<7"],
        # CI coverage gate (pytest --cov=repro)
        "cov": ["pytest-cov"],
        # pytest-benchmark timing for the per-experiment benchmarks
        "bench": ["pytest-benchmark"],
    },
)
