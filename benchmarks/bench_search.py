"""Scenario-search fan-out benchmark: wall-clock vs ``jobs``, plus the
membership-wire traffic comparison the ``message_volume`` objective ranks.

Two measurements land in ``BENCH_search.json``:

* **Fan-out speedup** — the same 50-candidate message-volume search over
  a churned total-order base (n=12, flash-crowd burst + exodus, 60
  rounds) at ``jobs=1`` and ``jobs=4``.  Candidate evaluation is the
  embarrassingly parallel part; mutation and scoring stay in the parent,
  so the two runs must return byte-identical results — the benchmark
  asserts it — and the roadmap tracks the jobs=4 speedup (target: ≥3×).
* **Wire formats** — the un-delta-coded membership plane (one unicast
  ack per member per joiner) against the :class:`DeltaFrame` wire on the
  same churn schedule: delivered messages, payload bytes and the
  ``message_volume`` score that makes the search prefer the unicast
  blowup as its top candidate.

Usage::

    PYTHONPATH=src python benchmarks/bench_search.py            # full run
    PYTHONPATH=src python benchmarks/bench_search.py --quick    # small budget
    PYTHONPATH=src python benchmarks/bench_search.py --budget 80 --jobs 8
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import ScenarioSpec  # noqa: E402
from repro.api.sweep import run_scenario  # noqa: E402
from repro.search import ScenarioSearch, evaluation_row, score_row  # noqa: E402

#: The heavy base: enough churn traffic per candidate that process
#: startup and pickling are noise next to simulation time.
BASE = ScenarioSpec(
    protocol="total-order",
    n=12,
    f=0,
    adversary="silent",
    seed=0,
    max_rounds=60,
    churn={
        "pattern": "flash-crowd",
        "rounds": 60,
        "burst_round": 6,
        "burst_size": 6,
        "burst_byzantine_fraction": 0.0,
        "exodus_round": 30,
        "exodus_fraction": 0.5,
    },
    params={"membership_wire": "delta"},
)

#: No adversary/size ops: candidates stay at n=12 and violation-free, so
#: the benchmark times pure candidate evaluation (no confirmation runs).
OPS = ("seed", "churn", "wire")


def run_search(budget: int, jobs: int, seed: int) -> tuple[dict, float]:
    search = ScenarioSearch(
        BASE,
        seed=seed,
        jobs=jobs,
        objective="message_volume",
        mutation_ops=OPS,
        code_version="bench",
    )
    start = time.perf_counter()
    result = search.run(budget)
    return result.as_dict(), time.perf_counter() - start


def wire_comparison() -> dict:
    rows = {}
    for wire in ("unicast", "delta"):
        spec = BASE.replace(params={"membership_wire": wire})
        outcome = run_scenario(spec, payload_accounting=True)
        row = evaluation_row(outcome)
        rows[wire] = {
            "messages": row["messages"],
            "payload_bytes": row["payload_bytes"],
            "peak_payload_bytes": row["peak_payload_bytes"],
            "message_volume_score": score_row(row, objective="message_volume"),
        }
    rows["unicast_extra_messages"] = (
        rows["unicast"]["messages"] - rows["delta"]["messages"]
    )
    rows["unicast_ranks_higher"] = (
        rows["unicast"]["message_volume_score"]
        > rows["delta"]["message_volume_score"]
    )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--budget", type=int, default=50,
                        help="candidate evaluations per search run")
    parser.add_argument("--jobs", type=int, default=4,
                        help="worker processes for the parallel run")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="small budget smoke (budget=10)")
    parser.add_argument("--out", default="BENCH_search.json",
                        help="output JSON path ('-' for stdout)")
    args = parser.parse_args(argv)
    budget = 10 if args.quick else args.budget

    print(f"search fan-out: budget={budget} base=total-order n={BASE.n} "
          f"objective=message_volume", file=sys.stderr)
    serial, serial_s = run_search(budget, 1, args.seed)
    print(f"  jobs=1: {serial_s:.1f}s", file=sys.stderr)
    parallel, parallel_s = run_search(budget, args.jobs, args.seed)
    print(f"  jobs={args.jobs}: {parallel_s:.1f}s", file=sys.stderr)

    # The whole contract: parallelism changes wall-clock, nothing else.
    for result in (serial, parallel):
        result.pop("executed", None)
        result.pop("cached", None)
    identical = json.dumps(serial, sort_keys=True) == json.dumps(
        parallel, sort_keys=True
    )
    if not identical:
        print("FATAL: jobs=1 and parallel results differ", file=sys.stderr)
        return 1
    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    cpus = os.cpu_count() or 1
    print(f"  speedup: {speedup:.2f}x (identical results)", file=sys.stderr)
    if cpus < args.jobs:
        # map_jobs clamps workers to the core count, so on a starved box
        # the parallel run measures pool overhead, not fan-out.
        print(f"  note: only {cpus} cpu(s) — jobs={args.jobs} cannot "
              "speed up here; the ≥3x roadmap target assumes ≥4 cores",
              file=sys.stderr)

    wires = wire_comparison()
    print(f"wire formats: unicast {wires['unicast']['messages']} msgs vs "
          f"delta {wires['delta']['messages']} msgs "
          f"({wires['unicast_extra_messages']} acks delta-coded away)",
          file=sys.stderr)

    report = {
        "benchmark": "search-fanout",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": cpus,
        "cpu_bound": cpus < args.jobs,
        "budget": budget,
        "jobs": args.jobs,
        "serial_seconds": round(serial_s, 3),
        "parallel_seconds": round(parallel_s, 3),
        "speedup": round(speedup, 3),
        "results_identical": identical,
        "best_score": serial["best_score"],
        "best_membership_wire": (serial["best_spec"] or {})
        .get("params", {})
        .get("membership_wire"),
        "wire_comparison": wires,
    }
    payload = json.dumps(report, indent=2)
    if args.out == "-":
        print(payload)
    else:
        Path(args.out).write_text(payload + "\n")
        print(f"report written to {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
