"""E8 — dynamic total ordering: chain-prefix and chain-growth under churn (Theorem 6)."""

from conftest import rate


def test_e8_total_order(run_one):
    result = run_one("E8")
    assert rate(result.rows, "chain_prefix") == 1.0
    assert rate(result.rows, "chain_grew") == 1.0
