"""A2 — ablation: classic known-f reliable broadcast vs a wrong fault bound."""

from repro.harness.ablations import a2_misconfigured_fault_bound


def test_a2_misconfigured_fault_bound(benchmark):
    result = benchmark.pedantic(a2_misconfigured_fault_bound, rounds=1, iterations=1)
    by_f = {row["assumed_f"]: row for row in result.rows}
    # Correctly configured (assumed_f >= real f): no forgeries.
    assert by_f[3]["classic_accepts_forgery"] == 0.0
    # Underestimated f: forgeries get accepted by the classic algorithm…
    assert by_f[0]["classic_accepts_forgery"] > 0.0
    # …while the id-only algorithm never accepts one on the same workload.
    assert all(row["id_only_accepts_forgery"] == 0.0 for row in result.rows)
