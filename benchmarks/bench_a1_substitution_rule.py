"""A1 — ablation: the narrow substitution rule is required for agreement."""

from repro.harness.ablations import a1_substitution_rule


def test_a1_substitution_rule(benchmark):
    result = benchmark.pedantic(a1_substitution_rule, rounds=1, iterations=1)
    narrow = [r for r in result.rows if r["substitution"] == "narrow"]
    broad = [r for r in result.rows if r["substitution"] == "broad"]
    assert all(r["agreement"] == 1.0 for r in narrow)
    # The broad rule must be demonstrably unsound (agreement fails somewhere).
    assert any(r["agreement"] < 1.0 for r in broad)
