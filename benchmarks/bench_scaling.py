"""Round-throughput scaling benchmark for the two-tier round engine.

Sweeps ``n`` over the seven id-only protocols and measures round
throughput (simulated rounds per wall-clock second, excluding system
build time) for the selected engines:

* ``vector`` — the columnar synchronous path (``engine="auto"`` resolves
  to this for every synchronous scenario, i.e. all real workloads):
  shared broadcast rounds become a ``ColumnarInbox`` and the protocol
  math consumes numpy batch tallies (``tally_backend: "numpy"``);
* ``fast``   — the object-plane synchronous fast path (same staging and
  shared-inbox memoisation, scalar tallies);
* ``queue``  — the round-bucketed envelope queue (general delay models);
* ``legacy`` — the pre-bucketing single-list engine, kept as the
  performance baseline.

Every cell runs the *same* scenario (same spec, same seed, same round
cap) on every engine, and the engines are bit-identical by construction
(see ``tests/test_engine_equivalence.py``), so the throughput ratios are
pure engine overhead — protocol logic included in both numerators and
denominators.  Results land in ``BENCH_scaling.json`` together with the
fast/legacy speedups and the headline ratio the roadmap tracks (minimum
speedup at n=500 on the E1/E3-style workloads).

Usage::

    PYTHONPATH=src python benchmarks/bench_scaling.py                 # full sweep
    PYTHONPATH=src python benchmarks/bench_scaling.py --quick         # n=50 smoke
    PYTHONPATH=src python benchmarks/bench_scaling.py --sizes 50,100 --engines vector,fast
    PYTHONPATH=src python benchmarks/bench_scaling.py --xl            # adds n=2000,5000,10000
    PYTHONPATH=src python benchmarks/bench_scaling.py --profile       # per-phase seconds
    PYTHONPATH=src python benchmarks/bench_scaling.py --store bench.db  # resumable

With ``--store PATH`` every measured cell is persisted to a
:class:`repro.store.RunStore` under its (spec, engine, code-version) run
key; re-running the benchmark against the same store skips cells that
were already measured under the current code version (marked
``"cached": true`` in the JSON) and the report gains a ``store`` section
with the ran/skipped counts.  Editing the simulator changes the code
fingerprint, so stale timings are never reused silently.  Timings are
machine- and load-dependent, of course — the cache exists to make a
long sweep interruptible, not to claim timings are reproducible.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import ScenarioSpec  # noqa: E402
from repro.api.registry import REGISTRY  # noqa: E402
from repro.api.sweep import resolve_stop  # noqa: E402
from repro.core import tally  # noqa: E402
from repro.store import (  # noqa: E402
    DEFAULT_SEGMENT_EVENTS,
    RunRecord,
    RunStore,
    code_fingerprint,
    json_normalize,
    run_key,
)

#: Bench rows live under their own row-function label so they never collide
#: with sweep rows for the same (spec, engine, code-version) key.
BENCH_ROW_FN = "bench_cell"

DEFAULT_SIZES = (50, 100, 250, 500, 1000)
#: ``--xl`` appends these; only the synchronous kernels run there (the
#: per-workload caps below keep the sweep duration sane — skipped cells
#: are recorded, not dropped).
XL_SIZES = (2000, 5000, 10000)
DEFAULT_ENGINES = ("vector", "fast", "queue", "legacy")

#: The seven id-only protocols (Algorithms 1–6 plus the iterated variant).
#:
#: ``rounds`` caps each measurement; every engine in a (protocol, n) cell
#: pair runs the *same* spec with the same cap, so round caps cancel out of
#: every speedup ratio.  ``rounds_large`` = (n_threshold, rounds) shrinks
#: the cap at large n for the heaviest initialization phases (kept from the
#: pre-wire-format sweeps so per-cell rounds/s stay comparable across PRs).
#: ``caps`` bounds the n the slow reference engines are run at; skipped
#: cells are recorded in the JSON rather than silently dropped.  The
#: delta-coded candidate gossip (one ``CandidateGossip`` per node per round
#: instead of one ``RotorEcho`` per candidate) uncapped the rotor
#: reference engines: the echo wave fell from O(n³) to O(n²) wire
#: messages, so the queue/legacy kernels that previously needed 697 s /
#: 859 s for a single rotor n=500 cell now run it in seconds.
WORKLOADS: dict[str, dict] = {
    # The fast/vector caps only matter for the ``--xl`` sizes: the
    # columnar vector kernel carries reliable broadcast all the way to
    # n=10,000 (the roadmap north-star cell), while the object-plane fast
    # kernel and the heavier protocols stop where a cell would take
    # minutes instead of seconds.
    "reliable-broadcast": {
        "rounds": 4,
        "caps": {"queue": 1000, "legacy": 500, "fast": 2000},
    },
    "rotor-coordinator": {
        "rounds": 6,
        "rounds_large": (500, 4),
        "caps": {"queue": 1000, "legacy": 500, "fast": 1000, "vector": 5000},
    },
    "consensus": {
        "rounds": 5,
        "rounds_large": (500, 2),
        "caps": {"queue": 500, "legacy": 500, "fast": 1000, "vector": 5000},
    },
    "approximate-agreement": {
        "rounds": 4,
        "caps": {"queue": 500, "legacy": 500, "fast": 2000, "vector": 5000},
    },
    "iterated-approximate-agreement": {
        "rounds": 6,
        "params": {"iterations": 3},
        "caps": {"queue": 500, "legacy": 500, "fast": 2000, "vector": 5000},
    },
    "parallel-consensus": {
        "rounds": 5,
        "rounds_large": (500, 3),
        "params": {"k_instances": 4},
        "caps": {"queue": 250, "legacy": 250, "fast": 1000, "vector": 2000},
    },
    # The instance-lifecycle rewrite (quiescent decided instances, one
    # batched PCBatch broadcast per round, inbox-memoized routing/scan
    # indexes) uncapped the fast path: total-order completes the full
    # sweep.  The reference engines hand every node a private inbox, so
    # the shared-index memoisation cannot help them and their per-node
    # routing cost stays superlinear — they remain capped (measured:
    # queue 170 s / legacy 115 s for the n=250 cell).
    "total-order": {
        "rounds": 6,
        "churn": {"rounds": 6},
        "caps": {"queue": 100, "legacy": 250, "fast": 1000, "vector": 2000},
    },
}

#: The E1/E3-style workloads the acceptance headline is computed over.
HEADLINE_PROTOCOLS = ("reliable-broadcast", "consensus")
HEADLINE_N = 500

#: Fast-path rounds/s at n=1000 recorded in ``BENCH_scaling.json``
#: immediately before the vector kernel landed (seed 7, same specs and
#: round caps).  The ``vector_over_prev_fast`` speedups are computed
#: against these pins — the in-run fast kernel also consumes the shared
#: memoized tallies now, so comparing against it would understate what
#: the columnar round plane bought over the previously shipped engine.
#: Regenerate only by checking out the pre-vector revision.
PRE_VECTOR_FAST_BASELINE: dict[tuple[str, int], float] = {
    ("reliable-broadcast", 1000): 11.446,
    ("rotor-coordinator", 1000): 7.658,
    ("consensus", 1000): 29.903,
    ("approximate-agreement", 1000): 22.042,
    ("iterated-approximate-agreement", 1000): 13.159,
    ("parallel-consensus", 1000): 4.798,
    ("total-order", 1000): 0.215,
}

#: Traced fast cells are capped by default when no store is given: an
#: in-memory traced run keeps every delivered message in the trace store,
#: so memory grows with n² × rounds.  With ``--store`` the traced cells
#: spill sealed segments to the run store as the run executes (peak trace
#: memory = one segment) and the cap lifts — the full n∈{50..1000} sweep
#: records traced twins.
DEFAULT_TRACE_MAX_N = 250

#: Traced fast-path round throughput of the *object-per-event* Trace
#: backend (one frozen ``TraceEvent`` dataclass per sent/delivered
#: message), measured on this machine immediately before the columnar
#: rewrite with the same specs/seed/round caps as the traced cells below
#: (seed 7, ``--trace``).  The columnar backend's ``trace_speedups``
#: section is computed against these pins; regenerate them only by
#: checking out the pre-columnar revision.
OBJECT_BACKEND_TRACED_BASELINE: dict[tuple[str, int], float] = {
    # (protocol, n): traced fast-path rounds/s, object backend, 2026-07-28.
    # Untraced twins on the same run: rotor 812.2 / 161.2, consensus
    # 559.2 / 103.7, total-order 31.8 rounds/s — i.e. tracing cost a
    # ~12-14x slowdown on the broadcast-heavy workloads.
    ("rotor-coordinator", 100): 61.7,
    ("rotor-coordinator", 250): 11.8,
    ("consensus", 100): 48.9,
    ("consensus", 250): 7.2,
    ("total-order", 100): 12.6,
}


def measured_rounds(protocol: str, n: int) -> int:
    workload = WORKLOADS[protocol]
    threshold, large = workload.get("rounds_large", (None, None))
    if threshold is not None and n >= threshold:
        return large
    return workload["rounds"]


def engine_cap(protocol: str, engine: str) -> int | None:
    return WORKLOADS[protocol].get("caps", {}).get(engine)


def make_spec(protocol: str, n: int, seed: int, *, trace: bool = False) -> ScenarioSpec:
    workload = WORKLOADS[protocol]
    rounds = measured_rounds(protocol, n)
    churn = dict(workload["churn"], rounds=rounds) if "churn" in workload else None
    return ScenarioSpec(
        protocol=protocol,
        n=n,
        f=(n - 1) // 3,
        adversary="silent",
        seed=seed,
        max_rounds=rounds,
        churn=churn,
        params=workload.get("params", {}),
        stop="never",
        trace=trace,
    )


def bench_cell(
    spec: ScenarioSpec,
    engine: str,
    *,
    spill_store: "RunStore | None" = None,
    version: str = "",
    segment_events: int = DEFAULT_SEGMENT_EVENTS,
    profile: bool = False,
) -> dict:
    """Build the system, run the capped scenario, time the run only.

    For traced specs with ``spill_store``, the trace spills sealed
    segments into the store *during* the run (keyed by the cell's run
    key), so peak trace memory is bounded by one segment and the timing
    includes the in-run persistence cost — the thing the spilled sweep
    actually measures.

    With ``profile``, the cell gains a per-phase wall-clock breakdown:
    stage/deliver/step seconds from the engine's round loop (structured
    kernels only — the legacy oracle is not instrumented) plus the
    seconds spent building inbox tallies inside ``repro.core.tally``
    (counted within ``step_seconds``, broken out for attribution).
    """

    system = REGISTRY.build(spec, engine=engine)
    spilled = False
    if spill_store is not None and spec.trace:
        key = run_key(spec, engine=engine, code_version=version)
        system.network.enable_trace_spill(
            spill_store.trace_sink(key), segment_events=segment_events
        )
        spilled = True
    if profile:
        system.network.enable_phase_profile()
        tally.reset_profile()
    start = time.perf_counter()
    result = system.network.run(
        max_rounds=spec.max_rounds, stop_when=resolve_stop(spec)
    )
    elapsed = time.perf_counter() - start
    cell = {
        "protocol": spec.protocol,
        "n": spec.n,
        "engine": engine,
        "tally_backend": system.network.tally_backend(),
        "rounds": result.rounds_executed,
        "messages": result.metrics.total_messages,
        "seconds": round(elapsed, 6),
        "rounds_per_sec": round(result.rounds_executed / elapsed, 3) if elapsed else None,
        "messages_per_sec": round(result.metrics.total_messages / elapsed, 1)
        if elapsed
        else None,
    }
    if profile:
        phases = system.network.phase_profile() or {}
        snapshot = tally.profile_snapshot()
        cell["profile"] = {
            "stage_seconds": round(phases.get("stage", 0.0), 6),
            "deliver_seconds": round(phases.get("deliver", 0.0), 6),
            "step_seconds": round(phases.get("step", 0.0), 6),
            "tally_seconds": round(snapshot["seconds"], 6),
            "tally_builds": snapshot["builds"],
        }
    if spec.trace:
        cell["trace"] = True
        cell["trace_events"] = len(result.trace)
        if spilled:
            cell["trace_spilled"] = True
            cell["trace_segments"] = result.trace.segment_count
    return cell


def measure_wire_volume(spec: ScenarioSpec) -> dict:
    """Run the cell once more with payload accounting to size the traffic.

    Wire volume is a property of the *scenario*, not the kernel — every
    engine moves the same payloads to the same destinations — so one
    instrumented fast-path run per (protocol, n) prices the whole cell
    group.  It runs separately from the timed cells because sizing a
    payload costs a pickle per send action.
    """

    system = REGISTRY.build(spec, engine="fast")
    system.network.enable_payload_accounting()
    result = system.network.run(
        max_rounds=spec.max_rounds, stop_when=resolve_stop(spec)
    )
    return {
        "message_bytes": result.metrics.total_payload_bytes,
        "peak_payload_bytes": result.metrics.peak_payload_bytes,
    }


def _load_cached_cell(store, spec: ScenarioSpec, engine: str, version: str) -> dict | None:
    """A previously measured cell for this (spec, engine, code-version), if any."""

    if store is None:
        return None
    row = store.get_row(
        run_key(spec, engine=engine, code_version=version), BENCH_ROW_FN
    )
    return dict(row, cached=True) if row is not None else None


def _persist_cell(store, spec: ScenarioSpec, engine: str, version: str, cell: dict, counts: dict) -> dict:
    """Store one measured cell (after the wire-volume merge) as a bench row."""

    if store is None:
        return cell
    cell = json_normalize(cell)
    record = RunRecord(
        run_key=run_key(spec, engine=engine, code_version=version),
        spec_dict=spec.to_dict(),
        spec_digest=spec.digest(),
        engine=engine,
        code_version=version,
        summary={k: cell[k] for k in ("rounds", "messages", "seconds") if k in cell},
        rounds_executed=int(cell.get("rounds", 0)),
        stop_reason="max_rounds",
        elapsed_seconds=cell.get("seconds"),
        trace_spilled=bool(cell.get("trace_spilled")),
    )
    store.put_run(record, row=cell, row_fn=BENCH_ROW_FN)
    counts["ran"] += 1
    return cell


def run_sweep(
    sizes,
    engines,
    protocols,
    *,
    legacy_max_n: int,
    seed: int,
    wire_volume: bool = True,
    trace: bool = False,
    trace_max_n: "int | None" = None,
    segment_events: int = DEFAULT_SEGMENT_EVENTS,
    store: "RunStore | None" = None,
    profile: bool = False,
) -> dict:
    version = code_fingerprint() if store is not None else ""
    counts = {"ran": 0, "skipped": 0}
    # Without a store, traced cells hold the whole trace in memory, so the
    # default cap applies; with a store they spill segment-by-segment and
    # the sweep is traced end to end unless the caller caps explicitly.
    if trace_max_n is None:
        trace_max_n = DEFAULT_TRACE_MAX_N if store is None else max(sizes)

    def from_cache(spec: ScenarioSpec, engine: str, label: str) -> dict | None:
        cached = _load_cached_cell(store, spec, engine, version)
        if cached is not None:
            counts["skipped"] += 1
            print(
                f"{spec.protocol:32s} n={spec.n:5d} {label:6s} cached "
                f"({cached['rounds']} rounds, {cached['seconds']}s stored)",
                file=sys.stderr,
                flush=True,
            )
        return cached

    cells: list[dict] = []
    for protocol in protocols:
        for n in sizes:
            spec = make_spec(protocol, n, seed)
            # Sized lazily: cap-skipped cell groups must not pay for (or
            # discard) an instrumented run nothing will report.
            volume: dict | None = None
            for engine in engines:
                cap = engine_cap(protocol, engine)
                if engine == "legacy":
                    cap = min(legacy_max_n, cap if cap is not None else legacy_max_n)
                if cap is not None and n > cap:
                    # the reference engines take minutes-to-hours per cell at
                    # these sizes (see the WORKLOADS note); record the skip
                    # instead of silently shrinking coverage.  Cap skips are
                    # a sweep-configuration choice, not a measurement — they
                    # are never written to the store.
                    cells.append(
                        {
                            "protocol": protocol,
                            "n": n,
                            "engine": engine,
                            "skipped": f"{engine} capped at n<={cap} for {protocol}",
                        }
                    )
                    continue
                cached = from_cache(spec, engine, engine)
                if cached is not None:
                    cells.append(cached)
                    continue
                cell = bench_cell(spec, engine, profile=profile)
                if wire_volume:
                    if volume is None:
                        volume = measure_wire_volume(spec)
                    cell.update(volume)
                cell = _persist_cell(store, spec, engine, version, cell, counts)
                cells.append(cell)
                # progress goes to stderr so `--out -` emits clean JSON
                print(
                    f"{protocol:32s} n={n:5d} {engine:6s} "
                    f"{cell['rounds']:3d} rounds in {cell['seconds']:8.3f}s "
                    f"({cell['rounds_per_sec']:>10.1f} rounds/s)",
                    file=sys.stderr,
                    flush=True,
                )
            if trace and "fast" in engines and n <= trace_max_n:
                # The traced twin of the fast cell: same spec/seed/round cap
                # with `trace=True`, so traced/untraced ratios are pure trace
                # backend overhead.
                traced_spec = make_spec(protocol, n, seed, trace=True)
                traced_cell = from_cache(traced_spec, "fast", "fast+t")
                if traced_cell is None:
                    traced_cell = bench_cell(
                        traced_spec,
                        "fast",
                        spill_store=store,
                        version=version,
                        segment_events=segment_events,
                        profile=profile,
                    )
                    traced_cell = _persist_cell(
                        store, traced_spec, "fast", version, traced_cell, counts
                    )
                    spill_note = (
                        f", {traced_cell['trace_segments']} segments spilled"
                        if traced_cell.get("trace_spilled")
                        else ""
                    )
                    print(
                        f"{protocol:32s} n={n:5d} fast+trace "
                        f"{traced_cell['rounds']:3d} rounds in "
                        f"{traced_cell['seconds']:8.3f}s "
                        f"({traced_cell['rounds_per_sec']:>10.1f} rounds/s, "
                        f"{traced_cell['trace_events']} events{spill_note})",
                        file=sys.stderr,
                        flush=True,
                    )
                cells.append(traced_cell)

    by_key = {
        (c["protocol"], c["n"], c["engine"], bool(c.get("trace"))): c
        for c in cells
        if "skipped" not in c
    }
    speedups = []
    trace_speedups = []
    for protocol in protocols:
        for n in sizes:
            fast = by_key.get((protocol, n, "fast", False))
            legacy = by_key.get((protocol, n, "legacy", False))
            vector = by_key.get((protocol, n, "vector", False))
            entry = {"protocol": protocol, "n": n}
            if fast and legacy and legacy["seconds"] and fast["rounds_per_sec"]:
                entry["fast_over_legacy"] = round(
                    fast["rounds_per_sec"] / legacy["rounds_per_sec"], 2
                )
            if vector and vector["rounds_per_sec"]:
                if fast and fast["rounds_per_sec"]:
                    entry["vector_over_fast"] = round(
                        vector["rounds_per_sec"] / fast["rounds_per_sec"], 2
                    )
                if legacy and legacy["rounds_per_sec"]:
                    entry["vector_over_legacy"] = round(
                        vector["rounds_per_sec"] / legacy["rounds_per_sec"], 2
                    )
                pinned = PRE_VECTOR_FAST_BASELINE.get((protocol, n))
                if pinned:
                    entry["prev_fast_rounds_per_sec"] = pinned
                    entry["vector_over_prev_fast"] = round(
                        vector["rounds_per_sec"] / pinned, 2
                    )
            if len(entry) > 2:
                speedups.append(entry)
            traced = by_key.get((protocol, n, "fast", True))
            if traced and traced["rounds_per_sec"]:
                entry = {
                    "protocol": protocol,
                    "n": n,
                    "trace_events": traced["trace_events"],
                    "traced_rounds_per_sec": traced["rounds_per_sec"],
                }
                if fast and fast["rounds_per_sec"]:
                    entry["traced_over_untraced"] = round(
                        traced["rounds_per_sec"] / fast["rounds_per_sec"], 3
                    )
                baseline = OBJECT_BACKEND_TRACED_BASELINE.get((protocol, n))
                if baseline:
                    entry["object_backend_rounds_per_sec"] = baseline
                    entry["columnar_over_object_backend"] = round(
                        traced["rounds_per_sec"] / baseline, 2
                    )
                trace_speedups.append(entry)

    headline = [
        s["fast_over_legacy"]
        for s in speedups
        if s["n"] == HEADLINE_N
        and s["protocol"] in HEADLINE_PROTOCOLS
        and "fast_over_legacy" in s
    ]
    # The vector acceptance bar: protocols whose columnar kernel clears
    # 10x the *previously shipped* fast path at n=1000 (the pinned
    # PRE_VECTOR_FAST_BASELINE numbers, not the in-run fast cells).
    vector_wins = sorted(
        s["protocol"]
        for s in speedups
        if s["n"] == 1000 and s.get("vector_over_prev_fast", 0.0) >= 10.0
    )
    report = {
        "benchmark": "bench_scaling",
        "description": (
            "Round throughput of the columnar vector kernel and the "
            "synchronous fast path vs the bucketed queue and the pre-PR "
            "legacy engine; identical scenarios per cell. "
            "message_bytes / peak_payload_bytes size the wire traffic "
            "(serialised payload bytes x copies; engine-independent, measured "
            "on a separate instrumented fast-path run per (protocol, n))."
        ),
        "python": platform.python_version(),
        "seed": seed,
        "sizes": list(sizes),
        "engines": list(engines),
        "cells": cells,
        "speedups": speedups,
        "trace_speedups": trace_speedups,
        "headline": {
            "metric": f"min fast/legacy round-throughput at n={HEADLINE_N} "
            f"over {', '.join(HEADLINE_PROTOCOLS)}",
            "value": min(headline) if headline else None,
            "target": 5.0,
        },
        "vector_headline": {
            "metric": "protocols with vector >= 10x the pre-vector fast "
            "path at n=1000 (vs the pinned PRE_VECTOR_FAST_BASELINE)",
            "target": 10.0,
            "protocols": vector_wins,
            "count": len(vector_wins),
        },
    }
    if store is not None:
        # ran/skipped count *measurements* only; cap-skipped cells are a
        # sweep-configuration choice and never enter the store accounting.
        measured = sum(1 for c in cells if "skipped" not in c)
        if counts["ran"] + counts["skipped"] != measured:
            raise RuntimeError(
                f"store bookkeeping drifted: ran={counts['ran']} + "
                f"skipped={counts['skipped']} != {measured} measured cells"
            )
        report["store"] = {
            "path": store.path,
            "code_version": version,
            "ran": counts["ran"],
            "skipped": counts["skipped"],
            "measured": measured,
        }
    return report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--sizes", default=None, help="comma-separated n values (default: 50,100,250,500,1000)"
    )
    parser.add_argument(
        "--engines",
        default=None,
        help="comma-separated engines (default: vector,fast,queue,legacy)",
    )
    parser.add_argument(
        "--protocols", default=None, help="comma-separated protocol subset (default: all seven)"
    )
    parser.add_argument(
        "--legacy-max-n",
        type=int,
        default=500,
        help="skip legacy cells above this n (default: 500)",
    )
    parser.add_argument("--seed", type=int, default=7, help="scenario seed (default: 7)")
    parser.add_argument(
        "--out", default="BENCH_scaling.json", help="output JSON path ('-' for stdout)"
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="n=50 smoke run (CI): all protocols, vector+fast+legacy only",
    )
    parser.add_argument(
        "--xl",
        action="store_true",
        help="append the XL sizes "
        f"({','.join(map(str, XL_SIZES))}) to the sweep; only the vector "
        "kernel is uncapped there (see the WORKLOADS caps)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="record a per-cell phase breakdown (stage/deliver/step/tally "
        "seconds) for the structured engines",
    )
    parser.add_argument(
        "--no-bytes",
        action="store_true",
        help="skip the instrumented wire-volume pass (message_bytes columns)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="also run a traced twin of every fast cell (trace=True, same spec)",
    )
    parser.add_argument(
        "--trace-max-n",
        type=int,
        default=None,
        help="skip traced cells above this n (default: "
        f"{DEFAULT_TRACE_MAX_N} in-memory; uncapped with --store, where "
        "traced cells spill segments to the store as they run)",
    )
    parser.add_argument(
        "--segment-events",
        type=int,
        default=DEFAULT_SEGMENT_EVENTS,
        metavar="N",
        help="events per spilled trace segment (traced cells with --store; "
        f"default: {DEFAULT_SEGMENT_EVENTS})",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="cache measured cells in a run store; cells already measured "
        "under the current code version are reused instead of re-run",
    )
    args = parser.parse_args(argv)

    sizes = (
        (50,)
        if args.quick and args.sizes is None
        else tuple(int(s) for s in (args.sizes or ",".join(map(str, DEFAULT_SIZES))).split(","))
    )
    if args.xl:
        sizes = sizes + tuple(n for n in XL_SIZES if n not in sizes)
    engines = (
        ("vector", "fast", "legacy")
        if args.quick and args.engines is None
        else tuple(e.strip() for e in (args.engines or ",".join(DEFAULT_ENGINES)).split(","))
    )
    protocols = tuple(
        p.strip() for p in (args.protocols or ",".join(WORKLOADS)).split(",")
    )
    for protocol in protocols:
        if protocol not in WORKLOADS:
            parser.error(f"unknown protocol {protocol!r}; known: {', '.join(WORKLOADS)}")

    store = RunStore(args.store) if args.store else None
    try:
        report = run_sweep(
            sizes,
            engines,
            protocols,
            legacy_max_n=args.legacy_max_n,
            seed=args.seed,
            wire_volume=not args.no_bytes,
            trace=args.trace,
            trace_max_n=args.trace_max_n,
            segment_events=args.segment_events,
            store=store,
            profile=args.profile,
        )
    finally:
        if store is not None:
            store.close()
    payload = json.dumps(report, indent=2)
    if args.out == "-":
        print(payload)
    else:
        Path(args.out).write_text(payload + "\n")
        print(f"wrote {args.out}")
    value = report["headline"]["value"]
    if value is not None:
        print(f"headline: {value:.2f}x fast over legacy (target >= 5x)")
    vector_wins = report["vector_headline"]["protocols"]
    if vector_wins:
        print(
            f"vector headline: {len(vector_wins)} protocol(s) >= 10x the "
            f"pre-vector fast path at n=1000: {', '.join(vector_wins)}"
        )
    if "store" in report:
        print(
            f"store: {report['store']['ran']} cells measured, "
            f"{report['store']['skipped']} served from {report['store']['path']}"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
