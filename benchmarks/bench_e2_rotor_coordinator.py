"""E2 — rotor-coordinator: O(n) termination and good rounds (Theorem 2)."""

from conftest import rate


def test_e2_rotor_coordinator(run_one):
    result = run_one("E2")
    assert rate(result.rows, "terminated") == 1.0
    assert rate(result.rows, "good_round") == 1.0
    # O(n): the rounds/n ratio stays bounded by a small constant across sizes.
    assert max(row["rounds_over_n"] for row in result.rows) < 3.0
