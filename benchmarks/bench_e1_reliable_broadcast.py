"""E1 — reliable broadcast: Theorem 1's three properties across n, f and adversaries."""

from conftest import rate


def test_e1_reliable_broadcast(run_one):
    result = run_one("E1")
    assert result.rows
    assert rate(result.rows, "correctness") == 1.0
    assert rate(result.rows, "relay") == 1.0
    assert rate(result.rows, "no_forgery") == 1.0
