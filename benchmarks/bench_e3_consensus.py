"""E3 — consensus: agreement, validity and O(f) rounds (Theorem 3)."""

from conftest import rate


def test_e3_consensus(run_one):
    result = run_one("E3")
    assert rate(result.rows, "agreement") == 1.0
    assert rate(result.rows, "validity") == 1.0
