"""E7 — parallel consensus: validity/agreement/termination across k instances (Theorem 5)."""

from conftest import rate


def test_e7_parallel_consensus(run_one):
    result = run_one("E7")
    assert rate(result.rows, "terminated") == 1.0
    assert rate(result.rows, "agreement") == 1.0
    assert rate(result.rows, "validity") == 1.0
