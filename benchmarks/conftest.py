"""Shared helpers for the benchmark suite.

Each benchmark module regenerates one experiment from DESIGN.md §2 (the
paper has no numerical tables/figures, so these experiments *are* the
evaluation).  ``pytest-benchmark`` measures the wall-clock cost of one full
experiment sweep; the benchmark body also asserts the experiment's headline
property so a regression in correctness fails the benchmark run, not just
the timing.

The experiments run through the declarative sweep engine, so the benchmarks
can fan scenarios out over worker processes without changing the measured
results — set ``REPRO_BENCH_JOBS=N`` to measure the parallel path (the
aggregated rows are bit-identical for any N).

Run with::

    pytest benchmarks/ --benchmark-only
    REPRO_BENCH_JOBS=8 pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import os

import pytest

from repro.harness import run_experiment

#: Worker processes per experiment sweep (1 = sequential, the default).
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


@pytest.fixture
def run_one(benchmark):
    """Run an experiment exactly once under the benchmark timer."""

    def _run(experiment_id: str, scale: int = 1):
        return benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": scale, "jobs": BENCH_JOBS},
            rounds=1,
            iterations=1,
        )

    return _run


def rate(rows, column):
    """Average value of a rate column across aggregated rows."""

    values = [row[column] for row in rows if column in row]
    return sum(values) / len(values) if values else float("nan")
