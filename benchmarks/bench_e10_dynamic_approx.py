"""E10 — iterated approximate agreement under churn keeps contracting the range."""

from conftest import rate


def test_e10_dynamic_approx(run_one):
    result = run_one("E10")
    assert rate(result.rows, "contracted") == 1.0
    assert rate(result.rows, "outputs_in_range") == 1.0
