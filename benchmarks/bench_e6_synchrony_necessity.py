"""E6 — synchrony necessity: the Lemma 14/15 executions disagree; the synchronous control agrees."""


def test_e6_synchrony_necessity(run_one):
    result = run_one("E6")
    by_model = {row["model"]: row for row in result.rows}
    assert by_model["asynchronous"]["disagreement"] == 1.0
    assert by_model["semi-synchronous"]["disagreement"] == 1.0
    assert by_model["synchronous-control"]["agreement"] == 1.0
