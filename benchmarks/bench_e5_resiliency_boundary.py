"""E5 — resiliency boundary: guarantees hold iff n > 3f."""


def test_e5_resiliency_boundary(run_one):
    result = run_one("E5")
    inside = [r for r in result.rows if r["resilient_config"]]
    outside = [r for r in result.rows if not r["resilient_config"]]
    assert all(r["agreement"] == 1.0 for r in inside)
    # Outside the paper's assumption the adversary wins at least sometimes.
    assert any(r["agreement"] < 1.0 or r["validity"] < 1.0 for r in outside)
