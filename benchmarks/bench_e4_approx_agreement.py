"""E4 — approximate agreement: range containment and per-round halving (Theorem 4)."""

from conftest import rate


def test_e4_approximate_agreement(run_one):
    result = run_one("E4")
    assert rate(result.rows, "outputs_in_range") == 1.0
    assert rate(result.rows, "range_reduced") == 1.0
    assert max(row["per_round_contraction"] for row in result.rows) <= 0.5 + 1e-9
