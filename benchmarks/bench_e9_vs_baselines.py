"""E9 — id-only vs classic known-(n, f) algorithms: complexity essentially unchanged."""

from conftest import rate


def test_e9_vs_baselines(run_one):
    result = run_one("E9")
    assert rate(result.rows, "cons_idonly_agree") == 1.0
    assert rate(result.rows, "cons_classic_agree") == 1.0
    # Message complexity of reliable broadcast stays within a small constant
    # factor of the classic algorithm (the paper argues it is unchanged).
    assert all(row["rb_msg_ratio"] < 2.0 for row in result.rows)
    # The id-only consensus pays at most a small constant-factor round
    # overhead for the embedded rotor-coordinator.
    for row in result.rows:
        assert row["cons_idonly_rounds"] <= 3 * row["cons_classic_rounds"] + 10
