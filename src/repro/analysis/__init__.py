"""Experiment analysis: statistics, property checkers and table rendering."""

from .properties import (
    approx_outputs_in_range,
    approx_range_reduced,
    chain_common_prefix_length,
    chains_are_prefixes,
    consensus_agreement,
    consensus_validity,
    reliable_broadcast_correctness,
    reliable_broadcast_relay,
    rotor_good_round_exists,
)
from .stats import aggregate_rows, fraction_true, mean, stdev, summarize
from .tables import format_cell, render_markdown_table, render_table

__all__ = [
    "aggregate_rows",
    "approx_outputs_in_range",
    "approx_range_reduced",
    "chain_common_prefix_length",
    "chains_are_prefixes",
    "consensus_agreement",
    "consensus_validity",
    "format_cell",
    "fraction_true",
    "mean",
    "reliable_broadcast_correctness",
    "reliable_broadcast_relay",
    "render_markdown_table",
    "render_table",
    "rotor_good_round_exists",
    "stdev",
    "summarize",
]
