"""Checkers for the correctness properties the paper's theorems state.

These are shared between the test suite and the experiment harness so that
"the property held in this run" means the same thing in both places.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

from ..core.reliable_broadcast import ReliableBroadcastProcess
from ..core.rotor_coordinator import RotorCoordinatorProcess
from ..core.total_order import ChainEntry
from ..sim.messages import NodeId

__all__ = [
    "consensus_agreement",
    "consensus_validity",
    "reliable_broadcast_correctness",
    "reliable_broadcast_relay",
    "rotor_good_round_exists",
    "approx_outputs_in_range",
    "approx_range_reduced",
    "chains_are_prefixes",
    "chain_common_prefix_length",
]


# -- consensus --------------------------------------------------------------------


def consensus_agreement(outputs: Mapping[NodeId, Hashable]) -> bool:
    """Every correct node decided and all decisions are equal."""

    values = list(outputs.values())
    return bool(values) and all(v is not None for v in values) and len(set(values)) == 1


def consensus_validity(
    outputs: Mapping[NodeId, Hashable], inputs: Mapping[NodeId, Hashable]
) -> bool:
    """Decisions are inputs of correct nodes; unanimous inputs force that value."""

    input_values = set(inputs.values())
    decided = [v for v in outputs.values() if v is not None]
    if any(v not in input_values for v in decided):
        return False
    if len(input_values) == 1 and decided:
        return all(v == next(iter(input_values)) for v in decided)
    return True


# -- reliable broadcast -------------------------------------------------------------


def reliable_broadcast_correctness(
    processes: Sequence[ReliableBroadcastProcess], message: Hashable, source: NodeId
) -> bool:
    """Correctness: every correct node accepted the correct sender's message."""

    return all(p.has_accepted(message, source) for p in processes)


def reliable_broadcast_relay(
    processes: Sequence[ReliableBroadcastProcess],
) -> bool:
    """Relay: acceptances of the same ``(m, s)`` are at most one round apart
    across correct nodes, and a pair accepted anywhere is accepted everywhere."""

    rounds: dict[tuple, list[int]] = {}
    for process in processes:
        for record in process.accepted:
            rounds.setdefault((record.message, record.source), []).append(
                record.round_index
            )
    for accepted_rounds in rounds.values():
        if len(accepted_rounds) != len(processes):
            return False
        if max(accepted_rounds) - min(accepted_rounds) > 1:
            return False
    return True


# -- rotor-coordinator ----------------------------------------------------------------


def rotor_good_round_exists(
    processes: Sequence[RotorCoordinatorProcess], correct_ids: Sequence[NodeId]
) -> bool:
    """A selection index exists where every correct node picked the same
    *correct* coordinator (Theorem 2's good round)."""

    correct = set(correct_ids)
    histories = [p.selection_history for p in processes]
    if not histories or any(not h for h in histories):
        return False
    min_len = min(len(h) for h in histories)
    for index in range(min_len):
        coordinators = {h[index].coordinator for h in histories}
        if len(coordinators) == 1 and next(iter(coordinators)) in correct:
            return True
    return False


# -- approximate agreement ---------------------------------------------------------------


def approx_outputs_in_range(
    outputs: Mapping[NodeId, float], inputs: Mapping[NodeId, float]
) -> bool:
    """Property 1 of approximate agreement: outputs inside the correct input range."""

    lo, hi = min(inputs.values()), max(inputs.values())
    return all(o is not None and lo <= o <= hi for o in outputs.values())


def approx_range_reduced(
    outputs: Mapping[NodeId, float], inputs: Mapping[NodeId, float]
) -> bool:
    """Property 2: the output range is strictly smaller than the input range."""

    in_range = max(inputs.values()) - min(inputs.values())
    out_values = [o for o in outputs.values() if o is not None]
    if not out_values:
        return False
    out_range = max(out_values) - min(out_values)
    if in_range == 0:
        return out_range == 0
    return out_range < in_range


# -- total ordering ----------------------------------------------------------------------


def chains_are_prefixes(chains: Sequence[Sequence[ChainEntry]]) -> bool:
    """Chain-prefix: any two chains are prefixes of one another."""

    ordered = sorted(chains, key=len)
    for shorter, longer in zip(ordered, ordered[1:]):
        if list(longer[: len(shorter)]) != list(shorter):
            return False
    return True


def chain_common_prefix_length(chains: Sequence[Sequence[ChainEntry]]) -> int:
    """Length of the longest common prefix of all chains."""

    if not chains:
        return 0
    length = 0
    for entries in zip(*chains):
        if all(e == entries[0] for e in entries):
            length += 1
        else:
            break
    return length
