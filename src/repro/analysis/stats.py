"""Small statistics helpers for experiment aggregation."""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Sequence

import numpy as np

__all__ = ["mean", "stdev", "fraction_true", "summarize", "aggregate_rows"]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (``nan`` for an empty sequence)."""

    return float(np.mean(values)) if len(values) else math.nan


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0 for fewer than two samples)."""

    return float(np.std(values, ddof=1)) if len(values) > 1 else 0.0


def fraction_true(flags: Iterable[bool]) -> float:
    """The fraction of ``True`` values (``nan`` when empty)."""

    flags = list(flags)
    return sum(1 for f in flags if f) / len(flags) if flags else math.nan


def summarize(values: Sequence[float]) -> dict[str, float]:
    """Mean / std / min / max summary of a numeric sample."""

    if not len(values):
        return {"mean": math.nan, "std": math.nan, "min": math.nan, "max": math.nan}
    arr = np.asarray(values, dtype=float)
    return {
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "max": float(arr.max()),
    }


def aggregate_rows(
    rows: Sequence[Mapping[str, object]],
    group_by: Sequence[str],
    metrics: Sequence[str],
) -> list[dict[str, object]]:
    """Group ``rows`` by the ``group_by`` columns and average the ``metrics``.

    Boolean metrics are averaged into rates; numeric metrics into means.
    The result is sorted by the grouping key, suitable for table rendering.
    """

    grouped: dict[tuple, list[Mapping[str, object]]] = {}
    for row in rows:
        key = tuple(row[k] for k in group_by)
        grouped.setdefault(key, []).append(row)

    output: list[dict[str, object]] = []
    for key in sorted(grouped, key=repr):
        bucket = grouped[key]
        record: dict[str, object] = {k: v for k, v in zip(group_by, key)}
        record["samples"] = len(bucket)
        for metric in metrics:
            values = [row[metric] for row in bucket if metric in row]
            if not values:
                record[metric] = math.nan
            elif all(isinstance(v, bool) for v in values):
                record[metric] = fraction_true(values)
            else:
                record[metric] = mean([float(v) for v in values])
        output.append(record)
    return output
