"""Plain-text table rendering for experiment reports.

The harness prints every experiment as a fixed-width table (and can emit
Markdown for ``EXPERIMENTS.md``).  No third-party dependency is used so the
harness stays runnable in the offline environment.

Trace-derived columns: :func:`attach_trace_columns` joins the rows of a
per-round pivot with a trace aggregation (in-memory ``Trace`` or
``StoredTrace`` — both expose the same ``aggregate``), so report tables
can cite event counts and payload-byte tallies computed straight from the
recorded trace next to the metric columns.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = [
    "format_cell",
    "render_table",
    "render_markdown_table",
    "trace_table",
    "attach_trace_columns",
]


def format_cell(value: object) -> str:
    """Human-friendly formatting: floats get 4 significant digits."""

    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == int(value) and abs(value) < 1e6:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


def _columns(rows: Sequence[Mapping[str, object]]) -> list[str]:
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def render_table(rows: Sequence[Mapping[str, object]], *, title: str | None = None) -> str:
    """Render rows as an aligned fixed-width text table."""

    if not rows:
        return f"{title or 'table'}: (no rows)"
    columns = _columns(rows)
    formatted = [[format_cell(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(columns[i]), *(len(line[i]) for line in formatted))
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for line in formatted:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(lines)


def trace_table(
    trace,
    kinds=None,
    *,
    by: str = "round",
    reduce="count",
    title: str | None = None,
) -> str:
    """Render a trace aggregation as a text table.

    ``trace`` is anything exposing the shared ``aggregate`` signature —
    an in-memory :class:`repro.sim.events.Trace` or a persisted
    :class:`repro.store.StoredTrace` (the latter computes footer-pruned,
    segment by segment).  The remaining arguments pass straight through
    to ``aggregate``.
    """

    return render_table(
        trace.aggregate(kinds, by=by, reduce=reduce), title=title
    )


def attach_trace_columns(
    rows: Sequence[Mapping[str, object]],
    trace,
    kinds=None,
    *,
    reduce="count",
    prefix: str = "trace_",
) -> list[dict]:
    """Join per-round report rows with trace-derived columns.

    Aggregates ``trace`` by round (``kinds``/``reduce`` as in
    ``aggregate``) and merges each reducer value into the row with the
    matching ``"round"`` key as ``<prefix><reducer>``; rounds the trace
    never saw get ``0``.  Rows without a ``"round"`` key pass through
    unchanged.  Returns new dicts — the input rows are not mutated.
    """

    by_round = {
        agg_row["round"]: {
            f"{prefix}{name}": value
            for name, value in agg_row.items()
            if name != "round"
        }
        for agg_row in trace.aggregate(kinds, by="round", reduce=reduce)
    }
    reducers = (reduce,) if isinstance(reduce, str) else tuple(reduce)
    zeros = {f"{prefix}{name}": 0 for name in reducers}
    joined = []
    for row in rows:
        merged = dict(row)
        if "round" in row:
            merged.update(by_round.get(row["round"], zeros))
        joined.append(merged)
    return joined


def render_markdown_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Render rows as a GitHub-flavoured Markdown table."""

    if not rows:
        return "_(no rows)_"
    columns = _columns(rows)
    lines = ["| " + " | ".join(columns) + " |", "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(format_cell(row.get(c, "")) for c in columns) + " |")
    return "\n".join(lines)
