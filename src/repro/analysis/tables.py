"""Plain-text table rendering for experiment reports.

The harness prints every experiment as a fixed-width table (and can emit
Markdown for ``EXPERIMENTS.md``).  No third-party dependency is used so the
harness stays runnable in the offline environment.
"""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_cell", "render_table", "render_markdown_table"]


def format_cell(value: object) -> str:
    """Human-friendly formatting: floats get 4 significant digits."""

    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if value == int(value) and abs(value) < 1e6:
            return str(int(value))
        return f"{value:.4g}"
    return str(value)


def _columns(rows: Sequence[Mapping[str, object]]) -> list[str]:
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    return columns


def render_table(rows: Sequence[Mapping[str, object]], *, title: str | None = None) -> str:
    """Render rows as an aligned fixed-width text table."""

    if not rows:
        return f"{title or 'table'}: (no rows)"
    columns = _columns(rows)
    formatted = [[format_cell(row.get(c, "")) for c in columns] for row in rows]
    widths = [
        max(len(columns[i]), *(len(line[i]) for line in formatted))
        for i in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(c.ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for line in formatted:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(line, widths)))
    return "\n".join(lines)


def render_markdown_table(rows: Sequence[Mapping[str, object]]) -> str:
    """Render rows as a GitHub-flavoured Markdown table."""

    if not rows:
        return "_(no rows)_"
    columns = _columns(rows)
    lines = ["| " + " | ".join(columns) + " |", "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(format_cell(row.get(c, "")) for c in columns) + " |")
    return "\n".join(lines)
