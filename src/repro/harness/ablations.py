"""Ablations of design decisions called out in DESIGN.md §4.

These are not part of the paper's claims; they quantify why the
implementation makes the choices it makes:

* **A1 — substitution rule.**  Algorithm 3's missing-message substitution
  must be restricted to nodes that never speak inside the loop.  The
  "broad" variant (substitute for anyone who skipped the current round)
  looks like a harmless liveness aid but is unsound: under a split-vote
  adversary two correct nodes can be pushed over conflicting ``2·nv/3``
  quorums and decide different values.  The ablation measures the
  agreement rate of both variants under identical workloads.

* **A2 — assumed fault bound in the classic baselines.**  The known-(n, f)
  algorithms keep their guarantees only while the configured ``f`` is a
  true upper bound; the ablation sweeps the configured value below the real
  number of Byzantine nodes and measures how often the classic reliable
  broadcast accepts a forged message, something the id-only algorithm
  cannot be misconfigured into.
"""

from __future__ import annotations

from ..analysis.properties import consensus_agreement
from ..analysis.stats import aggregate_rows
from ..api import ScenarioSpec, run_scenario
from ..core.quorums import max_faults_tolerated
from ..sim.rng import derive
from .experiments import ExperimentResult

__all__ = ["a1_substitution_rule", "a2_misconfigured_fault_bound", "ABLATIONS"]


def a1_substitution_rule(scale: int = 1, seed: int = 101) -> ExperimentResult:
    """A1: narrow (paper) vs broad (unsound) missing-message substitution."""

    rows: list[dict[str, object]] = []
    sizes = [10, 13] + ([16, 19] if scale > 1 else [])
    for n in sizes:
        f = max_faults_tolerated(n)
        for rule in ("narrow", "broad"):
            # Plain small integer seeds: the broad rule's failure depends on
            # how the adversary's per-destination split lines up with the
            # correct nodes' input split, and this seed range contains both
            # benign and violating alignments.
            for rep in range(8 * scale):
                outcome = run_scenario(
                    ScenarioSpec(
                        protocol="consensus",
                        n=n,
                        f=f,
                        adversary="consensus-split-vote",
                        seed=rep,
                        max_rounds=60,
                        params={"substitution": rule},
                    )
                )
                outputs = outcome.outputs()
                rows.append(
                    {
                        "n": n,
                        "f": f,
                        "substitution": rule,
                        "agreement": consensus_agreement(outputs),
                    }
                )
    aggregated = aggregate_rows(rows, group_by=["substitution", "n"], metrics=["agreement"])
    return ExperimentResult(
        experiment_id="A1",
        title="Ablation: missing-message substitution rule",
        claim="The narrow rule preserves agreement; the broad rule is unsound under a split-vote adversary.",
        rows=aggregated,
        notes="broad substitution lets the local node vote on behalf of any silent peer, inflating conflicting quorums.",
    )


def a2_misconfigured_fault_bound(scale: int = 1, seed: int = 103) -> ExperimentResult:
    """A2: what the classic known-f reliable broadcast does when f is wrong."""

    rows: list[dict[str, object]] = []
    n, real_f = 10, 3
    for assumed_f in range(0, real_f + 2):
        for rep in range(3 * scale):
            run_seed = derive(seed, assumed_f, rep)
            classic = run_scenario(
                ScenarioSpec(
                    protocol="srikanth-toueg-broadcast",
                    n=n,
                    f=real_f,
                    adversary="rb-false-echo",
                    seed=run_seed,
                    max_rounds=10,
                    stop="never",
                    params={"assumed_f": assumed_f},
                )
            )
            source = classic.system.params["source"]
            correct = classic.system.correct_ids
            forged = any(
                rec.message == "forged"
                for i in correct
                for rec in classic.network.process(i).accepted
            )
            delivered = all(
                classic.network.process(i).has_accepted("hello", source) for i in correct
            )
            # The id-only algorithm on the identical workload, for contrast.
            id_only = run_scenario(
                ScenarioSpec(
                    protocol="reliable-broadcast",
                    n=n,
                    f=real_f,
                    adversary="rb-false-echo",
                    seed=run_seed,
                    max_rounds=10,
                    stop="never",
                )
            )
            id_only_forged = any(
                rec.message == "forged"
                for i in id_only.system.correct_ids
                for rec in id_only.network.process(i).accepted
            )
            rows.append(
                {
                    "assumed_f": assumed_f,
                    "real_f": real_f,
                    "classic_accepts_forgery": forged,
                    "classic_delivers": delivered,
                    "id_only_accepts_forgery": id_only_forged,
                }
            )
    aggregated = aggregate_rows(
        rows,
        group_by=["assumed_f", "real_f"],
        metrics=["classic_accepts_forgery", "classic_delivers", "id_only_accepts_forgery"],
    )
    return ExperimentResult(
        experiment_id="A2",
        title="Ablation: misconfigured fault bound in the classic baseline",
        claim="The classic algorithm's unforgeability depends on the configured f; the id-only algorithm has no such knob.",
        rows=aggregated,
    )


ABLATIONS = {
    "A1": a1_substitution_rule,
    "A2": a2_misconfigured_fault_bound,
}
