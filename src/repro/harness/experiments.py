"""Experiment definitions E1–E10 as declarative sweeps over :mod:`repro.api`.

The paper is a theory paper without numerical tables or figures, so the
"evaluation" we regenerate is the simulation-level validation suite listed
in ``DESIGN.md`` §2: every theorem becomes an experiment that measures, over
many seeds, adversaries and system sizes, whether the claimed property held
and what the relevant complexity (rounds, messages, range reduction, …)
was.

Each experiment is an :class:`ExperimentDefinition` — a set of
:class:`~repro.api.SweepSpec` grids, a module-level *row function* that
turns one executed scenario into a measurement row, and an aggregation
recipe (``group_by`` + ``metrics``).  The :class:`~repro.api.SweepRunner`
expands the grids, executes every scenario (optionally across a process
pool via ``jobs``), and the rows aggregate through
:func:`repro.analysis.stats.aggregate_rows` into the tables recorded in
``EXPERIMENTS.md``.  Row functions run inside the worker processes, so
they must stay module-level (picklable by reference).

All experiments accept ``scale`` (a small positive integer) so the same
definitions serve quick test runs (``scale=1``), the benchmark suite and
full reproduction runs, and ``seed`` so whole sweeps can be re-drawn.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..analysis.properties import (
    approx_outputs_in_range,
    approx_range_reduced,
    chains_are_prefixes,
    consensus_agreement,
    consensus_validity,
    reliable_broadcast_correctness,
    reliable_broadcast_relay,
    rotor_good_round_exists,
)
from ..analysis.stats import aggregate_rows
from ..analysis.tables import render_markdown_table, render_table
from ..api import ScenarioOutcome, SweepRunner, SweepSpec
from ..core.impossibility import outcome_from_outputs
from ..core.quorums import max_faults_tolerated
from ..sim.delays import split_into_groups
from ..store import (
    DEFAULT_SEGMENT_EVENTS,
    SCHEMA_VERSION,
    ResumableSweep,
    RunStore,
    canonical_dumps,
    sweep_digest,
    to_jsonable,
)

__all__ = [
    "ExperimentResult",
    "ExperimentDefinition",
    "EXPERIMENTS",
    "run_experiment",
    "all_experiment_ids",
]


@dataclass
class ExperimentResult:
    """The outcome of one experiment: aggregated rows plus context."""

    experiment_id: str
    title: str
    claim: str
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: str = ""
    #: Digest over the expanded scenario specs (see
    #: :func:`repro.store.digest.sweep_digest`): the same value the run
    #: store derives its keys from, so a JSON report identifies exactly
    #: which sweep produced it.
    sweep_digest: str = ""

    def to_text(self) -> str:
        header = f"[{self.experiment_id}] {self.title}\nclaim: {self.claim}"
        body = render_table(self.rows)
        notes = f"\nnotes: {self.notes}" if self.notes else ""
        return f"{header}\n{body}{notes}\n"

    def to_markdown(self) -> str:
        parts = [
            f"### {self.experiment_id} — {self.title}",
            "",
            f"*Paper claim:* {self.claim}",
            "",
            render_markdown_table(self.rows),
        ]
        if self.notes:
            parts.extend(["", f"*Notes:* {self.notes}"])
        return "\n".join(parts)

    def as_dict(self) -> dict[str, object]:
        """A plain, JSON-serialisable representation.

        Shares the run store's serialization contract: the schema version,
        the sweep digest and row values coerced through
        :func:`repro.store.serialize.to_jsonable` — one canonical path,
        so reports and store rows never disagree on a value's spelling.
        """

        return {
            "schema_version": SCHEMA_VERSION,
            "experiment_id": self.experiment_id,
            "title": self.title,
            "claim": self.claim,
            "notes": self.notes,
            "sweep_digest": self.sweep_digest,
            "rows": [to_jsonable(row) for row in self.rows],
        }

    def to_json(self, *, indent: int | None = 2) -> str:
        """Machine-readable results; stable key order so reports diff cleanly."""

        return canonical_dumps(self.as_dict(), indent=indent)


@dataclass(frozen=True)
class ExperimentDefinition:
    """One declarative experiment: sweeps + row extraction + aggregation."""

    experiment_id: str
    title: str
    claim: str
    sweeps: Callable[[int, int], Sequence[SweepSpec]]
    row_fn: Callable[[ScenarioOutcome], dict]
    group_by: tuple[str, ...]
    metrics: tuple[str, ...]
    notes: str = ""
    default_seed: int = 0
    post: Callable[[list[dict]], list[dict]] | None = None

    def run(
        self,
        *,
        scale: int = 1,
        seed: int | None = None,
        jobs: int = 1,
        store: RunStore | None = None,
        segment_events: int = DEFAULT_SEGMENT_EVENTS,
    ) -> ExperimentResult:
        base_seed = self.default_seed if seed is None else seed
        sweeps = list(self.sweeps(scale, base_seed))
        if store is not None:
            rows = ResumableSweep(
                store, jobs=jobs, segment_events=segment_events
            ).run(
                sweeps, row_fn=self.row_fn
            ).rows
        else:
            rows = SweepRunner(jobs=jobs).run(sweeps, row_fn=self.row_fn)
        aggregated = aggregate_rows(
            rows, group_by=list(self.group_by), metrics=list(self.metrics)
        )
        if self.post is not None:
            aggregated = self.post(aggregated)
        return ExperimentResult(
            experiment_id=self.experiment_id,
            title=self.title,
            claim=self.claim,
            rows=aggregated,
            notes=self.notes,
            sweep_digest=sweep_digest(
                spec for sweep in sweeps for spec in sweep.scenarios()
            ),
        )


def _sizes(scale: int, base: tuple[int, ...], extra: tuple[int, ...]) -> tuple[int, ...]:
    return base + (extra if scale > 1 else ())


# ---------------------------------------------------------------------------
# E1 — reliable broadcast properties (Theorem 1)
# ---------------------------------------------------------------------------


def _e1_sweeps(scale: int, seed: int) -> list[SweepSpec]:
    return [
        SweepSpec(
            protocol="reliable-broadcast",
            grid={
                "n": _sizes(scale, (4, 7, 10, 13), (19, 25)),
                "adversary": ("silent", "rb-false-echo", "rb-forged-source", "replay"),
            },
            repetitions=3 * scale,
            base_seed=seed,
        )
    ]


def _e1_row(outcome: ScenarioOutcome) -> dict:
    system = outcome.system
    procs = [system.network.process(i) for i in system.correct_ids]
    message = system.params["message"]
    source = system.params["source"]
    return {
        "n": outcome.spec.n,
        "f": outcome.spec.f,
        "adversary": outcome.spec.adversary,
        "correctness": reliable_broadcast_correctness(procs, message, source),
        "relay": reliable_broadcast_relay(procs),
        "no_forgery": not any(
            rec.message == "forged" or rec.message == "phantom"
            for p in procs
            for rec in p.accepted
        ),
        "accept_round": max(
            (rec.round_index for p in procs for rec in p.accepted), default=0
        ),
        "messages": outcome.messages,
    }


# ---------------------------------------------------------------------------
# E2 — rotor-coordinator (Theorem 2)
# ---------------------------------------------------------------------------


def _e2_sweeps(scale: int, seed: int) -> list[SweepSpec]:
    return [
        SweepSpec(
            protocol="rotor-coordinator",
            grid={
                "n": _sizes(scale, (4, 7, 10, 13), (19, 25)),
                "adversary": (
                    "silent",
                    "rotor-candidate-stuffer",
                    "rotor-split-echo",
                    "rotor-usurper",
                ),
            },
            repetitions=3 * scale,
            base_seed=seed,
        )
    ]


def _e2_row(outcome: ScenarioOutcome) -> dict:
    procs = list(outcome.correct_processes().values())
    return {
        "n": outcome.spec.n,
        "f": outcome.spec.f,
        "adversary": outcome.spec.adversary,
        "terminated": outcome.result.stop_reason == "stop_condition",
        "good_round": rotor_good_round_exists(procs, outcome.system.correct_ids),
        "rounds": outcome.rounds,
        "rounds_over_n": outcome.rounds / outcome.spec.n,
        "selections": max(len(p.selection_history) for p in procs),
    }


# ---------------------------------------------------------------------------
# E3 — consensus (Theorem 3)
# ---------------------------------------------------------------------------


def _e3_sweeps(scale: int, seed: int) -> list[SweepSpec]:
    return [
        SweepSpec(
            protocol="consensus",
            grid={
                "n": _sizes(scale, (4, 7, 10, 13), (16, 19)),
                "adversary": (
                    "silent",
                    "consensus-split-vote",
                    "consensus-strongprefer-spoofer",
                    "rotor-usurper",
                    "crash",
                ),
                "input_params.ones_fraction": (0.0, 0.5, 1.0),
            },
            repetitions=2 * scale,
            base_seed=seed,
        )
    ]


def _e3_row(outcome: ScenarioOutcome) -> dict:
    outputs = outcome.outputs()
    decision_round = outcome.decision_rounds_exhausted()
    return {
        "n": outcome.spec.n,
        "f": outcome.spec.f,
        "adversary": outcome.spec.adversary,
        "ones_fraction": float(outcome.spec.input_params["ones_fraction"]),
        "agreement": consensus_agreement(outputs),
        "validity": consensus_validity(outputs, outcome.system.params["inputs"]),
        "rounds": decision_round,
        "rounds_over_f": decision_round / max(outcome.spec.f, 1),
        "messages": outcome.messages,
    }


# ---------------------------------------------------------------------------
# E4 — approximate agreement convergence (Theorem 4)
# ---------------------------------------------------------------------------


def _e4_sweeps(scale: int, seed: int) -> list[SweepSpec]:
    return [
        SweepSpec(
            protocol="iterated-approximate-agreement",
            grid={
                "n": _sizes(scale, (4, 10, 16), (31, 49)),
                "adversary": ("silent", "approx-outlier", "equivocate-value"),
            },
            params={"iterations": 6},
            max_rounds=9,
            repetitions=3 * scale,
            base_seed=seed,
        )
    ]


def _e4_row(outcome: ScenarioOutcome) -> dict:
    inputs = outcome.system.params["inputs"]
    iterations = int(outcome.system.params["iterations"])
    procs = outcome.correct_processes()
    outputs = {i: p.output for i, p in procs.items()}
    in_range = max(inputs.values()) - min(inputs.values())
    histories = [p.history for p in procs.values()]
    per_iter_ranges = [
        max(h[k] for h in histories) - min(h[k] for h in histories)
        for k in range(iterations + 1)
    ]
    final_range = per_iter_ranges[-1]
    ratio = (final_range / in_range) ** (1 / iterations) if in_range else 0.0
    return {
        "n": outcome.spec.n,
        "f": outcome.spec.f,
        "adversary": outcome.spec.adversary,
        "in_range": in_range,
        "out_range": final_range,
        "per_round_contraction": ratio,
        "outputs_in_range": approx_outputs_in_range(outputs, inputs),
        "range_reduced": approx_range_reduced(outputs, inputs),
    }


# ---------------------------------------------------------------------------
# E5 — the resiliency boundary n > 3f
# ---------------------------------------------------------------------------


def _e5_sweeps(scale: int, seed: int) -> list[SweepSpec]:
    n = 12
    return [
        SweepSpec(
            protocol="consensus",
            grid={
                "n": (n,),
                "f": tuple(range(0, n // 2 + 1)),
                "adversary": ("consensus-split-vote",),
            },
            input_params={"ones_fraction": 0.5},
            max_rounds=80,
            repetitions=3 * scale,
            base_seed=seed,
        )
    ]


def _e5_row(outcome: ScenarioOutcome) -> dict:
    outputs = outcome.outputs()
    return {
        "n": outcome.spec.n,
        "f": outcome.spec.f,
        "resilient_config": outcome.spec.n > 3 * outcome.spec.f,
        "adversary": outcome.spec.adversary,
        "agreement": consensus_agreement(outputs),
        "validity": consensus_validity(outputs, outcome.system.params["inputs"]),
    }


# ---------------------------------------------------------------------------
# E6 — synchrony is necessary (Lemmas 14/15)
# ---------------------------------------------------------------------------

_E6_MODELS = {
    "partition": "asynchronous",
    "bounded-unknown": "semi-synchronous",
    "synchronous": "synchronous-control",
}


def _e6_sweeps(scale: int, seed: int) -> list[SweepSpec]:
    # All-correct consensus, group A holding input 1 and group B input 0;
    # only the delay model varies — exactly the Lemma 14/15 constructions.
    return [
        SweepSpec(
            protocol="consensus",
            grid={"delay": ("partition", "bounded-unknown", "synchronous")},
            n=8,
            f=0,
            inputs="split",
            input_params={"sizes": (4, 4), "values": (1, 0)},
            delay_params={"sizes": (4, 4), "delta": 40},
            max_rounds=80,
            repetitions=5 * scale,
            base_seed=seed,
        )
    ]


def _e6_row(outcome: ScenarioOutcome) -> dict:
    sizes = [int(s) for s in outcome.spec.delay_params["sizes"]]
    group_a, group_b = split_into_groups(outcome.system.correct_ids, sizes)[:2]
    partition = outcome_from_outputs(
        sorted(group_a),
        sorted(group_b),
        outcome.outputs(),
        rounds=outcome.rounds,
        delay_model=outcome.spec.delay,
    )
    return {
        "model": _E6_MODELS[outcome.spec.delay],
        "all_decided": partition.all_decided,
        "disagreement": partition.disagreement,
        "agreement": partition.agreement,
        "rounds": partition.rounds,
    }


# ---------------------------------------------------------------------------
# E7 — parallel consensus (Theorem 5)
# ---------------------------------------------------------------------------


def _e7_sweeps(scale: int, seed: int) -> list[SweepSpec]:
    return [
        SweepSpec(
            protocol="parallel-consensus",
            grid={
                "n": (7, 10, 13),
                "k_instances": (1, 4, 8) + ((16,) if scale > 1 else ()),
                "adversary": ("silent", "consensus-split-vote", "random-noise"),
            },
            repetitions=2 * scale,
            base_seed=seed,
        )
    ]


def _e7_row(outcome: ScenarioOutcome) -> dict:
    pairs = outcome.system.params["pairs"]
    outputs = outcome.outputs()
    decided = all(o is not None for o in outputs.values())
    frozen = {
        i: tuple(sorted(o.items())) if o is not None else None
        for i, o in outputs.items()
    }
    agreement = decided and len(set(frozen.values())) == 1
    validity = decided and all(
        o is not None and all(o.get(key) == value for key, value in pairs.items())
        for o in outputs.values()
    )
    return {
        "n": outcome.spec.n,
        "f": outcome.spec.f,
        "k_instances": int(outcome.spec.params["k_instances"]),
        "adversary": outcome.spec.adversary,
        "terminated": decided,
        "agreement": agreement,
        "validity": validity,
        "rounds": outcome.decision_rounds_exhausted(),
        "messages": outcome.messages,
    }


# ---------------------------------------------------------------------------
# E8 — dynamic total ordering (Theorem 6)
# ---------------------------------------------------------------------------

_E8_CONFIGS = (
    ("no churn", 0.0, 0.0),
    ("mild churn", 0.10, 0.05),
    ("heavy churn", 0.25, 0.15),
)
_E8_ROUNDS = 45


def _e8_sweeps(scale: int, seed: int) -> list[SweepSpec]:
    return [
        SweepSpec(
            protocol="total-order",
            n=6,
            f=1,
            adversary="random-noise",
            churn={
                "label": label,
                "join_rate": join_rate,
                "leave_rate": leave_rate,
                "rounds": _E8_ROUNDS,
            },
            repetitions=2 * scale,
            base_seed=seed,
            seed_tags=(label,),
        )
        for label, join_rate, leave_rate in _E8_CONFIGS
    ]


def _e8_row(outcome: ScenarioOutcome) -> dict:
    schedule = outcome.system.params["schedule"]
    genesis_correct = outcome.system.correct_ids
    network = outcome.network
    chains = [network.process(i).chain for i in genesis_correct]
    # Chain-growth is a claim about nodes that keep participating: a
    # genesis node that leaves mid-run legitimately stops extending its
    # chain, so measure growth over the nodes that stayed.
    departed = {e.node_id for e in schedule.events if e.kind == "leave"}
    stayed = [i for i in genesis_correct if i not in departed]
    lengths = [len(network.process(i).chain) for i in stayed]
    return {
        "churn": outcome.spec.churn["label"],
        "joins": sum(1 for e in schedule.events if e.kind == "join"),
        "leaves": sum(1 for e in schedule.events if e.kind == "leave"),
        "chain_prefix": chains_are_prefixes(chains),
        "chain_grew": min(lengths) > 0,
        "max_chain_length": max(lengths),
        "min_chain_length": min(lengths),
    }


# ---------------------------------------------------------------------------
# E9 — id-only vs classic known-(n, f) baselines (Section XII)
# ---------------------------------------------------------------------------

_E9_ALGORITHMS = {
    "reliable-broadcast": "rb-idonly",
    "srikanth-toueg-broadcast": "rb-classic",
    "consensus": "cons-idonly",
    "known-f-consensus": "cons-classic",
}


def _e9_sweeps(scale: int, seed: int) -> list[SweepSpec]:
    # The same (base_seed, n, repetition) derivation across all four sweeps
    # gives every algorithm the same identifier population and Byzantine
    # placement, so the comparison is paired run by run.
    sizes = _sizes(scale, (7, 10, 13), (19,))
    broadcast = dict(grid={"n": sizes}, repetitions=2 * scale, base_seed=seed)
    return [
        SweepSpec(protocol="reliable-broadcast", adversary="silent", **broadcast),
        SweepSpec(protocol="srikanth-toueg-broadcast", adversary="silent", **broadcast),
        SweepSpec(
            protocol="consensus",
            adversary="consensus-split-vote",
            inputs="alternating",
            max_rounds=60,
            **broadcast,
        ),
        SweepSpec(
            protocol="known-f-consensus",
            adversary="consensus-split-vote",
            inputs="alternating",
            max_rounds=60,
            **broadcast,
        ),
    ]


def _e9_row(outcome: ScenarioOutcome) -> dict:
    outputs = outcome.outputs()
    if outcome.spec.protocol in ("consensus", "known-f-consensus"):
        agreement = consensus_agreement(outputs)
    else:
        agreement = all(p.decided for p in outcome.correct_processes().values())
    return {
        "n": outcome.spec.n,
        "f": outcome.spec.f,
        "algorithm": _E9_ALGORITHMS[outcome.spec.protocol],
        "messages": outcome.messages,
        "rounds": outcome.decision_rounds_exhausted(),
        "agreement": agreement,
    }


def _e9_pivot(rows: list[dict]) -> list[dict]:
    """Pivot per-algorithm aggregates into the paired comparison table."""

    by_config: dict[tuple, dict[str, dict]] = {}
    for row in rows:
        by_config.setdefault((row["n"], row["f"]), {})[row["algorithm"]] = row
    pivoted: list[dict] = []
    for (n, f), cells in sorted(by_config.items()):
        rb_id, rb_cl = cells["rb-idonly"], cells["rb-classic"]
        cons_id, cons_cl = cells["cons-idonly"], cells["cons-classic"]
        pivoted.append(
            {
                "n": n,
                "f": f,
                "samples": rb_id["samples"],
                "rb_idonly_msgs": rb_id["messages"],
                "rb_classic_msgs": rb_cl["messages"],
                "rb_msg_ratio": rb_id["messages"] / max(rb_cl["messages"], 1),
                "cons_idonly_rounds": cons_id["rounds"],
                "cons_classic_rounds": cons_cl["rounds"],
                "cons_idonly_agree": cons_id["agreement"],
                "cons_classic_agree": cons_cl["agreement"],
            }
        )
    return pivoted


# ---------------------------------------------------------------------------
# E10 — approximate agreement in a dynamic membership (Section XI)
# ---------------------------------------------------------------------------


def _e10_sweeps(scale: int, seed: int) -> list[SweepSpec]:
    iterations = 8
    return [
        SweepSpec(
            protocol="iterated-approximate-agreement",
            grid={"churn.join_fraction": (0.0, 0.2, 0.4)},
            n=13,
            f=4,
            adversary="approx-outlier",
            params={"iterations": iterations},
            churn={"pool": 4, "join_start": 3, "leave_round": 5},
            max_rounds=iterations + 4,
            stop="never",
            repetitions=3 * scale,
            base_seed=seed,
        )
    ]


def _e10_row(outcome: ScenarioOutcome) -> dict:
    inputs = outcome.system.params["inputs"]
    departed = set(outcome.system.params["departed"])
    survivors = [i for i in outcome.system.correct_ids if i not in departed]
    estimates = {i: outcome.network.process(i).estimate for i in survivors}
    in_range = max(inputs.values()) - min(inputs.values())
    out_range = max(estimates.values()) - min(estimates.values())
    return {
        "churn_fraction": float(outcome.spec.churn["join_fraction"]),
        "in_range": in_range,
        "out_range": out_range,
        "contracted": out_range < in_range,
        "outputs_in_range": all(
            min(inputs.values()) <= v <= max(inputs.values())
            for v in estimates.values()
        ),
    }


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS: dict[str, ExperimentDefinition] = {
    definition.experiment_id: definition
    for definition in (
        ExperimentDefinition(
            experiment_id="E1",
            title="Reliable broadcast in the id-only model",
            claim="All three reliable-broadcast properties hold for every n > 3f.",
            sweeps=_e1_sweeps,
            row_fn=_e1_row,
            group_by=("n", "f", "adversary"),
            metrics=("correctness", "relay", "no_forgery", "accept_round", "messages"),
            notes="correctness/relay/no_forgery are rates over seeds; accept_round is the last acceptance round.",
            default_seed=7,
        ),
        ExperimentDefinition(
            experiment_id="E2",
            title="Rotor-coordinator: termination and good rounds",
            claim="Every correct node terminates in O(n) rounds and witnesses a good round first.",
            sweeps=_e2_sweeps,
            row_fn=_e2_row,
            group_by=("n", "f", "adversary"),
            metrics=("terminated", "good_round", "rounds", "rounds_over_n", "selections"),
            notes="rounds_over_n staying bounded (~1) across n demonstrates the O(n) claim.",
            default_seed=11,
        ),
        ExperimentDefinition(
            experiment_id="E3",
            title="Consensus in the id-only model",
            claim="Agreement and validity hold and termination takes O(f) rounds.",
            sweeps=_e3_sweeps,
            row_fn=_e3_row,
            group_by=("n", "f", "adversary"),
            metrics=("agreement", "validity", "rounds", "rounds_over_f", "messages"),
            notes="rounds counts until the last correct node decides (includes the 2 init rounds).",
            default_seed=13,
        ),
        ExperimentDefinition(
            experiment_id="E4",
            title="Approximate agreement convergence",
            claim="Outputs stay inside the correct input range and the range halves (contraction ≤ 0.5) every iteration.",
            sweeps=_e4_sweeps,
            row_fn=_e4_row,
            group_by=("n", "f", "adversary"),
            metrics=(
                "in_range",
                "out_range",
                "per_round_contraction",
                "outputs_in_range",
                "range_reduced",
            ),
            notes="per_round_contraction is the geometric mean range contraction per iteration (paper predicts ≤ 0.5).",
            default_seed=17,
        ),
        ExperimentDefinition(
            experiment_id="E5",
            title="Resiliency boundary sweep (consensus, n = 12)",
            claim="Agreement/validity hold whenever n > 3f; beyond the bound the adversary can break them.",
            sweeps=_e5_sweeps,
            row_fn=_e5_row,
            group_by=("n", "f", "resilient_config"),
            metrics=("agreement", "validity"),
            notes="Rows with resilient_config = no are outside the paper's assumptions; degraded rates there are expected.",
            default_seed=19,
        ),
        ExperimentDefinition(
            experiment_id="E6",
            title="Synchrony necessity (Lemma 14/15 constructions)",
            claim="Without synchrony the partition executions terminate in disagreement; the synchronous control agrees.",
            sweeps=_e6_sweeps,
            row_fn=_e6_row,
            group_by=("model",),
            metrics=("all_decided", "disagreement", "agreement", "rounds"),
            default_seed=23,
        ),
        ExperimentDefinition(
            experiment_id="E7",
            title="Parallel consensus over k instances",
            claim="Validity, agreement and termination hold for every instance regardless of k.",
            sweeps=_e7_sweeps,
            row_fn=_e7_row,
            group_by=("n", "k_instances", "adversary"),
            metrics=("terminated", "agreement", "validity", "rounds", "messages"),
            default_seed=29,
        ),
        ExperimentDefinition(
            experiment_id="E8",
            title="Dynamic total ordering under churn",
            claim="Chains at correct nodes are prefixes of one another and keep growing while events are submitted.",
            sweeps=_e8_sweeps,
            row_fn=_e8_row,
            group_by=("churn",),
            metrics=(
                "joins",
                "leaves",
                "chain_prefix",
                "chain_grew",
                "max_chain_length",
                "min_chain_length",
            ),
            notes=f"{_E8_ROUNDS} protocol rounds; genesis nodes submit one event per round.",
            default_seed=31,
        ),
        ExperimentDefinition(
            experiment_id="E9",
            title="Id-only algorithms vs classic known-(n, f) baselines",
            claim="Removing the knowledge of n and f leaves message/round complexity essentially unchanged (small constant factors).",
            sweeps=_e9_sweeps,
            row_fn=_e9_row,
            group_by=("n", "f", "algorithm"),
            metrics=("messages", "rounds", "agreement"),
            notes="The id-only consensus pays a constant-factor round overhead for the rotor-coordinator round in each phase.",
            default_seed=37,
            post=_e9_pivot,
        ),
        ExperimentDefinition(
            experiment_id="E10",
            title="Iterated approximate agreement under churn",
            claim="The correct-value range keeps contracting under joins/leaves as long as n > 3f each round; joiners can widen it only through their inputs.",
            sweeps=_e10_sweeps,
            row_fn=_e10_row,
            group_by=("churn_fraction",),
            metrics=("in_range", "out_range", "contracted", "outputs_in_range"),
            notes="Joining nodes draw inputs from the original range, so the surviving originals keep converging.",
            default_seed=41,
        ),
    )
}


def all_experiment_ids() -> list[str]:
    return list(EXPERIMENTS)


def run_experiment(
    experiment_id: str,
    *,
    scale: int = 1,
    seed: int | None = None,
    jobs: int = 1,
    store: RunStore | None = None,
    segment_events: int = DEFAULT_SEGMENT_EVENTS,
) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"E3"``).

    ``seed`` re-draws the whole sweep (defaults to the experiment's
    canonical seed); ``jobs`` fans the scenarios out over worker processes
    with bit-identical aggregated results.  Passing a ``store`` makes the
    sweep resumable: scenarios already persisted under the current code
    version are served from the store instead of re-executing, and fresh
    scenarios are persisted as they complete; ``segment_events`` sets the
    trace-segment granularity for traced scenarios persisted that way.
    """

    try:
        definition = EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(EXPERIMENTS)}"
        ) from exc
    return definition.run(
        scale=scale,
        seed=seed,
        jobs=jobs,
        store=store,
        segment_events=segment_events,
    )
