"""Experiment definitions E1–E10 (the paper's evaluation, reproduced).

The paper is a theory paper without numerical tables or figures, so the
"evaluation" we regenerate is the simulation-level validation suite listed
in ``DESIGN.md`` §2: every theorem becomes an experiment that measures, over
many seeds, adversaries and system sizes, whether the claimed property held
and what the relevant complexity (rounds, messages, range reduction, …)
was.  Each function returns an :class:`ExperimentResult` whose rows are the
"table" recorded in ``EXPERIMENTS.md``.

All experiments accept ``scale`` (a small positive integer) so the same
code serves quick test runs (``scale=1``), the benchmark suite and full
reproduction runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

from ..adversary import make_strategy
from ..analysis.properties import (
    approx_outputs_in_range,
    approx_range_reduced,
    chains_are_prefixes,
    consensus_agreement,
    consensus_validity,
    reliable_broadcast_correctness,
    reliable_broadcast_relay,
    rotor_good_round_exists,
)
from ..analysis.stats import aggregate_rows
from ..analysis.tables import render_markdown_table, render_table
from ..baselines import (
    DolevApproxProcess,
    KnownFConsensusProcess,
    SrikanthTouegBroadcastProcess,
)
from ..core.consensus import ConsensusProcess
from ..core.impossibility import (
    asynchronous_partition_execution,
    semi_synchronous_partition_execution,
    synchronous_control_execution,
)
from ..core.parallel_consensus import ParallelConsensusProcess
from ..core.total_order import TotalOrderProcess
from ..dynamic import build_total_order_system, generate_churn_schedule
from ..sim import SynchronousNetwork, all_correct_halted
from ..sim.rng import derive, make_rng
from ..workloads import (
    approximate_agreement_system,
    build_network,
    consensus_system,
    real_inputs,
    reliable_broadcast_system,
    rotor_coordinator_system,
    sparse_ids,
    split_correct_byzantine,
)
from ..core.quorums import max_faults_tolerated

__all__ = ["ExperimentResult", "EXPERIMENTS", "run_experiment", "all_experiment_ids"]


@dataclass
class ExperimentResult:
    """The outcome of one experiment: aggregated rows plus context."""

    experiment_id: str
    title: str
    claim: str
    rows: list[dict[str, object]] = field(default_factory=list)
    notes: str = ""

    def to_text(self) -> str:
        header = f"[{self.experiment_id}] {self.title}\nclaim: {self.claim}"
        body = render_table(self.rows)
        notes = f"\nnotes: {self.notes}" if self.notes else ""
        return f"{header}\n{body}{notes}\n"

    def to_markdown(self) -> str:
        parts = [
            f"### {self.experiment_id} — {self.title}",
            "",
            f"*Paper claim:* {self.claim}",
            "",
            render_markdown_table(self.rows),
        ]
        if self.notes:
            parts.extend(["", f"*Notes:* {self.notes}"])
        return "\n".join(parts)


# ---------------------------------------------------------------------------
# E1 — reliable broadcast properties
# ---------------------------------------------------------------------------


def e1_reliable_broadcast(scale: int = 1, seed: int = 7) -> ExperimentResult:
    """Theorem 1: correctness, unforgeability and relay for n > 3f."""

    sizes = [4, 7, 10, 13] + ([19, 25] if scale > 1 else [])
    strategies = ["silent", "rb-false-echo", "rb-forged-source", "replay"]
    seeds = range(3 * scale)
    rows: list[dict[str, object]] = []
    for n in sizes:
        f = max_faults_tolerated(n)
        for strategy in strategies:
            for rep in seeds:
                spec = reliable_broadcast_system(
                    n, f, strategy=strategy, seed=derive(seed, n, strategy, rep)
                )
                run = spec.network.run(
                    max_rounds=12,
                    stop_when=lambda net: all(p.decided for p in net.correct_processes()),
                )
                procs = [spec.network.process(i) for i in spec.correct_ids]
                message = spec.params["message"]
                source = spec.params["source"]
                rows.append(
                    {
                        "n": n,
                        "f": f,
                        "adversary": strategy,
                        "correctness": reliable_broadcast_correctness(procs, message, source),
                        "relay": reliable_broadcast_relay(procs),
                        "no_forgery": not any(
                            rec.message == "forged" or rec.message == "phantom"
                            for p in procs
                            for rec in p.accepted
                        ),
                        "accept_round": max(
                            (rec.round_index for p in procs for rec in p.accepted),
                            default=0,
                        ),
                        "messages": run.metrics.total_messages,
                    }
                )
    aggregated = aggregate_rows(
        rows,
        group_by=["n", "f", "adversary"],
        metrics=["correctness", "relay", "no_forgery", "accept_round", "messages"],
    )
    return ExperimentResult(
        experiment_id="E1",
        title="Reliable broadcast in the id-only model",
        claim="All three reliable-broadcast properties hold for every n > 3f.",
        rows=aggregated,
        notes="correctness/relay/no_forgery are rates over seeds; accept_round is the last acceptance round.",
    )


# ---------------------------------------------------------------------------
# E2 — rotor-coordinator
# ---------------------------------------------------------------------------


def e2_rotor_coordinator(scale: int = 1, seed: int = 11) -> ExperimentResult:
    """Theorem 2: O(n) termination and a good round before termination."""

    sizes = [4, 7, 10, 13] + ([19, 25] if scale > 1 else [])
    strategies = ["silent", "rotor-candidate-stuffer", "rotor-split-echo", "rotor-usurper"]
    rows: list[dict[str, object]] = []
    for n in sizes:
        f = max_faults_tolerated(n)
        for strategy in strategies:
            for rep in range(3 * scale):
                spec = rotor_coordinator_system(
                    n, f, strategy=strategy, seed=derive(seed, n, strategy, rep)
                )
                run = spec.network.run(max_rounds=6 * n + 20, stop_when=all_correct_halted)
                procs = [spec.network.process(i) for i in spec.correct_ids]
                rows.append(
                    {
                        "n": n,
                        "f": f,
                        "adversary": strategy,
                        "terminated": run.stop_reason == "stop_condition",
                        "good_round": rotor_good_round_exists(procs, spec.correct_ids),
                        "rounds": run.rounds_executed,
                        "rounds_over_n": run.rounds_executed / n,
                        "selections": max(len(p.selection_history) for p in procs),
                    }
                )
    aggregated = aggregate_rows(
        rows,
        group_by=["n", "f", "adversary"],
        metrics=["terminated", "good_round", "rounds", "rounds_over_n", "selections"],
    )
    return ExperimentResult(
        experiment_id="E2",
        title="Rotor-coordinator: termination and good rounds",
        claim="Every correct node terminates in O(n) rounds and witnesses a good round first.",
        rows=aggregated,
        notes="rounds_over_n staying bounded (~1) across n demonstrates the O(n) claim.",
    )


# ---------------------------------------------------------------------------
# E3 — consensus
# ---------------------------------------------------------------------------


def e3_consensus(scale: int = 1, seed: int = 13) -> ExperimentResult:
    """Theorem 3: agreement, validity and O(f)-round termination."""

    sizes = [4, 7, 10, 13] + ([16, 19] if scale > 1 else [])
    strategies = [
        "silent",
        "consensus-split-vote",
        "consensus-strongprefer-spoofer",
        "rotor-usurper",
        "crash",
    ]
    fractions = [0.0, 0.5, 1.0]
    rows: list[dict[str, object]] = []
    for n in sizes:
        f = max_faults_tolerated(n)
        for strategy in strategies:
            for fraction in fractions:
                for rep in range(2 * scale):
                    spec = consensus_system(
                        n,
                        f,
                        ones_fraction=fraction,
                        strategy=strategy,
                        seed=derive(seed, n, strategy, fraction, rep),
                    )
                    run = spec.network.run(max_rounds=40 + 10 * f)
                    outputs = {i: spec.network.process(i).output for i in spec.correct_ids}
                    rows.append(
                        {
                            "n": n,
                            "f": f,
                            "adversary": strategy,
                            "ones_fraction": fraction,
                            "agreement": consensus_agreement(outputs),
                            "validity": consensus_validity(outputs, spec.params["inputs"]),
                            "rounds": run.metrics.latest_decision_round() or run.rounds_executed,
                            "rounds_over_f": (run.metrics.latest_decision_round() or run.rounds_executed)
                            / max(f, 1),
                            "messages": run.metrics.total_messages,
                        }
                    )
    aggregated = aggregate_rows(
        rows,
        group_by=["n", "f", "adversary"],
        metrics=["agreement", "validity", "rounds", "rounds_over_f", "messages"],
    )
    return ExperimentResult(
        experiment_id="E3",
        title="Consensus in the id-only model",
        claim="Agreement and validity hold and termination takes O(f) rounds.",
        rows=aggregated,
        notes="rounds counts until the last correct node decides (includes the 2 init rounds).",
    )


# ---------------------------------------------------------------------------
# E4 — approximate agreement convergence
# ---------------------------------------------------------------------------


def e4_approximate_agreement(scale: int = 1, seed: int = 17) -> ExperimentResult:
    """Theorem 4: outputs in range and the range at least halves per iteration."""

    sizes = [4, 10, 16] + ([31, 49] if scale > 1 else [])
    strategies = ["silent", "approx-outlier", "equivocate-value"]
    iterations = 6
    rows: list[dict[str, object]] = []
    for n in sizes:
        f = max_faults_tolerated(n)
        for strategy in strategies:
            for rep in range(3 * scale):
                spec = approximate_agreement_system(
                    n,
                    f,
                    iterations=iterations,
                    strategy=strategy,
                    seed=derive(seed, n, strategy, rep),
                )
                spec.network.run(max_rounds=iterations + 3)
                inputs = spec.params["inputs"]
                procs = {i: spec.network.process(i) for i in spec.correct_ids}
                outputs = {i: p.output for i, p in procs.items()}
                in_range = max(inputs.values()) - min(inputs.values())
                histories = [p.history for p in procs.values()]
                per_iter_ranges = [
                    max(h[k] for h in histories) - min(h[k] for h in histories)
                    for k in range(iterations + 1)
                ]
                final_range = per_iter_ranges[-1]
                ratio = (final_range / in_range) ** (1 / iterations) if in_range else 0.0
                rows.append(
                    {
                        "n": n,
                        "f": f,
                        "adversary": strategy,
                        "in_range": in_range,
                        "out_range": final_range,
                        "per_round_contraction": ratio,
                        "outputs_in_range": approx_outputs_in_range(outputs, inputs),
                        "range_reduced": approx_range_reduced(outputs, inputs),
                    }
                )
    aggregated = aggregate_rows(
        rows,
        group_by=["n", "f", "adversary"],
        metrics=[
            "in_range",
            "out_range",
            "per_round_contraction",
            "outputs_in_range",
            "range_reduced",
        ],
    )
    return ExperimentResult(
        experiment_id="E4",
        title="Approximate agreement convergence",
        claim="Outputs stay inside the correct input range and the range halves (contraction ≤ 0.5) every iteration.",
        rows=aggregated,
        notes="per_round_contraction is the geometric mean range contraction per iteration (paper predicts ≤ 0.5).",
    )


# ---------------------------------------------------------------------------
# E5 — the resiliency boundary n > 3f
# ---------------------------------------------------------------------------


def e5_resiliency_boundary(scale: int = 1, seed: int = 19) -> ExperimentResult:
    """n > 3f is tight: guarantees hold at f = ⌊(n−1)/3⌋ and fail beyond."""

    n = 12
    strategies = ["consensus-split-vote"]
    rows: list[dict[str, object]] = []
    for f in range(0, n // 2 + 1):
        for strategy in strategies:
            for rep in range(3 * scale):
                spec = consensus_system(
                    n,
                    f,
                    ones_fraction=0.5,
                    strategy=strategy,
                    seed=derive(seed, n, f, strategy, rep),
                )
                run = spec.network.run(max_rounds=80)
                outputs = {i: spec.network.process(i).output for i in spec.correct_ids}
                rows.append(
                    {
                        "n": n,
                        "f": f,
                        "resilient_config": n > 3 * f,
                        "adversary": strategy,
                        "agreement": consensus_agreement(outputs),
                        "validity": consensus_validity(outputs, spec.params["inputs"]),
                    }
                )
    aggregated = aggregate_rows(
        rows,
        group_by=["n", "f", "resilient_config"],
        metrics=["agreement", "validity"],
    )
    return ExperimentResult(
        experiment_id="E5",
        title="Resiliency boundary sweep (consensus, n = 12)",
        claim="Agreement/validity hold whenever n > 3f; beyond the bound the adversary can break them.",
        rows=aggregated,
        notes="Rows with resilient_config = no are outside the paper's assumptions; degraded rates there are expected.",
    )


# ---------------------------------------------------------------------------
# E6 — synchrony is necessary
# ---------------------------------------------------------------------------


def e6_synchrony_necessity(scale: int = 1, seed: int = 23) -> ExperimentResult:
    """Lemmas 14/15: partitioned async / semi-sync executions disagree."""

    rows: list[dict[str, object]] = []
    repetitions = 5 * scale
    for rep in range(repetitions):
        async_outcome = asynchronous_partition_execution(4, 4, seed=derive(seed, "async", rep))
        semi_outcome = semi_synchronous_partition_execution(4, 4, seed=derive(seed, "semi", rep))
        control = synchronous_control_execution(4, 4, seed=derive(seed, "sync", rep))
        for label, outcome in (
            ("asynchronous", async_outcome),
            ("semi-synchronous", semi_outcome),
            ("synchronous-control", control),
        ):
            rows.append(
                {
                    "model": label,
                    "all_decided": outcome.all_decided,
                    "disagreement": outcome.disagreement,
                    "agreement": outcome.agreement,
                    "rounds": outcome.rounds,
                }
            )
    aggregated = aggregate_rows(
        rows, group_by=["model"], metrics=["all_decided", "disagreement", "agreement", "rounds"]
    )
    return ExperimentResult(
        experiment_id="E6",
        title="Synchrony necessity (Lemma 14/15 constructions)",
        claim="Without synchrony the partition executions terminate in disagreement; the synchronous control agrees.",
        rows=aggregated,
    )


# ---------------------------------------------------------------------------
# E7 — parallel consensus
# ---------------------------------------------------------------------------


def e7_parallel_consensus(scale: int = 1, seed: int = 29) -> ExperimentResult:
    """Theorem 5: validity, agreement and termination of ParallelConsensus."""

    sizes = [7, 10, 13]
    ks = [1, 4, 8] + ([16] if scale > 1 else [])
    strategies = ["silent", "consensus-split-vote", "random-noise"]
    rows: list[dict[str, object]] = []
    for n in sizes:
        f = max_faults_tolerated(n)
        for k in ks:
            for strategy in strategies:
                for rep in range(2 * scale):
                    run_seed = derive(seed, n, k, strategy, rep)
                    ids = sparse_ids(n, seed=derive(run_seed, "ids"))
                    correct, byz = split_correct_byzantine(ids, f, seed=derive(run_seed, "split"))
                    rng = make_rng(run_seed)
                    shared_pairs = {f"instance-{i}": int(rng.integers(0, 100)) for i in range(k)}

                    spec = build_network(
                        correct_factory=lambda node: ParallelConsensusProcess(
                            node, input_pairs=shared_pairs
                        ),
                        correct_ids=correct,
                        byzantine_ids=byz,
                        strategy=strategy,
                        seed=run_seed,
                    )
                    run = spec.network.run(max_rounds=40 + 5 * f)
                    outputs = {
                        i: spec.network.process(i).output for i in spec.correct_ids
                    }
                    decided = all(o is not None for o in outputs.values())
                    frozen = {
                        i: tuple(sorted(o.items())) if o is not None else None
                        for i, o in outputs.items()
                    }
                    agreement = decided and len(set(frozen.values())) == 1
                    validity = decided and all(
                        o is not None and all(o.get(key) == value for key, value in shared_pairs.items())
                        for o in outputs.values()
                    )
                    rows.append(
                        {
                            "n": n,
                            "f": f,
                            "k_instances": k,
                            "adversary": strategy,
                            "terminated": decided,
                            "agreement": agreement,
                            "validity": validity,
                            "rounds": run.metrics.latest_decision_round() or run.rounds_executed,
                            "messages": run.metrics.total_messages,
                        }
                    )
    aggregated = aggregate_rows(
        rows,
        group_by=["n", "k_instances", "adversary"],
        metrics=["terminated", "agreement", "validity", "rounds", "messages"],
    )
    return ExperimentResult(
        experiment_id="E7",
        title="Parallel consensus over k instances",
        claim="Validity, agreement and termination hold for every instance regardless of k.",
        rows=aggregated,
    )


# ---------------------------------------------------------------------------
# E8 — dynamic total ordering
# ---------------------------------------------------------------------------


def e8_total_order(scale: int = 1, seed: int = 31) -> ExperimentResult:
    """Theorem 6: chain-prefix and chain-growth under churn."""

    configs = [
        ("no churn", 0.0, 0.0),
        ("mild churn", 0.10, 0.05),
        ("heavy churn", 0.25, 0.15),
    ]
    rounds = 45
    rows: list[dict[str, object]] = []
    for label, join_rate, leave_rate in configs:
        for rep in range(2 * scale):
            schedule = generate_churn_schedule(
                initial_correct=5,
                initial_byzantine=1,
                rounds=rounds,
                join_rate=join_rate,
                leave_rate=leave_rate,
                seed=derive(seed, label, rep),
            )
            system = build_total_order_system(
                schedule, strategy="random-noise", seed=derive(seed, label, rep, "sys")
            )
            system.network.run(max_rounds=rounds, stop_when=lambda net: False)
            chains = list(system.chains().values())
            # Chain-growth is a claim about nodes that keep participating: a
            # genesis node that leaves mid-run legitimately stops extending
            # its chain, so measure growth over the nodes that stayed.
            departed = {e.node_id for e in schedule.events if e.kind == "leave"}
            stayed = [i for i in system.genesis_correct if i not in departed]
            lengths = [len(system.network.process(i).chain) for i in stayed]
            rows.append(
                {
                    "churn": label,
                    "joins": sum(1 for e in schedule.events if e.kind == "join"),
                    "leaves": sum(1 for e in schedule.events if e.kind == "leave"),
                    "chain_prefix": chains_are_prefixes(chains),
                    "chain_grew": min(lengths) > 0,
                    "max_chain_length": max(lengths),
                    "min_chain_length": min(lengths),
                }
            )
    aggregated = aggregate_rows(
        rows,
        group_by=["churn"],
        metrics=["joins", "leaves", "chain_prefix", "chain_grew", "max_chain_length", "min_chain_length"],
    )
    return ExperimentResult(
        experiment_id="E8",
        title="Dynamic total ordering under churn",
        claim="Chains at correct nodes are prefixes of one another and keep growing while events are submitted.",
        rows=aggregated,
        notes=f"{rounds} protocol rounds; genesis nodes submit one event per round.",
    )


# ---------------------------------------------------------------------------
# E9 — id-only vs classic known-(n, f) baselines
# ---------------------------------------------------------------------------


def e9_vs_baselines(scale: int = 1, seed: int = 37) -> ExperimentResult:
    """Section XII: complexity essentially unchanged vs. the classic algorithms."""

    rows: list[dict[str, object]] = []
    sizes = [7, 10, 13] + ([19] if scale > 1 else [])
    for n in sizes:
        f = max_faults_tolerated(n)
        for rep in range(2 * scale):
            run_seed = derive(seed, n, rep)
            ids = sparse_ids(n, seed=derive(run_seed, "ids"))
            correct, byz = split_correct_byzantine(ids, f, seed=derive(run_seed, "split"))

            # Reliable broadcast: id-only vs Srikanth-Toueg.
            rb_spec = reliable_broadcast_system(n, f, strategy="silent", seed=run_seed)
            rb_run = rb_spec.network.run(
                max_rounds=12,
                stop_when=lambda net: all(p.decided for p in net.correct_processes()),
            )
            source = correct[0]
            st_spec = build_network(
                correct_factory=lambda node: SrikanthTouegBroadcastProcess(
                    node, source=source, assumed_f=f, message="hello"
                ),
                correct_ids=correct,
                byzantine_ids=byz,
                strategy="silent",
                seed=run_seed,
            )
            st_run = st_spec.network.run(
                max_rounds=12,
                stop_when=lambda net: all(p.decided for p in net.correct_processes()),
            )

            # Consensus: id-only vs the known-(n, f) king algorithm.
            inputs = {node: (1 if index % 2 else 0) for index, node in enumerate(correct)}
            id_only_spec = build_network(
                correct_factory=lambda node: ConsensusProcess(node, input_value=inputs[node]),
                correct_ids=correct,
                byzantine_ids=byz,
                strategy="consensus-split-vote",
                seed=run_seed,
            )
            id_only_run = id_only_spec.network.run(max_rounds=60)
            known_spec = build_network(
                correct_factory=lambda node: KnownFConsensusProcess(
                    node, input_value=inputs[node], membership=ids, assumed_f=f
                ),
                correct_ids=correct,
                byzantine_ids=byz,
                strategy="consensus-split-vote",
                seed=run_seed,
            )
            known_run = known_spec.network.run(max_rounds=60)

            rows.append(
                {
                    "n": n,
                    "f": f,
                    "rb_idonly_msgs": rb_run.metrics.total_messages,
                    "rb_classic_msgs": st_run.metrics.total_messages,
                    "rb_msg_ratio": rb_run.metrics.total_messages
                    / max(st_run.metrics.total_messages, 1),
                    "cons_idonly_rounds": id_only_run.metrics.latest_decision_round()
                    or id_only_run.rounds_executed,
                    "cons_classic_rounds": known_run.metrics.latest_decision_round()
                    or known_run.rounds_executed,
                    "cons_idonly_agree": consensus_agreement(
                        {i: id_only_spec.network.process(i).output for i in correct}
                    ),
                    "cons_classic_agree": consensus_agreement(
                        {i: known_spec.network.process(i).output for i in correct}
                    ),
                }
            )
    aggregated = aggregate_rows(
        rows,
        group_by=["n", "f"],
        metrics=[
            "rb_idonly_msgs",
            "rb_classic_msgs",
            "rb_msg_ratio",
            "cons_idonly_rounds",
            "cons_classic_rounds",
            "cons_idonly_agree",
            "cons_classic_agree",
        ],
    )
    return ExperimentResult(
        experiment_id="E9",
        title="Id-only algorithms vs classic known-(n, f) baselines",
        claim="Removing the knowledge of n and f leaves message/round complexity essentially unchanged (small constant factors).",
        rows=aggregated,
        notes="The id-only consensus pays a constant-factor round overhead for the rotor-coordinator round in each phase.",
    )


# ---------------------------------------------------------------------------
# E10 — approximate agreement in a dynamic membership
# ---------------------------------------------------------------------------


def e10_dynamic_approx(scale: int = 1, seed: int = 41) -> ExperimentResult:
    """Section XI remark: iterated Algorithm 4 keeps halving the range even
    as participants come and go (subject to n > 3f per round)."""

    rows: list[dict[str, object]] = []
    iterations = 8
    for churn_fraction in (0.0, 0.2, 0.4):
        for rep in range(3 * scale):
            run_seed = derive(seed, churn_fraction, rep)
            n, f = 13, 4
            ids = sparse_ids(n + 4, seed=derive(run_seed, "ids"))
            correct, byz = split_correct_byzantine(ids[:n], f, seed=derive(run_seed, "split"))
            inputs = real_inputs(correct, low=0.0, high=100.0, seed=derive(run_seed, "in"))
            from ..core.approximate_agreement import IteratedApproximateAgreementProcess

            spec = build_network(
                correct_factory=lambda node: IteratedApproximateAgreementProcess(
                    node, input_value=inputs[node], iterations=iterations
                ),
                correct_ids=correct,
                byzantine_ids=byz,
                strategy="approx-outlier",
                seed=run_seed,
            )
            # Churn: extra correct nodes join mid-run with fresh inputs drawn
            # from the same range, and one original node leaves.
            rng = make_rng(run_seed)
            joiners = ids[n:]
            if churn_fraction > 0:
                for index, node in enumerate(joiners[: int(len(joiners) * churn_fraction * 2)]):
                    value = float(rng.uniform(0.0, 100.0))
                    spec.network.add_process(
                        IteratedApproximateAgreementProcess(
                            node, input_value=value, iterations=iterations
                        ),
                        at_round=3 + index,
                    )
                spec.network.remove_process(correct[-1], at_round=5)
            spec.network.run(max_rounds=iterations + 4, stop_when=lambda net: False)
            survivors = [
                i
                for i in correct
                if not (churn_fraction > 0 and i == correct[-1])
            ]
            outputs = {
                i: spec.network.process(i).estimate for i in survivors
            }
            in_range = max(inputs.values()) - min(inputs.values())
            out_range = max(outputs.values()) - min(outputs.values())
            rows.append(
                {
                    "churn_fraction": churn_fraction,
                    "in_range": in_range,
                    "out_range": out_range,
                    "contracted": out_range < in_range,
                    "outputs_in_range": all(
                        min(inputs.values()) <= v <= max(inputs.values())
                        for v in outputs.values()
                    ),
                }
            )
    aggregated = aggregate_rows(
        rows,
        group_by=["churn_fraction"],
        metrics=["in_range", "out_range", "contracted", "outputs_in_range"],
    )
    return ExperimentResult(
        experiment_id="E10",
        title="Iterated approximate agreement under churn",
        claim="The correct-value range keeps contracting under joins/leaves as long as n > 3f each round; joiners can widen it only through their inputs.",
        rows=aggregated,
        notes="Joining nodes draw inputs from the original range, so the surviving originals keep converging.",
    )


# ---------------------------------------------------------------------------
# Registry
# ---------------------------------------------------------------------------

EXPERIMENTS: dict[str, Callable[..., ExperimentResult]] = {
    "E1": e1_reliable_broadcast,
    "E2": e2_rotor_coordinator,
    "E3": e3_consensus,
    "E4": e4_approximate_agreement,
    "E5": e5_resiliency_boundary,
    "E6": e6_synchrony_necessity,
    "E7": e7_parallel_consensus,
    "E8": e8_total_order,
    "E9": e9_vs_baselines,
    "E10": e10_dynamic_approx,
}


def all_experiment_ids() -> list[str]:
    return list(EXPERIMENTS)


def run_experiment(experiment_id: str, *, scale: int = 1, seed: int | None = None) -> ExperimentResult:
    """Run one experiment by id (e.g. ``"E3"``)."""

    try:
        fn = EXPERIMENTS[experiment_id]
    except KeyError as exc:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {', '.join(EXPERIMENTS)}"
        ) from exc
    kwargs: dict[str, object] = {"scale": scale}
    if seed is not None:
        kwargs["seed"] = seed
    return fn(**kwargs)
