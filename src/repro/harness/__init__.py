"""Experiment harness: definitions of E1–E10 and the runner/reporter."""

from .ablations import ABLATIONS, a1_substitution_rule, a2_misconfigured_fault_bound
from .experiments import (
    EXPERIMENTS,
    ExperimentDefinition,
    ExperimentResult,
    all_experiment_ids,
    run_experiment,
)
from .runner import run_many, write_json_report, write_markdown_report

__all__ = [
    "ABLATIONS",
    "EXPERIMENTS",
    "ExperimentDefinition",
    "ExperimentResult",
    "a1_substitution_rule",
    "a2_misconfigured_fault_bound",
    "all_experiment_ids",
    "run_experiment",
    "run_many",
    "write_json_report",
    "write_markdown_report",
]
