"""Experiment runner: run any subset of E1–E10 and render a report.

Command line usage (from the repository root, after ``pip install -e .``)::

    python -m repro.harness.runner            # run everything at scale 1
    python -m repro.harness.runner E3 E6      # run a subset
    python -m repro.harness.runner --scale 2  # larger sweeps
    python -m repro.harness.runner --jobs 8   # fan out over 8 processes
    python -m repro.harness.runner --seed 99  # re-draw every sweep
    python -m repro.harness.runner --json -   # machine-readable results
    python -m repro.harness.runner --markdown results.md

``--jobs N`` parallelises each experiment's scenario sweep over ``N``
worker processes; the aggregated results are bit-identical to a
sequential run because every scenario carries its own derived seed.
``--json PATH`` (``-`` for stdout) emits the rows machine-readably so
benchmark trajectories can be diffed across PRs.  ``--store PATH``
persists every scenario into a :class:`repro.store.RunStore` and resumes
from it: re-running the same experiments against the same store skips
everything already computed (under the current code version) and still
produces bit-identical reports.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence, TextIO

from ..store import DEFAULT_SEGMENT_EVENTS, RunStore, canonical_dumps
from .experiments import EXPERIMENTS, ExperimentResult, run_experiment

__all__ = [
    "run_many",
    "write_markdown_report",
    "write_json_report",
    "main",
]


def run_many(
    experiment_ids: Sequence[str] | None = None,
    *,
    scale: int = 1,
    seed: int | None = None,
    jobs: int = 1,
    store: RunStore | None = None,
    segment_events: int = DEFAULT_SEGMENT_EVENTS,
    stream: TextIO | None = None,
) -> list[ExperimentResult]:
    """Run the requested experiments, printing each table as it finishes.

    ``seed`` is forwarded to every experiment (``None`` keeps each
    experiment's canonical default seed) and ``jobs`` sets the
    worker-process count for the underlying sweeps.  ``store`` makes every
    sweep resumable (see :func:`run_experiment`); ``segment_events`` sets
    the persisted trace-segment granularity for traced scenarios.
    """

    stream = stream or sys.stdout
    ids = list(experiment_ids) if experiment_ids else list(EXPERIMENTS)
    results: list[ExperimentResult] = []
    for experiment_id in ids:
        start = time.perf_counter()
        result = run_experiment(
            experiment_id,
            scale=scale,
            seed=seed,
            jobs=jobs,
            store=store,
            segment_events=segment_events,
        )
        elapsed = time.perf_counter() - start
        results.append(result)
        print(result.to_text(), file=stream)
        print(f"({experiment_id} finished in {elapsed:.1f}s)\n", file=stream)
    return results


def write_markdown_report(results: Sequence[ExperimentResult], path: str) -> None:
    """Write the experiment results as a Markdown document."""

    parts = ["# Reproduction results", ""]
    for result in results:
        parts.append(result.to_markdown())
        parts.append("")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(parts))


def write_json_report(
    results: Sequence[ExperimentResult], path: str, *, indent: int | None = 2
) -> None:
    """Write the results as JSON (``path == "-"`` writes to stdout).

    Keys are sorted and rows keep their aggregation order, so two reports
    produced from the same seeds diff cleanly — including across
    ``--jobs`` settings and between store-resumed and fresh runs (the
    serialization path is the run store's canonical one).
    """

    payload = canonical_dumps(
        [result.as_dict() for result in results], indent=indent
    )
    if path == "-":
        print(payload)
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload + "\n")


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all of E1–E10)",
    )
    parser.add_argument("--scale", type=int, default=1, help="sweep size multiplier")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per sweep (results are identical for any value)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="base seed overriding each experiment's default"
    )
    parser.add_argument(
        "--markdown", metavar="PATH", help="also write a Markdown report to PATH"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write machine-readable results to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        help="persist runs to (and resume from) a SQLite run store at PATH",
    )
    parser.add_argument(
        "--segment-events",
        type=int,
        default=DEFAULT_SEGMENT_EVENTS,
        metavar="N",
        help="events per persisted trace segment (traced scenarios with --store)",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.segment_events < 1:
        parser.error("--segment-events must be at least 1")
    store = RunStore(args.store) if args.store else None
    try:
        results = run_many(
            args.experiments or None,
            scale=args.scale,
            seed=args.seed,
            jobs=args.jobs,
            store=store,
            segment_events=args.segment_events,
        )
    finally:
        if store is not None:
            store.close()
    if args.markdown:
        write_markdown_report(results, args.markdown)
        print(f"markdown report written to {args.markdown}")
    if args.json:
        write_json_report(results, args.json)
        if args.json != "-":
            print(f"json report written to {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
