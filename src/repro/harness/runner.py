"""Experiment runner: run any subset of E1–E10 and render a report.

Command line usage (from the repository root, after ``pip install -e .``)::

    python -m repro.harness.runner            # run everything at scale 1
    python -m repro.harness.runner E3 E6      # run a subset
    python -m repro.harness.runner --scale 2  # larger sweeps
    python -m repro.harness.runner --markdown results.md
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Sequence, TextIO

from .experiments import EXPERIMENTS, ExperimentResult, run_experiment

__all__ = ["run_many", "write_markdown_report", "main"]


def run_many(
    experiment_ids: Sequence[str] | None = None,
    *,
    scale: int = 1,
    stream: TextIO | None = None,
) -> list[ExperimentResult]:
    """Run the requested experiments, printing each table as it finishes."""

    stream = stream or sys.stdout
    ids = list(experiment_ids) if experiment_ids else list(EXPERIMENTS)
    results: list[ExperimentResult] = []
    for experiment_id in ids:
        start = time.perf_counter()
        result = run_experiment(experiment_id, scale=scale)
        elapsed = time.perf_counter() - start
        results.append(result)
        print(result.to_text(), file=stream)
        print(f"({experiment_id} finished in {elapsed:.1f}s)\n", file=stream)
    return results


def write_markdown_report(results: Sequence[ExperimentResult], path: str) -> None:
    """Write the experiment results as a Markdown document."""

    parts = ["# Reproduction results", ""]
    for result in results:
        parts.append(result.to_markdown())
        parts.append("")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(parts))


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all of E1–E10)",
    )
    parser.add_argument("--scale", type=int, default=1, help="sweep size multiplier")
    parser.add_argument(
        "--markdown", metavar="PATH", help="also write a Markdown report to PATH"
    )
    args = parser.parse_args(argv)
    results = run_many(args.experiments or None, scale=args.scale)
    if args.markdown:
        write_markdown_report(results, args.markdown)
        print(f"markdown report written to {args.markdown}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
