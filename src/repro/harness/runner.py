"""Experiment runner: run any subset of E1–E10 and render a report.

Command line usage (from the repository root, after ``pip install -e .``)::

    python -m repro.harness.runner            # run everything at scale 1
    python -m repro.harness.runner E3 E6      # run a subset
    python -m repro.harness.runner --scale 2  # larger sweeps
    python -m repro.harness.runner --jobs 8   # fan out over 8 processes
    python -m repro.harness.runner --seed 99  # re-draw every sweep
    python -m repro.harness.runner --json -   # machine-readable results
    python -m repro.harness.runner --markdown results.md

``--jobs N`` parallelises each experiment's scenario sweep over ``N``
worker processes; the aggregated results are bit-identical to a
sequential run because every scenario carries its own derived seed.
``--json PATH`` (``-`` for stdout) emits the rows machine-readably so
benchmark trajectories can be diffed across PRs.  ``--store PATH``
persists every scenario into a :class:`repro.store.RunStore` and resumes
from it: re-running the same experiments against the same store skips
everything already computed (under the current code version) and still
produces bit-identical reports.

``--search`` switches the runner into property-guided scenario search
(:mod:`repro.search`) instead of running experiments::

    python -m repro.harness.runner --search --search-budget 150 \\
        --search-jobs 4 --store runs.sqlite --search-out counterexamples.json

The search mutates a base spec (``--search-spec PATH`` to supply one as
JSON; the default hunts consensus-agreement breaks under
``UniformRandomDelay`` at n=4) and reports confirmed counterexamples.
``--search-jobs N`` evaluates each candidate generation across ``N``
worker processes — findings are bit-identical for any value.
``--search-objective`` swaps the ranking: ``violations`` (default),
``rounds`` (worst-case latency) or ``message_volume`` (traffic blowups;
candidates run under payload accounting).  With ``--store`` every
candidate evaluation is cached by content-addressed run key (repeat
searches execute nothing) and every finding is persisted per engine,
replayable by run key.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Sequence, TextIO

from ..store import DEFAULT_SEGMENT_EVENTS, RunStore, canonical_dumps
from .experiments import EXPERIMENTS, ExperimentResult, run_experiment

__all__ = [
    "run_many",
    "run_search",
    "write_markdown_report",
    "write_json_report",
    "main",
]


def run_many(
    experiment_ids: Sequence[str] | None = None,
    *,
    scale: int = 1,
    seed: int | None = None,
    jobs: int = 1,
    store: RunStore | None = None,
    segment_events: int = DEFAULT_SEGMENT_EVENTS,
    stream: TextIO | None = None,
) -> list[ExperimentResult]:
    """Run the requested experiments, printing each table as it finishes.

    ``seed`` is forwarded to every experiment (``None`` keeps each
    experiment's canonical default seed) and ``jobs`` sets the
    worker-process count for the underlying sweeps.  ``store`` makes every
    sweep resumable (see :func:`run_experiment`); ``segment_events`` sets
    the persisted trace-segment granularity for traced scenarios.
    """

    stream = stream or sys.stdout
    ids = list(experiment_ids) if experiment_ids else list(EXPERIMENTS)
    results: list[ExperimentResult] = []
    for experiment_id in ids:
        start = time.perf_counter()
        result = run_experiment(
            experiment_id,
            scale=scale,
            seed=seed,
            jobs=jobs,
            store=store,
            segment_events=segment_events,
        )
        elapsed = time.perf_counter() - start
        results.append(result)
        print(result.to_text(), file=stream)
        print(f"({experiment_id} finished in {elapsed:.1f}s)\n", file=stream)
    return results


def write_markdown_report(results: Sequence[ExperimentResult], path: str) -> None:
    """Write the experiment results as a Markdown document."""

    parts = ["# Reproduction results", ""]
    for result in results:
        parts.append(result.to_markdown())
        parts.append("")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("\n".join(parts))


def write_json_report(
    results: Sequence[ExperimentResult], path: str, *, indent: int | None = 2
) -> None:
    """Write the results as JSON (``path == "-"`` writes to stdout).

    Keys are sorted and rows keep their aggregation order, so two reports
    produced from the same seeds diff cleanly — including across
    ``--jobs`` settings and between store-resumed and fresh runs (the
    serialization path is the run store's canonical one).
    """

    payload = canonical_dumps(
        [result.as_dict() for result in results], indent=indent
    )
    if path == "-":
        print(payload)
        return
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(payload + "\n")


#: The default search base: the E6 regime where consensus is known to
#: lose agreement under unpredictable delays — n=4, one crashing
#: Byzantine node, uniform-random delivery up to 6 rounds.
_DEFAULT_SEARCH_BASE = {
    "protocol": "consensus",
    "n": 4,
    "f": 1,
    "adversary": "crash",
    "delay": "uniform-random",
    "delay_params": {"max_delay": 6},
    "max_rounds": 30,
}


def run_search(
    *,
    budget: int = 150,
    seed: int = 0,
    base_spec: dict | None = None,
    escalate_n: Sequence[int] = (8,),
    mutation_ops: Sequence[str] | None = None,
    store: RunStore | None = None,
    jobs: int = 1,
    objective: str = "violations",
    out_path: str | None = None,
    stream: TextIO | None = None,
):
    """Run one property-guided scenario search and report the findings.

    ``jobs`` fans candidate evaluation out over worker processes
    (findings are bit-identical for any value); ``objective`` picks the
    ranking (see :data:`repro.search.OBJECTIVES`).  Returns the
    :class:`repro.search.SearchResult`; when ``out_path`` is given the
    result (specs, violations, run keys, escalations) is also written
    there as JSON so CI can archive counterexamples as artifacts.
    """

    from ..api.spec import ScenarioSpec
    from ..search import ScenarioSearch

    stream = stream or sys.stdout
    spec = ScenarioSpec.from_dict(dict(base_spec or _DEFAULT_SEARCH_BASE))
    search = ScenarioSearch(
        spec,
        seed=seed,
        store=store,
        jobs=jobs,
        objective=objective,
        escalate_n=tuple(escalate_n),
        mutation_ops=None if mutation_ops is None else tuple(mutation_ops),
    )
    start = time.perf_counter()
    result = search.run(budget)
    elapsed = time.perf_counter() - start
    print(
        f"search: {result.evaluations} scenarios evaluated in {elapsed:.1f}s "
        f"({result.executed} executed, {result.cached} from the store), "
        f"{len(result.findings)} confirmed finding(s), "
        f"{result.rejected} rejected at engine confirmation",
        file=stream,
    )
    for finding in result.findings:
        names = ", ".join(sorted({v.property_name for v in finding.violations}))
        keys = ", ".join(
            f"{engine}={key[:12]}" for engine, key in sorted(finding.run_keys.items())
        )
        print(
            f"  - {names} @ {finding.spec.protocol} n={finding.spec.n} "
            f"f={finding.spec.f} delay={finding.spec.delay} "
            f"adversary={finding.spec.adversary} seed={finding.spec.seed}"
            + (f" [{keys}]" if keys else ""),
            file=stream,
        )
    if objective != "violations" and result.best_spec is not None:
        best = result.best_spec
        print(
            f"  best {objective}: score={result.best_score:.3f} @ "
            f"{best.protocol} n={best.n} f={best.f} delay={best.delay} "
            f"params={best.params} seed={best.seed}",
            file=stream,
        )
    if out_path:
        payload = canonical_dumps(result.as_dict(), indent=2)
        if out_path == "-":
            print(payload, file=stream)
        else:
            with open(out_path, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"search results written to {out_path}", file=stream)
    return result


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (default: all of E1–E10)",
    )
    parser.add_argument("--scale", type=int, default=1, help="sweep size multiplier")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per sweep (results are identical for any value)",
    )
    parser.add_argument(
        "--seed", type=int, default=None, help="base seed overriding each experiment's default"
    )
    parser.add_argument(
        "--markdown", metavar="PATH", help="also write a Markdown report to PATH"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write machine-readable results to PATH ('-' for stdout)",
    )
    parser.add_argument(
        "--store",
        metavar="PATH",
        help="persist runs to (and resume from) a SQLite run store at PATH",
    )
    parser.add_argument(
        "--segment-events",
        type=int,
        default=DEFAULT_SEGMENT_EVENTS,
        metavar="N",
        help="events per persisted trace segment (traced scenarios with --store)",
    )
    parser.add_argument(
        "--search",
        action="store_true",
        help="run property-guided scenario search instead of experiments",
    )
    parser.add_argument(
        "--search-budget",
        type=int,
        default=150,
        metavar="N",
        help="candidate scenarios the search may evaluate",
    )
    parser.add_argument(
        "--search-spec",
        metavar="PATH",
        help="JSON file holding the base ScenarioSpec to mutate "
        "(default: consensus n=4 under uniform-random delay)",
    )
    parser.add_argument(
        "--search-out",
        metavar="PATH",
        help="write the search result (findings + run keys) as JSON to PATH",
    )
    parser.add_argument(
        "--search-escalate",
        default="8",
        metavar="N,N",
        help="comma-separated larger n values findings are confirmed at",
    )
    parser.add_argument(
        "--search-ops",
        metavar="OP,OP",
        help="restrict the mutation vocabulary (e.g. omit 'delay' to pin "
        "the base delay family); default: all ops",
    )
    parser.add_argument(
        "--search-jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for candidate evaluation "
        "(findings are identical for any value)",
    )
    parser.add_argument(
        "--search-objective",
        default="violations",
        metavar="NAME",
        help="candidate ranking: violations (default), rounds, or "
        "message_volume",
    )
    args = parser.parse_args(argv)
    if args.jobs < 1:
        parser.error("--jobs must be at least 1")
    if args.segment_events < 1:
        parser.error("--segment-events must be at least 1")
    if args.search:
        if args.search_budget < 1:
            parser.error("--search-budget must be at least 1")
        if args.search_jobs < 1:
            parser.error("--search-jobs must be at least 1")
        base_spec = None
        if args.search_spec:
            with open(args.search_spec, "r", encoding="utf-8") as handle:
                base_spec = json.load(handle)
        escalate = tuple(
            int(n) for n in args.search_escalate.split(",") if n.strip()
        )
        ops = (
            tuple(op.strip() for op in args.search_ops.split(",") if op.strip())
            if args.search_ops
            else None
        )
        store = RunStore(args.store) if args.store else None
        try:
            run_search(
                budget=args.search_budget,
                seed=args.seed if args.seed is not None else 0,
                base_spec=base_spec,
                escalate_n=escalate,
                mutation_ops=ops,
                store=store,
                jobs=args.search_jobs,
                objective=args.search_objective,
                out_path=args.search_out,
            )
        finally:
            if store is not None:
                store.close()
        return 0
    store = RunStore(args.store) if args.store else None
    try:
        results = run_many(
            args.experiments or None,
            scale=args.scale,
            seed=args.seed,
            jobs=args.jobs,
            store=store,
            segment_events=args.segment_events,
        )
    finally:
        if store is not None:
            store.close()
    if args.markdown:
        write_markdown_report(results, args.markdown)
        print(f"markdown report written to {args.markdown}")
    if args.json:
        write_json_report(results, args.json)
        if args.json != "-":
            print(f"json report written to {args.json}")
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
