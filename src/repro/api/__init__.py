"""repro.api — the unified, declarative scenario API.

This layer is the single entry point for building and running simulated
executions of the paper's protocols:

* :class:`ScenarioSpec` — a frozen, JSON-round-trippable description of one
  scenario (protocol, n, f, inputs, adversary, delays, churn, seed, budget);
* :data:`REGISTRY` / :func:`build_system` — the protocol registry mapping
  the seven id-only algorithms and three classic baselines to a common
  ``build(spec) -> SystemSpec`` factory;
* :func:`run_scenario` — build + run one scenario under its run policy;
* :class:`SweepSpec` / :class:`SweepRunner` — cartesian sweep expansion and
  (process-pool) parallel execution with deterministic aggregation.

Quick start::

    from repro.api import ScenarioSpec, run_scenario

    outcome = run_scenario(
        ScenarioSpec(protocol="consensus", n=10, f=3,
                     adversary="consensus-split-vote", seed=1)
    )
    print(outcome.result.decided_outputs())
"""

from .registry import (
    REGISTRY,
    ProtocolInfo,
    ProtocolRegistry,
    available_protocols,
    build_system,
    register_protocol,
)
from .spec import DELAY_KINDS, INPUT_KINDS, STOP_KINDS, ScenarioSpec
from .sweep import ScenarioOutcome, SweepRunner, SweepSpec, run_scenario, run_sweep

__all__ = [
    "DELAY_KINDS",
    "INPUT_KINDS",
    "REGISTRY",
    "STOP_KINDS",
    "ProtocolInfo",
    "ProtocolRegistry",
    "ScenarioOutcome",
    "ScenarioSpec",
    "SweepRunner",
    "SweepSpec",
    "available_protocols",
    "build_system",
    "register_protocol",
    "run_scenario",
    "run_sweep",
]
