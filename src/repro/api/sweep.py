"""Sweep expansion and parallel execution.

A :class:`SweepSpec` is a declarative cartesian grid over scenario axes
(``n``, ``f``, ``adversary``, delay/input/protocol parameters) plus a
repetition count; :meth:`SweepSpec.scenarios` expands it into concrete
:class:`~repro.api.spec.ScenarioSpec` values, deriving one seed per
(configuration, repetition) pair.  :class:`SweepRunner` executes the
scenarios — sequentially or across a ``ProcessPoolExecutor`` — and feeds
the per-scenario measurement rows into the existing
:func:`repro.analysis.stats.aggregate_rows` machinery.

Parallel execution is *bit-deterministic*: every scenario carries its own
derived seed and rows are collected in expansion order, so ``jobs=1`` and
``jobs=N`` produce identical aggregated results.
"""

from __future__ import annotations

import itertools
import os
import warnings
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Mapping, Sequence

from ..analysis.stats import aggregate_rows
from ..core.quorums import max_faults_tolerated
from ..sim.network import RunResult, all_correct_halted
from ..sim.rng import derive
from ..workloads.generators import SystemSpec
from .registry import REGISTRY
from .spec import ScenarioSpec

__all__ = [
    "ScenarioOutcome",
    "resolve_stop",
    "run_scenario",
    "SweepSpec",
    "SweepRunner",
    "run_sweep",
    "map_jobs",
]

#: Axis names that map onto top-level ScenarioSpec fields.  Any other axis
#: name lands in ``params`` (optionally routed with a dotted prefix such as
#: ``input_params.ones_fraction`` or ``churn.join_rate``).
_FIELD_AXES = ("n", "f", "adversary", "delay", "inputs", "stop")
_PREFIX_AXES = ("input_params", "delay_params", "churn", "params")


# ---------------------------------------------------------------------------
# Running a single scenario
# ---------------------------------------------------------------------------


@dataclass
class ScenarioOutcome:
    """One executed scenario: the spec, the built system and the run."""

    spec: ScenarioSpec
    system: SystemSpec
    result: RunResult

    # -- convenience accessors ---------------------------------------------

    @property
    def network(self):
        return self.system.network

    def correct_processes(self) -> dict:
        return {i: self.network.process(i) for i in self.system.correct_ids}

    def outputs(self) -> dict:
        return {i: p.output for i, p in self.correct_processes().items()}

    @property
    def rounds(self) -> int:
        return self.result.rounds_executed

    @property
    def messages(self) -> int:
        return self.result.metrics.total_messages

    def decision_rounds_exhausted(self) -> int:
        """Last decision round, falling back to the rounds executed."""

        return self.result.metrics.latest_decision_round() or self.rounds

    def summary_row(self) -> dict[str, Any]:
        """The default measurement row for sweeps without a custom row_fn."""

        procs = self.correct_processes().values()
        return {
            "protocol": self.spec.protocol,
            "n": self.spec.n,
            "f": self.spec.f,
            "adversary": self.spec.adversary,
            "decided": all(p.decided for p in procs),
            "agreement": self.result.agreement_reached(),
            "rounds": self.rounds,
            "decision_round": self.decision_rounds_exhausted(),
            "messages": self.messages,
            "stop_reason": self.result.stop_reason,
        }


def run_scenario(
    spec: ScenarioSpec,
    *,
    strategy: object = None,
    engine: str | None = None,
    payload_accounting: bool = False,
) -> ScenarioOutcome:
    """Build the system for ``spec``, run it under its run policy, return it.

    ``engine`` optionally forces a round-loop kernel (``"vector"``/
    ``"fast"``/``"queue"``/``"legacy"``); the kernels are bit-identical,
    so this only matters for benchmarking and for the engine-equivalence
    suite.  ``payload_accounting`` switches on engine-independent wire
    byte counting (``payload_bytes``/``peak_payload_bytes`` in the
    metrics summary) before the run — pure measurement, no effect on the
    execution itself.
    """

    info = REGISTRY.info(spec.protocol)
    system = REGISTRY.build(spec, strategy=strategy, engine=engine)
    if payload_accounting:
        system.network.enable_payload_accounting()
    max_rounds = (
        spec.max_rounds if spec.max_rounds is not None else info.default_max_rounds(spec)
    )
    result = system.network.run(
        max_rounds=max_rounds, stop_when=resolve_stop(spec, info)
    )
    return ScenarioOutcome(spec=spec, system=system, result=result)


def resolve_stop(spec: ScenarioSpec, info=None) -> Callable | None:
    """The ``stop_when`` callable a spec's run policy implies.

    Shared by :func:`run_scenario` and the benchmarks so both always run
    the same executions.  ``info`` defaults to the registry entry for the
    spec's protocol; a returned ``None`` means the network's default stop
    condition (every correct node decided).
    """

    info = info or REGISTRY.info(spec.protocol)
    stop_kind = info.default_stop if spec.stop == "default" else spec.stop
    if stop_kind == "decided":
        return None  # the network's default: every correct node decided
    if stop_kind == "halted":
        return all_correct_halted
    return _never_stop  # "never": run the full round budget


def _never_stop(network) -> bool:
    return False


# ---------------------------------------------------------------------------
# Sweep specification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SweepSpec:
    """A cartesian grid of scenarios over one protocol.

    ``grid`` maps axis names to the values to sweep; axes are combined as a
    cartesian product in insertion order and each combination is repeated
    ``repetitions`` times.  Axis names ``n``/``f``/``adversary``/``delay``/
    ``inputs``/``stop`` set the corresponding :class:`ScenarioSpec` field;
    dotted names (``input_params.ones_fraction``, ``churn.join_rate``,
    ``delay_params.delta``, ``params.iterations``) set an entry inside the
    corresponding option mapping; any bare name is a protocol parameter.

    The remaining fields are the fixed (non-swept) scenario settings.  When
    ``f`` is neither fixed nor an axis it defaults to the paper's maximum
    ``⌊(n − 1)/3⌋`` per configuration.  Each scenario's seed is
    ``derive(base_seed, *seed_tags, *axis_values, repetition)`` — stable,
    collision-free and independent of execution order.
    """

    protocol: str
    grid: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    repetitions: int = 1
    base_seed: int = 0
    n: int | None = None
    f: int | None = None
    adversary: str = "silent"
    inputs: str = "default"
    input_params: Mapping[str, Any] = field(default_factory=dict)
    delay: str = "synchronous"
    delay_params: Mapping[str, Any] = field(default_factory=dict)
    churn: Mapping[str, Any] | None = None
    params: Mapping[str, Any] = field(default_factory=dict)
    max_rounds: int | None = None
    stop: str = "default"
    trace: bool = False
    seed_tags: tuple = ()

    def __post_init__(self) -> None:
        if self.repetitions < 1:
            raise ValueError("repetitions must be at least 1")
        for axis, values in self.grid.items():
            if not isinstance(axis, str) or not axis:
                raise ValueError("grid axis names must be non-empty strings")
            if not list(values):
                raise ValueError(f"grid axis {axis!r} has no values")
        if self.n is None and "n" not in self.grid:
            raise ValueError("sweep needs n either fixed or as a grid axis")

    def scenarios(self) -> Iterator[ScenarioSpec]:
        """Expand the grid into concrete scenario specs, in a stable order."""

        axes = list(self.grid.keys())
        value_lists = [list(self.grid[a]) for a in axes]
        for combo in itertools.product(*value_lists):
            settings: dict[str, Any] = {
                "n": self.n,
                "f": self.f,
                "adversary": self.adversary,
                "inputs": self.inputs,
                "delay": self.delay,
                "stop": self.stop,
            }
            options = {
                "input_params": dict(self.input_params),
                "delay_params": dict(self.delay_params),
                "churn": dict(self.churn) if self.churn is not None else None,
                "params": dict(self.params),
            }
            for axis, value in zip(axes, combo):
                if axis in _FIELD_AXES:
                    settings[axis] = value
                    continue
                prefix, _, key = axis.partition(".")
                if key and prefix in _PREFIX_AXES:
                    if prefix == "churn" and options["churn"] is None:
                        options["churn"] = {}
                    options[prefix][key] = value
                else:
                    options["params"][axis] = value
            n = int(settings["n"])
            f = settings["f"]
            f = max_faults_tolerated(n) if f is None else int(f)
            for repetition in range(self.repetitions):
                yield ScenarioSpec(
                    protocol=self.protocol,
                    n=n,
                    f=f,
                    adversary=settings["adversary"],
                    seed=derive(self.base_seed, *self.seed_tags, *combo, repetition),
                    max_rounds=self.max_rounds,
                    inputs=settings["inputs"],
                    input_params=options["input_params"],
                    delay=settings["delay"],
                    delay_params=options["delay_params"],
                    churn=options["churn"],
                    params=options["params"],
                    stop=settings["stop"],
                    trace=self.trace,
                )

    def scenario_count(self) -> int:
        sizes = [len(list(v)) for v in self.grid.values()]
        total = self.repetitions
        for size in sizes:
            total *= size
        return total


# ---------------------------------------------------------------------------
# Parallel execution
# ---------------------------------------------------------------------------

RowFn = Callable[[ScenarioOutcome], dict]


def _default_row(outcome: ScenarioOutcome) -> dict:
    return outcome.summary_row()


def _run_case(payload: tuple[dict, RowFn, str | None]) -> dict:
    """Worker entry point: rebuild the spec, run it, extract the row.

    Executed in worker processes, so it only receives (and returns) plain,
    picklable values; ``row_fn`` must be a module-level function.
    """

    spec_dict, row_fn, engine = payload
    outcome = run_scenario(ScenarioSpec.from_dict(spec_dict), engine=engine)
    return row_fn(outcome)


def map_jobs(fn: Callable, payloads: Sequence, jobs: int) -> Iterator:
    """Map ``fn`` over ``payloads`` in order, optionally across a process pool.

    The shared execution engine of :class:`SweepRunner` and the resumable
    layer (:class:`repro.store.resumable.ResumableSweep`): results come
    back lazily and strictly in payload order, so callers can fire
    progress callbacks as cells complete while keeping deterministic
    collection order.  ``jobs == 1`` (or a single payload) runs inline;
    only pool *creation* falls back to sequential (sandboxes without
    process support) — errors raised inside ``fn`` propagate unchanged
    rather than triggering a silent rerun.  ``fn`` must be a module-level
    function and payloads/results must pickle.
    """

    if jobs < 1:
        raise ValueError("jobs must be at least 1")
    if jobs == 1 or len(payloads) <= 1:
        return map(fn, payloads)
    workers = min(jobs, len(payloads), os.cpu_count() or 1)
    chunksize = max(1, len(payloads) // (workers * 4))
    try:
        pool = ProcessPoolExecutor(max_workers=workers)
    except OSError as exc:  # pragma: no cover - sandboxes
        warnings.warn(
            f"process pool unavailable ({exc}); falling back to sequential execution",
            RuntimeWarning,
            stacklevel=2,
        )
        return map(fn, payloads)

    def results() -> Iterator:
        with pool:
            yield from pool.map(fn, payloads, chunksize=chunksize)

    return results()


#: Progress callback: ``(index, spec, row)`` per completed scenario, fired
#: in expansion order as results arrive.
CellCallback = Callable[[int, ScenarioSpec, dict], None]


class SweepRunner:
    """Executes sweeps, optionally across a process pool.

    ``jobs`` is the worker-process count; ``1`` (the default) runs inline.
    Rows come back in scenario-expansion order regardless of ``jobs``, and
    every scenario owns a derived seed, so parallel runs are bit-identical
    to sequential ones.

    ``engine`` optionally forces the round-loop kernel every scenario runs
    on (see :class:`repro.sim.network.SynchronousNetwork`); the kernels
    are result-identical, so this knob exists for benchmarking and for the
    equivalence suite, not for changing what a sweep measures.
    """

    def __init__(self, jobs: int = 1, *, engine: str | None = None) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.jobs = jobs
        self.engine = engine

    def run(
        self,
        sweeps: SweepSpec | Sequence[SweepSpec],
        *,
        row_fn: RowFn | None = None,
        on_cell_complete: CellCallback | None = None,
    ) -> list[dict]:
        """Expand and execute ``sweeps``, returning one row per scenario.

        ``on_cell_complete(index, spec, row)`` fires per scenario, in
        expansion order, as results arrive — the progress signal the
        resumable store layer and the streaming scenario service build
        on.  With no callback the behaviour (and the returned rows) are
        exactly as before.
        """

        if isinstance(sweeps, SweepSpec):
            sweeps = [sweeps]
        scenarios = [spec for sweep in sweeps for spec in sweep.scenarios()]
        extract = row_fn or _default_row
        payloads = [(spec.to_dict(), extract, self.engine) for spec in scenarios]
        rows: list[dict] = []
        for index, row in enumerate(map_jobs(_run_case, payloads, self.jobs)):
            if on_cell_complete is not None:
                on_cell_complete(index, scenarios[index], row)
            rows.append(row)
        return rows

    def run_aggregated(
        self,
        sweeps: SweepSpec | Sequence[SweepSpec],
        *,
        group_by: Sequence[str],
        metrics: Sequence[str],
        row_fn: RowFn | None = None,
    ) -> list[dict]:
        """Run and aggregate in one call (means/rates via analysis.stats)."""

        rows = self.run(sweeps, row_fn=row_fn)
        return aggregate_rows(rows, group_by=list(group_by), metrics=list(metrics))


def run_sweep(
    sweep: SweepSpec | Sequence[SweepSpec],
    *,
    jobs: int = 1,
    engine: str | None = None,
    row_fn: RowFn | None = None,
    group_by: Sequence[str] | None = None,
    metrics: Sequence[str] | None = None,
) -> list[dict]:
    """Convenience wrapper: raw rows, or aggregated when grouping is given."""

    runner = SweepRunner(jobs=jobs, engine=engine)
    if (group_by is None) != (metrics is None):
        raise ValueError("group_by and metrics must be provided together")
    if group_by is None:
        return runner.run(sweep, row_fn=row_fn)
    return runner.run_aggregated(sweep, group_by=group_by, metrics=metrics, row_fn=row_fn)
