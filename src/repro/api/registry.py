"""The protocol registry: one uniform ``build(spec) -> SystemSpec`` factory.

Every protocol of the reproduction — the seven id-only algorithms of the
paper plus the three classic known-(n, f) baselines — registers a builder
here.  A builder takes a :class:`~repro.api.spec.ScenarioSpec` and returns
a ready-to-run :class:`~repro.workloads.generators.SystemSpec`, assembling
identifiers, inputs, adversaries, delay models and (where supported)
churn exactly the way the old per-protocol ``*_system`` helpers did, so
seeds keep producing the same executions.

The registry also records each protocol's *run policy*: the default round
budget (possibly a function of ``n``/``f``) and the default stop condition,
which :func:`repro.api.sweep.run_scenario` applies when the spec leaves
them unspecified.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..adversary.base import AdversaryStrategy
from ..baselines import (
    DolevApproxProcess,
    KnownFConsensusProcess,
    SrikanthTouegBroadcastProcess,
)
from ..core.approximate_agreement import (
    ApproximateAgreementProcess,
    IteratedApproximateAgreementProcess,
)
from ..core.consensus import ConsensusProcess
from ..core.parallel_consensus import ParallelConsensusProcess
from ..core.reliable_broadcast import ReliableBroadcastProcess
from ..core.rotor_coordinator import RotorCoordinatorProcess
from ..dynamic.churn import generate_churn_schedule, generate_flash_crowd_schedule
from ..dynamic.membership import build_total_order_system
from ..sim.delays import (
    BoundedUnknownDelay,
    DelayModel,
    HeavyTailDelay,
    JitteredSynchronousDelay,
    PartitionDelay,
    UniformRandomDelay,
    split_into_groups,
)
from ..sim.messages import NodeId
from ..sim.rng import derive, make_rng
from ..workloads.generators import (
    SystemSpec,
    binary_inputs,
    build_network,
    real_inputs,
    sparse_ids,
    split_correct_byzantine,
)
from .spec import ScenarioSpec, _coerce_id

__all__ = [
    "ProtocolInfo",
    "ProtocolRegistry",
    "REGISTRY",
    "register_protocol",
    "build_system",
    "available_protocols",
]

#: The signature every registered builder implements.  ``strategy`` is the
#: resolved adversary (usually the spec's strategy name; the deprecated
#: shims may pass a live :class:`AdversaryStrategy` instance instead).
Builder = Callable[[ScenarioSpec, object], SystemSpec]


@dataclass(frozen=True)
class ProtocolInfo:
    """Registry metadata for one protocol."""

    name: str
    builder: Builder
    description: str
    baseline: bool
    default_max_rounds: Callable[[ScenarioSpec], int]
    default_stop: str  # "decided" | "halted" | "never"
    supports_inputs: bool  # honours non-default ScenarioSpec.inputs
    supports_churn: bool  # honours ScenarioSpec.churn
    supports_delay: bool  # honours non-synchronous ScenarioSpec.delay
    known_params: tuple[str, ...]  # the ScenarioSpec.params keys the builder reads


class ProtocolRegistry:
    """Name-based registry of scenario builders."""

    def __init__(self) -> None:
        self._protocols: dict[str, ProtocolInfo] = {}

    def register(
        self,
        name: str,
        *,
        description: str = "",
        baseline: bool = False,
        max_rounds: Callable[[ScenarioSpec], int] | int = 60,
        stop: str = "decided",
        inputs: bool = False,
        churn: bool = False,
        delay: bool = True,
        params: tuple[str, ...] = (),
    ) -> Callable[[Builder], Builder]:
        """Decorator registering ``builder`` under ``name``.

        ``inputs``/``churn``/``delay`` declare which spec facilities the
        builder honours and ``params`` the protocol-parameter keys it
        reads; :meth:`build` rejects specs that use anything else, so a
        validated spec never silently misdescribes the execution it
        produces.
        """

        if stop not in ("decided", "halted", "never"):
            raise ValueError(f"invalid default stop condition {stop!r}")
        budget = max_rounds if callable(max_rounds) else (lambda spec, _b=max_rounds: _b)

        def decorator(builder: Builder) -> Builder:
            if name in self._protocols:
                raise ValueError(f"protocol {name!r} registered twice")
            self._protocols[name] = ProtocolInfo(
                name=name,
                builder=builder,
                description=description,
                baseline=baseline,
                default_max_rounds=budget,
                default_stop=stop,
                supports_inputs=inputs,
                supports_churn=churn,
                supports_delay=delay,
                known_params=tuple(params),
            )
            return builder

        return decorator

    # -- lookup -------------------------------------------------------------

    def info(self, name: str) -> ProtocolInfo:
        try:
            return self._protocols[name]
        except KeyError as exc:
            raise KeyError(
                f"unknown protocol {name!r}; known: {', '.join(sorted(self._protocols))}"
            ) from exc

    def names(self, *, include_baselines: bool = True) -> list[str]:
        return sorted(
            name
            for name, info in self._protocols.items()
            if include_baselines or not info.baseline
        )

    def __contains__(self, name: str) -> bool:
        return name in self._protocols

    def __iter__(self):
        return iter(sorted(self._protocols))

    # -- building -----------------------------------------------------------

    def build(
        self,
        spec: ScenarioSpec,
        *,
        strategy: object = None,
        engine: str | None = None,
    ) -> SystemSpec:
        """Assemble the simulated system described by ``spec``.

        ``strategy`` optionally overrides ``spec.adversary`` with a live
        :class:`AdversaryStrategy` instance (used by the deprecated shims);
        normally the spec's registered strategy name is used.

        ``engine`` optionally forces a specific round-loop kernel
        (``"vector"``/``"fast"``/``"queue"``/``"legacy"``, see
        :class:`repro.sim.network.SynchronousNetwork`).  All kernels
        produce bit-identical executions; the default ``None`` leaves the
        network on ``"auto"``, which picks the columnar vector path
        whenever the spec's delay model allows it.
        """

        info = self.info(spec.protocol)
        self._check_supported(spec, info)
        effective = strategy if strategy is not None else spec.adversary
        system = info.builder(spec, effective)
        if engine is not None:
            system.network.set_engine(engine)
        return system

    @staticmethod
    def _check_supported(spec: ScenarioSpec, info: ProtocolInfo) -> None:
        """Reject spec facilities the protocol's builder would ignore."""

        if spec.inputs != "default" and not info.supports_inputs:
            raise ValueError(
                f"protocol {info.name!r} takes no per-node inputs "
                f"(got inputs={spec.inputs!r})"
            )
        if spec.churn is not None and not info.supports_churn:
            raise ValueError(f"protocol {info.name!r} does not support churn")
        if spec.delay != "synchronous" and not info.supports_delay:
            raise ValueError(
                f"protocol {info.name!r} does not support the "
                f"{spec.delay!r} delay model"
            )
        unknown = sorted(set(spec.params) - set(info.known_params))
        if unknown:
            known = ", ".join(info.known_params) or "none"
            raise ValueError(
                f"unknown params for protocol {info.name!r}: "
                f"{', '.join(unknown)} (known: {known})"
            )


#: The process-global registry all protocols register into.
REGISTRY = ProtocolRegistry()

register_protocol = REGISTRY.register


def build_system(
    spec: ScenarioSpec, *, strategy: object = None, engine: str | None = None
) -> SystemSpec:
    """Module-level alias for :meth:`ProtocolRegistry.build` on :data:`REGISTRY`."""

    return REGISTRY.build(spec, strategy=strategy, engine=engine)


def available_protocols(*, include_baselines: bool = True) -> list[str]:
    """The names of every registered protocol, sorted."""

    return REGISTRY.names(include_baselines=include_baselines)


# ---------------------------------------------------------------------------
# Shared assembly helpers
# ---------------------------------------------------------------------------


def _population(spec: ScenarioSpec, *, extra: int = 0):
    """Draw the identifier population and the correct/Byzantine split.

    The derivations (``derive(seed, "ids")`` / ``derive(seed, "split")``)
    are the ones the legacy ``*_system`` helpers used, so old seeds keep
    reproducing the same systems.  ``extra`` reserves additional ids beyond
    ``n`` (used for churn joiners).
    """

    ids = sparse_ids(spec.n + extra, seed=derive(spec.seed, "ids"))
    correct, byz = split_correct_byzantine(
        ids[: spec.n], spec.f, seed=derive(spec.seed, "split")
    )
    return ids, correct, byz


def _resolve_inputs(
    spec: ScenarioSpec, correct: Sequence[NodeId], *, default: str
) -> dict[NodeId, object]:
    """Materialise the input distribution for the correct nodes."""

    kind = default if spec.inputs == "default" else spec.inputs
    options = dict(spec.input_params)
    ordered = sorted(correct)
    if kind == "none":
        return {}
    if kind == "binary":
        return binary_inputs(
            ordered,
            ones_fraction=float(options.get("ones_fraction", 0.5)),
            seed=derive(spec.seed, "inputs"),
        )
    if kind == "real":
        return real_inputs(
            ordered,
            low=float(options.get("low", 0.0)),
            high=float(options.get("high", 100.0)),
            seed=derive(spec.seed, "inputs"),
        )
    if kind == "alternating":
        return {node: (1 if index % 2 else 0) for index, node in enumerate(ordered)}
    if kind == "listed":
        values = list(options.get("values", ()))
        if len(values) != len(ordered):
            raise ValueError(
                f"'listed' inputs need exactly {len(ordered)} values, got {len(values)}"
            )
        return dict(zip(ordered, values))
    if kind == "explicit":
        values = options.get("values")
        if not isinstance(values, Mapping):
            raise ValueError("'explicit' inputs need input_params['values'] mapping")
        resolved = {_coerce_id(k): v for k, v in values.items()}
        missing = [node for node in ordered if node not in resolved]
        if missing:
            raise ValueError(f"explicit inputs missing values for nodes {missing}")
        return {node: resolved[node] for node in ordered}
    if kind == "split":
        sizes = [int(s) for s in options.get("sizes", ())]
        values = list(options.get("values", ()))
        if sum(sizes) != len(ordered) or len(values) != len(sizes):
            raise ValueError(
                "'split' inputs need sizes summing to the correct-node count "
                "and one value per group"
            )
        inputs: dict[NodeId, object] = {}
        start = 0
        for size, value in zip(sizes, values):
            for node in ordered[start : start + size]:
                inputs[node] = value
            start += size
        return inputs
    raise ValueError(f"input kind {kind!r} is not supported by this protocol")


def _resolve_delay(spec: ScenarioSpec, ids: Sequence[NodeId]) -> DelayModel | None:
    """Materialise the delay model (``None`` means synchronous default)."""

    options = dict(spec.delay_params)
    if spec.delay == "synchronous":
        return None
    if spec.delay == "uniform-random":
        return UniformRandomDelay(max_delay=int(options.get("max_delay", 3)))
    if spec.delay == "heavy-tail":
        return HeavyTailDelay(
            alpha=float(options.get("alpha", 1.5)),
            scale=float(options.get("scale", 0.5)),
            max_delay=int(options.get("max_delay", 20)),
        )
    if spec.delay == "jittered":
        return JitteredSynchronousDelay(
            jitter_probability=float(options.get("jitter_probability", 0.1)),
            max_extra=int(options.get("max_extra", 2)),
        )
    sizes = [int(s) for s in options.get("sizes", ())]
    if not sizes:
        raise ValueError(f"delay model {spec.delay!r} needs delay_params['sizes']")
    # ``ids`` includes any churn-pool extras, so the trailing remainder
    # group of split_into_groups covers every potential joiner; the
    # ungrouped policy below only matters for ids the spec never minted.
    groups = split_into_groups(ids, sizes)
    ungrouped = str(options.get("ungrouped", "isolated"))
    if spec.delay == "partition":
        heal = options.get("heal_round")
        return PartitionDelay(
            groups=groups,
            heal_round=None if heal is None else int(heal),
            ungrouped=ungrouped,
        )
    return BoundedUnknownDelay(
        groups=groups, delta=int(options.get("delta", 40)), ungrouped=ungrouped
    )


def _assemble(
    spec: ScenarioSpec,
    strategy: object,
    *,
    correct_factory,
    correct: Sequence[NodeId],
    byzantine: Sequence[NodeId],
    ids: Sequence[NodeId],
) -> SystemSpec:
    return build_network(
        correct_factory=correct_factory,
        correct_ids=correct,
        byzantine_ids=byzantine,
        strategy=strategy,
        seed=spec.seed,
        delay_model=_resolve_delay(spec, ids),
        trace=spec.trace,
    )


# ---------------------------------------------------------------------------
# Core id-only protocols (Algorithms 1–6 of the paper)
# ---------------------------------------------------------------------------


@register_protocol(
    "reliable-broadcast",
    description="Algorithm 1: id-only reliable broadcast from one designated sender",
    max_rounds=12,
    stop="decided",
    params=("message", "byzantine_sender"),
)
def _build_reliable_broadcast(spec: ScenarioSpec, strategy: object) -> SystemSpec:
    ids, correct, byz = _population(spec)
    message = spec.params.get("message", "hello")
    byzantine_sender = bool(spec.params.get("byzantine_sender", False))
    source = byz[0] if byzantine_sender and byz else correct[0]
    system = _assemble(
        spec,
        strategy,
        correct_factory=lambda node: ReliableBroadcastProcess(
            node, source=source, message=message
        ),
        correct=correct,
        byzantine=byz,
        ids=ids,
    )
    system.params.update({"source": source, "message": message})
    return system


@register_protocol(
    "rotor-coordinator",
    description="Algorithm 2: rotating-coordinator selection with O(n) termination",
    max_rounds=lambda spec: 6 * spec.n + 20,
    stop="halted",
)
def _build_rotor_coordinator(spec: ScenarioSpec, strategy: object) -> SystemSpec:
    ids, correct, byz = _population(spec)
    return _assemble(
        spec,
        strategy,
        correct_factory=lambda node: RotorCoordinatorProcess(node, opinion=node),
        correct=correct,
        byzantine=byz,
        ids=ids,
    )


@register_protocol(
    "consensus",
    description="Algorithm 3: binary consensus without knowing n or f",
    max_rounds=lambda spec: 40 + 10 * spec.f,
    stop="decided",
    inputs=True,
    params=("substitution",),
)
def _build_consensus(spec: ScenarioSpec, strategy: object) -> SystemSpec:
    ids, correct, byz = _population(spec)
    inputs = _resolve_inputs(spec, correct, default="binary")
    substitution = str(spec.params.get("substitution", "narrow"))
    system = _assemble(
        spec,
        strategy,
        correct_factory=lambda node: ConsensusProcess(
            node, input_value=inputs[node], substitution=substitution
        ),
        correct=correct,
        byzantine=byz,
        ids=ids,
    )
    system.params.update({"inputs": dict(inputs)})
    return system


def _build_approx(
    spec: ScenarioSpec, strategy: object, *, default_iterations: int
) -> SystemSpec:
    iterations = int(spec.params.get("iterations", default_iterations))
    churn = dict(spec.churn or {})
    pool = int(churn.get("pool", 4)) if churn else 0
    ids, correct, byz = _population(spec, extra=pool)
    inputs = _resolve_inputs(spec, correct, default="real")

    def factory(node: NodeId, value: object | None = None):
        value = inputs[node] if value is None else value
        if iterations <= 1:
            return ApproximateAgreementProcess(node, input_value=value)
        return IteratedApproximateAgreementProcess(
            node, input_value=value, iterations=iterations
        )

    system = _assemble(
        spec,
        strategy,
        correct_factory=factory,
        correct=correct,
        byzantine=byz,
        ids=ids,
    )

    # Optional churn (Section XI): extra correct nodes join mid-run with
    # fresh inputs from the same range, and one original node leaves.
    joiners: list[NodeId] = []
    departed: list[NodeId] = []
    join_fraction = float(churn.get("join_fraction", 0.0)) if churn else 0.0
    if join_fraction > 0:
        rng = make_rng(derive(spec.seed, "churn-values"))
        join_start = int(churn.get("join_start", 3))
        low = float(spec.input_params.get("low", 0.0))
        high = float(spec.input_params.get("high", 100.0))
        candidates = ids[spec.n :]
        joiners = list(candidates[: int(len(candidates) * join_fraction * 2)])
        for index, node in enumerate(joiners):
            system.network.add_process(
                factory(node, float(rng.uniform(low, high))),
                at_round=join_start + index,
            )
        leave_round = int(churn.get("leave_round", 5))
        system.network.remove_process(correct[-1], at_round=leave_round)
        departed = [correct[-1]]

    system.params.update(
        {"inputs": dict(inputs), "iterations": iterations, "joiners": joiners, "departed": departed}
    )
    return system


@register_protocol(
    "approximate-agreement",
    description="Algorithm 4: single-shot approximate agreement on real values",
    max_rounds=lambda spec: int(spec.params.get("iterations", 1)) + 3,
    stop="decided",
    inputs=True,
    churn=True,
    params=("iterations",),
)
def _build_approximate_agreement(spec: ScenarioSpec, strategy: object) -> SystemSpec:
    return _build_approx(spec, strategy, default_iterations=1)


@register_protocol(
    "iterated-approximate-agreement",
    description="Iterated Algorithm 4: per-iteration range halving, optional churn",
    max_rounds=lambda spec: int(spec.params.get("iterations", 6)) + 4,
    stop="decided",
    inputs=True,
    churn=True,
    params=("iterations",),
)
def _build_iterated_approximate_agreement(
    spec: ScenarioSpec, strategy: object
) -> SystemSpec:
    return _build_approx(spec, strategy, default_iterations=6)


@register_protocol(
    "parallel-consensus",
    description="Algorithm 5: k consensus instances agreed in parallel",
    max_rounds=lambda spec: 40 + 5 * spec.f,
    stop="decided",
    params=("pairs", "k_instances"),
)
def _build_parallel_consensus(spec: ScenarioSpec, strategy: object) -> SystemSpec:
    ids, correct, byz = _population(spec)
    pairs = spec.params.get("pairs")
    if pairs is None:
        k = int(spec.params.get("k_instances", 4))
        rng = make_rng(spec.seed)
        pairs = {f"instance-{i}": int(rng.integers(0, 100)) for i in range(k)}
    else:
        pairs = dict(pairs)
    system = _assemble(
        spec,
        strategy,
        correct_factory=lambda node: ParallelConsensusProcess(node, input_pairs=pairs),
        correct=correct,
        byzantine=byz,
        ids=ids,
    )
    system.params.update({"pairs": dict(pairs)})
    return system


@register_protocol(
    "total-order",
    description="Algorithm 6: total ordering of events in a dynamic network",
    max_rounds=lambda spec: int((spec.churn or {}).get("rounds", 45)),
    stop="never",
    churn=True,
    delay=False,  # builds its own network via the churn schedule
    params=("event_period", "membership_wire"),
)
def _build_total_order(spec: ScenarioSpec, strategy: object) -> SystemSpec:
    churn = dict(spec.churn or {})
    rounds = int(churn.get("rounds", spec.max_rounds or 45))
    pattern = str(churn.get("pattern", "random"))
    if pattern == "random":
        schedule = generate_churn_schedule(
            initial_correct=spec.n - spec.f,
            initial_byzantine=spec.f,
            rounds=rounds,
            join_rate=float(churn.get("join_rate", 0.0)),
            leave_rate=float(churn.get("leave_rate", 0.0)),
            byzantine_join_fraction=float(churn.get("byzantine_join_fraction", 0.0)),
            seed=spec.seed,
            min_round=int(churn.get("min_round", 3)),
            leave_candidates=str(churn.get("leave_candidates", "live")),
        )
    elif pattern == "flash-crowd":
        exodus_round = churn.get("exodus_round")
        schedule = generate_flash_crowd_schedule(
            initial_correct=spec.n - spec.f,
            initial_byzantine=spec.f,
            rounds=rounds,
            burst_round=int(churn.get("burst_round", 5)),
            burst_size=int(churn.get("burst_size", 5)),
            burst_byzantine_fraction=float(churn.get("burst_byzantine_fraction", 0.0)),
            exodus_round=None if exodus_round is None else int(exodus_round),
            exodus_fraction=float(churn.get("exodus_fraction", 0.5)),
            seed=spec.seed,
        )
    else:
        raise ValueError(
            f"unknown churn pattern {pattern!r}; choose 'random' or 'flash-crowd'"
        )
    dynamic = build_total_order_system(
        schedule,
        event_period=int(spec.params.get("event_period", 1)),
        strategy=strategy,
        seed=derive(spec.seed, "sys"),
        trace=spec.trace,
        membership_wire=str(spec.params.get("membership_wire", "unicast")),
    )
    system = SystemSpec(
        network=dynamic.network,
        correct_ids=list(dynamic.genesis_correct),
        byzantine_ids=list(schedule.initial_byzantine),
    )
    system.params.update({"schedule": schedule, "rounds": rounds})
    return system


# ---------------------------------------------------------------------------
# Classic known-(n, f) baselines (for the comparison experiments)
# ---------------------------------------------------------------------------


@register_protocol(
    "srikanth-toueg-broadcast",
    description="Baseline: Srikanth–Toueg reliable broadcast with configured f",
    baseline=True,
    max_rounds=12,
    stop="decided",
    params=("message", "assumed_f", "byzantine_sender"),
)
def _build_srikanth_toueg(spec: ScenarioSpec, strategy: object) -> SystemSpec:
    ids, correct, byz = _population(spec)
    message = spec.params.get("message", "hello")
    assumed_f = int(spec.params.get("assumed_f", spec.f))
    byzantine_sender = bool(spec.params.get("byzantine_sender", False))
    source = byz[0] if byzantine_sender and byz else correct[0]
    system = _assemble(
        spec,
        strategy,
        correct_factory=lambda node: SrikanthTouegBroadcastProcess(
            node, source=source, assumed_f=assumed_f, message=message
        ),
        correct=correct,
        byzantine=byz,
        ids=ids,
    )
    system.params.update({"source": source, "message": message, "assumed_f": assumed_f})
    return system


@register_protocol(
    "known-f-consensus",
    description="Baseline: phase-king consensus with known membership and f",
    baseline=True,
    max_rounds=60,
    stop="decided",
    inputs=True,
    params=("assumed_f",),
)
def _build_known_f_consensus(spec: ScenarioSpec, strategy: object) -> SystemSpec:
    ids, correct, byz = _population(spec)
    membership = list(ids[: spec.n])
    assumed_f = int(spec.params.get("assumed_f", spec.f))
    inputs = _resolve_inputs(spec, correct, default="binary")
    system = _assemble(
        spec,
        strategy,
        correct_factory=lambda node: KnownFConsensusProcess(
            node, input_value=inputs[node], membership=membership, assumed_f=assumed_f
        ),
        correct=correct,
        byzantine=byz,
        ids=ids,
    )
    system.params.update({"inputs": dict(inputs), "assumed_f": assumed_f})
    return system


@register_protocol(
    "dolev-approx",
    description="Baseline: single-round trim-f approximate agreement (Dolev et al.)",
    baseline=True,
    max_rounds=6,
    stop="decided",
    inputs=True,
    params=("assumed_f",),
)
def _build_dolev_approx(spec: ScenarioSpec, strategy: object) -> SystemSpec:
    ids, correct, byz = _population(spec)
    assumed_f = int(spec.params.get("assumed_f", spec.f))
    inputs = _resolve_inputs(spec, correct, default="real")
    system = _assemble(
        spec,
        strategy,
        correct_factory=lambda node: DolevApproxProcess(
            node, input_value=inputs[node], assumed_f=assumed_f
        ),
        correct=correct,
        byzantine=byz,
        ids=ids,
    )
    system.params.update({"inputs": dict(inputs), "assumed_f": assumed_f})
    return system
