"""The declarative scenario specification.

A :class:`ScenarioSpec` is a frozen, JSON-serialisable description of one
simulated execution: which protocol to run, the system size and fault
count, how the correct nodes' inputs are drawn, which adversary strategy
the Byzantine nodes follow, the message-delay model, optional
membership/churn options, the seed and the round budget.  Everything the
registry needs to build — and the sweep engine needs to ship to a worker
process — lives in this one value.

Specs round-trip losslessly through :meth:`ScenarioSpec.to_dict` /
:meth:`ScenarioSpec.from_dict` (and therefore through JSON), which is what
makes cross-process sweeps and on-disk experiment manifests possible.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Any, Mapping

from ..adversary.registry import available_strategies

__all__ = [
    "INPUT_KINDS",
    "DELAY_KINDS",
    "STOP_KINDS",
    "ScenarioSpec",
]

#: Recognised input-distribution kinds.  ``default`` defers to the
#: protocol's own default (binary for consensus, real for approximate
#: agreement, none for broadcast-style protocols).
INPUT_KINDS = (
    "default",   # per-protocol default distribution
    "none",      # the protocol takes no per-node input
    "binary",    # {0, 1} inputs with a configurable ones_fraction
    "real",      # uniform real inputs in [low, high]
    "alternating",  # 0/1 by rank over the sorted correct ids
    "listed",    # explicit values assigned by rank over the sorted ids
    "explicit",  # explicit {node_id: value} mapping
    "split",     # consecutive groups of the sorted ids get fixed values
)

#: Recognised message-delay models (see :mod:`repro.sim.delays`).
DELAY_KINDS = (
    "synchronous",
    "uniform-random",
    "heavy-tail",
    "jittered",
    "partition",
    "bounded-unknown",
)

#: Recognised stop conditions.  ``default`` defers to the protocol.
STOP_KINDS = ("default", "decided", "halted", "never")


def _normalize(value: Any) -> Any:
    """Recursively normalise nested containers to JSON-stable shapes.

    Tuples become lists and mappings become plain dicts so that a spec
    compares equal to its JSON round-trip.
    """

    if isinstance(value, Mapping):
        return {str(k): _normalize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_normalize(v) for v in value]
    return value


def _coerce_id(key: str) -> Any:
    """Turn JSON-stringified node-id keys back into integers when possible."""

    try:
        return int(key)
    except (TypeError, ValueError):
        return key


@dataclass(frozen=True)
class ScenarioSpec:
    """A fully declarative description of one simulated scenario.

    Parameters
    ----------
    protocol:
        Registered protocol name (see :func:`repro.api.available_protocols`).
    n, f:
        Total system size and number of Byzantine nodes.  ``n > 3f`` is the
        paper's resiliency assumption but is deliberately *not* enforced —
        boundary experiments sweep beyond it.
    adversary:
        Registered adversary strategy name for the Byzantine nodes.
    seed:
        Root seed; every stochastic choice of the scenario derives from it.
    max_rounds:
        Round budget; ``None`` defers to the protocol's default.
    inputs / input_params:
        Input-distribution kind and its parameters (see :data:`INPUT_KINDS`).
    delay / delay_params:
        Message-delay model and its parameters (see :data:`DELAY_KINDS`).
    churn:
        Optional membership-dynamics options; interpretation is
        protocol-specific (rates for ``total-order``, join/leave rounds for
        ``iterated-approximate-agreement``).
    params:
        Protocol-specific extras (``message``, ``iterations``,
        ``k_instances``, ``substitution``, ``assumed_f``, …).
    stop:
        Stop condition; ``default`` defers to the protocol.
    trace:
        Record a full event trace during the run.
    """

    protocol: str
    n: int
    f: int
    adversary: str = "silent"
    seed: int = 0
    max_rounds: int | None = None
    inputs: str = "default"
    input_params: Mapping[str, Any] = field(default_factory=dict)
    delay: str = "synchronous"
    delay_params: Mapping[str, Any] = field(default_factory=dict)
    churn: Mapping[str, Any] | None = None
    params: Mapping[str, Any] = field(default_factory=dict)
    stop: str = "default"
    trace: bool = False

    # -- validation ---------------------------------------------------------

    def __post_init__(self) -> None:
        if not isinstance(self.protocol, str) or not self.protocol:
            raise ValueError("protocol must be a non-empty string")
        object.__setattr__(self, "n", int(self.n))
        object.__setattr__(self, "f", int(self.f))
        object.__setattr__(self, "seed", int(self.seed))
        if self.n < 1:
            raise ValueError("n must be positive")
        if self.f < 0 or self.f >= self.n:
            raise ValueError("f must satisfy 0 <= f < n")
        if self.adversary not in available_strategies():
            raise ValueError(
                f"unknown adversary strategy {self.adversary!r}; "
                f"known: {', '.join(available_strategies())}"
            )
        if self.max_rounds is not None:
            object.__setattr__(self, "max_rounds", int(self.max_rounds))
            if self.max_rounds < 1:
                raise ValueError("max_rounds must be positive")
        if self.inputs not in INPUT_KINDS:
            raise ValueError(
                f"unknown input kind {self.inputs!r}; known: {', '.join(INPUT_KINDS)}"
            )
        if self.delay not in DELAY_KINDS:
            raise ValueError(
                f"unknown delay model {self.delay!r}; known: {', '.join(DELAY_KINDS)}"
            )
        if self.stop not in STOP_KINDS:
            raise ValueError(
                f"unknown stop condition {self.stop!r}; known: {', '.join(STOP_KINDS)}"
            )
        if self.churn is not None and not isinstance(self.churn, Mapping):
            raise ValueError("churn must be a mapping of options (or None)")
        object.__setattr__(self, "input_params", _normalize(self.input_params))
        object.__setattr__(self, "delay_params", _normalize(self.delay_params))
        object.__setattr__(self, "params", _normalize(self.params))
        if self.churn is not None:
            object.__setattr__(self, "churn", _normalize(self.churn))

    # -- serialisation ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """A plain, JSON-serialisable dict capturing every field."""

        return {
            "protocol": self.protocol,
            "n": self.n,
            "f": self.f,
            "adversary": self.adversary,
            "seed": self.seed,
            "max_rounds": self.max_rounds,
            "inputs": self.inputs,
            "input_params": _normalize(self.input_params),
            "delay": self.delay,
            "delay_params": _normalize(self.delay_params),
            "churn": _normalize(self.churn) if self.churn is not None else None,
            "params": _normalize(self.params),
            "stop": self.stop,
            "trace": self.trace,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        """Reconstruct a spec; rejects unknown keys loudly."""

        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown ScenarioSpec keys: {', '.join(unknown)}; "
                f"known: {', '.join(sorted(known))}"
            )
        return cls(**dict(data))

    def canonical_json(self) -> str:
        """The canonical serialisation: sorted keys, compact separators.

        This is the byte-stable form both the JSON report writers and the
        run store (:mod:`repro.store`) hash and persist, so a spec has
        exactly one on-disk representation regardless of construction
        order or process.
        """

        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), ensure_ascii=True
        )

    def digest(self) -> str:
        """Stable content digest of the spec (hex SHA-256 of the canonical JSON).

        Independent of dict insertion order, process, platform and
        ``PYTHONHASHSEED``; equal specs always share a digest.  The run
        store combines this with the engine and a code-version fingerprint
        into the content-addressed run key.
        """

        return hashlib.sha256(self.canonical_json().encode("ascii")).hexdigest()

    # -- convenience --------------------------------------------------------

    def replace(self, **changes: Any) -> "ScenarioSpec":
        """A copy of this spec with the given fields replaced."""

        payload = self.to_dict()
        payload.update(changes)
        return ScenarioSpec.from_dict(payload)
