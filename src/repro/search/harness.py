"""The search loop: evaluate, mutate, confirm, persist.

See the package docstring (:mod:`repro.search`) for the full pipeline
contract.  In short: candidates are cheap small-``n`` runs; violations
only become :class:`Finding`\\ s after they reproduce bit-identically on
every applicable engine; confirmed findings are re-run at larger sizes
and persisted to the run store once per engine, replayable via
:func:`replay_run`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..api.spec import ScenarioSpec
from ..api.sweep import ScenarioOutcome, map_jobs, run_scenario
from ..sim.rng import derive, make_rng
from .mutate import SpecMutator
from .score import (
    OBJECTIVES,
    PropertyViolation,
    evaluate_outcome,
    evaluation_row,
    score_outcome,
    score_row,
)

__all__ = [
    "FINDING_ROW_FN",
    "applicable_engines",
    "Finding",
    "SearchResult",
    "ScenarioSearch",
    "replay_run",
]

#: ``row_fn`` label findings are stored under in the run store's ``rows``
#: table (one finding row per persisted engine run).
FINDING_ROW_FN = "repro.search.finding"

#: Frontier size for the mutation loop: the best-scored specs kept as
#: mutation parents.
_FRONTIER_SIZE = 4

#: Candidates mutated per generation.  Fixed — independent of ``jobs`` —
#: so the rng consumes choices in the same order at any parallelism and
#: the search trajectory is a pure function of ``(base spec, seed,
#: budget)``.
_GENERATION_SIZE = 8


def applicable_engines(spec: ScenarioSpec) -> tuple[str, ...]:
    """The engines a spec can run on.

    The vector and fast kernels are synchronous-only (``set_engine``
    rejects delayed models for them), so non-synchronous specs are
    confirmed on the queue/legacy pair; synchronous specs on all four.
    """

    if spec.delay == "synchronous":
        return ("vector", "fast", "queue", "legacy")
    return ("queue", "legacy")


def _evaluate_candidate(spec_dict: dict) -> dict:
    """Worker entry point for the store-less parallel path.

    Runs one candidate under payload accounting and returns its
    normalised :func:`~repro.search.score.evaluation_row` — the same
    canonical-JSON shape the store-backed path yields, so scores are
    identical whichever path evaluated the candidate.
    """

    from ..store.serialize import json_normalize

    spec = ScenarioSpec.from_dict(spec_dict)
    outcome = run_scenario(spec, payload_accounting=True)
    return json_normalize(evaluation_row(outcome))


def _outcome_signature(outcome: ScenarioOutcome) -> tuple:
    """What must match bit-for-bit across engines (and across replays)."""

    return (
        tuple(sorted(outcome.outputs().items(), key=lambda kv: str(kv[0]))),
        outcome.rounds,
        outcome.result.stop_reason,
    )


@dataclass(frozen=True)
class Finding:
    """One confirmed counterexample (or worst-case scenario)."""

    spec: ScenarioSpec
    violations: tuple[PropertyViolation, ...]
    rounds: int
    engines: tuple[str, ...]
    #: engine -> content-addressed run key; empty when no store was given.
    run_keys: Mapping[str, str]
    #: One entry per escalation size: the larger spec's digest and whether
    #: the violation reproduced there.
    escalations: tuple[dict, ...] = ()

    @property
    def spec_digest(self) -> str:
        return self.spec.digest()

    def as_dict(self) -> dict:
        return {
            "spec": self.spec.to_dict(),
            "spec_digest": self.spec_digest,
            "violations": [v.as_dict() for v in self.violations],
            "rounds": self.rounds,
            "engines": list(self.engines),
            "run_keys": dict(self.run_keys),
            "escalations": [dict(e) for e in self.escalations],
        }


@dataclass
class SearchResult:
    """What one :meth:`ScenarioSearch.run` produced."""

    findings: list[Finding] = field(default_factory=list)
    evaluations: int = 0
    #: Candidates whose violations did not survive engine confirmation.
    rejected: int = 0
    #: Of the evaluations, how many actually executed a simulation …
    executed: int = 0
    #: … and how many were served from the run store's cache — the same
    #: search against the same store executes nothing the second time.
    #: (Budget burnt on duplicate mutations counts in neither.)
    cached: int = 0
    best_score: float = float("-inf")
    best_spec: ScenarioSpec | None = None

    def as_dict(self) -> dict:
        return {
            "findings": [f.as_dict() for f in self.findings],
            "evaluations": self.evaluations,
            "rejected": self.rejected,
            "executed": self.executed,
            "cached": self.cached,
            "best_score": self.best_score,
            "best_spec": None if self.best_spec is None else self.best_spec.to_dict(),
        }


class ScenarioSearch:
    """Property-guided mutation search over scenario specs.

    Parameters
    ----------
    base_spec:
        The starting point; mutations stay within the base protocol.
    seed:
        Drives every stochastic choice of the search (parent selection and
        mutation).  ``(base_spec, seed, budget)`` fully determines the run.
    store:
        Optional :class:`repro.store.RunStore`; every candidate
        evaluation is persisted under its content-addressed run key (so
        re-running the same search resumes from cache), and confirmed
        findings additionally persist once per applicable engine (see
        package docstring).
    jobs:
        Worker processes for candidate evaluation.  Each generation of
        mutated candidates is scored across workers via
        :func:`~repro.api.sweep.map_jobs`, while the parent process
        stays the only store writer.  Findings, scores and the mutation
        trajectory are bit-identical for any ``jobs`` value.
    objective:
        ``"violations"`` (default), ``"rounds"`` or ``"message_volume"``
        — see :data:`repro.search.score.OBJECTIVES`.  Candidates always
        run under payload accounting, so byte-based objectives see real
        wire volumes.
    escalate_n:
        Larger system sizes confirmed findings are re-run at.
    max_n:
        Upper bound the size mutation respects.
    mutation_ops:
        Optional restriction of the mutation vocabulary (see
        :data:`repro.search.mutate.MUTATION_OPS`); dropping ``"delay"``
        pins the search inside the base spec's delay family.
    """

    def __init__(
        self,
        base_spec: ScenarioSpec,
        *,
        seed: int = 0,
        store: Any | None = None,
        jobs: int = 1,
        objective: str = "violations",
        escalate_n: tuple[int, ...] = (),
        max_n: int = 12,
        mutation_ops: tuple[str, ...] | None = None,
        code_version: str | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        if objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {objective!r}; known: {', '.join(OBJECTIVES)}"
            )
        self.base_spec = base_spec
        self.store = store
        self.jobs = jobs
        self.objective = objective
        self.escalate_n = tuple(sorted(set(int(n) for n in escalate_n)))
        self._rng = make_rng(derive(seed, "scenario-search"))
        self.mutator = SpecMutator(self._rng, max_n=max_n, ops=mutation_ops)
        self._code_version = code_version
        self._seen: set[str] = set()
        self._reported: set[str] = set()

    # -- internals ----------------------------------------------------------

    def _resolve_code_version(self) -> str:
        if self._code_version is None:
            from ..store import code_fingerprint

            self._code_version = code_fingerprint()
        return self._code_version

    def _pick_parent(self, frontier: list[tuple[float, ScenarioSpec]]) -> ScenarioSpec:
        if not frontier or self._rng.random() < 0.3:
            return self.base_spec
        if self._rng.random() < 0.5:
            return frontier[0][1]
        return frontier[int(self._rng.integers(0, len(frontier)))][1]

    def _evaluate(
        self, spec: ScenarioSpec
    ) -> tuple[ScenarioOutcome, list[PropertyViolation], float]:
        outcome = run_scenario(spec)
        violations = evaluate_outcome(outcome)
        score = score_outcome(outcome, violations, objective=self.objective)
        return outcome, violations, score

    def _escalated_spec(self, spec: ScenarioSpec, n: int) -> ScenarioSpec:
        changes: dict = {"n": n, "f": min(spec.f, (n - 1) // 3)}
        if spec.inputs in ("split", "listed", "explicit"):
            changes["inputs"] = "default"
            changes["input_params"] = {}
        if spec.delay in ("partition", "bounded-unknown"):
            params = dict(spec.delay_params)
            params["sizes"] = [max(1, n // 2)]
            changes["delay_params"] = params
        return spec.replace(**changes)

    def _confirm(
        self, spec: ScenarioSpec, violations: list[PropertyViolation]
    ) -> Finding | None:
        """Stage 2+3: engine confirmation, escalation, persistence."""

        engines = applicable_engines(spec)
        confirmed: list[tuple[str, ScenarioOutcome]] = []
        signature = None
        names = sorted(v.property_name for v in violations)
        for engine in engines:
            outcome = run_scenario(spec, engine=engine)
            engine_violations = evaluate_outcome(outcome)
            if sorted(v.property_name for v in engine_violations) != names:
                return None  # did not reproduce on this engine
            this_signature = _outcome_signature(outcome)
            if signature is None:
                signature = this_signature
            elif this_signature != signature:
                return None  # engines diverged — not a trustworthy finding
            confirmed.append((engine, outcome))

        escalations = []
        for n in self.escalate_n:
            if n <= spec.n:
                continue
            larger = self._escalated_spec(spec, n)
            outcome, larger_violations, _ = self._evaluate(larger)
            escalations.append(
                {
                    "n": n,
                    "spec_digest": larger.digest(),
                    "reproduced": bool(larger_violations),
                    "violations": sorted(
                        v.property_name for v in larger_violations
                    ),
                }
            )

        run_keys: dict[str, str] = {}
        if self.store is not None:
            from ..store import record_from_outcome

            version = self._resolve_code_version()
            for engine, outcome in confirmed:
                record = record_from_outcome(
                    outcome, engine=engine, code_version=version
                )
                row = {
                    "spec_digest": spec.digest(),
                    "engine": engine,
                    "violations": [v.as_dict() for v in violations],
                    "rounds": outcome.rounds,
                    "escalations": escalations,
                }
                self.store.put_run(record, row=row, row_fn=FINDING_ROW_FN)
                run_keys[engine] = record.run_key

        return Finding(
            spec=spec,
            violations=tuple(violations),
            rounds=confirmed[0][1].rounds,
            engines=engines,
            run_keys=run_keys,
            escalations=tuple(escalations),
        )

    # -- the loop -----------------------------------------------------------

    def _evaluate_rows(self, specs: list[ScenarioSpec], result: SearchResult) -> list[dict]:
        """Measurement rows for ``specs``, fanned out over ``self.jobs``.

        With a store this is a :class:`~repro.store.ResumableSweep` batch:
        rows the store already holds (same spec, same code fingerprint)
        are served without execution, everything else runs across worker
        processes and is persisted by this (parent) process — the single
        writer.  Without a store the batch goes straight through
        :func:`~repro.api.sweep.map_jobs`.  Either way rows come back in
        ``specs`` order.
        """

        if not specs:
            return []
        if self.store is not None:
            from ..store import ResumableSweep

            sweep = ResumableSweep(
                self.store,
                jobs=self.jobs,
                engine=None,
                code_version=self._resolve_code_version(),
            )
            report = sweep.run_specs(
                specs, row_fn=evaluation_row, payload_accounting=True
            )
            result.executed += report.ran
            result.cached += report.skipped
            return report.rows
        payloads = [spec.to_dict() for spec in specs]
        rows = list(map_jobs(_evaluate_candidate, payloads, self.jobs))
        result.executed += len(rows)
        return rows

    def _run_generation(
        self,
        specs: list[ScenarioSpec],
        frontier: list[tuple[float, ScenarioSpec]],
        result: SearchResult,
    ) -> None:
        """Evaluate one generation and fold it into the search state.

        Every slot burns one unit of budget; slots whose spec was already
        seen (duplicate mutations — a saturated space must still
        terminate) burn it without executing.  The fold happens in slot
        order — (generation, mutation index) — so frontier evolution,
        best-candidate tracking and finding order never depend on which
        worker finished first.
        """

        fresh: list[tuple[int, ScenarioSpec, str]] = []
        for index, spec in enumerate(specs):
            digest = spec.digest()
            if digest not in self._seen:
                self._seen.add(digest)
                fresh.append((index, spec, digest))
        rows = self._evaluate_rows([spec for _, spec, _ in fresh], result)
        row_by_slot = {index: row for (index, _, _), row in zip(fresh, rows)}
        result.evaluations += len(specs)

        for index, spec, digest in fresh:
            row = row_by_slot[index]
            score = score_row(row, objective=self.objective)
            if score > result.best_score:
                result.best_score, result.best_spec = score, spec
            frontier.append((score, spec))
            frontier.sort(key=lambda item: -item[0])
            del frontier[_FRONTIER_SIZE:]
            violations = [
                PropertyViolation(v["property"], v["detail"])
                for v in row["violations"]
            ]
            if violations and digest not in self._reported:
                finding = self._confirm(spec, violations)
                if finding is None:
                    result.rejected += 1
                else:
                    self._reported.add(digest)
                    result.findings.append(finding)

    def run(self, budget: int) -> SearchResult:
        """Evaluate up to ``budget`` candidate scenarios (confirmation and
        escalation runs are extra, bounded by the number of findings).

        The loop is generational: the base spec seeds generation zero,
        then each generation mutates :data:`_GENERATION_SIZE` candidates
        from the current frontier (sequentially, through the search's
        single rng), evaluates the batch across ``jobs`` worker processes
        and folds the measurements back in candidate order.  Mutation
        happens between generations — never concurrently with evaluation
        — so the whole trajectory, not just the final findings, is
        bit-identical for any ``jobs`` value.
        """

        if budget < 1:
            raise ValueError("budget must be at least 1")
        result = SearchResult()
        frontier: list[tuple[float, ScenarioSpec]] = []

        generation = [self.base_spec]
        while True:
            self._run_generation(generation, frontier, result)
            remaining = budget - result.evaluations
            if remaining <= 0:
                return result
            generation = []
            for _ in range(min(_GENERATION_SIZE, remaining)):
                candidate = self._pick_parent(frontier)
                for _ in range(int(self._rng.integers(1, 3))):
                    candidate = self.mutator.mutate(candidate)
                generation.append(candidate)


def replay_run(store: Any, run_key: str) -> bool:
    """Re-execute a stored run from its persisted spec; ``True`` when the
    fresh execution is bit-identical to what the store holds.

    This is the replay half of the persistence contract: a counterexample
    is only as good as its reproduction, so the check compares the correct
    nodes' outputs, the executed round count and the stop reason against
    the stored record.
    """

    stored = store.get_run(run_key)
    if stored is None:
        raise KeyError(f"run key {run_key!r} not present in the store")
    engine = None if stored.engine == "auto" else stored.engine
    outcome = run_scenario(stored.spec, engine=engine)
    if stored.rounds_executed != outcome.rounds:
        return False
    if stored.stop_reason != outcome.result.stop_reason:
        return False
    return stored.outputs() == outcome.outputs()
