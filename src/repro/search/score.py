"""Scoring executed scenarios against the paper's correctness properties.

The checkers themselves live in :mod:`repro.analysis.properties`; this
module dispatches them per protocol over a
:class:`~repro.api.sweep.ScenarioOutcome` and turns failures into
:class:`PropertyViolation` records the search harness can rank, confirm
and persist.  Only *safety* properties are treated as violations — a run
that merely exhausts its round budget without deciding is slow, not
wrong, and shows up through the score's round-count term instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..analysis.properties import (
    chains_are_prefixes,
    consensus_validity,
    reliable_broadcast_relay,
    rotor_good_round_exists,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from ..api.sweep import ScenarioOutcome

__all__ = [
    "OBJECTIVES",
    "PropertyViolation",
    "evaluate_outcome",
    "evaluation_row",
    "score_outcome",
    "score_row",
    "MESSAGE_WEIGHT",
    "VIOLATION_WEIGHT",
]

#: Score contribution of one confirmed property violation.  Far above any
#: achievable round count, so a violating scenario always outranks a
#: merely slow one.
VIOLATION_WEIGHT = 1_000.0

#: The scoring modes a search can rank candidates by.
#:
#: ``"violations"``
#:     Broken safety properties dominate, executed rounds break ties.
#: ``"rounds"``
#:     Worst-case round counts only.
#: ``"message_volume"``
#:     Traffic blowups: delivered message count dominates (every message
#:     pays a fixed envelope/handling cost, and the classic blowups —
#:     the rotor init wave, per-joiner membership acks — are count
#:     explosions), with total payload bytes and the peak single payload
#:     refining the ranking among equal-count candidates.  Candidates
#:     must run under ``payload_accounting`` for the byte columns to be
#:     non-zero — the search harness enables it on every evaluation.
OBJECTIVES = ("violations", "rounds", "message_volume")

#: Score weight of one delivered message under ``"message_volume"``.
#: One message outweighs a megabyte of payload spread across others, so
#: count explosions rank above byte-for-byte chatter; only a multi-GiB
#: payload blowup can outrank a count difference, and in that regime the
#: bytes *are* the story.
MESSAGE_WEIGHT = 1_000.0


@dataclass(frozen=True)
class PropertyViolation:
    """One broken invariant in one executed scenario."""

    property_name: str
    detail: str

    def as_dict(self) -> dict:
        return {"property": self.property_name, "detail": self.detail}


def _decided(outputs: dict) -> dict:
    return {node: value for node, value in outputs.items() if value is not None}


def _check_consensus(outcome: "ScenarioOutcome") -> list[PropertyViolation]:
    outputs = outcome.outputs()
    decided = _decided(outputs)
    violations: list[PropertyViolation] = []
    if len(set(decided.values())) > 1:
        violations.append(
            PropertyViolation(
                "consensus-agreement",
                f"correct nodes decided conflicting values: {sorted(set(decided.values()))!r}",
            )
        )
    inputs = outcome.system.params.get("inputs") or {}
    if inputs and not consensus_validity(outputs, inputs):
        violations.append(
            PropertyViolation(
                "consensus-validity",
                f"decisions {sorted(set(decided.values()))!r} are not valid for "
                f"inputs {sorted(set(inputs.values()))!r}",
            )
        )
    return violations


def _check_parallel_consensus(outcome: "ScenarioOutcome") -> list[PropertyViolation]:
    violations: list[PropertyViolation] = []
    per_instance: dict = {}
    for node, output in outcome.outputs().items():
        if not output:
            continue
        for instance, value in output.items():
            per_instance.setdefault(instance, {})[node] = value
    for instance, decisions in sorted(per_instance.items(), key=lambda kv: str(kv[0])):
        if len(set(decisions.values())) > 1:
            violations.append(
                PropertyViolation(
                    "parallel-consensus-agreement",
                    f"instance {instance!r} decided "
                    f"{sorted(set(decisions.values()))!r} across correct nodes",
                )
            )
    return violations


def _check_reliable_broadcast(outcome: "ScenarioOutcome") -> list[PropertyViolation]:
    processes = list(outcome.correct_processes().values())
    params = outcome.system.params
    violations: list[PropertyViolation] = []
    source = params.get("source")
    message = params.get("message")
    if source in set(outcome.system.correct_ids):
        accepted = [p.has_accepted(message, source) for p in processes]
        if not all(accepted):
            missing = sum(1 for a in accepted if not a)
            violations.append(
                PropertyViolation(
                    "rb-correctness",
                    f"{missing} correct node(s) never accepted the correct "
                    f"sender's message {message!r}",
                )
            )
    if not reliable_broadcast_relay(processes):
        violations.append(
            PropertyViolation(
                "rb-relay",
                "acceptances of the same (message, source) pair diverged across "
                "correct nodes by more than one round (or were not universal)",
            )
        )
    return violations


def _check_rotor(outcome: "ScenarioOutcome") -> list[PropertyViolation]:
    processes = list(outcome.correct_processes().values())
    if rotor_good_round_exists(processes, outcome.system.correct_ids):
        return []
    return [
        PropertyViolation(
            "rotor-good-round",
            "no selection index had every correct node agree on one correct "
            "coordinator (Theorem 2's good round never occurred)",
        )
    ]


def _check_approx(outcome: "ScenarioOutcome") -> list[PropertyViolation]:
    outputs = _decided(outcome.outputs())
    inputs = outcome.system.params.get("inputs") or {}
    if not outputs or not inputs:
        return []
    lo, hi = min(inputs.values()), max(inputs.values())
    out_of_range = {
        node: value for node, value in outputs.items() if not lo <= value <= hi
    }
    if not out_of_range:
        return []
    return [
        PropertyViolation(
            "approx-range",
            f"outputs {sorted(out_of_range.values())!r} left the correct "
            f"input range [{lo}, {hi}]",
        )
    ]


def _check_total_order(outcome: "ScenarioOutcome") -> list[PropertyViolation]:
    chains = [p.chain for p in outcome.correct_processes().values()]
    if chains_are_prefixes(chains):
        return []
    return [
        PropertyViolation(
            "total-order-prefix",
            "two correct nodes hold chains that are not prefixes of each other",
        )
    ]


_CHECKERS = {
    "consensus": _check_consensus,
    "known-f-consensus": _check_consensus,
    "parallel-consensus": _check_parallel_consensus,
    "reliable-broadcast": _check_reliable_broadcast,
    "srikanth-toueg-broadcast": _check_reliable_broadcast,
    "rotor-coordinator": _check_rotor,
    "approximate-agreement": _check_approx,
    "iterated-approximate-agreement": _check_approx,
    "dolev-approx": _check_approx,
    "total-order": _check_total_order,
}


def evaluate_outcome(outcome: "ScenarioOutcome") -> list[PropertyViolation]:
    """All safety-property violations observable in one executed scenario.

    Dispatches on the spec's protocol; protocols without a registered
    checker produce no violations (they can still be searched for
    worst-case round counts).
    """

    checker = _CHECKERS.get(outcome.spec.protocol)
    return checker(outcome) if checker else []


def evaluation_row(outcome: "ScenarioOutcome") -> dict:
    """The search's per-candidate measurement row.

    One row function serves every objective, so a candidate cached in the
    run store under this row is scorable against any objective without
    re-execution.  Picklable and JSON-normalisable by construction — it
    is the worker-side return value of the parallel search evaluator.
    The byte columns are only meaningful when the run executed under
    ``payload_accounting`` (the search harness always enables it).
    """

    summary = outcome.result.metrics.summary()
    return {
        "violations": [v.as_dict() for v in evaluate_outcome(outcome)],
        "rounds": outcome.rounds,
        "stop_reason": outcome.result.stop_reason,
        "messages": outcome.messages,
        "payload_bytes": int(summary.get("payload_bytes", 0)),
        "peak_payload_bytes": int(summary.get("peak_payload_bytes", 0)),
    }


def score_row(row: dict, *, objective: str = "violations") -> float:
    """Rank a candidate from its :func:`evaluation_row`; higher is better."""

    if objective not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; known: {', '.join(OBJECTIVES)}"
        )
    if objective == "rounds":
        return float(row["rounds"])
    if objective == "message_volume":
        return (
            MESSAGE_WEIGHT * float(row.get("messages", 0))
            + float(row.get("payload_bytes", 0)) / 2**20
            + float(row.get("peak_payload_bytes", 0)) / 2**30
        )
    return VIOLATION_WEIGHT * len(row["violations"]) + float(row["rounds"])


def score_outcome(
    outcome: "ScenarioOutcome",
    violations: list[PropertyViolation] | None = None,
    *,
    objective: str = "violations",
) -> float:
    """Rank a candidate: higher is closer to what the search wants.

    ``objective="violations"`` weights broken properties far above
    everything, with executed rounds as a tiebreaker (slower runs are
    closer to the synchrony boundary); ``objective="rounds"`` searches for
    worst-case round counts only; ``objective="message_volume"`` ranks by
    traffic — message count first, wire bytes as refinement (the outcome
    must have run under payload accounting for the byte terms).
    """

    if objective not in OBJECTIVES:
        raise ValueError(
            f"unknown objective {objective!r}; known: {', '.join(OBJECTIVES)}"
        )
    if objective == "violations" and violations is not None:
        return VIOLATION_WEIGHT * len(violations) + float(outcome.rounds)
    return score_row(evaluation_row(outcome), objective=objective)
