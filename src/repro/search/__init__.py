"""Property-guided scenario search (ROADMAP item 3).

This package hunts for scenarios the paper's guarantees do *not* survive:
executions where an invariant from :mod:`repro.analysis.properties` breaks
(safety counterexamples), or where round counts blow up (worst-case
inputs).  It is the adversarial complement of the declarative sweeps —
instead of enumerating a grid, it *mutates* :class:`~repro.api.ScenarioSpec`
values toward trouble.

The pipeline: mutate → validate-small → confirm-large
-----------------------------------------------------

1. **Mutate.**  :class:`~repro.search.mutate.SpecMutator` applies small,
   registry-aware edits to a spec — reseeding, swapping the delay model
   (including the heavy-tail/jittered models), jittering delay
   parameters, switching the adversary strategy, resizing ``n``/``f``,
   redrawing inputs.  Every edit produces a *valid* spec (it respects
   each protocol's declared capabilities), and the whole op vocabulary is
   exposed as :data:`~repro.search.mutate.MUTATION_OPS` so the
   Hypothesis-stateful test layer can drive exactly the ops the search
   uses.  Mutation is driven by a seeded generator: a search is replayable
   from ``(base spec, seed)`` alone.

2. **Validate small.**  Candidates run at small ``n`` (cheap), are scored
   by :func:`~repro.search.score.evaluate_outcome` — the same property
   checkers the test suite trusts — and violations become *candidate*
   findings only.

3. **Confirm.**  Per biroclick's staged supervisor discipline, a candidate
   is reported only after it reproduces on **every applicable engine**
   (``fast``/``queue``/``legacy`` for synchronous delay models,
   ``queue``/``legacy`` otherwise — see
   :func:`~repro.search.harness.applicable_engines`) with bit-identical
   outputs, and has been re-run at the larger sizes in ``escalate_n``
   (escalation results are recorded either way: a violation that vanishes
   at scale is still a finding, but the report says so).

Store persistence contract
--------------------------

When a :class:`~repro.search.harness.ScenarioSearch` is given a
:class:`repro.store.RunStore`, every confirmed finding is persisted once
per engine via :func:`repro.store.record_from_outcome` — full outputs,
decisions and per-round metrics — under the standard content-addressed
run key (spec digest ‖ engine ‖ code version), plus a finding row under
the ``row_fn`` label :data:`~repro.search.harness.FINDING_ROW_FN`.
Counterexamples are therefore first-class stored runs: they are found by
``store.query(spec_digest=...)``, and
:func:`~repro.search.harness.replay_run` re-executes a stored
counterexample from its persisted spec and checks the outputs and round
count are **bit-identical** to what the store holds.
"""

from .harness import (
    FINDING_ROW_FN,
    Finding,
    ScenarioSearch,
    SearchResult,
    applicable_engines,
    replay_run,
)
from .mutate import MUTATION_OPS, SpecMutator
from .score import PropertyViolation, evaluate_outcome, score_outcome

__all__ = [
    "FINDING_ROW_FN",
    "Finding",
    "MUTATION_OPS",
    "PropertyViolation",
    "ScenarioSearch",
    "SearchResult",
    "SpecMutator",
    "applicable_engines",
    "evaluate_outcome",
    "replay_run",
    "score_outcome",
]
