"""Property-guided scenario search (ROADMAP item 3).

This package hunts for scenarios the paper's guarantees do *not* survive:
executions where an invariant from :mod:`repro.analysis.properties` breaks
(safety counterexamples), or where round counts blow up (worst-case
inputs).  It is the adversarial complement of the declarative sweeps —
instead of enumerating a grid, it *mutates* :class:`~repro.api.ScenarioSpec`
values toward trouble.

The pipeline: mutate → validate-small → confirm-large
-----------------------------------------------------

1. **Mutate.**  :class:`~repro.search.mutate.SpecMutator` applies small,
   registry-aware edits to a spec — reseeding, swapping the delay model
   (including the heavy-tail/jittered models), jittering delay
   parameters, switching the adversary strategy, resizing ``n``/``f``,
   redrawing inputs.  Every edit produces a *valid* spec (it respects
   each protocol's declared capabilities), and the whole op vocabulary is
   exposed as :data:`~repro.search.mutate.MUTATION_OPS` so the
   Hypothesis-stateful test layer can drive exactly the ops the search
   uses.  Mutation is driven by a seeded generator: a search is replayable
   from ``(base spec, seed)`` alone.

2. **Validate small.**  Candidates run at small ``n`` (cheap), under
   payload accounting, in batches fanned out over worker processes
   (``jobs=``) — mutation happens between generations through one seeded
   rng in the parent, so results are bit-identical at any parallelism.
   Each candidate is measured once
   (:func:`~repro.search.score.evaluation_row`) and ranked by the chosen
   objective (:data:`~repro.search.score.OBJECTIVES`): property
   violations, worst-case rounds, or message volume.  Violations become
   *candidate* findings only.

3. **Confirm.**  Per biroclick's staged supervisor discipline, a candidate
   is reported only after it reproduces on **every applicable engine**
   (``vector``/``fast``/``queue``/``legacy`` for synchronous delay
   models, ``queue``/``legacy`` otherwise — see
   :func:`~repro.search.harness.applicable_engines`) with bit-identical
   outputs, and has been re-run at the larger sizes in ``escalate_n``
   (escalation results are recorded either way: a violation that vanishes
   at scale is still a finding, but the report says so).

Store persistence contract
--------------------------

When a :class:`~repro.search.harness.ScenarioSearch` is given a
:class:`repro.store.RunStore`, every *candidate evaluation* is persisted
under its content-addressed run key (with its measurement row under the
:func:`~repro.search.score.evaluation_row` label), so repeating a search
against the same store re-executes nothing — the run-key cache is the
dedupe and the resume mechanism in one.  Every confirmed finding is
additionally persisted once per engine via
:func:`repro.store.record_from_outcome` — full outputs,
decisions and per-round metrics — under the standard content-addressed
run key (spec digest ‖ engine ‖ code version), plus a finding row under
the ``row_fn`` label :data:`~repro.search.harness.FINDING_ROW_FN`.
Counterexamples are therefore first-class stored runs: they are found by
``store.query(spec_digest=...)``, and
:func:`~repro.search.harness.replay_run` re-executes a stored
counterexample from its persisted spec and checks the outputs and round
count are **bit-identical** to what the store holds.
"""

from .harness import (
    FINDING_ROW_FN,
    Finding,
    ScenarioSearch,
    SearchResult,
    applicable_engines,
    replay_run,
)
from .mutate import MUTATION_OPS, SpecMutator
from .score import (
    OBJECTIVES,
    PropertyViolation,
    evaluate_outcome,
    evaluation_row,
    score_outcome,
    score_row,
)

__all__ = [
    "FINDING_ROW_FN",
    "Finding",
    "MUTATION_OPS",
    "OBJECTIVES",
    "PropertyViolation",
    "ScenarioSearch",
    "SearchResult",
    "SpecMutator",
    "applicable_engines",
    "evaluate_outcome",
    "evaluation_row",
    "replay_run",
    "score_outcome",
    "score_row",
]
