"""Registry-aware mutation of scenario specs.

A :class:`SpecMutator` makes one small edit at a time to a
:class:`~repro.api.ScenarioSpec`, always producing a spec the registry
will accept: ops consult :class:`~repro.api.registry.ProtocolInfo` for
what the protocol supports (inputs / churn / delay) and fall back to a
reseed when an op does not apply.  All randomness flows through one
seeded generator, so a mutation trajectory is a pure function of
``(base spec, seed)`` — which is what makes search findings replayable.

The op vocabulary is :data:`MUTATION_OPS`; the Hypothesis-stateful test
layer drives exactly these ops, so what property testing explores and
what the search harness explores is the same space.
"""

from __future__ import annotations

import numpy as np

from ..adversary.registry import available_strategies
from ..api.registry import REGISTRY
from ..api.spec import ScenarioSpec

__all__ = ["MUTATION_OPS", "SpecMutator"]

#: Every mutation op a :class:`SpecMutator` knows, by name.
MUTATION_OPS = (
    "seed",
    "delay",
    "delay-params",
    "adversary",
    "size",
    "inputs",
    "churn",
    "wire",
)

#: Strategies applicable to any protocol.
_GENERIC_STRATEGIES = (
    "silent",
    "crash",
    "replay",
    "equivocate-value",
    "coordinated-equivocation",
    "random-noise",
)

#: Protocol-specific strategy name prefix, per protocol.
_STRATEGY_PREFIX = {
    "consensus": "consensus-",
    "known-f-consensus": "consensus-",
    "parallel-consensus": "consensus-",
    "reliable-broadcast": "rb-",
    "srikanth-toueg-broadcast": "rb-",
    "rotor-coordinator": "rotor-",
    "approximate-agreement": "approx-",
    "iterated-approximate-agreement": "approx-",
    "dolev-approx": "approx-",
}

_APPROX_PROTOCOLS = (
    "approximate-agreement",
    "iterated-approximate-agreement",
    "dolev-approx",
)

#: Input kinds whose parameters are coupled to the node count; a size
#: mutation resets them to the protocol default instead of producing a
#: spec that fails at build time.
_SIZE_COUPLED_INPUTS = ("split", "listed", "explicit")


class SpecMutator:
    """Applies one named mutation op to a spec, deterministically per rng."""

    def __init__(
        self,
        rng: np.random.Generator,
        *,
        max_n: int = 12,
        ops: tuple[str, ...] | None = None,
    ) -> None:
        if max_n < 4:
            raise ValueError("max_n must be at least 4")
        self._rng = rng
        self.max_n = max_n
        self.ops = MUTATION_OPS if ops is None else tuple(ops)
        unknown = sorted(set(self.ops) - set(MUTATION_OPS))
        if unknown or not self.ops:
            raise ValueError(
                f"unknown mutation ops {unknown}; known: {MUTATION_OPS}"
                if unknown
                else "ops must not be empty"
            )

    # -- entry points -------------------------------------------------------

    def mutate(self, spec: ScenarioSpec, op: str | None = None) -> ScenarioSpec:
        """One mutated copy of ``spec`` (picking a random op when unnamed).

        Restricting the constructor's ``ops`` (e.g. dropping ``"delay"``)
        pins the corresponding spec dimension for the whole search — how
        the CI smoke search stays inside the uniform-random delay family.
        """

        if op is None:
            op = self.ops[int(self._rng.integers(0, len(self.ops)))]
        if op not in MUTATION_OPS:
            raise ValueError(f"unknown mutation op {op!r}; known: {MUTATION_OPS}")
        method = getattr(self, "_op_" + op.replace("-", "_"))
        return method(spec)

    def _choice(self, options):
        return options[int(self._rng.integers(0, len(options)))]

    # -- ops ----------------------------------------------------------------

    def _op_seed(self, spec: ScenarioSpec) -> ScenarioSpec:
        return spec.replace(seed=int(self._rng.integers(0, 2**31 - 1)))

    def _op_delay(self, spec: ScenarioSpec) -> ScenarioSpec:
        info = REGISTRY.info(spec.protocol)
        if not info.supports_delay:
            return self._op_seed(spec)
        kinds = ["synchronous", "uniform-random", "heavy-tail", "jittered"]
        if spec.n >= 4:
            kinds += ["partition", "bounded-unknown"]
        kind = self._choice([k for k in kinds if k != spec.delay] or kinds)
        return spec.replace(delay=kind, delay_params=self._default_delay_params(kind, spec))

    def _op_delay_params(self, spec: ScenarioSpec) -> ScenarioSpec:
        if spec.delay == "synchronous":
            return self._op_delay(spec)
        return spec.replace(delay_params=self._default_delay_params(spec.delay, spec))

    def _default_delay_params(self, kind: str, spec: ScenarioSpec) -> dict:
        rng = self._rng
        if kind == "synchronous":
            return {}
        if kind == "uniform-random":
            return {"max_delay": int(rng.integers(2, 9))}
        if kind == "heavy-tail":
            return {
                "alpha": float(self._choice((0.8, 1.2, 1.6, 2.0))),
                "scale": float(self._choice((0.5, 1.0, 2.0))),
                "max_delay": int(self._choice((8, 16))),
            }
        if kind == "jittered":
            return {
                "jitter_probability": float(self._choice((0.05, 0.1, 0.25, 0.5))),
                "max_extra": int(rng.integers(1, 5)),
            }
        # partition / bounded-unknown: split the first half off; the ids
        # beyond the listed sizes form the remainder group, covering any
        # churn-pool extras.
        params: dict = {"sizes": [max(1, spec.n // 2)]}
        if kind == "partition":
            heal = self._choice((None, int(rng.integers(3, 12))))
            if heal is not None:
                params["heal_round"] = heal
        else:
            params["delta"] = int(self._choice((10, 25, 50)))
        return params

    def _op_adversary(self, spec: ScenarioSpec) -> ScenarioSpec:
        prefix = _STRATEGY_PREFIX.get(spec.protocol)
        candidates = list(_GENERIC_STRATEGIES)
        if prefix is not None:
            candidates += [s for s in available_strategies() if s.startswith(prefix)]
        candidates = [s for s in candidates if s != spec.adversary] or candidates
        return spec.replace(adversary=self._choice(sorted(set(candidates))))

    def _op_size(self, spec: ScenarioSpec) -> ScenarioSpec:
        delta = int(self._choice((-2, -1, 1, 2)))
        n = min(max(spec.n + delta, 4), self.max_n)
        f = int(self._rng.integers(0, (n - 1) // 3 + 1))
        changes: dict = {"n": n, "f": f}
        if spec.inputs in _SIZE_COUPLED_INPUTS:
            changes["inputs"] = "default"
            changes["input_params"] = {}
        if spec.delay in ("partition", "bounded-unknown"):
            params = dict(spec.delay_params)
            params["sizes"] = [max(1, n // 2)]
            changes["delay_params"] = params
        return spec.replace(**changes)

    def _op_inputs(self, spec: ScenarioSpec) -> ScenarioSpec:
        info = REGISTRY.info(spec.protocol)
        if not info.supports_inputs:
            return self._op_seed(spec)
        if spec.protocol in _APPROX_PROTOCOLS:
            low = float(self._choice((0.0, 10.0)))
            high = low + float(self._choice((1.0, 50.0, 100.0)))
            return spec.replace(inputs="real", input_params={"low": low, "high": high})
        kind = self._choice(("default", "binary", "alternating"))
        if kind == "binary":
            fraction = float(self._choice((0.25, 0.5, 0.75)))
            return spec.replace(
                inputs="binary", input_params={"ones_fraction": fraction}
            )
        return spec.replace(inputs=kind, input_params={})

    def _op_churn(self, spec: ScenarioSpec) -> ScenarioSpec:
        info = REGISTRY.info(spec.protocol)
        if not info.supports_churn:
            return self._op_seed(spec)
        if spec.protocol == "total-order":
            rounds = int((spec.churn or {}).get("rounds", 30))
            if bool(self._rng.integers(0, 2)):
                churn = {
                    "pattern": "flash-crowd",
                    "rounds": rounds,
                    "burst_round": int(self._rng.integers(3, max(4, rounds // 2))),
                    "burst_size": int(self._rng.integers(2, 7)),
                    "burst_byzantine_fraction": float(self._choice((0.0, 0.3))),
                }
                if bool(self._rng.integers(0, 2)):
                    churn["exodus_round"] = min(rounds, churn["burst_round"] + 5)
                    churn["exodus_fraction"] = float(self._choice((0.3, 0.5, 0.8)))
            else:
                churn = {
                    "pattern": "random",
                    "rounds": rounds,
                    "join_rate": float(self._choice((0.0, 0.1, 0.3))),
                    "leave_rate": float(self._choice((0.0, 0.1, 0.3))),
                    "byzantine_join_fraction": float(self._choice((0.0, 0.2))),
                }
            return spec.replace(churn=churn)
        # approximate-agreement style churn: joiner pool + one departure.
        churn = {
            "pool": 4,
            "join_fraction": float(self._choice((0.0, 0.25, 0.5))),
            "join_start": int(self._rng.integers(2, 5)),
            "leave_round": int(self._rng.integers(4, 8)),
        }
        return spec.replace(churn=churn)

    def _op_wire(self, spec: ScenarioSpec) -> ScenarioSpec:
        """Flip the membership wire format (protocols that declare one).

        The op that lets a message-volume search tell the delta-coded
        membership plane from the per-joiner unicast one; protocols
        without a ``membership_wire`` parameter fall back to a reseed.
        """

        info = REGISTRY.info(spec.protocol)
        if "membership_wire" not in info.known_params:
            return self._op_seed(spec)
        current = str(spec.params.get("membership_wire", "unicast"))
        params = dict(spec.params)
        params["membership_wire"] = "delta" if current == "unicast" else "unicast"
        return spec.replace(params=params)
