"""Algorithm 4 — Approximate agreement in the id-only model (Section VIII).

Each correct node starts with a real-valued input and must output a value

1. inside the range of correct inputs, and
2. such that the range of correct outputs is strictly smaller than the
   range of correct inputs (the proof of Theorem 4 shows it at least
   halves).

The id-only algorithm is a single exchange: broadcast the input, collect
the received values ``R_v``, discard the ``⌊nv/3⌋`` smallest and largest,
and output the midpoint of what remains.  Because every correct node
broadcasts, ``⌊nv/3⌋`` is guaranteed to be at least the number of Byzantine
values received (Lemma 12), so the trimming removes every possible lie.

Two processes are provided:

* :class:`ApproximateAgreementProcess` — the single-shot Algorithm 4.
* :class:`IteratedApproximateAgreementProcess` — runs the exchange for a
  configurable number of iterations, each time feeding the previous output
  back in as the next input.  Section XI uses exactly this iterated form in
  dynamic networks ("the range of correct values still gets halved in every
  round"), and experiment E4 measures the convergence rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from ..sim.messages import Broadcast, Inbox, NodeId, Outgoing
from ..sim.node import Process, RoundView

__all__ = [
    "ValueMessage",
    "trim_and_midpoint",
    "ApproximateAgreementProcess",
    "IteratedApproximateAgreementProcess",
]


@dataclass(frozen=True)
class ValueMessage:
    """The broadcast carrying a node's current real-valued estimate."""

    value: float
    iteration: int = 0


def trim_and_midpoint(values: Sequence[float]) -> float:
    """Algorithm 4, lines 3–4: trim ``⌊nv/3⌋`` from both ends, take the midpoint.

    ``values`` is the multiset ``R_v`` of received values (one per sender).
    Raises :class:`ValueError` on an empty collection — a node that heard
    from nobody has no basis for an estimate.
    """

    if not values:
        raise ValueError("cannot aggregate an empty set of received values")
    ordered = sorted(float(v) for v in values)
    nv = len(ordered)
    discard = nv // 3
    trimmed = ordered[discard : nv - discard] if nv - 2 * discard > 0 else []
    if not trimmed:
        # Defensive: only reachable when nv < 3 and discard removes
        # everything, which cannot happen for ⌊nv/3⌋ < nv/2; keep the
        # median as a safe fallback.
        trimmed = [ordered[nv // 2]]
    return (trimmed[0] + trimmed[-1]) / 2.0


def _first_value_per_sender(
    inbox: Inbox, iteration: int | None = None
) -> tuple[float, ...]:
    """Extract one value per sender (the model delivers at most one honest
    value per sender per round; equivocating Byzantine senders contribute a
    single deterministic representative).

    The extraction — and with it the O(n log n) sender sort — is memoized
    on the (shared) inbox per iteration tag, so on the synchronous fast
    path every node reads the same tuple instead of rescanning.
    """

    def build(ib: Inbox) -> tuple[float, ...]:
        values: list[float] = []
        for sender in sorted(ib.senders):
            for payload in ib.payloads_from(sender):
                if isinstance(payload, ValueMessage) and (
                    iteration is None or payload.iteration == iteration
                ):
                    values.append(float(payload.value))
                    break
        return tuple(values)

    return inbox.memo(("approx-values", iteration), build)


def _shared_midpoint(inbox: Inbox, iteration: int | None = None) -> float | None:
    """The trimmed midpoint of the round's values, memoized on the inbox.

    Every receiver of a shared broadcast inbox computes the identical
    aggregate, so the sort inside :func:`trim_and_midpoint` runs once per
    round instead of once per node.  ``None`` when no values arrived.
    """

    values = _first_value_per_sender(inbox, iteration)
    if not values:
        return None
    return inbox.memo(
        ("approx-midpoint", iteration), lambda ib: trim_and_midpoint(values)
    )


class ApproximateAgreementProcess(Process):
    """Single-shot Algorithm 4: one broadcast, one aggregation, done."""

    def __init__(self, node_id: NodeId, *, input_value: float) -> None:
        super().__init__(node_id)
        self._input = float(input_value)
        self._output: float | None = None
        self._received: tuple[float, ...] = ()

    @property
    def input_value(self) -> float:
        return self._input

    @property
    def output(self) -> float | None:
        return self._output

    @property
    def received_values(self) -> tuple[float, ...]:
        """The multiset ``R_v`` observed in the aggregation round."""

        return tuple(self._received)

    def step(self, view: RoundView) -> Sequence[Outgoing]:
        if view.round_index == 1:
            return [Broadcast(ValueMessage(self._input))]
        if self._output is None:
            self._received = _first_value_per_sender(view.inbox)
            self._output = _shared_midpoint(view.inbox)
            self.halt()
        return ()


class IteratedApproximateAgreementProcess(Process):
    """Algorithm 4 applied repeatedly, halving the correct range each time."""

    def __init__(
        self,
        node_id: NodeId,
        *,
        input_value: float,
        iterations: int = 5,
    ) -> None:
        super().__init__(node_id)
        if iterations < 1:
            raise ValueError("iterations must be at least 1")
        self._estimate = float(input_value)
        self._input = float(input_value)
        self._iterations = iterations
        self._completed = 0
        self._history: list[float] = [float(input_value)]
        self._output: float | None = None

    @property
    def input_value(self) -> float:
        return self._input

    @property
    def estimate(self) -> float:
        """The node's current estimate (updated after every iteration)."""

        return self._estimate

    @property
    def history(self) -> tuple[float, ...]:
        """Estimates after each completed iteration, starting with the input."""

        return tuple(self._history)

    @property
    def iterations_completed(self) -> int:
        return self._completed

    @property
    def output(self) -> float | None:
        return self._output

    def step(self, view: RoundView) -> Sequence[Outgoing]:
        # Round r delivers the values broadcast in round r-1 (iteration
        # r-2, 0-based).  Aggregate them, then broadcast the next iteration's
        # value — each iteration therefore occupies exactly one round, as in
        # the dynamic-network usage of Section XI.
        if view.round_index > 1:
            midpoint = _shared_midpoint(view.inbox, iteration=self._completed)
            if midpoint is not None:
                self._estimate = midpoint
            self._completed += 1
            self._history.append(self._estimate)
            if self._completed >= self._iterations:
                self._output = self._estimate
                self.halt()
                return ()
        return [Broadcast(ValueMessage(self._estimate, iteration=self._completed))]
