"""Algorithm 3 — O(f)-round consensus in the id-only model (Section VII).

Every correct node starts with an input value and all correct nodes must
terminate with a common output that was the input of some correct node
(with the usual validity strengthening: unanimous inputs force that value).

Structure (following the pseudocode's next-round markers): two
initialization rounds build the rotor-coordinator candidate set and freeze
``nv``; afterwards the protocol proceeds in *phases* of five rounds:

====== ============================================================
round  action
====== ============================================================
1      broadcast ``input(x_v)``
2      on a ``2·nv/3`` quorum for a value ``x``: broadcast ``prefer(x)``
3      on an ``nv/3`` quorum for ``prefer(x)``: adopt ``x``;
       on a ``2·nv/3`` quorum: broadcast ``strongprefer(x)``
4      remember the ``strongprefer`` support; execute one
       rotor-coordinator selection round (the selected coordinator
       broadcasts its current opinion)
5      if the remembered ``strongprefer`` support is below ``nv/3``:
       adopt the coordinator's opinion; if it reaches ``2·nv/3``:
       decide and halt
====== ============================================================

The paper's missing-message substitution rule is implemented exactly as
stated below Algorithm 3: a node that counted towards ``nv`` during
initialization but *never* sent anything inside the while-loop is assumed,
in every round, to have sent whatever the local node itself sent in the
previous round.  (A broader per-round substitution — filling in for any
node that skipped the current round — is unsound: a split-vote adversary
can then push two correct nodes over conflicting ``2·nv/3`` thresholds;
the regression test ``test_consensus_split_vote_agreement`` guards this.)
Messages from nodes that did not count towards ``nv`` are discarded.

Termination detection: the pseudocode terminates a node the moment it sees
a ``2·nv/3`` strongprefer quorum, but a node that simply stops sending
could leave the others one voice short of their own quorum when
``n = 3f + 1``.  The paper notes (Section V) that consensus "implements its
own termination mechanism, where few additional messages per round are
used to detect termination"; we realise that by having a decided node keep
participating (with its opinion pinned to the decided value) for one extra
phase before halting — by Lemma 10 every other correct node shares that
opinion, so they all decide at the end of the following phase while the
early decider is still speaking.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..sim.messages import Broadcast, Inbox, NodeId, Outgoing, Payload
from ..sim.node import KnownSenders, Process, RoundView
from .quorums import best_supported_value, meets_one_third, meets_two_thirds
from .rotor_coordinator import Opinion, RotorCoordinatorCore
from .tally import value_support

__all__ = [
    "ConsensusInput",
    "Prefer",
    "StrongPrefer",
    "ConsensusProcess",
    "PHASE_LENGTH",
    "INIT_ROUNDS",
]

#: Rounds per phase of the while-loop (see the table in the module docstring).
PHASE_LENGTH = 5
#: Rounds spent initializing the rotor-coordinator and ``nv``.
INIT_ROUNDS = 2
#: How many extra phases a decided node keeps participating before halting.
LINGER_PHASES = 1


@dataclass(frozen=True)
class ConsensusInput:
    """``input(x)`` — the value a node currently holds, broadcast in round 1."""

    value: Hashable


@dataclass(frozen=True)
class Prefer:
    """``prefer(x)`` — broadcast after a ``2·nv/3`` quorum of ``input(x)``."""

    value: Hashable


@dataclass(frozen=True)
class StrongPrefer:
    """``strongprefer(x)`` — broadcast after a ``2·nv/3`` quorum of ``prefer(x)``."""

    value: Hashable


class ConsensusProcess(Process):
    """A correct participant of Algorithm 3.

    ``substitution`` selects the missing-message rule:

    * ``"narrow"`` (default, the paper's wording): only nodes that never
      spoke inside the while-loop are substituted for;
    * ``"broad"``: any known sender that skipped the current round is
      substituted for.  This variant is *unsound* — the substitution
      in effect lets the local node vote on behalf of silent peers, and a
      split-vote adversary can then drive two correct nodes over
      conflicting ``2·nv/3`` quorums.  It exists only for the ablation
      benchmark (``benchmarks/bench_a1_substitution_rule.py``) that
      demonstrates why the narrow rule matters.
    """

    def __init__(
        self,
        node_id: NodeId,
        *,
        input_value: Hashable,
        substitution: str = "narrow",
    ) -> None:
        super().__init__(node_id)
        if substitution not in ("narrow", "broad"):
            raise ValueError("substitution must be 'narrow' or 'broad'")
        self._substitution = substitution
        self._input = input_value
        self._opinion: Hashable = input_value
        self._known = KnownSenders()
        self._rotor = RotorCoordinatorCore(node_id)
        self._output: Hashable | None = None
        self._phase = 0
        # Bookkeeping for the substitution rule: the payloads this node
        # broadcast in the previous round, keyed by message type, and the
        # set of known senders that have spoken at least once inside the
        # while-loop (only the forever-silent ones are substituted for).
        self._sent_last_round: dict[type, Payload] = {}
        self._loop_senders: set[NodeId] = set()
        # Once every known sender has spoken in the loop, the silent set is
        # empty forever (senders only accumulate) — skip the per-round set
        # arithmetic from then on.
        self._loop_complete = False
        # strongprefer support observed in phase round 4, consumed in round 5.
        self._pending_strongprefer: dict[Hashable, int] = {}
        # Rounds left to keep participating after deciding (termination
        # detection; see the module docstring).
        self._linger_rounds: int | None = None

    # -- public results -----------------------------------------------------------

    @property
    def input_value(self) -> Hashable:
        return self._input

    @property
    def opinion(self) -> Hashable:
        """The node's current opinion ``x_v`` (equals the output once decided)."""

        return self._opinion

    @property
    def output(self) -> Hashable | None:
        return self._output

    @property
    def nv(self) -> int:
        return self._known.count

    @property
    def phase(self) -> int:
        """The 1-based index of the phase currently being executed."""

        return self._phase

    @property
    def rotor(self) -> RotorCoordinatorCore:
        return self._rotor

    # -- helpers --------------------------------------------------------------------

    def _filtered(self, inbox: Inbox) -> Inbox:
        """Discard messages from senders that did not count towards ``nv``.

        Delegates to :meth:`~repro.sim.messages.Inbox.restricted`: when
        nothing needs stripping the (possibly shared) inbox is reused
        as-is, and otherwise the restriction — and therefore every index
        memoized on it, such as the rotor echo index — is built once per
        round and shared by all nodes with the same ``nv`` view instead of
        being rebuilt per receiver.
        """

        return inbox.restricted(self._known.ids)

    def _support(
        self, inbox: Inbox, message_type: type, *, substitute: bool = True
    ) -> dict[Hashable, int]:
        """Count distinct supporters per value for one message type.

        Implements the substitution rule: known senders that have never
        spoken inside the while-loop are counted as having sent this node's
        own most recent message of ``message_type`` (if this node sent one
        in the previous round).
        """

        # The tally is memoized on the (shared) inbox — the per-value counts
        # are built once per round, not once per node.  Copy before applying
        # the node-local substitution so the shared dict stays pristine.
        counts = dict(value_support(inbox, message_type))
        if substitute:
            own = self._sent_last_round.get(message_type)
            if own is not None:
                if self._substitution == "narrow":
                    silent = (
                        frozenset()
                        if self._loop_complete
                        else self._known.ids - self._loop_senders
                    )
                else:  # "broad" — ablation only, see the class docstring
                    senders_of_type = {
                        sender
                        for sender, payload in inbox.items()
                        if isinstance(payload, message_type)
                    }
                    silent = self._known.ids - senders_of_type - {self.node_id}
                if silent:
                    counts[own.value] = counts.get(own.value, 0) + len(silent)
        return counts

    def _broadcast(self, payloads: Sequence[Payload]) -> list[Outgoing]:
        """Broadcast ``payloads`` and remember them for the substitution rule."""

        self._sent_last_round = {type(p): p for p in payloads}
        return [Broadcast(p) for p in payloads]

    # -- state machine ------------------------------------------------------------------

    def step(self, view: RoundView) -> Sequence[Outgoing]:
        round_index = view.round_index
        if self._output is not None:
            # Termination detection: keep speaking for one extra phase so
            # that slower correct nodes still reach their quorums, then stop.
            self._linger_rounds -= 1
            if self._linger_rounds < 0:
                self.halt()
                return ()
        if round_index == 1:
            return self._broadcast(self._rotor.init_round_one())
        if round_index == 2:
            self._known.observe(view.inbox)
            return self._broadcast(self._rotor.init_round_two(view.inbox))

        if round_index == 3:
            # The inbox of round 3 still belongs to initialization: it holds
            # the rotor echoes sent in round 2.  Finish building nv here and
            # freeze it before the first phase round is processed.
            self._known.observe(view.inbox)
            self._known.freeze()

        inbox = self._filtered(view.inbox)
        if round_index > 3 and not self._loop_complete:
            # Messages delivered from round 4 onwards were sent inside the
            # while-loop; their senders are not eligible for substitution.
            self._loop_senders.update(inbox.senders)
            if len(self._loop_senders) >= self._known.count:
                self._loop_complete = True
        relays = self._rotor.observe(inbox)
        phase_round = (round_index - INIT_ROUNDS - 1) % PHASE_LENGTH + 1

        if phase_round == 1:
            self._phase += 1
            payloads = list(relays) + [ConsensusInput(self._opinion)]
            return self._broadcast(payloads)

        if phase_round == 2:
            payloads = list(relays)
            support = self._support(inbox, ConsensusInput)
            winner = best_supported_value(support, self.nv, fraction="two_thirds")
            if winner is not None:
                payloads.append(Prefer(winner))
            return self._broadcast(payloads)

        if phase_round == 3:
            payloads = list(relays)
            support = self._support(inbox, Prefer)
            adopt = best_supported_value(support, self.nv, fraction="one_third")
            if adopt is not None:
                self._opinion = adopt
            strong = best_supported_value(support, self.nv, fraction="two_thirds")
            if strong is not None:
                payloads.append(StrongPrefer(strong))
            return self._broadcast(payloads)

        if phase_round == 4:
            # Remember the strongprefer support for the round-5 checks, then
            # run this phase's rotor-coordinator selection round.
            self._pending_strongprefer = self._support(inbox, StrongPrefer)
            outcome = self._rotor.execute_selection(
                inbox, self._opinion, round_index=round_index
            )
            payloads = list(relays) + list(outcome.payloads)
            return self._broadcast(payloads)

        # phase_round == 5
        support = self._pending_strongprefer
        self._pending_strongprefer = {}
        decide = best_supported_value(support, self.nv, fraction="two_thirds")
        weak = best_supported_value(support, self.nv, fraction="one_third")
        coordinator = self._rotor.last_selected
        if weak is None and coordinator is not None:
            for payload in inbox.payloads_from(coordinator):
                if isinstance(payload, Opinion):
                    self._opinion = payload.value
                    break
        if decide is not None and self._output is None:
            self._output = decide
            self._opinion = decide
            self._linger_rounds = LINGER_PHASES * PHASE_LENGTH
        return self._broadcast(list(relays))
