"""Relative-quorum arithmetic used by every id-only algorithm.

The paper's central trick is to replace the unknown system size ``n`` and
fault bound ``f`` with ``nv`` — the number of distinct nodes the local node
has heard from so far — and to use the *relative* thresholds ``nv/3`` and
``2·nv/3`` where classic algorithms use ``f + 1`` and ``n − f``.  Section
III calls out the key observation: if every correct node broadcasts in a
round, then fewer than ``nv/3`` of the messages a correct node receives can
come from Byzantine nodes, irrespective of what the Byzantine nodes do.

This module centralises the threshold checks so every protocol spells the
comparison the same way the pseudocode does ("at least nv/3", "at least
2nv/3") and so the tests can probe the edge cases (non-divisible ``nv``,
empty views) in one place.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping, TypeVar

import numpy as np

__all__ = [
    "one_third",
    "two_thirds",
    "meets_one_third",
    "meets_two_thirds",
    "below_one_third",
    "one_third_mask",
    "two_thirds_mask",
    "values_meeting",
    "best_supported_value",
    "max_faults_tolerated",
    "is_resilient",
]

V = TypeVar("V", bound=Hashable)


def one_third(nv: int) -> float:
    """The ``nv/3`` threshold (kept as an exact fraction, not floored)."""

    if nv < 0:
        raise ValueError("nv must be non-negative")
    return nv / 3.0


def two_thirds(nv: int) -> float:
    """The ``2·nv/3`` threshold (kept as an exact fraction, not floored)."""

    if nv < 0:
        raise ValueError("nv must be non-negative")
    return 2.0 * nv / 3.0


def meets_one_third(count: int, nv: int) -> bool:
    """True when ``count`` distinct senders satisfy "at least nv/3".

    A count of zero never meets the threshold, even when ``nv`` is zero:
    the algorithms only act on evidence actually received.
    """

    return count > 0 and count >= one_third(nv)


def meets_two_thirds(count: int, nv: int) -> bool:
    """True when ``count`` distinct senders satisfy "at least 2·nv/3"."""

    return count > 0 and count >= two_thirds(nv)


def below_one_third(count: int, nv: int) -> bool:
    """True when ``count`` is strictly below ``nv/3`` (Algorithm 3, line 15)."""

    return not meets_one_third(count, nv)


def one_third_mask(counts: np.ndarray, nv: int) -> np.ndarray:
    """Vectorised :func:`meets_one_third` over an array of support counts.

    Element-wise identical to the scalar check: float64 division is what
    the scalar path computes, so the comparison bits agree exactly.
    """

    return (counts > 0) & (counts >= one_third(nv))


def two_thirds_mask(counts: np.ndarray, nv: int) -> np.ndarray:
    """Vectorised :func:`meets_two_thirds` over an array of support counts."""

    return (counts > 0) & (counts >= two_thirds(nv))


def values_meeting(
    support: Mapping[V, int] | Mapping[V, Iterable[object]],
    nv: int,
    *,
    fraction: str = "two_thirds",
) -> list[V]:
    """Values whose support count meets the requested relative threshold.

    ``support`` maps each value to either an integer count or a collection
    of distinct supporters.  The result is sorted (by ``repr`` for mixed
    types) so callers that need a deterministic pick can take the first
    element.
    """

    check = meets_two_thirds if fraction == "two_thirds" else meets_one_third
    winners: list[V] = []
    for value, raw in support.items():
        count = raw if isinstance(raw, int) else len(tuple(raw))
        if check(count, nv):
            winners.append(value)
    return sorted(winners, key=repr)


def best_supported_value(
    support: Mapping[V, int] | Mapping[V, Iterable[object]],
    nv: int,
    *,
    fraction: str = "two_thirds",
) -> V | None:
    """The single best-supported value meeting the threshold, or ``None``.

    Lemmas 9 and 10 guarantee that at most one value can meet ``2nv/3`` (and
    at most one *correct-origin* value can meet ``nv/3``), but a defensive
    deterministic tie-break — highest count, then smallest ``repr`` — keeps
    the implementation total even under model violations (which the
    resiliency-boundary experiment E5 deliberately provokes).
    """

    counted: dict[V, int] = {}
    for value, raw in support.items():
        counted[value] = raw if isinstance(raw, int) else len(tuple(raw))
    check = meets_two_thirds if fraction == "two_thirds" else meets_one_third
    candidates = [(count, value) for value, count in counted.items() if check(count, nv)]
    if not candidates:
        return None
    candidates.sort(key=lambda item: (-item[0], repr(item[1])))
    return candidates[0][1]


def max_faults_tolerated(n: int) -> int:
    """The largest ``f`` with ``n > 3f`` — the optimal resiliency bound."""

    if n <= 0:
        return 0
    return (n - 1) // 3


def is_resilient(n: int, f: int) -> bool:
    """True when the configuration satisfies the paper's ``n > 3f``."""

    return n > 3 * f
