"""Algorithm 1 — Reliable broadcast in the id-only model (Section V).

Reliable broadcast lets a designated sender ``s`` disseminate a message
``(m, s)`` such that (for ``n > 3f``):

* **Correctness** — if ``s`` is correct, every correct node accepts
  ``(m, s)``;
* **Unforgeability** — if a correct node accepts ``(m, s)`` and ``s`` is
  correct, then ``s`` really broadcast ``m``;
* **Relay** — if a correct node accepts ``(m, s)`` in round ``r``, every
  correct node accepts it by round ``r + 1``.

The id-only twist is that the echo thresholds are *relative*: instead of
the classic ``f + 1`` / ``2f + 1`` counts, a node compares the number of
distinct ``echo(m, s)`` senders seen this round against ``nv/3`` and
``2·nv/3`` where ``nv`` is the number of distinct nodes it has heard from
so far (Algorithm 1, line 10).  Correct nodes announce themselves with a
``present`` message in the first round precisely so that ``nv ≥ g`` at
every correct node.

The process intentionally never halts by itself — the paper uses the
mechanism as a subroutine and notes that termination is the caller's
responsibility.  The experiment harness stops runs with an explicit stop
condition instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..sim.messages import Broadcast, NodeId, Outgoing, Payload
from ..sim.node import KnownSenders, Process, RoundView
from .quorums import meets_one_third, meets_two_thirds
from .tally import field_support

__all__ = [
    "Present",
    "Initial",
    "Echo",
    "ReliableBroadcastProcess",
    "AcceptanceRecord",
]


@dataclass(frozen=True)
class Present:
    """Round-1 announcement broadcast by every non-sender correct node.

    Its only purpose is to make every correct node known to every other
    correct node, so that the relative thresholds are anchored at
    ``nv ≥ g``.
    """


@dataclass(frozen=True)
class Initial:
    """The designated sender's round-1 broadcast of ``(m, s)``."""

    message: Hashable
    source: NodeId


@dataclass(frozen=True)
class Echo:
    """``echo(m, s)`` — a vote that ``(m, s)`` was seen."""

    message: Hashable
    source: NodeId


@dataclass(frozen=True)
class AcceptanceRecord:
    """What a node accepted and when (used by tests and the harness)."""

    message: Hashable
    source: NodeId
    round_index: int


class ReliableBroadcastProcess(Process):
    """A correct participant in one reliable-broadcast instance.

    Parameters
    ----------
    node_id:
        This node's identifier.
    source:
        The identifier of the designated sender ``s``.
    message:
        The message to broadcast; only consulted when ``node_id == source``.
    """

    def __init__(
        self,
        node_id: NodeId,
        *,
        source: NodeId,
        message: Hashable | None = None,
    ) -> None:
        super().__init__(node_id)
        self._source = source
        self._message = message
        self._known = KnownSenders()
        self._accepted: dict[tuple[Hashable, NodeId], AcceptanceRecord] = {}
        self._echoed_in_round2 = False

    # -- public results ------------------------------------------------------

    @property
    def source(self) -> NodeId:
        return self._source

    @property
    def accepted(self) -> tuple[AcceptanceRecord, ...]:
        """Every ``(m, s)`` pair accepted so far, in acceptance order."""

        return tuple(
            sorted(self._accepted.values(), key=lambda rec: rec.round_index)
        )

    def has_accepted(self, message: Hashable, source: NodeId | None = None) -> bool:
        source = self._source if source is None else source
        return (message, source) in self._accepted

    @property
    def output(self):
        """The first accepted message from the designated source, if any."""

        for (message, source), record in self._accepted.items():
            if source == self._source:
                return message
        return None

    @property
    def nv(self) -> int:
        """The node's current estimate ``nv`` (distinct senders seen)."""

        return self._known.count

    # -- the round state machine -----------------------------------------------

    def step(self, view: RoundView) -> Sequence[Outgoing]:
        self._known.observe(view.inbox)
        if view.round_index == 1:
            return self._round_one()
        if view.round_index == 2:
            return self._round_two(view)
        return self._echo_rounds(view)

    def _round_one(self) -> Sequence[Outgoing]:
        # Algorithm 1, lines 1–5.
        if self.node_id == self._source:
            return [Broadcast(Initial(self._message, self._source))]
        return [Broadcast(Present())]

    def _round_two(self, view: RoundView) -> Sequence[Outgoing]:
        # Algorithm 1, lines 6–8: echo only what the designated sender
        # itself delivered (the sender id on the envelope is truthful).
        outgoing: list[Outgoing] = []
        for payload in view.inbox.payloads_from(self._source):
            if isinstance(payload, Initial) and payload.source == self._source:
                outgoing.append(Broadcast(Echo(payload.message, payload.source)))
                self._echoed_in_round2 = True
        return outgoing

    def _echo_rounds(self, view: RoundView) -> Sequence[Outgoing]:
        # Algorithm 1, lines 9–19.  Echo support is counted per round over
        # distinct senders; nv is cumulative over all rounds so far.  The
        # tally is memoized on the (shared) inbox, so with a broadcast-only
        # round every node reads the same counts dict.
        nv = self._known.count
        support = field_support(view.inbox, Echo, ("message", "source"))

        outgoing: list[Outgoing] = []
        newly_accepted: list[tuple[Hashable, NodeId]] = []
        for key, count in sorted(support.items(), key=lambda item: repr(item[0])):
            message, source = key
            already_accepted = key in self._accepted
            # Lines 11–14: relay the echo while not yet accepted.
            if meets_one_third(count, nv) and not already_accepted:
                outgoing.append(Broadcast(Echo(message, source)))
            # Lines 15–18: accept on a two-thirds relative quorum.
            if meets_two_thirds(count, nv) and not already_accepted:
                newly_accepted.append(key)

        for message, source in newly_accepted:
            self._accepted[(message, source)] = AcceptanceRecord(
                message=message, source=source, round_index=view.round_index
            )
        return outgoing
