"""Algorithm 6 — Total ordering of events in a dynamic network (Section XI).

Nodes may join and leave over time (subject to ``n > 3f`` holding in every
round).  Each node witnesses events, broadcasts them, and the system must
agree on a single growing sequence of events.  The construction runs one
*parallel consensus* instance per protocol round: the instance started in
round ``r`` decides on the set of events that were broadcast in round
``r − 1``, and an instance becomes *final* once enough rounds have elapsed
for it to be guaranteed terminated everywhere (the paper's horizon
``r − r' > 5·|S_{r'}|/2 + 2``).  The output chain is the concatenation of
the final instances' outputs in instance order.

The guarantees (Theorem 6):

* **Chain-prefix** — the chains output by any two correct nodes are
  prefixes of one another;
* **Chain-growth** — if a correct node submits an event every round, the
  chain keeps growing.

Membership protocol: a joining node broadcasts ``present``; current members
reply with ``(ack, r)`` carrying their round number and add the newcomer to
their membership view ``S``; the joiner adopts the majority round number
plus one and initialises ``S`` to the ack senders.  A leaving node
broadcasts ``absent`` and keeps participating in its outstanding consensus
instances before going quiet.

Genesis nodes (the nodes present from the very first round) are configured
with the initial membership directly — the paper's model likewise assumes
the initial participants are consistently initialised (Section III).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterable, Mapping, Sequence

from ..sim.messages import Broadcast, Inbox, NodeId, Outgoing, Payload, Unicast
from ..sim.node import Process, RoundView
from .parallel_consensus import ParallelConsensusEngine

__all__ = [
    "PresentMsg",
    "AckMsg",
    "AbsentMsg",
    "EventMsg",
    "PCWrap",
    "ChainEntry",
    "TotalOrderProcess",
    "finality_horizon",
]


@dataclass(frozen=True)
class PresentMsg:
    """Join announcement broadcast by a node that wants to participate."""


@dataclass(frozen=True)
class AckMsg:
    """Reply to ``present`` carrying the responder's current round number."""

    round_number: int


@dataclass(frozen=True)
class AbsentMsg:
    """Leave announcement."""


@dataclass(frozen=True)
class EventMsg:
    """An event witnessed by a node, tagged with the protocol round."""

    event: Hashable
    round_number: int


@dataclass(frozen=True)
class PCWrap:
    """A parallel-consensus payload multiplexed onto one round-instance."""

    instance_round: int
    payload: Payload


@dataclass(frozen=True)
class ChainEntry:
    """One ordered event: which instance decided it and who reported it."""

    instance_round: int
    reporter: NodeId
    event: Hashable

    def key(self) -> tuple:
        return (self.instance_round, repr(self.reporter), repr(self.event))


def finality_horizon(membership_size: int) -> float:
    """The paper's finality horizon ``5·|S|/2 + 2`` for one instance."""

    return 5.0 * membership_size / 2.0 + 2.0


@dataclass
class _InstanceRecord:
    """A per-round parallel-consensus instance and its bookkeeping."""

    instance_round: int
    engine: ParallelConsensusEngine
    membership: frozenset[NodeId]
    started_at_local_round: int
    local_round: int = 0
    finalized: bool = False


class TotalOrderProcess(Process):
    """A correct participant of the dynamic total-ordering protocol.

    Parameters
    ----------
    node_id:
        The node's identifier.
    initial_members:
        The genesis membership (including this node) when the node is
        present from the first round; ``None`` marks a joining node that
        must run the ``present``/``ack`` handshake first.
    events:
        Either a mapping ``protocol round -> event`` or a callable
        ``(round) -> event | None`` describing the events this node
        witnesses.
    leave_round:
        Protocol round at which the node announces ``absent`` and starts
        winding down (``None`` = stays forever).
    max_chain_rounds:
        Safety valve: instances older than this are dropped from memory
        once finalized.
    """

    def __init__(
        self,
        node_id: NodeId,
        *,
        initial_members: Iterable[NodeId] | None = None,
        events: Mapping[int, Hashable] | Callable[[int], Hashable | None] | None = None,
        leave_round: int | None = None,
    ) -> None:
        super().__init__(node_id)
        self._joining = initial_members is None
        self._members: set[NodeId] = set(initial_members or ())
        if not self._joining:
            self._members.add(node_id)
        self._round = 0  # the protocol round r
        self._join_phase = 0  # 0 = not started, 1 = present sent, 2 = active
        if not self._joining:
            self._join_phase = 2
        self._events = events or {}
        self._leave_round = leave_round
        self._leaving = False
        self._left = False
        self._instances: dict[int, _InstanceRecord] = {}
        self._pending_events: list[tuple[NodeId, Hashable]] = []
        self._chain: list[ChainEntry] = []
        self._final_upto = 0

    # -- results -----------------------------------------------------------------

    @property
    def chain(self) -> tuple[ChainEntry, ...]:
        """The totally ordered sequence of events output so far."""

        return tuple(self._chain)

    @property
    def output(self) -> tuple[ChainEntry, ...] | None:
        return tuple(self._chain) if self._chain else None

    @property
    def decided(self) -> bool:
        return bool(self._chain)

    @property
    def members(self) -> frozenset[NodeId]:
        """The node's current membership view ``S``."""

        return frozenset(self._members)

    @property
    def protocol_round(self) -> int:
        return self._round

    @property
    def final_round(self) -> int:
        """``R`` — the largest round whose instances are all final."""

        return self._final_upto

    @property
    def joined(self) -> bool:
        return self._join_phase == 2

    # -- event source -------------------------------------------------------------

    def _witnessed_event(self, round_number: int) -> Hashable | None:
        if callable(self._events):
            return self._events(round_number)
        return self._events.get(round_number)

    # -- the state machine ------------------------------------------------------------

    def step(self, view: RoundView) -> Sequence[Outgoing]:
        if self._left:
            self.halt()
            return ()
        if self._joining and self._join_phase < 2:
            return self._join_handshake(view)
        return self._participate(view)

    # The present/ack handshake (Algorithm 6, lines 1–6).
    def _join_handshake(self, view: RoundView) -> Sequence[Outgoing]:
        if self._join_phase == 0:
            self._join_phase = 1
            self._join_wait = 0
            return [Broadcast(PresentMsg())]
        # join phase 1: the acks arrive two rounds after `present` was sent
        # (one round for `present` to be delivered, one for the replies).
        acks: dict[NodeId, int] = {}
        for sender, payload in view.inbox.items():
            if isinstance(payload, AckMsg):
                acks[sender] = payload.round_number
        if not acks:
            self._join_wait = getattr(self, "_join_wait", 0) + 1
            if self._join_wait >= 3:
                # Nobody answered (e.g. our `present` was lost to churn);
                # start the handshake over.
                self._join_phase = 0
            return ()
        counts: dict[int, int] = {}
        for value in acks.values():
            counts[value] = counts.get(value, 0) + 1
        majority_round = max(counts.items(), key=lambda item: (item[1], -item[0]))[0]
        # The responders stamped the round in which they processed our
        # `present`; by the time their acks reach us they have advanced one
        # more round, so adopting `majority_round` here and letting
        # ``_participate`` increment it keeps our round counter aligned with
        # theirs (which is what makes the instance tags line up).
        self._round = majority_round
        self._members = set(acks) | {self.node_id}
        self._join_phase = 2
        return self._participate(view, just_joined=True)

    def _participate(self, view: RoundView, *, just_joined: bool = False) -> Sequence[Outgoing]:
        outgoing: list[Outgoing] = []
        self._round += 1
        round_number = self._round

        # -- 1. membership and event intake -------------------------------------
        per_instance_inbox: dict[int, list[tuple[NodeId, Payload]]] = {}
        incoming_events: list[tuple[NodeId, Hashable]] = []
        for sender, payload in view.inbox.items():
            if isinstance(payload, PresentMsg):
                self._members.add(sender)
                outgoing.append(Unicast(sender, AckMsg(round_number)))
            elif isinstance(payload, AbsentMsg):
                self._members.discard(sender)
            elif isinstance(payload, EventMsg):
                # Accept events tagged with the previous protocol round (a
                # small tolerance of one round absorbs the join skew).
                if payload.round_number >= round_number - 2:
                    incoming_events.append((sender, payload.event))
            elif isinstance(payload, PCWrap):
                per_instance_inbox.setdefault(payload.instance_round, []).append(
                    (sender, payload.payload)
                )

        # -- 2. our own event for this round ----------------------------------------
        if not self._leaving and not just_joined:
            event = self._witnessed_event(round_number)
            if event is not None:
                outgoing.append(Broadcast(EventMsg(event, round_number)))

        # -- 3. leaving --------------------------------------------------------------
        if (
            self._leave_round is not None
            and round_number >= self._leave_round
            and not self._leaving
        ):
            self._leaving = True
            outgoing.append(Broadcast(AbsentMsg()))

        # -- 4. start this round's parallel-consensus instance -----------------------
        if not self._leaving and not just_joined:
            pairs = {(sender, repr(event)): event for sender, event in incoming_events}
            engine = ParallelConsensusEngine(
                self.node_id,
                pairs,
                allowed_senders=frozenset(self._members),
            )
            self._instances[round_number] = _InstanceRecord(
                instance_round=round_number,
                engine=engine,
                membership=frozenset(self._members),
                started_at_local_round=round_number,
            )

        # -- 5. advance every live instance ------------------------------------------
        for record in list(self._instances.values()):
            if record.finalized:
                continue
            record.local_round += 1
            pairs = per_instance_inbox.get(record.instance_round, [])
            inbox = Inbox.from_pairs(pairs)
            payloads = record.engine.step(record.local_round, inbox)
            for payload in payloads:
                outgoing.append(Broadcast(PCWrap(record.instance_round, payload)))

        # -- 6. finality and chain output -------------------------------------------
        self._update_chain(round_number)

        # -- 7. wind down after leaving -----------------------------------------------
        if self._leaving:
            outstanding = [
                record
                for record in self._instances.values()
                if not record.finalized and not record.engine.all_decided
            ]
            if not outstanding:
                self._left = True
        return outgoing

    # -- finality ---------------------------------------------------------------------

    def _instance_final(self, record: _InstanceRecord, round_number: int) -> bool:
        elapsed = round_number - record.instance_round
        return (
            elapsed > finality_horizon(len(record.membership))
            and record.engine.all_decided
        )

    def _update_chain(self, round_number: int) -> None:
        # R (line 29) is the largest round such that every round up to R is
        # final; we additionally require the local engine to have decided
        # (it always has, well within the horizon, but this keeps the output
        # well-defined even if the horizon is made artificially tight).
        next_round = self._final_upto + 1
        while next_round in self._instances or next_round < round_number:
            record = self._instances.get(next_round)
            if record is None:
                if next_round >= round_number:
                    break
                # A round for which we never started an instance (e.g. we
                # had not joined yet) contributes nothing.
                self._final_upto = next_round
                next_round += 1
                continue
            if not self._instance_final(record, round_number):
                break
            if not record.finalized:
                record.finalized = True
                outputs = record.engine.outputs
                for key in sorted(outputs, key=repr):
                    reporter, _ = key
                    self._chain.append(
                        ChainEntry(
                            instance_round=record.instance_round,
                            reporter=reporter,
                            event=outputs[key],
                        )
                    )
            self._final_upto = next_round
            next_round += 1
