"""Algorithm 6 — Total ordering of events in a dynamic network (Section XI).

Nodes may join and leave over time (subject to ``n > 3f`` holding in every
round).  Each node witnesses events, broadcasts them, and the system must
agree on a single growing sequence of events.  The construction runs one
*parallel consensus* instance per protocol round: the instance started in
round ``r`` decides on the set of events that were broadcast in round
``r − 1``, and an instance becomes *final* once enough rounds have elapsed
for it to be guaranteed terminated everywhere (the paper's horizon
``r − r' > 5·|S_{r'}|/2 + 2``).  The output chain is the concatenation of
the final instances' outputs in instance order.

The guarantees (Theorem 6):

* **Chain-prefix** — the chains output by any two correct nodes are
  prefixes of one another;
* **Chain-growth** — if a correct node submits an event every round, the
  chain keeps growing.

Membership protocol: a joining node broadcasts ``present``; current members
reply with ``(ack, r)`` carrying their round number and add the newcomer to
their membership view ``S``; the joiner adopts the majority round number
plus one and initialises ``S`` to the ack senders.  A leaving node
broadcasts ``absent`` and keeps participating in its outstanding consensus
instances before going quiet.

Genesis nodes (the nodes present from the very first round) are configured
with the initial membership directly — the paper's model likewise assumes
the initial participants are consistently initialised (Section III).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable, Mapping, Sequence

from ..sim.messages import (
    Broadcast,
    Inbox,
    NodeId,
    Outgoing,
    Payload,
    Unicast,
    cached_payload_hash,
    intern_payload,
)
from ..sim.node import Process, RoundView
from .parallel_consensus import ParallelConsensusEngine
from .tally import control_pairs

__all__ = [
    "PresentMsg",
    "AckMsg",
    "AbsentMsg",
    "EventMsg",
    "PCWrap",
    "PCBatch",
    "DeltaFrame",
    "MEMBERSHIP_WIRES",
    "ChainEntry",
    "TotalOrderProcess",
    "finality_horizon",
]

#: How membership acks travel on the wire (``TotalOrderProcess``'s
#: ``membership_wire``).
#:
#: ``"unicast"``
#:     Algorithm 6 as written: every member answers a ``present`` with a
#:     dedicated ``Unicast(joiner, AckMsg(round))``.  With ``k`` joiners
#:     in a round that is ``k·n`` extra messages — and, worse, the round
#:     stops being broadcast-only, so the vector/fast kernels fall back
#:     to the per-node representation exactly when churn makes the
#:     system busiest.
#: ``"delta"``
#:     The acks are delta-coded onto the per-round consensus broadcast:
#:     members piggyback the joiners they acked this round (plus their
#:     round number) on a :class:`DeltaFrame`, the membership analogue of
#:     the rotor init wave's delta-coded ``CandidateGossip``.  Zero extra
#:     messages, every round stays broadcast-only, and the joiner
#:     recovers the same ack set — chains are identical between modes.
MEMBERSHIP_WIRES = ("unicast", "delta")


@dataclass(frozen=True)
class PresentMsg:
    """Join announcement broadcast by a node that wants to participate."""


@dataclass(frozen=True)
class AckMsg:
    """Reply to ``present`` carrying the responder's current round number."""

    round_number: int


@dataclass(frozen=True)
class AbsentMsg:
    """Leave announcement."""


@dataclass(frozen=True)
class EventMsg:
    """An event witnessed by a node, tagged with the protocol round."""

    event: Hashable
    round_number: int


@dataclass(frozen=True)
class PCWrap:
    """A parallel-consensus payload multiplexed onto one round-instance.

    Legacy single-payload wrapper: still accepted on the inbound path, but
    correct nodes batch their per-round traffic into one :class:`PCBatch`
    broadcast instead of one ``PCWrap`` broadcast per payload.
    """

    instance_round: int
    payload: Payload


@cached_payload_hash
@dataclass(frozen=True)
class PCBatch:
    """All of a node's parallel-consensus traffic for one round.

    ``groups`` holds ``(instance_round, payloads)`` pairs — the payloads
    every live consensus instance of this node emitted this round, in
    instance order.  One broadcast per node per round replaces the O(live
    instances × payloads) ``PCWrap`` broadcasts of the original protocol,
    which dominated both the network's per-message bookkeeping and the
    inbox dedup hashing once chains grew past a few dozen rounds.

    The structural hash of this large nested tuple is cached
    (:func:`~repro.sim.messages.cached_payload_hash`), and the batch is
    interned before broadcast: in the common steady state every node emits
    the same consensus traffic for the same event set, so the round's
    batches collapse onto one canonical instance whose digest is computed
    once system-wide.
    """

    groups: tuple[tuple[int, tuple[Payload, ...]], ...]


@cached_payload_hash
@dataclass(frozen=True)
class DeltaFrame:
    """A node's whole round on the wire: consensus batch + membership delta.

    The ``membership_wire="delta"`` frame format.  ``groups`` is exactly
    :class:`PCBatch.groups`; ``ack_round`` is the sender's protocol round
    (what an :class:`AckMsg` would have carried); ``welcomes`` lists the
    joiners whose ``present`` the sender processed this round (sorted, so
    identical welcome sets intern to one payload); ``anchor`` carries the
    sender's full sorted membership view on every fourth welcome-bearing
    frame — the same adds-then-periodic-anchor cadence as the rotor
    protocol's delta-coded ``CandidateGossip``, giving observers (and any
    joiner whose welcome was lost) a bounded resync point without paying
    the full membership on every frame.

    In the steady state (no joiners) every node emits the same groups,
    the same round number, empty welcomes and no anchor — so the round's
    frames still collapse onto one interned payload whose digest is
    computed once system-wide, exactly like :class:`PCBatch`.
    """

    groups: tuple[tuple[int, tuple[Payload, ...]], ...]
    ack_round: int
    welcomes: tuple[NodeId, ...] = ()
    anchor: tuple[NodeId, ...] | None = None


#: Bulk (consensus-plane) payload types the membership/event intake skips.
#: One shared tuple for both wire modes keeps the per-inbox control-plane
#: memo entry shared: in unicast mode no ``DeltaFrame`` ever exists, so
#: filtering it is a no-op there.
_BULK_TYPES = (PCBatch, PCWrap, DeltaFrame)


@dataclass(frozen=True)
class ChainEntry:
    """One ordered event: which instance decided it and who reported it."""

    instance_round: int
    reporter: NodeId
    event: Hashable

    def key(self) -> tuple:
        return (self.instance_round, repr(self.reporter), repr(self.event))


def finality_horizon(membership_size: int) -> float:
    """The paper's finality horizon ``5·|S|/2 + 2`` for one instance."""

    return 5.0 * membership_size / 2.0 + 2.0


@dataclass
class _InstanceRecord:
    """A per-round parallel-consensus instance and its bookkeeping.

    Lifecycle: *live* (stepped every round) → *quiescent* (decided, linger
    window closed, nothing left to say — the engine is dropped and only its
    outputs are kept) → *pruned* (the finality horizon passed, the outputs
    entered the chain, and the record is deleted from ``_instances``).
    """

    instance_round: int
    engine: ParallelConsensusEngine | None
    membership: frozenset[NodeId]
    local_round: int = 0
    quiescent: bool = False
    # Snapshot of ``engine.outputs`` taken when the record goes quiescent.
    decided_outputs: dict | None = None

    @property
    def all_decided(self) -> bool:
        return self.quiescent or self.engine.all_decided

    @property
    def outputs(self) -> dict:
        return self.decided_outputs if self.quiescent else self.engine.outputs


#: Memo key for the per-instance routing table cached on each inbox.
_ROUTE_KEY = "total-order-routing"


def _route_instances(inbox: Inbox) -> dict[int, Inbox]:
    """Split an inbox's batched consensus traffic into per-instance inboxes.

    A pure derivation of the inbox contents, memoized on the inbox
    (:meth:`~repro.sim.messages.Inbox.memo`): on the synchronous fast path
    a broadcast-only round hands *the same* inbox object to every node, so
    the O(total batched payloads) split happens once per round instead of
    once per node.
    """

    buckets: dict[int, list[tuple[NodeId, Payload]]] = {}
    for sender, payload in inbox.items():
        cls = type(payload)
        if cls is PCBatch or cls is DeltaFrame:
            for instance_round, group in payload.groups:
                bucket = buckets.get(instance_round)
                if bucket is None:
                    buckets[instance_round] = bucket = []
                for inner in group:
                    bucket.append((sender, inner))
        elif cls is PCWrap:
            bucket = buckets.get(payload.instance_round)
            if bucket is None:
                buckets[payload.instance_round] = bucket = []
            bucket.append((sender, payload.payload))
    return {
        instance_round: Inbox.from_pairs(pairs)
        for instance_round, pairs in buckets.items()
    }


class TotalOrderProcess(Process):
    """A correct participant of the dynamic total-ordering protocol.

    Parameters
    ----------
    node_id:
        The node's identifier.
    initial_members:
        The genesis membership (including this node) when the node is
        present from the first round; ``None`` marks a joining node that
        must run the ``present``/``ack`` handshake first.
    events:
        Either a mapping ``protocol round -> event`` or a callable
        ``(round) -> event | None`` describing the events this node
        witnesses.
    leave_round:
        Protocol round at which the node announces ``absent`` and starts
        winding down (``None`` = stays forever).
    membership_wire:
        How acks travel: ``"unicast"`` (per-joiner :class:`AckMsg`, the
        algorithm as written and the default) or ``"delta"``
        (:class:`DeltaFrame` piggybacking — see :data:`MEMBERSHIP_WIRES`).
        Joining nodes accept both formats regardless of their own mode.

    Finalized instances are pruned from memory as soon as their outputs
    enter the chain; decided instances stop being stepped once their linger
    window closes (see :class:`_InstanceRecord`).
    """

    def __init__(
        self,
        node_id: NodeId,
        *,
        initial_members: Iterable[NodeId] | None = None,
        events: Mapping[int, Hashable] | Callable[[int], Hashable | None] | None = None,
        leave_round: int | None = None,
        membership_wire: str = "unicast",
    ) -> None:
        super().__init__(node_id)
        if membership_wire not in MEMBERSHIP_WIRES:
            raise ValueError(
                f"unknown membership wire {membership_wire!r}; "
                f"choose from {', '.join(MEMBERSHIP_WIRES)}"
            )
        self._wire = membership_wire
        self._welcome_frames = 0  # welcome-bearing frames emitted (anchor cadence)
        self._joining = initial_members is None
        self._members: set[NodeId] = set(initial_members or ())
        if not self._joining:
            self._members.add(node_id)
        self._round = 0  # the protocol round r
        self._join_phase = 0  # 0 = not started, 1 = present sent, 2 = active
        self._join_wait = 0  # silent rounds since `present` went out
        if not self._joining:
            self._join_phase = 2
        self._events = events or {}
        self._leave_round = leave_round
        self._leaving = False
        self._left = False
        self._instances: dict[int, _InstanceRecord] = {}
        self._pending_events: list[tuple[NodeId, Hashable]] = []
        self._chain: list[ChainEntry] = []
        self._final_upto = 0

    # -- results -----------------------------------------------------------------

    @property
    def chain(self) -> tuple[ChainEntry, ...]:
        """The totally ordered sequence of events output so far."""

        return tuple(self._chain)

    @property
    def output(self) -> tuple[ChainEntry, ...] | None:
        return tuple(self._chain) if self._chain else None

    @property
    def decided(self) -> bool:
        return bool(self._chain)

    @property
    def members(self) -> frozenset[NodeId]:
        """The node's current membership view ``S``."""

        return frozenset(self._members)

    @property
    def protocol_round(self) -> int:
        return self._round

    @property
    def final_round(self) -> int:
        """``R`` — the largest round whose instances are all final."""

        return self._final_upto

    @property
    def joined(self) -> bool:
        return self._join_phase == 2

    # -- event source -------------------------------------------------------------

    def _witnessed_event(self, round_number: int) -> Hashable | None:
        if callable(self._events):
            return self._events(round_number)
        return self._events.get(round_number)

    # -- the state machine ------------------------------------------------------------

    def step(self, view: RoundView) -> Sequence[Outgoing]:
        if self._left:
            self.halt()
            return ()
        if self._joining and self._join_phase < 2:
            return self._join_handshake(view)
        return self._participate(view)

    # The present/ack handshake (Algorithm 6, lines 1–6).
    def _join_handshake(self, view: RoundView) -> Sequence[Outgoing]:
        if self._join_phase == 0:
            self._join_phase = 1
            self._join_wait = 0
            return [Broadcast(PresentMsg())]
        # join phase 1: the acks arrive two rounds after `present` was sent
        # (one round for `present` to be delivered, one for the replies).
        acks: dict[NodeId, int] = {}
        for sender, payload in view.inbox.items():
            if isinstance(payload, AckMsg):
                acks[sender] = payload.round_number
            elif type(payload) is DeltaFrame and (
                self.node_id in payload.welcomes
                or (payload.anchor is not None and self.node_id in payload.anchor)
            ):
                # Delta-coded ack: the sender welcomed us this round (or
                # its periodic anchor already lists us — the resync path
                # for a welcome lost to churn).
                acks[sender] = payload.ack_round
        if not acks:
            self._join_wait += 1
            if self._join_wait >= 3:
                # Nobody answered (e.g. our `present` was lost to churn);
                # start the handshake over.
                self._join_phase = 0
            return ()
        counts: dict[int, int] = {}
        for value in acks.values():
            counts[value] = counts.get(value, 0) + 1
        majority_round = max(counts.items(), key=lambda item: (item[1], -item[0]))[0]
        # The responders stamped the round in which they processed our
        # `present`; by the time their acks reach us they have advanced one
        # more round, so adopting `majority_round` here and letting
        # ``_participate`` increment it keeps our round counter aligned with
        # theirs (which is what makes the instance tags line up).
        self._round = majority_round
        self._members = set(acks) | {self.node_id}
        self._join_phase = 2
        return self._participate(view, just_joined=True)

    def _participate(self, view: RoundView, *, just_joined: bool = False) -> Sequence[Outgoing]:
        outgoing: list[Outgoing] = []
        self._round += 1
        round_number = self._round

        # -- 1. membership and event intake -------------------------------------
        # Batched consensus traffic is routed separately (and shared across
        # nodes on the fast path) by _instance_inboxes; this pass only
        # handles the O(events) membership/event payloads, pre-filtered once
        # per shared inbox by the memoized control-plane tally.
        incoming_events: list[tuple[NodeId, Hashable]] = []
        welcomed: list[NodeId] = []
        for sender, payload in control_pairs(view.inbox, _BULK_TYPES):
            if isinstance(payload, PresentMsg):
                self._members.add(sender)
                if self._wire == "delta":
                    welcomed.append(sender)
                else:
                    outgoing.append(Unicast(sender, AckMsg(round_number)))
            elif isinstance(payload, AbsentMsg):
                self._members.discard(sender)
            elif isinstance(payload, EventMsg):
                # Accept events tagged with the previous protocol round (a
                # small tolerance of one round absorbs the join skew).
                if payload.round_number >= round_number - 2:
                    incoming_events.append((sender, payload.event))

        # -- 2. our own event for this round ----------------------------------------
        if not self._leaving and not just_joined:
            event = self._witnessed_event(round_number)
            if event is not None:
                outgoing.append(Broadcast(EventMsg(event, round_number)))

        # -- 3. leaving --------------------------------------------------------------
        if (
            self._leave_round is not None
            and round_number >= self._leave_round
            and not self._leaving
        ):
            self._leaving = True
            outgoing.append(Broadcast(AbsentMsg()))

        # -- 4. start this round's parallel-consensus instance -----------------------
        if not self._leaving and not just_joined:
            pairs = {(sender, repr(event)): event for sender, event in incoming_events}
            engine = ParallelConsensusEngine(
                self.node_id,
                pairs,
                allowed_senders=frozenset(self._members),
            )
            self._instances[round_number] = _InstanceRecord(
                instance_round=round_number,
                engine=engine,
                membership=frozenset(self._members),
            )

        # -- 5. advance the live (non-quiescent) instances ---------------------------
        # A decided instance whose linger window has closed has nothing left
        # to say: it is marked quiescent, its engine is dropped (only the
        # outputs survive), and it is never stepped again.  This is what
        # keeps the per-round cost bounded by the decide+linger window
        # instead of growing with the ~5n/2-round finality horizon.
        routed = view.inbox.memo(_ROUTE_KEY, _route_instances)
        groups: list[tuple[int, tuple[Payload, ...]]] = []
        empty = Inbox.empty()
        for record in self._instances.values():
            if record.quiescent:
                continue
            record.local_round += 1
            engine = record.engine
            payloads = engine.step(
                record.local_round, routed.get(record.instance_round, empty)
            )
            if payloads:
                groups.append((record.instance_round, tuple(payloads)))
            elif engine.idle:
                record.quiescent = True
                record.decided_outputs = dict(engine.outputs)
                record.engine = None
        if self._wire == "delta" and welcomed:
            # A welcome round: the batch travels as a DeltaFrame carrying
            # the piggybacked acks; every fourth welcome-bearing frame
            # also carries the full membership anchor (the resync point).
            self._welcome_frames += 1
            anchor = None
            if self._welcome_frames % 4 == 0:
                anchor = tuple(sorted(self._members, key=repr))
            frame = DeltaFrame(
                groups=tuple(groups),
                ack_round=round_number,
                welcomes=tuple(sorted(welcomed, key=repr)),
                anchor=anchor,
            )
            outgoing.append(Broadcast(intern_payload(frame)))
        elif groups:
            # One batched wrapper broadcast per round, not one per payload;
            # interning collapses the identical batches most nodes emit.
            outgoing.append(Broadcast(intern_payload(PCBatch(tuple(groups)))))

        # -- 6. finality and chain output -------------------------------------------
        self._update_chain(round_number)

        # -- 7. wind down after leaving -----------------------------------------------
        if self._leaving:
            outstanding = any(
                not record.all_decided for record in self._instances.values()
            )
            if not outstanding:
                self._left = True
        return outgoing

    # -- finality ---------------------------------------------------------------------

    def _instance_final(self, record: _InstanceRecord, round_number: int) -> bool:
        elapsed = round_number - record.instance_round
        return (
            elapsed > finality_horizon(len(record.membership))
            and record.all_decided
        )

    def _update_chain(self, round_number: int) -> None:
        # R (line 29) is the largest round such that every round up to R is
        # final; we additionally require the local engine to have decided
        # (it always has, well within the horizon, but this keeps the output
        # well-defined even if the horizon is made artificially tight).
        # A record that becomes final is pruned right after its outputs
        # enter the chain — the chain itself is the durable result, so
        # ``_instances`` holds only the horizon window, not the full history.
        next_round = self._final_upto + 1
        while next_round in self._instances or next_round < round_number:
            record = self._instances.get(next_round)
            if record is None:
                if next_round >= round_number:
                    break
                # A round for which we never started an instance (e.g. we
                # had not joined yet) contributes nothing.
                self._final_upto = next_round
                next_round += 1
                continue
            if not self._instance_final(record, round_number):
                break
            outputs = record.outputs
            for key in sorted(outputs, key=repr):
                reporter, _ = key
                self._chain.append(
                    ChainEntry(
                        instance_round=record.instance_round,
                        reporter=reporter,
                        event=outputs[key],
                    )
                )
            del self._instances[next_round]
            self._final_upto = next_round
            next_round += 1
