"""Section IX — synchrony is necessary (Lemmas 14 and 15).

The paper proves that when ``n`` and ``f`` are unknown, consensus is
impossible — even with probabilistic termination — in asynchronous systems
(Lemma 14) and in semi-synchronous systems whose delay bound Δ exists but
is unknown to the nodes (Lemma 15).  Both proofs are *constructive*: they
describe an execution in which two groups of correct nodes decide
differently because each group's view is indistinguishable from a system
in which the other group does not exist.

This module builds exactly those executions against the real Algorithm 3
implementation and reports whether the predicted disagreement materialises.
Experiment E6 runs them over many seeds; the measured disagreement
frequency being (essentially) one is the empirical counterpart of the
impossibility result, and the same scenario run under the synchronous
delay model shows agreement is restored.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..sim.delays import BoundedUnknownDelay, DelayModel, PartitionDelay, SynchronousDelay
from ..sim.messages import NodeId
from ..sim.network import SynchronousNetwork
from ..sim.rng import derive
from .consensus import ConsensusProcess

__all__ = [
    "PartitionOutcome",
    "outcome_from_outputs",
    "run_partitioned_consensus",
    "asynchronous_partition_execution",
    "semi_synchronous_partition_execution",
    "synchronous_control_execution",
]


@dataclass(frozen=True)
class PartitionOutcome:
    """What happened in one partition execution."""

    group_a: tuple[NodeId, ...]
    group_b: tuple[NodeId, ...]
    decisions_a: tuple[object, ...]
    decisions_b: tuple[object, ...]
    rounds: int
    delay_model: str

    @property
    def all_decided(self) -> bool:
        decisions = self.decisions_a + self.decisions_b
        return bool(decisions) and all(d is not None for d in decisions)

    @property
    def disagreement(self) -> bool:
        """True when two correct nodes decided different values."""

        decided = [d for d in self.decisions_a + self.decisions_b if d is not None]
        return len(set(decided)) > 1

    @property
    def agreement(self) -> bool:
        return self.all_decided and not self.disagreement


def outcome_from_outputs(
    group_a: Sequence[NodeId],
    group_b: Sequence[NodeId],
    outputs: dict[NodeId, object],
    *,
    rounds: int,
    delay_model: str,
) -> PartitionOutcome:
    """Classify an arbitrary run's decisions with the Lemma 14/15 vocabulary.

    Lets the declarative E6 sweep (which runs partition scenarios through
    the generic :mod:`repro.api` engine) reuse the
    ``all_decided``/``disagreement``/``agreement`` logic above.
    """

    return PartitionOutcome(
        group_a=tuple(group_a),
        group_b=tuple(group_b),
        decisions_a=tuple(outputs[i] for i in group_a),
        decisions_b=tuple(outputs[i] for i in group_b),
        rounds=rounds,
        delay_model=delay_model,
    )


def _partition_ids(n_a: int, n_b: int, seed: int) -> tuple[list[NodeId], list[NodeId]]:
    from ..workloads.generators import sparse_ids

    ids = sparse_ids(n_a + n_b, seed=derive(seed, "impossibility-ids"))
    return ids[:n_a], ids[n_a:]


def run_partitioned_consensus(
    *,
    group_a: Sequence[NodeId],
    group_b: Sequence[NodeId],
    delay_model: DelayModel,
    max_rounds: int = 60,
    seed: int = 0,
) -> PartitionOutcome:
    """Run Algorithm 3 with group A holding input 1 and group B input 0.

    All nodes are *correct*; only the message delays differ from the
    synchronous model.  This is the system ``S`` of Lemma 14 / 15.
    """

    processes = [ConsensusProcess(node, input_value=1) for node in group_a]
    processes += [ConsensusProcess(node, input_value=0) for node in group_b]
    network = SynchronousNetwork(processes, delay_model=delay_model, seed=seed)
    result = network.run(max_rounds=max_rounds)
    return PartitionOutcome(
        group_a=tuple(group_a),
        group_b=tuple(group_b),
        decisions_a=tuple(network.process(i).output for i in group_a),
        decisions_b=tuple(network.process(i).output for i in group_b),
        rounds=result.rounds_executed,
        delay_model=type(delay_model).__name__,
    )


def asynchronous_partition_execution(
    n_a: int = 4, n_b: int = 4, *, seed: int = 0, max_rounds: int = 60
) -> PartitionOutcome:
    """Lemma 14's construction: cross-partition messages delayed forever.

    To each node, the system is indistinguishable from one in which the
    other partition does not exist, so group A decides 1 and group B decides
    0 — a disagreement.
    """

    ids_a, ids_b = _partition_ids(n_a, n_b, seed)
    delay = PartitionDelay(groups=(frozenset(ids_a), frozenset(ids_b)), heal_round=None)
    return run_partitioned_consensus(
        group_a=ids_a, group_b=ids_b, delay_model=delay, max_rounds=max_rounds, seed=seed
    )


def semi_synchronous_partition_execution(
    n_a: int = 4,
    n_b: int = 4,
    *,
    delta: int = 40,
    seed: int = 0,
    max_rounds: int = 60,
) -> PartitionOutcome:
    """Lemma 15's construction: a finite delay bound Δ exists but is larger
    than the time each group needs to decide, so both groups decide before
    ever hearing from each other."""

    ids_a, ids_b = _partition_ids(n_a, n_b, seed)
    delay = BoundedUnknownDelay(groups=(frozenset(ids_a), frozenset(ids_b)), delta=delta)
    return run_partitioned_consensus(
        group_a=ids_a, group_b=ids_b, delay_model=delay, max_rounds=max_rounds, seed=seed
    )


def synchronous_control_execution(
    n_a: int = 4, n_b: int = 4, *, seed: int = 0, max_rounds: int = 80
) -> PartitionOutcome:
    """The control: the same split inputs under the synchronous model.

    With synchronous delivery the nodes hear each other, so Algorithm 3
    reaches agreement — demonstrating that it is the loss of synchrony, not
    the split inputs, that causes the disagreement above.
    """

    ids_a, ids_b = _partition_ids(n_a, n_b, seed)
    return run_partitioned_consensus(
        group_a=ids_a,
        group_b=ids_b,
        delay_model=SynchronousDelay(),
        max_rounds=max_rounds,
        seed=seed,
    )
