"""Algorithm 5 — EarlyConsensus(id) and ParallelConsensus (Section X).

Parallel consensus generalises consensus to a *set* of named decisions:
every correct node ``v`` holds input pairs ``(id, x)`` and the correct
nodes must output a common set of pairs such that

* **Validity** — a pair ``(id, x)`` with ``x ≠ ⊥`` that is an input of
  every correct node is output by every correct node;
* **Agreement** — if one correct node outputs ``(id, x)``, all do;
* **Termination** — every correct node outputs its set after finitely many
  rounds.

The subtlety is that the correct nodes do not initially agree on *which*
instances exist: an identifier may be input at only some correct nodes, or
at none (injected by Byzantine nodes).  EarlyConsensus(id) handles this by
running the consensus phase structure per identifier with explicit
``nopreference``/``nostrongpreference`` messages and default ``⊥``
substitution for nodes that have not spoken for that identifier:

* a message type first heard in the **second or later phase** is discarded
  (no new instance is started);
* during the **first phase**, nodes that counted towards ``nv`` but did not
  send a message of the counted type (nor the corresponding explicit
  ``no…preference`` statement) are counted as having sent that type with
  value ``⊥``;
* in later phases, only nodes that have stayed silent for the entire loop
  are substituted for, with the local node's own most recent message of
  that type (the same — provably safe — narrowing used in Algorithm 3;
  a blanket per-round substitution would let a split-vote adversary create
  conflicting quorums).

All instances share one rotor-coordinator (initialised in the two setup
rounds, one selection per phase); the phase coordinator broadcasts one
per-identifier opinion for every instance it tracks.

The module exposes:

* :class:`ParallelConsensusEngine` — the embeddable state machine (also
  used per-round by the dynamic total-ordering protocol of Section XI);
* :class:`ParallelConsensusProcess` — a standalone process for experiment
  E7 and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

from ..sim.messages import Broadcast, Inbox, NodeId, Outgoing, Payload
from ..sim.node import KnownSenders, Process, RoundView
from .consensus import INIT_ROUNDS, LINGER_PHASES, PHASE_LENGTH
from .quorums import best_supported_value
from .rotor_coordinator import RotorCoordinatorCore
from .tally import NO_VALUE, scan_index

__all__ = [
    "BOTTOM",
    "PCInput",
    "PCPrefer",
    "PCStrongPrefer",
    "PCNoPreference",
    "PCNoStrongPreference",
    "PCOpinion",
    "ParallelConsensusEngine",
    "ParallelConsensusProcess",
]


class _Bottom:
    """The ``⊥`` placeholder (a dedicated singleton, distinct from ``None``)."""

    _instance: "_Bottom | None" = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "⊥"

    def __hash__(self) -> int:
        return hash("__bottom__")

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Bottom)


#: The distinguished "no opinion" value of Section X.
BOTTOM = _Bottom()


@dataclass(frozen=True)
class PCInput:
    """``id:input(x)``."""

    instance: Hashable
    value: Hashable


@dataclass(frozen=True)
class PCPrefer:
    """``id:prefer(x)``."""

    instance: Hashable
    value: Hashable


@dataclass(frozen=True)
class PCStrongPrefer:
    """``id:strongprefer(x)``."""

    instance: Hashable
    value: Hashable


@dataclass(frozen=True)
class PCNoPreference:
    """``id:nopreference`` — "I saw no two-thirds input quorum for this id"."""

    instance: Hashable


@dataclass(frozen=True)
class PCNoStrongPreference:
    """``id:nostrongpreference`` — "I saw no two-thirds prefer quorum"."""

    instance: Hashable


@dataclass(frozen=True)
class PCOpinion:
    """The phase coordinator's per-identifier opinion."""

    instance: Hashable
    value: Hashable


_TYPE_INPUT = "input"
_TYPE_PREFER = "prefer"
_TYPE_STRONG = "strongprefer"


@dataclass
class _InstanceState:
    """Per-identifier EarlyConsensus state."""

    instance: Hashable
    opinion: Hashable
    started_phase: int
    decided: bool = False
    output: Hashable | None = None
    # Most recent message of each type sent by this node for the instance,
    # used by the substitution rule.
    sent: dict[str, Hashable] = field(default_factory=dict)
    # strongprefer support remembered between phase rounds 4 and 5.
    pending_strong: dict[Hashable, int] = field(default_factory=dict)
    # Rounds left to keep speaking after deciding (termination detection).
    linger_rounds: int | None = None

    @property
    def active(self) -> bool:
        """An instance stops speaking once its linger budget is exhausted."""

        if not self.decided:
            return True
        return self.linger_rounds is not None and self.linger_rounds >= 0


#: ``(instance, type_key)`` support index built once per round — see
#: :func:`_classify` and :func:`repro.core.tally.scan_index`.
_ScanIndex = dict[tuple[Hashable, str], dict[Hashable, int]]

#: Memo key under which the scan index is cached on the inbox.
_SCAN_KEY = "pc-scan-index"


def _classify(payload: Payload) -> tuple[tuple[Hashable, str], Hashable] | None:
    """Map one payload to its ``(instance, type)`` slot for the scan index.

    The old per-instance ``_support`` rescanned the full inbox for every
    tracked identifier — O(identifiers × inbox) per round, the dominant
    protocol cost once the total-order workload multiplexes hundreds of
    identifiers.  :func:`repro.core.tally.scan_index` runs this classifier
    once per round over the (possibly shared, possibly columnar) inbox and
    builds both the per-value distinct-sender counts and the "has spoken
    for this type" sets; ``_support`` becomes a dictionary lookup.  The
    explicit ``no…preference`` statements make the sender non-missing for
    the corresponding type without contributing a countable value
    (:data:`repro.core.tally.NO_VALUE`).
    """

    cls = type(payload)
    if cls is PCInput:
        return (payload.instance, _TYPE_INPUT), payload.value
    if cls is PCPrefer:
        return (payload.instance, _TYPE_PREFER), payload.value
    if cls is PCStrongPrefer:
        return (payload.instance, _TYPE_STRONG), payload.value
    if cls is PCNoPreference:
        return (payload.instance, _TYPE_PREFER), NO_VALUE
    if cls is PCNoStrongPreference:
        return (payload.instance, _TYPE_STRONG), NO_VALUE
    return None


class ParallelConsensusEngine:
    """The EarlyConsensus/ParallelConsensus state machine.

    The engine is deliberately *not* a :class:`~repro.sim.node.Process`: the
    dynamic total-ordering protocol embeds one engine per round-instance and
    multiplexes them over the same network rounds.  ``step`` takes the
    engine-local round number (1-based) and the inbox restricted to this
    engine's messages, and returns the payloads to broadcast.

    Parameters
    ----------
    node_id:
        The local node's identifier.
    input_pairs:
        The ``(id, x)`` pairs input at this node.
    allowed_senders:
        When given (the dynamic-network case), only messages from these
        identifiers are considered and ``nv`` is bounded by this set.
    """

    def __init__(
        self,
        node_id: NodeId,
        input_pairs: Mapping[Hashable, Hashable] | None = None,
        *,
        allowed_senders: frozenset[NodeId] | None = None,
    ) -> None:
        self._node_id = node_id
        self._allowed = allowed_senders
        self._known = KnownSenders()
        self._rotor = RotorCoordinatorCore(node_id)
        self._instances: dict[Hashable, _InstanceState] = {}
        self._loop_senders: set[NodeId] = set()
        self._phase = 0
        # Incremental bookkeeping so the hot-path queries stay O(1): the
        # number of undecided instances, the decided-but-still-speaking
        # instances (linger window), and the repr-sorted state list (built
        # lazily, invalidated only when an instance is created).
        self._undecided = 0
        self._lingering: list[_InstanceState] = []
        self._loop_complete = False
        self._sorted_cache: list[_InstanceState] | None = None
        # Per-round support index, rebuilt each step from the shared tally.
        self._scan_support: _ScanIndex = {}
        self._scan_spoken: dict[tuple[Hashable, str], frozenset[NodeId]] = {}
        # Input pairs are held here until first touch; _InstanceState is
        # materialised lazily (first message about the identifier, or the
        # first phase round where the input must speak).  The total-order
        # protocol builds one engine per round with O(n) input pairs, so
        # eager construction was the remaining O(n²) allocation per round —
        # engines that die before their first phase round (run tail,
        # leaving nodes) now never allocate per-identifier state at all.
        self._pending_inputs: dict[Hashable, Hashable] = {
            instance: (value if value is not None else BOTTOM)
            for instance, value in (input_pairs or {}).items()
        }

    # -- introspection ------------------------------------------------------------

    @property
    def node_id(self) -> NodeId:
        return self._node_id

    @property
    def nv(self) -> int:
        return self._known.count

    @property
    def phase(self) -> int:
        return self._phase

    @property
    def instances(self) -> tuple[Hashable, ...]:
        if self._pending_inputs:
            merged = set(self._instances)
            merged.update(self._pending_inputs)
            return tuple(sorted(merged, key=repr))
        return tuple(sorted(self._instances, key=repr))

    @property
    def rotor(self) -> RotorCoordinatorCore:
        return self._rotor

    def opinion(self, instance: Hashable) -> Hashable | None:
        state = self._instances.get(instance)
        if state is not None:
            return state.opinion
        return self._pending_inputs.get(instance)

    @property
    def all_decided(self) -> bool:
        """True when every tracked instance has decided (vacuously true for
        a node tracking no instances once the first phase has passed)."""

        if self._pending_inputs:
            return False
        if not self._instances:
            return self._phase >= 2
        return self._undecided == 0

    @property
    def idle(self) -> bool:
        """True when no instance will speak again on its own: everything is
        decided and every linger window has closed.  An idle engine emits
        payloads only in reaction to incoming messages (rotor echo relays),
        which lets the total-order protocol stop stepping it entirely."""

        return self.all_decided and not self._lingering

    @property
    def outputs(self) -> dict[Hashable, Hashable]:
        """The decided non-``⊥`` pairs (the parallel-consensus output set)."""

        return {
            state.instance: state.output
            for state in self._instances.values()
            if state.decided and state.output is not None
        }

    # -- helpers ----------------------------------------------------------------------

    def _filter(self, inbox: Inbox) -> Inbox:
        allowed = self._known.ids if self._known.frozen else None
        if self._allowed is not None:
            allowed = self._allowed if allowed is None else (allowed & self._allowed)
        if allowed is None:
            return inbox
        # Restriction is memoized on the (possibly shared) inbox keyed by
        # the allowed set, so nodes with the same membership view share one
        # filtered inbox — and one scan index built on it — per round.
        return inbox.restricted(allowed)

    def _materialize(
        self, instance: Hashable, opinion: Hashable, started_phase: int
    ) -> _InstanceState:
        state = _InstanceState(
            instance=instance, opinion=opinion, started_phase=started_phase
        )
        self._instances[instance] = state
        self._undecided += 1
        self._sorted_cache = None
        return state

    def _ensure_instance(self, instance: Hashable, phase: int) -> _InstanceState | None:
        """Create the instance state on first touch of an identifier.

        A pending input pair materialises whenever it is touched; a
        message-only identifier is only allowed to start an instance during
        the first phase (rule 1).
        """

        state = self._instances.get(instance)
        if state is not None:
            return state
        pending = self._pending_inputs
        if pending:
            opinion = pending.pop(instance, None)
            if opinion is not None:
                return self._materialize(instance, opinion, started_phase=1)
        if phase > 1:
            return None
        return self._materialize(instance, BOTTOM, started_phase=phase)

    def _scanned_instances(self, type_key: str) -> list[Hashable]:
        """Identifiers that delivered a *valued* message of ``type_key``."""

        return [
            instance for instance, key in self._scan_support if key == type_key
        ]

    def _support(
        self,
        instance: Hashable,
        type_key: str,
        state: _InstanceState,
    ) -> dict[Hashable, int]:
        """Per-value support for one message type of one instance, applying
        the ⊥/own-message substitution rules to the round's scan index."""

        key = (instance, type_key)
        supporters = self._scan_support.get(key)
        # The scan index is shared (memoized on the inbox) — copy the counts
        # before the substitution rules mutate them.
        counts = dict(supporters) if supporters else {}
        senders_of_type = self._scan_spoken.get(key, frozenset())

        # ``missing`` is ``known − senders_of_type − {self}``.  By the time
        # _support runs (phase rounds only) ``nv`` is frozen and the inbox
        # is filtered to known senders, so ``senders_of_type ⊆ known`` and
        # the *size* of the missing set is pure arithmetic — the set itself
        # is only materialised on the rare substitution path.
        known = self._known
        n_missing = known.count - len(senders_of_type)
        if self._node_id in known and self._node_id not in senders_of_type:
            n_missing -= 1
        if n_missing > 0:
            if self._phase == 1:
                # First phase: missing senders default to ⊥ (rule 2).
                counts[BOTTOM] = counts.get(BOTTOM, 0) + n_missing
            else:
                # Later phases: substitute the node's own most recent message
                # of this type, but only for nodes that have never spoken
                # inside the loop (rule 3, narrowed as in Algorithm 3).
                own = state.sent.get(type_key)
                if own is not None:
                    missing = known.ids - senders_of_type - {self._node_id}
                    silent = missing - self._loop_senders
                    if silent:
                        counts[own] = counts.get(own, 0) + len(silent)
        return counts

    # -- the round state machine ------------------------------------------------------

    def step(self, local_round: int, inbox: Inbox) -> list[Payload]:
        """Advance one round; return the payloads to broadcast."""

        if local_round == 1:
            self._known.observe(inbox)
            return list(self._rotor.init_round_one())
        if local_round == 2:
            self._known.observe(inbox)
            return list(self._rotor.init_round_two(inbox))
        if local_round == 3:
            self._known.observe(inbox)
            self._known.freeze()

        inbox = self._filter(inbox)
        if local_round > 3 and not self._loop_complete:
            self._loop_senders.update(inbox.senders)
            # Once every known sender has spoken inside the loop the set
            # can never grow again (the inbox is filtered to known senders).
            if len(self._loop_senders) >= self._known.count:
                self._loop_complete = True
        relays = self._rotor.observe(inbox)
        self._scan_support, self._scan_spoken = scan_index(
            inbox, _classify, memo_key=_SCAN_KEY
        )
        phase_round = (local_round - INIT_ROUNDS - 1) % PHASE_LENGTH + 1
        if phase_round == 1:
            self._phase += 1

        payloads: list[Payload] = list(relays)
        handler = {
            1: self._phase_round_one,
            2: self._phase_round_two,
            3: self._phase_round_three,
            4: self._phase_round_four,
            5: self._phase_round_five,
        }[phase_round]
        payloads.extend(handler(inbox, local_round))

        # Linger bookkeeping for decided instances (only the ones still
        # inside their linger window — exhausted instances never reactivate).
        if self._lingering:
            still: list[_InstanceState] = []
            for state in self._lingering:
                state.linger_rounds -= 1
                if state.linger_rounds >= 0:
                    still.append(state)
            self._lingering = still
        return payloads

    # -- phase rounds -------------------------------------------------------------------

    def _phase_round_one(self, inbox: Inbox, local_round: int) -> list[Payload]:
        payloads: list[Payload] = []
        if self._pending_inputs:
            # First input touch: the input pairs must speak this round, so
            # every still-pending identifier materialises now.
            for instance, opinion in self._pending_inputs.items():
                self._materialize(instance, opinion, started_phase=1)
            self._pending_inputs.clear()
        for state in self._sorted_states():
            if not state.active:
                continue
            if state.opinion != BOTTOM and state.opinion is not None:
                payloads.append(PCInput(state.instance, state.opinion))
                state.sent[_TYPE_INPUT] = state.opinion
        return payloads

    def _phase_round_two(self, inbox: Inbox, local_round: int) -> list[Payload]:
        payloads: list[Payload] = []
        # New identifiers first heard via id:input start an instance now.
        for instance in self._scanned_instances(_TYPE_INPUT):
            self._ensure_instance(instance, self._phase)
        for state in self._sorted_states():
            if not state.active:
                continue
            support = self._support(state.instance, _TYPE_INPUT, state)
            winner = best_supported_value(support, self.nv, fraction="two_thirds")
            if winner is not None:
                payloads.append(PCPrefer(state.instance, winner))
                state.sent[_TYPE_PREFER] = winner
            else:
                payloads.append(PCNoPreference(state.instance))
        return payloads

    def _phase_round_three(self, inbox: Inbox, local_round: int) -> list[Payload]:
        payloads: list[Payload] = []
        for instance in self._scanned_instances(_TYPE_PREFER):
            self._ensure_instance(instance, self._phase)
        for state in self._sorted_states():
            if not state.active:
                continue
            support = self._support(state.instance, _TYPE_PREFER, state)
            adopt = best_supported_value(support, self.nv, fraction="one_third")
            if adopt is not None:
                state.opinion = adopt
            strong = best_supported_value(support, self.nv, fraction="two_thirds")
            if strong is not None:
                payloads.append(PCStrongPrefer(state.instance, strong))
                state.sent[_TYPE_STRONG] = strong
            else:
                payloads.append(PCNoStrongPreference(state.instance))
        return payloads

    def _phase_round_four(self, inbox: Inbox, local_round: int) -> list[Payload]:
        payloads: list[Payload] = []
        for state in self._sorted_states():
            if not state.active:
                continue
            state.pending_strong = self._support(state.instance, _TYPE_STRONG, state)
        # One shared rotor-coordinator selection per phase; the selected
        # coordinator publishes a per-instance opinion.
        outcome = self._rotor.execute_selection(
            inbox, None, round_index=local_round
        )
        if outcome.selected == self._node_id:
            for state in self._sorted_states():
                if state.active:
                    payloads.append(PCOpinion(state.instance, state.opinion))
        return payloads

    def _phase_round_five(self, inbox: Inbox, local_round: int) -> list[Payload]:
        payloads: list[Payload] = []
        for instance in self._scanned_instances(_TYPE_STRONG):
            self._ensure_instance(instance, self._phase)
        coordinator = self._rotor.last_selected
        for state in self._sorted_states():
            if not state.active:
                continue
            support = state.pending_strong
            state.pending_strong = {}
            decide = best_supported_value(support, self.nv, fraction="two_thirds")
            weak = best_supported_value(support, self.nv, fraction="one_third")
            if weak is None and coordinator is not None:
                for payload in inbox.payloads_from(coordinator):
                    if (
                        isinstance(payload, PCOpinion)
                        and payload.instance == state.instance
                    ):
                        state.opinion = payload.value
                        break
            if decide is not None and not state.decided:
                state.decided = True
                state.opinion = decide
                state.output = None if decide == BOTTOM else decide
                state.linger_rounds = LINGER_PHASES * PHASE_LENGTH
                self._undecided -= 1
                self._lingering.append(state)
        return payloads

    def _sorted_states(self) -> list[_InstanceState]:
        cache = self._sorted_cache
        if cache is None:
            cache = [self._instances[k] for k in sorted(self._instances, key=repr)]
            self._sorted_cache = cache
        return cache


class ParallelConsensusProcess(Process):
    """Standalone parallel consensus (experiment E7, examples)."""

    def __init__(
        self,
        node_id: NodeId,
        *,
        input_pairs: Mapping[Hashable, Hashable],
        max_phases: int = 12,
    ) -> None:
        super().__init__(node_id)
        self._engine = ParallelConsensusEngine(node_id, dict(input_pairs))
        self._max_phases = max_phases
        self._output: dict[Hashable, Hashable] | None = None

    @property
    def engine(self) -> ParallelConsensusEngine:
        return self._engine

    @property
    def output(self) -> dict[Hashable, Hashable] | None:
        return self._output

    @property
    def decided(self) -> bool:
        return self._output is not None

    def step(self, view: RoundView) -> Sequence[Outgoing]:
        payloads = self._engine.step(view.round_index, view.inbox)
        if self._output is None and self._engine.all_decided and self._engine.phase >= 1:
            self._output = dict(self._engine.outputs)
        if self._engine.phase > self._max_phases:
            self.halt()
            return ()
        return [Broadcast(p) for p in payloads]
