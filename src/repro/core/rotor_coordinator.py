"""Algorithm 2 — Rotor-Coordinator in the id-only model (Section VI).

The rotor-coordinator's job is to rotate through coordinators such that,
before any correct node stops, there has been a *good round*: a round in
which every correct node selected the same coordinator and that coordinator
is correct.  Classic algorithms get this for free by rotating through the
``f + 1`` smallest identifiers — impossible here because ``f`` is unknown
and identifiers are not consecutive.

The algorithm builds, at every node ``v``, a candidate set ``Cv`` that is
maintained with reliable-broadcast-style echoes (so candidate sets at
correct nodes agree up to one round of skew, Lemma 6), and cycles through
``Cv`` in identifier order.  A node stops once it re-selects a coordinator
it has selected before; Lemma 7 shows a good round must have occurred by
then, and Theorem 2 bounds termination by ``O(n)`` rounds.

Two classes are exported:

* :class:`RotorCoordinatorCore` — the embeddable state machine used by the
  consensus algorithms (Algorithms 3 and 5), which drive one *selection
  round* per phase while feeding every round's inbox into the candidate
  bookkeeping.
* :class:`RotorCoordinatorProcess` — the standalone process matching the
  paper's Algorithm 2 one-round-per-loop-iteration presentation, used by
  experiment E2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..sim.messages import Broadcast, Inbox, NodeId, Outgoing, Payload
from ..sim.node import KnownSenders, Process, RoundView
from .quorums import meets_one_third, meets_two_thirds

__all__ = [
    "RotorInit",
    "RotorEcho",
    "Opinion",
    "SelectionRecord",
    "RotorRoundOutcome",
    "RotorCoordinatorCore",
    "RotorCoordinatorProcess",
]


@dataclass(frozen=True)
class RotorInit:
    """Round-1 announcement: "I am willing to be a coordinator"."""


@dataclass(frozen=True)
class RotorEcho:
    """``echo(p)`` — a vote that node ``p`` announced itself."""

    candidate: NodeId


@dataclass(frozen=True)
class Opinion:
    """The coordinator's opinion broadcast at the end of its round."""

    value: Hashable


@dataclass(frozen=True)
class SelectionRecord:
    """Which coordinator a node selected in one selection round."""

    selection_index: int
    round_index: int
    coordinator: NodeId


@dataclass(frozen=True)
class RotorRoundOutcome:
    """The result of one selection round of the rotor-coordinator."""

    payloads: tuple[Payload, ...]
    selected: NodeId | None
    previous: NodeId | None
    accepted_opinion: Hashable | None
    opinion_received: bool
    terminated: bool


#: Memo key for the echo-support index cached on each inbox.
_ECHO_KEY = "rotor-echo-index"

#: Memo key for the init-announcement index cached on each inbox.
_INIT_KEY = "rotor-init-index"


def _build_init_index(inbox: Inbox) -> tuple[NodeId, ...]:
    """The sorted senders that announced ``init`` in one round's inbox.

    Pure and memoized on the inbox like :func:`_build_echo_index`, so the
    scan happens once per shared inbox rather than once per receiver.
    """

    return tuple(
        sender
        for sender in sorted(inbox.senders)
        if any(isinstance(p, RotorInit) for p in inbox.payloads_from(sender))
    )


def _build_echo_index(inbox: Inbox) -> dict[NodeId, set[NodeId]]:
    """``candidate -> distinct echo senders`` for one round's inbox.

    A pure derivation of the inbox contents, memoized on the inbox
    (:meth:`~repro.sim.messages.Inbox.memo`).  During the echo rounds of an
    embedded engine the per-instance inbox carries O(n²) payload items
    (every sender echoes every candidate); sharing the single scan across
    all receivers of the same inbox is what keeps candidate maintenance
    quadratic instead of cubic system-wide.  Consumers must not mutate the
    returned sets.
    """

    support: dict[NodeId, set[NodeId]] = {}
    for sender, payload in inbox.items():
        if isinstance(payload, RotorEcho):
            support.setdefault(payload.candidate, set()).add(sender)
    return support


class RotorCoordinatorCore:
    """The candidate-set and selection machinery, independent of scheduling.

    The caller is responsible for round structure: it must call
    :meth:`init_round_one` / :meth:`init_round_two` for the two
    initialization rounds, :meth:`observe` once per subsequent round (to
    keep the candidate set fresh and obtain the echo relays to broadcast)
    and :meth:`execute_selection` in every round that counts as a
    rotor-coordinator round (every round for Algorithm 2, one per phase for
    Algorithms 3 and 5).
    """

    def __init__(self, node_id: NodeId) -> None:
        self._node_id = node_id
        self._known = KnownSenders()
        self._candidates: list[NodeId] = []  # Cv, kept sorted by identifier
        self._candidate_set: set[NodeId] = set()  # mirror for O(1) lookups
        self._selected: set[NodeId] = set()  # Sv
        self._selection_history: list[SelectionRecord] = []
        self._selection_round = 0  # the loop variable r of Algorithm 2
        self._last_selected: NodeId | None = None
        self._terminated = False

    # -- introspection ---------------------------------------------------------

    @property
    def node_id(self) -> NodeId:
        return self._node_id

    @property
    def candidates(self) -> tuple[NodeId, ...]:
        """The ordered candidate set ``Cv``."""

        return tuple(self._candidates)

    @property
    def selected(self) -> frozenset[NodeId]:
        """The set ``Sv`` of coordinators selected so far."""

        return frozenset(self._selected)

    @property
    def selection_history(self) -> tuple[SelectionRecord, ...]:
        return tuple(self._selection_history)

    @property
    def last_selected(self) -> NodeId | None:
        return self._last_selected

    @property
    def terminated(self) -> bool:
        return self._terminated

    @property
    def nv(self) -> int:
        return self._known.count

    # -- initialization (the first two lines of Algorithm 2) ----------------------

    def init_round_one(self) -> list[Payload]:
        """Round 1: broadcast ``init``."""

        return [RotorInit()]

    def init_round_two(self, inbox: Inbox) -> list[Payload]:
        """Round 2: broadcast ``echo(p)`` for every ``p`` whose ``init`` arrived."""

        self._known.observe(inbox)
        return [RotorEcho(sender) for sender in inbox.memo(_INIT_KEY, _build_init_index)]

    # -- per-round candidate maintenance (Algorithm 2, lines 7–15) ------------------

    def observe(self, inbox: Inbox) -> list[Payload]:
        """Update ``nv``/``Cv`` from this round's echoes; return echo relays.

        The candidate set is maintained exactly like reliable-broadcast
        acceptance (Lemma 6): an ``echo(p)`` relay is broadcast on an
        ``nv/3`` relative quorum, and ``p`` joins ``Cv`` on a ``2·nv/3``
        quorum.  Support is counted over distinct senders within the round.
        """

        self._known.observe(inbox)
        nv = self._known.count
        support = inbox.memo(_ECHO_KEY, _build_echo_index)
        if not support:
            # No echoes this round — nothing can change ``Cv`` or warrant a
            # relay.  This is the steady state of every embedded engine
            # (echo traffic dies out after the init rounds), and with the
            # shared index it makes candidate maintenance O(1) per round.
            return []

        relays: list[Payload] = []
        accepted: list[NodeId] = []
        candidate_set = self._candidate_set
        for candidate in sorted(support):
            if candidate in candidate_set:
                continue
            senders = support[candidate]
            if meets_one_third(len(senders), nv):
                relays.append(RotorEcho(candidate))
            if meets_two_thirds(len(senders), nv):
                accepted.append(candidate)
        if accepted:
            # One batch insert + sort per round instead of a sort per
            # candidate (the echo round delivers O(n) acceptances at once).
            candidate_set.update(accepted)
            self._candidates.extend(accepted)
            self._candidates.sort()
        return relays

    # -- selection rounds (Algorithm 2, lines 16–29) ---------------------------------

    def execute_selection(
        self,
        inbox: Inbox,
        opinion: Hashable,
        *,
        round_index: int,
    ) -> RotorRoundOutcome:
        """Run the selection part of one rotor-coordinator round.

        ``opinion`` is the node's current opinion ``ov`` — broadcast if the
        node selects itself.  The accepted opinion reported in the outcome
        is the ``opinion(x)`` message received *this round* from the
        coordinator selected in the *previous* selection round (Algorithm 2,
        lines 17–19).
        """

        if self._terminated:
            return RotorRoundOutcome(
                payloads=(),
                selected=None,
                previous=self._last_selected,
                accepted_opinion=None,
                opinion_received=False,
                terminated=True,
            )

        previous = self._last_selected
        accepted_opinion: Hashable | None = None
        opinion_received = False
        if previous is not None:
            for payload in inbox.payloads_from(previous):
                if isinstance(payload, Opinion):
                    accepted_opinion = payload.value
                    opinion_received = True
                    break

        payloads: list[Payload] = []
        selected: NodeId | None = None
        if self._candidates:
            # Line 16: p ← Cv[r mod |Cv|].
            selected = self._candidates[self._selection_round % len(self._candidates)]
            if selected in self._selected:
                # Line 21–23: re-selection terminates the rotor.
                self._terminated = True
                self._last_selected = selected
                return RotorRoundOutcome(
                    payloads=tuple(payloads),
                    selected=selected,
                    previous=previous,
                    accepted_opinion=accepted_opinion,
                    opinion_received=opinion_received,
                    terminated=True,
                )
            self._selected.add(selected)
            self._selection_history.append(
                SelectionRecord(
                    selection_index=self._selection_round,
                    round_index=round_index,
                    coordinator=selected,
                )
            )
            self._last_selected = selected
            if selected == self._node_id:
                # Lines 25–28: the coordinator broadcasts its opinion.
                payloads.append(Opinion(opinion))

        self._selection_round += 1
        return RotorRoundOutcome(
            payloads=tuple(payloads),
            selected=selected,
            previous=previous,
            accepted_opinion=accepted_opinion,
            opinion_received=opinion_received,
            terminated=False,
        )


class RotorCoordinatorProcess(Process):
    """Standalone Algorithm 2: one selection round per network round.

    ``opinion`` is the node's fixed opinion ``ov`` (in the consensus
    algorithms the opinion evolves; here it is a constant input, which is
    all experiment E2 needs to verify the good-round property).
    """

    def __init__(self, node_id: NodeId, *, opinion: Hashable = None) -> None:
        super().__init__(node_id)
        self._core = RotorCoordinatorCore(node_id)
        self._opinion = opinion if opinion is not None else node_id
        self._accepted_opinions: list[tuple[int, NodeId, Hashable]] = []
        self._output: Hashable | None = None

    # -- results -------------------------------------------------------------

    @property
    def core(self) -> RotorCoordinatorCore:
        return self._core

    @property
    def opinion(self) -> Hashable:
        return self._opinion

    @property
    def selection_history(self) -> tuple[SelectionRecord, ...]:
        return self._core.selection_history

    @property
    def accepted_opinions(self) -> tuple[tuple[int, NodeId, Hashable], ...]:
        """``(round, coordinator, opinion)`` triples accepted so far."""

        return tuple(self._accepted_opinions)

    @property
    def output(self) -> Hashable | None:
        """The last coordinator opinion accepted before termination."""

        return self._output

    @property
    def decided(self) -> bool:
        return self.halted

    # -- state machine ----------------------------------------------------------

    def step(self, view: RoundView) -> Sequence[Outgoing]:
        if view.round_index == 1:
            return [Broadcast(p) for p in self._core.init_round_one()]
        if view.round_index == 2:
            return [Broadcast(p) for p in self._core.init_round_two(view.inbox)]

        # Rounds 3 onwards: lines 5–30 of Algorithm 2, one iteration per round.
        payloads = self._core.observe(view.inbox)
        outcome = self._core.execute_selection(
            view.inbox, self._opinion, round_index=view.round_index
        )
        if outcome.opinion_received and outcome.previous is not None:
            self._accepted_opinions.append(
                (view.round_index, outcome.previous, outcome.accepted_opinion)
            )
            self._output = outcome.accepted_opinion
        if outcome.terminated:
            self.halt()
            return ()
        payloads = list(payloads) + list(outcome.payloads)
        return [Broadcast(p) for p in payloads]
