"""Algorithm 2 — Rotor-Coordinator in the id-only model (Section VI).

The rotor-coordinator's job is to rotate through coordinators such that,
before any correct node stops, there has been a *good round*: a round in
which every correct node selected the same coordinator and that coordinator
is correct.  Classic algorithms get this for free by rotating through the
``f + 1`` smallest identifiers — impossible here because ``f`` is unknown
and identifiers are not consecutive.

The algorithm builds, at every node ``v``, a candidate set ``Cv`` that is
maintained with reliable-broadcast-style echoes (so candidate sets at
correct nodes agree up to one round of skew, Lemma 6), and cycles through
``Cv`` in identifier order.  A node stops once it re-selects a coordinator
it has selected before; Lemma 7 shows a good round must have occurred by
then, and Theorem 2 bounds termination by ``O(n)`` rounds.

Two classes are exported:

* :class:`RotorCoordinatorCore` — the embeddable state machine used by the
  consensus algorithms (Algorithms 3 and 5), which drive one *selection
  round* per phase while feeding every round's inbox into the candidate
  bookkeeping.
* :class:`RotorCoordinatorProcess` — the standalone process matching the
  paper's Algorithm 2 one-round-per-loop-iteration presentation, used by
  experiment E2.

Wire format: a node's per-round echoes travel as a single delta-coded
:class:`CandidateGossip` (the ``adds`` since its previous gossip, plus a
periodic full-set anchor with a cached digest) instead of one
:class:`RotorEcho` broadcast per candidate — during initialization that is
the difference between O(n³) and O(n²) wire messages system-wide.  Quorum
counting decodes the deltas only, so the candidate-set dynamics are
bit-identical to the per-candidate encoding; legacy ``RotorEcho`` payloads
remain accepted inbound.  See :class:`GossipEncoder`/:class:`GossipDecoder`
and the wire-format notes in :mod:`repro.sim.messages`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable, Sequence

from ..sim.messages import (
    Broadcast,
    Inbox,
    NodeId,
    Outgoing,
    Payload,
    cached_payload_hash,
    intern_payload,
)
from ..sim.node import KnownSenders, Process, RoundView
from .quorums import (
    meets_one_third,
    meets_two_thirds,
    one_third_mask,
    two_thirds_mask,
)
from .tally import candidate_support, candidate_support_arrays, init_senders

__all__ = [
    "RotorInit",
    "RotorEcho",
    "CandidateGossip",
    "GossipEncoder",
    "GossipDecoder",
    "GOSSIP_ANCHOR_PERIOD",
    "Opinion",
    "SelectionRecord",
    "RotorRoundOutcome",
    "RotorCoordinatorCore",
    "RotorCoordinatorProcess",
]


@dataclass(frozen=True)
class RotorInit:
    """Round-1 announcement: "I am willing to be a coordinator"."""


@dataclass(frozen=True)
class RotorEcho:
    """``echo(p)`` — a vote that node ``p`` announced itself.

    Legacy single-candidate wire format: still accepted on the inbound
    path (hand-built inboxes, Byzantine strategies), but correct nodes
    pack their per-round echoes into one :class:`CandidateGossip`.
    """

    candidate: NodeId


#: Every ``GOSSIP_ANCHOR_PERIOD``-th gossip a node emits carries a full-set
#: anchor, so a receiver that missed earlier deltas can resynchronise.
GOSSIP_ANCHOR_PERIOD = 4


@cached_payload_hash
@dataclass(frozen=True)
class CandidateGossip:
    """Delta-coded candidate gossip: one payload per node per round.

    ``adds`` are the candidates this sender newly echoes *this round* — the
    delta since its previous gossip — and carry exactly the per-round
    support one ``RotorEcho`` per candidate used to: quorum counting in
    :func:`repro.core.tally.candidate_support` reads ``adds`` only, so the
    candidate-set dynamics are bit-identical to the legacy encoding while
    the wire cost of the initialization echo wave drops from O(n) payloads
    per sender to one.

    ``anchor``, present on every :data:`GOSSIP_ANCHOR_PERIOD`-th emission,
    is the sender's full echoed set (sorted, including this round's adds).
    Anchors contribute **no** per-round support — they exist so a
    :class:`GossipDecoder` that missed deltas (late join, filtering,
    partitions) can deterministically reconstruct the sender's full set,
    and their digest is cached because receivers compare it against their
    reconstruction instead of re-deriving the set.
    """

    adds: tuple[NodeId, ...]
    anchor: tuple[NodeId, ...] | None = None

    def anchor_digest(self) -> int | None:
        """Cached digest of the full-set anchor (``None`` without one).

        A cheap fingerprint for logging/comparison; resynchronisation
        decisions compare the sets themselves (digests can collide).  The
        ``_wire`` prefix keeps the cache out of pickles like every other
        wire cache (see :func:`~repro.sim.messages.cached_payload_hash`).
        """

        if self.anchor is None:
            return None
        cached = self.__dict__.get("_wire_anchor_digest")
        if cached is None:
            cached = hash(self.anchor)
            object.__setattr__(self, "_wire_anchor_digest", cached)
        return cached


class GossipEncoder:
    """Delta-codes a node's outgoing candidate echoes.

    Tracks the full set of candidates echoed so far; :meth:`emit` turns one
    round's newly-echoed candidates into a single interned
    :class:`CandidateGossip`, attaching the full-set anchor every
    :data:`GOSSIP_ANCHOR_PERIOD`-th emission.
    """

    __slots__ = ("_echoed", "_emitted")

    def __init__(self) -> None:
        self._echoed: set[NodeId] = set()
        self._emitted = 0

    @property
    def echoed(self) -> frozenset[NodeId]:
        """Every candidate this encoder has gossiped about so far."""

        return frozenset(self._echoed)

    def emit(self, adds: Iterable[NodeId]) -> CandidateGossip | None:
        """Encode one round's echoes; ``None`` when there is nothing to say."""

        adds = tuple(adds)
        if not adds:
            return None
        self._echoed.update(adds)
        self._emitted += 1
        anchor = None
        if self._emitted % GOSSIP_ANCHOR_PERIOD == 0:
            anchor = tuple(sorted(self._echoed))
        return intern_payload(CandidateGossip(adds=adds, anchor=anchor))


class GossipDecoder:
    """Reconstructs each sender's full echoed set from its gossip stream.

    The per-round protocol logic never needs this — quorum counting uses
    the deltas directly — but diagnostics, tooling and the wire-format
    property tests do: applying a sender's deltas in order reproduces its
    full set exactly, and after any gap the next anchor restores it.  The
    resync check compares the anchored *set* against the reconstruction
    (digests are fingerprints for logging only: they can collide, and a
    Byzantine sender may forge one).  Deterministic for arbitrary —
    including Byzantine — gossip streams.
    """

    __slots__ = ("_by_sender",)

    def __init__(self) -> None:
        self._by_sender: dict[NodeId, set[NodeId]] = {}

    @property
    def senders(self) -> frozenset[NodeId]:
        return frozenset(self._by_sender)

    def full_set(self, sender: NodeId) -> frozenset[NodeId]:
        """The reconstructed echoed set of ``sender`` so far."""

        return frozenset(self._by_sender.get(sender, ()))

    def observe(self, sender: NodeId, gossip: CandidateGossip) -> None:
        state = self._by_sender.get(sender)
        if state is None:
            self._by_sender[sender] = state = set()
        if gossip.anchor is not None:
            # Resync only when we actually diverged; a correct stream
            # received without gaps always matches.  Exact set comparison —
            # never the digest, which can collide (or be forged).
            if (state | set(gossip.adds)) != set(gossip.anchor):
                state.clear()
                state.update(gossip.anchor)
        state.update(gossip.adds)


@dataclass(frozen=True)
class Opinion:
    """The coordinator's opinion broadcast at the end of its round."""

    value: Hashable


@dataclass(frozen=True)
class SelectionRecord:
    """Which coordinator a node selected in one selection round."""

    selection_index: int
    round_index: int
    coordinator: NodeId


@dataclass(frozen=True)
class RotorRoundOutcome:
    """The result of one selection round of the rotor-coordinator."""

    payloads: tuple[Payload, ...]
    selected: NodeId | None
    previous: NodeId | None
    accepted_opinion: Hashable | None
    opinion_received: bool
    terminated: bool


#: Memo key for the echo-support tally cached on each inbox.  Support comes
#: from the ``adds`` of :class:`CandidateGossip` payloads (one per correct
#: sender per round) plus any legacy per-candidate :class:`RotorEcho`
#: payloads; gossip anchors are deliberately *not* counted — they re-state
#: old echoes for resynchronisation, and counting them would let a replayed
#: anchor manufacture fresh support.  See
#: :func:`repro.core.tally.candidate_support`.
_ECHO_KEY = "rotor-echo-index"

#: Memo key for the init-announcement index cached on each inbox.
_INIT_KEY = "rotor-init-index"


class RotorCoordinatorCore:
    """The candidate-set and selection machinery, independent of scheduling.

    The caller is responsible for round structure: it must call
    :meth:`init_round_one` / :meth:`init_round_two` for the two
    initialization rounds, :meth:`observe` once per subsequent round (to
    keep the candidate set fresh and obtain the echo relays to broadcast)
    and :meth:`execute_selection` in every round that counts as a
    rotor-coordinator round (every round for Algorithm 2, one per phase for
    Algorithms 3 and 5).
    """

    def __init__(self, node_id: NodeId) -> None:
        self._node_id = node_id
        self._known = KnownSenders()
        self._candidates: list[NodeId] = []  # Cv, kept sorted by identifier
        self._candidate_set: set[NodeId] = set()  # mirror for O(1) lookups
        self._selected: set[NodeId] = set()  # Sv
        self._selection_history: list[SelectionRecord] = []
        self._selection_round = 0  # the loop variable r of Algorithm 2
        self._last_selected: NodeId | None = None
        self._terminated = False
        self._gossip = GossipEncoder()  # delta-codes outgoing echoes

    # -- introspection ---------------------------------------------------------

    @property
    def node_id(self) -> NodeId:
        return self._node_id

    @property
    def candidates(self) -> tuple[NodeId, ...]:
        """The ordered candidate set ``Cv``."""

        return tuple(self._candidates)

    @property
    def selected(self) -> frozenset[NodeId]:
        """The set ``Sv`` of coordinators selected so far."""

        return frozenset(self._selected)

    @property
    def selection_history(self) -> tuple[SelectionRecord, ...]:
        return tuple(self._selection_history)

    @property
    def last_selected(self) -> NodeId | None:
        return self._last_selected

    @property
    def terminated(self) -> bool:
        return self._terminated

    @property
    def nv(self) -> int:
        return self._known.count

    # -- initialization (the first two lines of Algorithm 2) ----------------------

    def init_round_one(self) -> list[Payload]:
        """Round 1: broadcast ``init`` (interned — one instance system-wide)."""

        return [intern_payload(RotorInit())]

    def init_round_two(self, inbox: Inbox) -> list[Payload]:
        """Round 2: gossip ``echo(p)`` for every ``p`` whose ``init`` arrived.

        The echoes for the whole init wave — O(n) candidates — travel as
        the ``adds`` of a single :class:`CandidateGossip` instead of one
        ``RotorEcho`` broadcast per candidate.  Every correct node emits
        the same gossip here, so interning collapses the round's dominant
        payload to one canonical instance with one cached digest.
        """

        self._known.observe(inbox)
        gossip = self._gossip.emit(init_senders(inbox, RotorInit, memo_key=_INIT_KEY))
        return [] if gossip is None else [gossip]

    # -- per-round candidate maintenance (Algorithm 2, lines 7–15) ------------------

    def observe(self, inbox: Inbox) -> list[Payload]:
        """Update ``nv``/``Cv`` from this round's echoes; return echo relays.

        The candidate set is maintained exactly like reliable-broadcast
        acceptance (Lemma 6): an ``echo(p)`` relay is broadcast on an
        ``nv/3`` relative quorum, and ``p`` joins ``Cv`` on a ``2·nv/3``
        quorum.  Support is counted over distinct senders within the round.
        """

        self._known.observe(inbox)
        nv = self._known.count
        support = candidate_support(
            inbox, CandidateGossip, RotorEcho, memo_key=_ECHO_KEY
        )
        if not support:
            # No echoes this round — nothing can change ``Cv`` or warrant a
            # relay.  This is the steady state of every embedded engine
            # (echo traffic dies out after the init rounds), and with the
            # shared tally it makes candidate maintenance O(1) per round.
            return []

        candidate_set = self._candidate_set
        if candidate_set.issuperset(support):
            # Every echoed candidate is already in ``Cv`` — the per-candidate
            # loop would skip them all and emit nothing.
            return []

        relays: list[NodeId] = []
        accepted: list[NodeId] = []
        if not candidate_set:
            # The init echo wave: O(n) candidates arrive at once and none
            # can be skipped, so threshold the whole sorted count vector in
            # one pair of numpy comparisons instead of per-candidate calls.
            candidates, counts = candidate_support_arrays(
                inbox, CandidateGossip, RotorEcho, memo_key=_ECHO_KEY
            )
            relay_mask = one_third_mask(counts, nv).tolist()
            accept_mask = two_thirds_mask(counts, nv).tolist()
            relays = [c for c, ok in zip(candidates, relay_mask) if ok]
            accepted = [c for c, ok in zip(candidates, accept_mask) if ok]
        else:
            for candidate in sorted(support):
                if candidate in candidate_set:
                    continue
                count = support[candidate]
                if meets_one_third(count, nv):
                    relays.append(candidate)
                if meets_two_thirds(count, nv):
                    accepted.append(candidate)
        if accepted:
            # One batch insert + sort per round instead of a sort per
            # candidate (the echo round delivers O(n) acceptances at once).
            candidate_set.update(accepted)
            self._candidates.extend(accepted)
            self._candidates.sort()
        # The round's relays travel as one delta-coded gossip payload; the
        # per-candidate support a receiver derives from it is identical to
        # one RotorEcho per relayed candidate.
        gossip = self._gossip.emit(relays)
        return [] if gossip is None else [gossip]

    # -- selection rounds (Algorithm 2, lines 16–29) ---------------------------------

    def execute_selection(
        self,
        inbox: Inbox,
        opinion: Hashable,
        *,
        round_index: int,
    ) -> RotorRoundOutcome:
        """Run the selection part of one rotor-coordinator round.

        ``opinion`` is the node's current opinion ``ov`` — broadcast if the
        node selects itself.  The accepted opinion reported in the outcome
        is the ``opinion(x)`` message received *this round* from the
        coordinator selected in the *previous* selection round (Algorithm 2,
        lines 17–19).
        """

        if self._terminated:
            return RotorRoundOutcome(
                payloads=(),
                selected=None,
                previous=self._last_selected,
                accepted_opinion=None,
                opinion_received=False,
                terminated=True,
            )

        previous = self._last_selected
        accepted_opinion: Hashable | None = None
        opinion_received = False
        if previous is not None:
            for payload in inbox.payloads_from(previous):
                if isinstance(payload, Opinion):
                    accepted_opinion = payload.value
                    opinion_received = True
                    break

        payloads: list[Payload] = []
        selected: NodeId | None = None
        if self._candidates:
            # Line 16: p ← Cv[r mod |Cv|].
            selected = self._candidates[self._selection_round % len(self._candidates)]
            if selected in self._selected:
                # Line 21–23: re-selection terminates the rotor.
                self._terminated = True
                self._last_selected = selected
                return RotorRoundOutcome(
                    payloads=tuple(payloads),
                    selected=selected,
                    previous=previous,
                    accepted_opinion=accepted_opinion,
                    opinion_received=opinion_received,
                    terminated=True,
                )
            self._selected.add(selected)
            self._selection_history.append(
                SelectionRecord(
                    selection_index=self._selection_round,
                    round_index=round_index,
                    coordinator=selected,
                )
            )
            self._last_selected = selected
            if selected == self._node_id:
                # Lines 25–28: the coordinator broadcasts its opinion.
                payloads.append(Opinion(opinion))

        self._selection_round += 1
        return RotorRoundOutcome(
            payloads=tuple(payloads),
            selected=selected,
            previous=previous,
            accepted_opinion=accepted_opinion,
            opinion_received=opinion_received,
            terminated=False,
        )


class RotorCoordinatorProcess(Process):
    """Standalone Algorithm 2: one selection round per network round.

    ``opinion`` is the node's fixed opinion ``ov`` (in the consensus
    algorithms the opinion evolves; here it is a constant input, which is
    all experiment E2 needs to verify the good-round property).
    """

    def __init__(self, node_id: NodeId, *, opinion: Hashable = None) -> None:
        super().__init__(node_id)
        self._core = RotorCoordinatorCore(node_id)
        self._opinion = opinion if opinion is not None else node_id
        self._accepted_opinions: list[tuple[int, NodeId, Hashable]] = []
        self._output: Hashable | None = None

    # -- results -------------------------------------------------------------

    @property
    def core(self) -> RotorCoordinatorCore:
        return self._core

    @property
    def opinion(self) -> Hashable:
        return self._opinion

    @property
    def selection_history(self) -> tuple[SelectionRecord, ...]:
        return self._core.selection_history

    @property
    def accepted_opinions(self) -> tuple[tuple[int, NodeId, Hashable], ...]:
        """``(round, coordinator, opinion)`` triples accepted so far."""

        return tuple(self._accepted_opinions)

    @property
    def output(self) -> Hashable | None:
        """The last coordinator opinion accepted before termination."""

        return self._output

    @property
    def decided(self) -> bool:
        return self.halted

    # -- state machine ----------------------------------------------------------

    def step(self, view: RoundView) -> Sequence[Outgoing]:
        if view.round_index == 1:
            return [Broadcast(p) for p in self._core.init_round_one()]
        if view.round_index == 2:
            return [Broadcast(p) for p in self._core.init_round_two(view.inbox)]

        # Rounds 3 onwards: lines 5–30 of Algorithm 2, one iteration per round.
        payloads = self._core.observe(view.inbox)
        outcome = self._core.execute_selection(
            view.inbox, self._opinion, round_index=view.round_index
        )
        if outcome.opinion_received and outcome.previous is not None:
            self._accepted_opinions.append(
                (view.round_index, outcome.previous, outcome.accepted_opinion)
            )
            self._output = outcome.accepted_opinion
        if outcome.terminated:
            self.halt()
            return ()
        payloads = list(payloads) + list(outcome.payloads)
        return [Broadcast(p) for p in payloads]
