"""The paper's primary contribution: agreement algorithms for the id-only model.

Every algorithm here works without knowing the number of participants ``n``
or the fault bound ``f``; the only global assumptions are synchronous
rounds, unique (not necessarily consecutive) identifiers, and ``n > 3f``.
"""

from .approximate_agreement import (
    ApproximateAgreementProcess,
    IteratedApproximateAgreementProcess,
    ValueMessage,
    trim_and_midpoint,
)
from .consensus import (
    INIT_ROUNDS,
    LINGER_PHASES,
    PHASE_LENGTH,
    ConsensusInput,
    ConsensusProcess,
    Prefer,
    StrongPrefer,
)
from .impossibility import (
    PartitionOutcome,
    asynchronous_partition_execution,
    run_partitioned_consensus,
    semi_synchronous_partition_execution,
    synchronous_control_execution,
)
from .parallel_consensus import (
    BOTTOM,
    ParallelConsensusEngine,
    ParallelConsensusProcess,
    PCInput,
    PCNoPreference,
    PCNoStrongPreference,
    PCOpinion,
    PCPrefer,
    PCStrongPrefer,
)
from .quorums import (
    best_supported_value,
    is_resilient,
    max_faults_tolerated,
    meets_one_third,
    meets_two_thirds,
    one_third,
    two_thirds,
    values_meeting,
)
from .reliable_broadcast import (
    AcceptanceRecord,
    Echo,
    Initial,
    Present,
    ReliableBroadcastProcess,
)
from .rotor_coordinator import (
    Opinion,
    RotorCoordinatorCore,
    RotorCoordinatorProcess,
    RotorEcho,
    RotorInit,
    RotorRoundOutcome,
    SelectionRecord,
)
from .total_order import (
    AbsentMsg,
    AckMsg,
    ChainEntry,
    EventMsg,
    PCBatch,
    PCWrap,
    PresentMsg,
    TotalOrderProcess,
    finality_horizon,
)

__all__ = [
    "AbsentMsg",
    "AcceptanceRecord",
    "AckMsg",
    "ApproximateAgreementProcess",
    "BOTTOM",
    "ChainEntry",
    "ConsensusInput",
    "ConsensusProcess",
    "Echo",
    "EventMsg",
    "INIT_ROUNDS",
    "Initial",
    "IteratedApproximateAgreementProcess",
    "LINGER_PHASES",
    "Opinion",
    "PCInput",
    "PCNoPreference",
    "PCNoStrongPreference",
    "PCOpinion",
    "PCPrefer",
    "PCStrongPrefer",
    "PCBatch",
    "PCWrap",
    "PHASE_LENGTH",
    "ParallelConsensusEngine",
    "ParallelConsensusProcess",
    "PartitionOutcome",
    "Prefer",
    "Present",
    "PresentMsg",
    "ReliableBroadcastProcess",
    "RotorCoordinatorCore",
    "RotorCoordinatorProcess",
    "RotorEcho",
    "RotorInit",
    "RotorRoundOutcome",
    "SelectionRecord",
    "StrongPrefer",
    "TotalOrderProcess",
    "ValueMessage",
    "asynchronous_partition_execution",
    "best_supported_value",
    "finality_horizon",
    "is_resilient",
    "max_faults_tolerated",
    "meets_one_third",
    "meets_two_thirds",
    "one_third",
    "run_partitioned_consensus",
    "semi_synchronous_partition_execution",
    "synchronous_control_execution",
    "trim_and_midpoint",
    "two_thirds",
    "values_meeting",
]
