"""Batch tallies over a round's traffic — scalar reference + numpy twins.

Every id-only algorithm reduces a round's inbox to a handful of *support
tallies*: how many distinct senders backed a value (consensus), echoed a
``(message, source)`` pair (reliable broadcast), vouched for a candidate
identifier (the rotor-coordinator), or spoke for an ``(instance, type)``
slot (parallel consensus).  Those reductions used to live inline in each
protocol's hot loop, re-scanning the inbox object-by-object per node per
round.  This module factors them out behind inbox-memoized entry points
(:meth:`repro.sim.messages.Inbox.memo`) with two interchangeable
implementations:

* a **scalar reference** implementation — a direct port of the original
  per-protocol loops over ``inbox.items()``, used for plain object
  inboxes (queue/legacy kernels, restricted views, unit tests); and
* a **numpy** implementation used when the inbox is a
  :class:`~repro.sim.messages.ColumnarInbox` (the vector kernel's shared
  broadcast inbox): the sender/payload-index columns are materialised as
  ``int64`` arrays once per round, and every tally becomes
  ``np.bincount``/``np.unique`` over those columns plus O(distinct
  payloads) of Python dispatch.

Equivalence contract
--------------------
The two implementations are *bit-identical* in every way protocol code
can observe: result dicts preserve the scalar first-occurrence insertion
order (payload tables are built in first-row order, and a repeated
payload never introduces a new key, so iterating distinct payloads visits
keys in exactly the row order the scalar loop does), every count leaving
this module is a built-in ``int`` (a stray ``np.int64`` inside a payload
would change its pickled size and break the engine-equivalence payload
accounting), and sender sets contain built-in ``int`` node ids.  The
property suite (``tests/test_tally.py``) pins scalar-vs-numpy equality —
including insertion order — over randomised columns.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Callable, Hashable

import numpy as np

from ..sim.messages import ColumnarInbox, Inbox, NodeId, Payload

__all__ = [
    "NO_VALUE",
    "TALLY_BACKENDS",
    "backend_for",
    "value_support",
    "field_support",
    "candidate_support",
    "candidate_support_arrays",
    "init_senders",
    "scan_index",
    "control_pairs",
    "profile_snapshot",
    "reset_profile",
]

#: The two interchangeable tally implementations.
TALLY_BACKENDS = ("scalar", "numpy")

#: Sentinel for :func:`scan_index` classifiers: the payload marks its
#: sender as having spoken for the key but carries no countable value.
NO_VALUE = object()

# Memo keys for the shared column materialisations.
_NP_COLUMNS_KEY = "tally-np-columns"
_ROWCOUNTS_KEY = "tally-payload-rowcounts"
_SENDER_SLICES_KEY = "tally-sender-slices"

# Wall-clock spent inside tally builds (the ``--profile`` bench breakdown
# reports it per cell).  Accumulated unconditionally: builds run once per
# inbox, so the two ``perf_counter`` calls are noise.
_PROFILE = {"seconds": 0.0, "builds": 0}


def profile_snapshot() -> dict[str, Any]:
    """Cumulative seconds/builds spent constructing tallies."""

    return dict(_PROFILE)


def reset_profile() -> None:
    _PROFILE["seconds"] = 0.0
    _PROFILE["builds"] = 0


def backend_for(inbox: Inbox) -> str:
    """Which implementation a tally over ``inbox`` dispatches to."""

    return "numpy" if isinstance(inbox, ColumnarInbox) else "scalar"


def _memoized(inbox: Inbox, key: Hashable, build: Callable[[Inbox], Any]) -> Any:
    def timed(ib: Inbox) -> Any:
        start = perf_counter()
        try:
            return build(ib)
        finally:
            _PROFILE["seconds"] += perf_counter() - start
            _PROFILE["builds"] += 1

    return inbox.memo(key, timed)


# ---------------------------------------------------------------------------
# Column materialisations (numpy backend building blocks)
# ---------------------------------------------------------------------------


def _np_columns(inbox: ColumnarInbox) -> tuple[np.ndarray, np.ndarray]:
    """The sender and payload-index columns as ``int64`` arrays."""

    def build(ib: ColumnarInbox) -> tuple[np.ndarray, np.ndarray]:
        sender_rows, payload_rows, _table = ib.columns()
        return (
            np.asarray(sender_rows, dtype=np.int64),
            np.asarray(payload_rows, dtype=np.int64),
        )

    return inbox.memo(_NP_COLUMNS_KEY, build)


def _rowcounts(inbox: ColumnarInbox) -> np.ndarray:
    """Per-distinct-payload row counts.

    A sender delivers each distinct payload at most once (inbox dedup), so
    a payload's row count *is* its distinct-sender support count.
    """

    def build(ib: ColumnarInbox) -> np.ndarray:
        _senders, payload_rows = _np_columns(ib)
        _sr, _pr, table = ib.columns()
        return np.bincount(payload_rows, minlength=len(table))

    return inbox.memo(_ROWCOUNTS_KEY, build)


def _sender_slices(inbox: ColumnarInbox) -> list[np.ndarray]:
    """For each distinct payload, the array of sender ids that sent it."""

    def build(ib: ColumnarInbox) -> list[np.ndarray]:
        senders, payload_rows = _np_columns(ib)
        order = np.argsort(payload_rows, kind="stable")
        sorted_payloads = payload_rows[order]
        sorted_senders = senders[order]
        _sr, _pr, table = ib.columns()
        bounds = np.searchsorted(sorted_payloads, np.arange(len(table) + 1))
        return [
            sorted_senders[bounds[i] : bounds[i + 1]] for i in range(len(table))
        ]

    return inbox.memo(_SENDER_SLICES_KEY, build)


# ---------------------------------------------------------------------------
# Per-(type, value) support — consensus Prefer/StrongPrefer/Input waves
# ---------------------------------------------------------------------------


def value_support(inbox: Inbox, message_type: type) -> dict[Hashable, int]:
    """``value → distinct-sender count`` over payloads of ``message_type``.

    Key order is the first-occurrence order of each value in the round's
    ``(sender, payload)`` rows.  The shared result must not be mutated —
    callers that apply substitution rules copy it first.
    """

    return field_support(inbox, message_type, ("value",))


def field_support(
    inbox: Inbox, message_type: type, fields: tuple[str, ...]
) -> dict[Hashable, int]:
    """Distinct-sender counts keyed by payload field(s).

    ``fields`` names the attributes forming the key: one field keys by its
    bare value, several key by the attribute tuple (reliable broadcast
    keys echo support by ``(message, source)``).
    """

    return _memoized(
        inbox,
        ("tally-field-support", message_type, fields),
        lambda ib: _field_support_build(ib, message_type, fields),
    )


def _field_support_build(
    inbox: Inbox, message_type: type, fields: tuple[str, ...]
) -> dict[Hashable, int]:
    single = fields[0] if len(fields) == 1 else None
    if isinstance(inbox, ColumnarInbox):
        counts = _rowcounts(inbox)
        _senders, _rows, table = inbox.columns()
        support: dict[Hashable, int] = {}
        for index, payload in enumerate(table):
            if isinstance(payload, message_type):
                if single is not None:
                    key = getattr(payload, single)
                else:
                    key = tuple(getattr(payload, name) for name in fields)
                count = int(counts[index])
                previous = support.get(key)
                support[key] = count if previous is None else previous + count
        return support
    support = {}
    for _sender, payload in inbox.items():
        if isinstance(payload, message_type):
            if single is not None:
                key = getattr(payload, single)
            else:
                key = tuple(getattr(payload, name) for name in fields)
            support[key] = support.get(key, 0) + 1
    return support


# ---------------------------------------------------------------------------
# Candidate support — the rotor-coordinator echo wave
# ---------------------------------------------------------------------------


def candidate_support(
    inbox: Inbox,
    gossip_type: type,
    echo_type: type,
    *,
    memo_key: Hashable = "rotor-echo-index",
) -> dict[Hashable, int]:
    """``candidate → distinct-sender count`` from gossip adds + legacy echoes.

    A sender backing the same candidate through several payloads (a gossip
    *and* a legacy echo, or duplicate entries inside one ``adds`` tuple)
    counts once — the ``(sender, candidate)`` pair is deduplicated exactly
    as the original per-candidate sender sets did.
    """

    return _memoized(
        inbox, memo_key, lambda ib: _candidate_support_build(ib, gossip_type, echo_type)
    )


def _candidate_support_build(
    inbox: Inbox, gossip_type: type, echo_type: type
) -> dict[Hashable, int]:
    if isinstance(inbox, ColumnarInbox):
        counts = _rowcounts(inbox)
        _senders, _rows, table = inbox.columns()
        by_candidate: dict[Hashable, list[int]] = {}
        for index, payload in enumerate(table):
            if isinstance(payload, gossip_type):
                for candidate in dict.fromkeys(payload.adds):
                    by_candidate.setdefault(candidate, []).append(index)
            elif isinstance(payload, echo_type):
                by_candidate.setdefault(payload.candidate, []).append(index)
        support: dict[Hashable, int] = {}
        slices: list[np.ndarray] | None = None
        for candidate, indexes in by_candidate.items():
            if len(indexes) == 1:
                # Senders within one payload's rows are already distinct.
                support[candidate] = int(counts[indexes[0]])
            else:
                # Rare: the same candidate backed through several distinct
                # payloads whose sender sets may overlap — count exactly.
                if slices is None:
                    slices = _sender_slices(inbox)
                stacked = np.concatenate([slices[i] for i in indexes])
                support[candidate] = int(np.unique(stacked).size)
        return support
    sets: dict[Hashable, set[NodeId]] = {}
    for sender, payload in inbox.items():
        if isinstance(payload, gossip_type):
            for candidate in payload.adds:
                sets.setdefault(candidate, set()).add(sender)
        elif isinstance(payload, echo_type):
            sets.setdefault(payload.candidate, set()).add(sender)
    return {candidate: len(senders) for candidate, senders in sets.items()}


def candidate_support_arrays(
    inbox: Inbox,
    gossip_type: type,
    echo_type: type,
    *,
    memo_key: Hashable = "rotor-echo-index",
) -> tuple[list[Hashable], np.ndarray]:
    """``(sorted candidates, aligned count array)`` for batch thresholding.

    Derived from :func:`candidate_support` (so the counts are backend-
    independent); the rotor-coordinator's echo wave applies the quorum
    masks of :mod:`repro.core.quorums` to the whole candidate set at once
    instead of looping per candidate per node.
    """

    def build(ib: Inbox) -> tuple[list[Hashable], np.ndarray]:
        support = candidate_support(
            ib, gossip_type, echo_type, memo_key=memo_key
        )
        candidates = sorted(support)
        counts = np.fromiter(
            (support[c] for c in candidates), dtype=np.int64, count=len(candidates)
        )
        return candidates, counts

    return _memoized(inbox, (memo_key, "arrays"), build)


# ---------------------------------------------------------------------------
# Init-sender index — who opened with a RotorInit
# ---------------------------------------------------------------------------


def init_senders(
    inbox: Inbox, init_type: type, *, memo_key: Hashable = "rotor-init-index"
) -> tuple[NodeId, ...]:
    """Sorted ids of every sender that delivered an ``init_type`` payload."""

    return _memoized(inbox, memo_key, lambda ib: _init_senders_build(ib, init_type))


def _init_senders_build(inbox: Inbox, init_type: type) -> tuple[NodeId, ...]:
    if isinstance(inbox, ColumnarInbox):
        _senders, _rows, table = inbox.columns()
        indexes = [
            index
            for index, payload in enumerate(table)
            if isinstance(payload, init_type)
        ]
        if not indexes:
            return ()
        slices = _sender_slices(inbox)
        if len(indexes) == 1:
            senders = np.unique(slices[indexes[0]])
        else:
            senders = np.unique(np.concatenate([slices[i] for i in indexes]))
        return tuple(senders.tolist())
    return tuple(
        sorted(
            {
                sender
                for sender, payload in inbox.items()
                if isinstance(payload, init_type)
            }
        )
    )


# ---------------------------------------------------------------------------
# (instance, type) scan index — parallel consensus
# ---------------------------------------------------------------------------


def scan_index(
    inbox: Inbox,
    classify: Callable[[Payload], tuple[Hashable, Any] | None],
    *,
    memo_key: Hashable,
) -> tuple[dict[Hashable, dict[Hashable, int]], dict[Hashable, frozenset[NodeId]]]:
    """One-pass ``(support, spoken)`` index over classified payloads.

    ``classify(payload)`` returns ``None`` (ignore the payload), ``(key,
    NO_VALUE)`` (the sender spoke for ``key`` without a countable value —
    the explicit "no preference" statements) or ``(key, value)``.  The
    result maps each key to its per-value distinct-sender counts and to
    the frozen set of senders that spoke for it at all.  ``support`` key
    order is first occurrence among *valued* rows — parallel consensus
    derives instance creation order from it, which reaches stored-output
    dict order, so both backends must (and do) agree exactly.
    """

    return _memoized(inbox, memo_key, lambda ib: _scan_index_build(ib, classify))


def _scan_index_build(
    inbox: Inbox, classify: Callable[[Payload], tuple[Hashable, Any] | None]
) -> tuple[dict[Hashable, dict[Hashable, int]], dict[Hashable, frozenset[NodeId]]]:
    support: dict[Hashable, dict[Hashable, int]] = {}
    if isinstance(inbox, ColumnarInbox):
        counts = _rowcounts(inbox)
        _senders, _rows, table = inbox.columns()
        groups: dict[Hashable, list[int]] = {}
        for index, payload in enumerate(table):
            tag = classify(payload)
            if tag is None:
                continue
            key, value = tag
            groups.setdefault(key, []).append(index)
            if value is NO_VALUE:
                continue
            per_value = support.get(key)
            if per_value is None:
                support[key] = per_value = {}
            previous = per_value.get(value)
            count = int(counts[index])
            per_value[value] = count if previous is None else previous + count
        spoken: dict[Hashable, frozenset[NodeId]] = {}
        slices: list[np.ndarray] | None = None
        for key, indexes in groups.items():
            if slices is None:
                slices = _sender_slices(inbox)
            if len(indexes) == 1:
                spoken[key] = frozenset(slices[indexes[0]].tolist())
            else:
                spoken[key] = frozenset(
                    np.concatenate([slices[i] for i in indexes]).tolist()
                )
        return support, spoken
    spoken_sets: dict[Hashable, set[NodeId]] = {}
    for sender, payload in inbox.items():
        tag = classify(payload)
        if tag is None:
            continue
        key, value = tag
        speakers = spoken_sets.get(key)
        if speakers is None:
            spoken_sets[key] = speakers = set()
        speakers.add(sender)
        if value is NO_VALUE:
            continue
        per_value = support.get(key)
        if per_value is None:
            support[key] = per_value = {}
        per_value[value] = per_value.get(value, 0) + 1
    return support, {key: frozenset(s) for key, s in spoken_sets.items()}


# ---------------------------------------------------------------------------
# Control-plane rows — total order's membership/event intake
# ---------------------------------------------------------------------------


def control_pairs(
    inbox: Inbox,
    bulk_types: tuple[type, ...],
    *,
    memo_key: Hashable = "tally-control-pairs",
) -> tuple[tuple[NodeId, Payload], ...]:
    """The ``(sender, payload)`` rows whose payload is *not* bulk traffic.

    Total order's membership/event intake only cares about the O(events)
    control payloads, but the batched consensus wrappers from every sender
    dominate the row count; filtering once per round (instead of per node)
    removes the O(n²) scan.  Row order is preserved exactly.
    """

    return _memoized(
        inbox, (memo_key, bulk_types), lambda ib: _control_pairs_build(ib, bulk_types)
    )


def _control_pairs_build(
    inbox: Inbox, bulk_types: tuple[type, ...]
) -> tuple[tuple[NodeId, Payload], ...]:
    if isinstance(inbox, ColumnarInbox):
        sender_rows, payload_rows, table = inbox.columns()
        keep = [
            index
            for index, payload in enumerate(table)
            if type(payload) not in bulk_types
        ]
        if not keep:
            return ()
        if len(keep) == len(table):
            return tuple(inbox.items())
        wanted = set(keep)
        return tuple(
            (sender, table[index])
            for sender, index in zip(sender_rows, payload_rows)
            if index in wanted
        )
    return tuple(
        (sender, payload)
        for sender, payload in inbox.items()
        if type(payload) not in bulk_types
    )
