"""The SQLite-backed run store.

Stdlib ``sqlite3`` in WAL mode — one writer, any number of concurrent
readers, no dependency beyond the standard library.  See the package
docstring (:mod:`repro.store`) for the schema and the run-key contract.

Blobs (protocol outputs, decision values, per-node counters, trace
object columns) are loaded lazily: :meth:`RunStore.get_run` reads only
the scalar columns, and the :class:`StoredRun` it returns fetches
metrics, outputs and trace segments on first access.  Persisted trace
segments are queried through :class:`StoredTrace`, which implements the
:class:`repro.sim.events.Trace` query API on top of the segment footers
so ``of_kind``/``in_round``/``decisions`` touch only the segments that
can contain matching events.
"""

from __future__ import annotations

import json
import sqlite3
import sys
from array import array
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Callable, Iterator, Sequence

from ..analysis.stats import aggregate_rows
from ..api.spec import ScenarioSpec
from ..sim.events import (
    EventKind,
    Trace,
    TraceEvent,
    check_aggregate_args,
    format_aggregate_rows,
)
from ..sim.metrics import DecisionRecord, RunMetrics
from .serialize import canonical_dumps, pickle_loads

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_ROW_FN",
    "StoreError",
    "RunRecord",
    "StoredRun",
    "StoredTrace",
    "TraceSegmentSink",
    "RunStore",
]

#: Bumped on any backwards-incompatible schema change; stores created by
#: a different version refuse to open instead of misreading rows.
SCHEMA_VERSION = 1

#: Row-function label used when a caller persists a row without naming one.
DEFAULT_ROW_FN = "default"

_TRACE_BLOB_NAMES = ("kinds", "rounds", "nodes", "peers", "payloads", "details")

#: Kind value <-> column code mapping (enum member order, matching
#: ``repro.sim.events``); used to translate footer ``kind_counts`` keys
#: (kind *values*) into the codes the aggregation plumbing groups by.
_KIND_CODE_BY_VALUE = {kind.value: code for code, kind in enumerate(EventKind)}


class StoreError(RuntimeError):
    """A run store could not be opened, validated or read."""


def _sum_kind_counts(footers: Sequence[dict]) -> dict[str, int]:
    """Total per-kind event counts across a run's segment footers."""

    counts: dict[str, int] = {}
    for footer in footers:
        for value, count in footer["kind_counts"].items():
            counts[value] = counts.get(value, 0) + count
    return counts


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------


@dataclass
class RunRecord:
    """One finished run, fully serialised and picklable.

    Built in worker processes by
    :func:`repro.store.resumable.record_from_outcome` and shipped back to
    the single-writer parent, which persists it with
    :meth:`RunStore.put_run`.  Blob fields may be ``None`` for
    lightweight records (e.g. benchmark cells that only cache a row).
    """

    run_key: str
    spec_dict: dict
    spec_digest: str
    engine: str
    code_version: str
    status: str = "complete"
    summary: dict = field(default_factory=dict)
    rounds_executed: int = 0
    stop_reason: str = ""
    peak_payload_bytes: int = 0
    elapsed_seconds: float | None = None
    outputs_blob: bytes | None = None
    decisions_blob: bytes | None = None
    per_node_blob: bytes | None = None
    round_columns: dict[str, bytes] = field(default_factory=dict)
    trace_segments: list[tuple[dict, dict[str, bytes]]] = field(default_factory=list)
    #: True when the run's trace segments were already streamed into the
    #: store by an in-run spill sink (:meth:`RunStore.trace_sink`);
    #: :meth:`RunStore.put_run` then leaves the ``trace_segments`` table
    #: alone instead of deleting what the spill just wrote.
    trace_spilled: bool = False

    def per_round(self) -> list[dict]:
        """Per-round metric dicts decoded from the column blobs."""

        if not self.round_columns:
            return []
        metrics = RunMetrics.from_columns(self.round_columns)
        return [r.as_dict() for r in metrics.rounds]


class StoredTrace:
    """Lazy, segment-backed implementation of the ``Trace`` query API.

    Holds the (cheap, always-loaded) segment footers plus a loader that
    materialises one segment's blobs into a :class:`Trace` on demand.
    Queries consult the footers first: ``of_kind`` skips segments whose
    footer shows a zero count for the kind, ``in_round`` skips segments
    whose round range excludes the round, and ``kind_counts``/``len``
    never load a blob at all.  Loaded segments are cached.
    """

    def __init__(
        self, footers: Sequence[dict], loader: Callable[[int], Trace]
    ) -> None:
        self._footers = list(footers)
        self._loader = loader
        self._segments: dict[int, Trace] = {}

    # -- segment plumbing --------------------------------------------------

    @property
    def segment_count(self) -> int:
        return len(self._footers)

    @property
    def loaded_segment_count(self) -> int:
        """How many segments have been materialised (laziness observable)."""

        return len(self._segments)

    def _segment(self, index: int) -> Trace:
        segment = self._segments.get(index)
        if segment is None:
            segment = self._segments[index] = self._loader(index)
        return segment

    def _select(self, wanted: Callable[[dict], bool]) -> Iterator[Trace]:
        for index, footer in enumerate(self._footers):
            if wanted(footer):
                yield self._segment(index)

    # -- Trace query API ---------------------------------------------------

    def __len__(self) -> int:
        return sum(f["events"] for f in self._footers)

    def __iter__(self) -> Iterator[TraceEvent]:
        for index in range(len(self._footers)):
            yield from self._segment(index)

    @property
    def events(self) -> list[TraceEvent]:
        return list(self)

    def kind_counts(self) -> dict[str, int]:
        """Aggregated per-kind counts — pure footer arithmetic, no blob I/O."""

        counts: dict[str, int] = {}
        for footer in self._footers:
            for kind_value, count in footer["kind_counts"].items():
                counts[kind_value] = counts.get(kind_value, 0) + count
        # Stable kind order (enum member order), matching Trace.kind_counts.
        return {k.value: counts[k.value] for k in EventKind if k.value in counts}

    def of_kind(self, kind: EventKind) -> list[TraceEvent]:
        events: list[TraceEvent] = []
        for segment in self._select(
            lambda f: f["kind_counts"].get(kind.value, 0) > 0
        ):
            events.extend(segment.of_kind(kind))
        return events

    def in_round(self, round_index: int) -> list[TraceEvent]:
        events: list[TraceEvent] = []
        for segment in self._select(
            lambda f: f["round_min"] <= round_index <= f["round_max"]
        ):
            events.extend(segment.in_round(round_index))
        return events

    def for_node(self, node_id) -> list[TraceEvent]:
        events: list[TraceEvent] = []
        for index in range(len(self._footers)):
            events.extend(self._segment(index).for_node(node_id))
        return events

    def where(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        return [e for e in self if predicate(e)]

    def decisions(self) -> list[TraceEvent]:
        return self.of_kind(EventKind.NODE_DECIDED)

    def first(self, kind: EventKind) -> TraceEvent | None:
        for segment in self._select(
            lambda f: f["kind_counts"].get(kind.value, 0) > 0
        ):
            found = segment.first(kind)
            if found is not None:
                return found
        return None

    # -- columnar analytics ------------------------------------------------

    def aggregate(
        self,
        kinds=None,
        *,
        by: str = "round",
        reduce="count",
    ) -> list[dict]:
        """Group-and-reduce over the persisted segments, footer-pruned.

        Same signature and bit-identical rows as
        :meth:`repro.sim.events.Trace.aggregate` — group by ``"round"``,
        ``"node"`` or ``"kind"``, reduce to ``"count"`` and/or
        ``"payload_bytes"`` — but computed segment by segment on the raw
        columns, so no :class:`TraceEvent` is ever allocated and at most
        one segment's blobs are decoded at a time.  Footer pruning
        applies twice over: a ``by="kind"`` count-only aggregate is pure
        footer arithmetic (zero blob I/O), and a ``kinds`` filter skips
        every segment whose footer shows no matching events.
        """

        codes, reducers = check_aggregate_args(kinds, by, reduce)
        groups: dict = {}
        if by == "kind" and set(reducers) == {"count"}:
            for footer in self._footers:
                for value, count in footer["kind_counts"].items():
                    code = _KIND_CODE_BY_VALUE[value]
                    if codes is not None and code not in codes:
                        continue
                    tally = groups.get(code)
                    if tally is None:
                        tally = groups[code] = [0] * len(reducers)
                    for slot in range(len(reducers)):
                        tally[slot] += count
            return format_aggregate_rows(groups, by, reducers)
        if codes is None:
            relevant = range(len(self._footers))
        else:
            values = [
                value
                for value, code in _KIND_CODE_BY_VALUE.items()
                if code in codes
            ]
            relevant = [
                index
                for index, footer in enumerate(self._footers)
                if any(footer["kind_counts"].get(v, 0) for v in values)
            ]
        for index in relevant:
            self._segment(index).accumulate_aggregate(groups, codes, by, reducers)
        return format_aggregate_rows(groups, by, reducers)

    def select(
        self,
        *,
        kind: EventKind | None = None,
        round_index: int | None = None,
        node_id=None,
    ) -> list[TraceEvent]:
        """Events matching every given filter (conjunction), footer-pruned."""

        events: list[TraceEvent] = []
        for _, batch in self.select_batches(
            kind=kind, round_index=round_index, node_id=node_id
        ):
            events.extend(batch)
        return events

    def select_batches(
        self,
        *,
        kind: EventKind | None = None,
        round_index: int | None = None,
        node_id=None,
    ) -> Iterator[tuple[int, list[TraceEvent]]]:
        """Yield ``(segment_index, matching events)`` one segment at a time.

        The streaming primitive behind the service's ``/runs/<key>/trace``
        endpoint: segments whose footers cannot match are skipped without
        blob I/O, and each yielded batch is independent, so a consumer
        holds at most one segment's events at once.
        """

        for index, footer in enumerate(self._footers):
            if (
                kind is not None
                and footer["kind_counts"].get(kind.value, 0) == 0
            ):
                continue
            if round_index is not None and not (
                footer["round_min"] <= round_index <= footer["round_max"]
            ):
                continue
            yield index, self._segment(index).select(
                kind=kind, round_index=round_index, node_id=node_id
            )


@dataclass
class StoredRun:
    """One persisted run: scalar columns eager, blobs lazy."""

    run_key: str
    spec_digest: str
    engine: str
    code_version: str
    status: str
    summary: dict
    rounds_executed: int
    stop_reason: str
    peak_payload_bytes: int
    elapsed_seconds: float | None
    created_at: str
    _spec_json: str
    _store: "RunStore"

    @property
    def spec(self) -> ScenarioSpec:
        return ScenarioSpec.from_dict(json.loads(self._spec_json))

    def metrics(self) -> RunMetrics:
        """Rebuild the run's :class:`RunMetrics` from the stored columns."""

        columns = self._store._load_round_columns(self.run_key)
        per_node = self._store._load_blob(self.run_key, "per_node_blob")
        sent, delivered = pickle_loads(per_node) if per_node else ({}, {})
        decisions_blob = self._store._load_blob(self.run_key, "decisions_blob")
        decisions = pickle_loads(decisions_blob) if decisions_blob else []
        return RunMetrics.from_columns(
            columns,
            per_node_sent=sent,
            per_node_delivered=delivered,
            decisions=decisions,
            peak_payload_bytes=self.peak_payload_bytes,
        )

    def per_round(self) -> list[dict]:
        columns = self._store._load_round_columns(self.run_key)
        return RunRecord(
            run_key=self.run_key,
            spec_dict={},
            spec_digest=self.spec_digest,
            engine=self.engine,
            code_version=self.code_version,
            round_columns=columns,
        ).per_round()

    def outputs(self) -> dict | None:
        """The correct nodes' outputs, or ``None`` if never persisted."""

        blob = self._store._load_blob(self.run_key, "outputs_blob")
        return pickle_loads(blob) if blob else None

    def decisions(self) -> list[DecisionRecord]:
        blob = self._store._load_blob(self.run_key, "decisions_blob")
        if not blob:
            return []
        return [DecisionRecord(*triple) for triple in pickle_loads(blob)]

    def trace(self) -> StoredTrace:
        """The persisted trace, queryable lazily segment by segment."""

        return self._store._load_trace(self.run_key)

    def row(self, row_fn: str = DEFAULT_ROW_FN) -> dict | None:
        return self._store.get_row(self.run_key, row_fn)

    def as_dict(self) -> dict:
        """JSON-safe scalar view (what the service endpoints return)."""

        return {
            "run_key": self.run_key,
            "spec": json.loads(self._spec_json),
            "spec_digest": self.spec_digest,
            "engine": self.engine,
            "code_version": self.code_version,
            "status": self.status,
            "summary": self.summary,
            "rounds_executed": self.rounds_executed,
            "stop_reason": self.stop_reason,
            "peak_payload_bytes": self.peak_payload_bytes,
            "elapsed_seconds": self.elapsed_seconds,
            "created_at": self.created_at,
        }


class TraceSegmentSink:
    """Write-through spill target for one run's trace segments.

    Handed to ``Trace(spill_to=sink)`` (usually via
    :meth:`SynchronousNetwork.enable_trace_spill`); each sealed segment
    is written in its own committed transaction, so under WAL concurrent
    readers observe complete sealed segments only — never a torn one.
    Create through :meth:`RunStore.trace_sink`, which clears any stale
    segments for the key first.
    """

    def __init__(self, store: "RunStore", run_key: str) -> None:
        self._store = store
        self.run_key = run_key
        self.segments_written = 0

    def write(self, index: int, footer: dict, blobs: dict[str, bytes]) -> None:
        conn = self._store._conn
        with conn:
            conn.execute(
                "INSERT OR REPLACE INTO trace_segments (run_key, "
                "segment_index, footer_json, kinds, rounds, nodes, peers, "
                "payloads, details) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    self.run_key,
                    index,
                    canonical_dumps(footer),
                    *(blobs[name] for name in _TRACE_BLOB_NAMES),
                ),
            )
        self.segments_written += 1

    def stored_trace(self) -> StoredTrace:
        """The fully queryable view over everything written so far."""

        return self._store._load_trace(self.run_key)


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_key TEXT PRIMARY KEY,
    spec_digest TEXT NOT NULL,
    protocol TEXT NOT NULL,
    n INTEGER NOT NULL,
    f INTEGER NOT NULL,
    seed INTEGER NOT NULL,
    engine TEXT NOT NULL,
    code_version TEXT NOT NULL,
    status TEXT NOT NULL,
    spec_json TEXT NOT NULL,
    summary_json TEXT NOT NULL,
    rounds_executed INTEGER NOT NULL,
    stop_reason TEXT NOT NULL,
    peak_payload_bytes INTEGER NOT NULL,
    elapsed_seconds REAL,
    created_at TEXT NOT NULL,
    outputs_blob BLOB,
    decisions_blob BLOB,
    per_node_blob BLOB
);
CREATE INDEX IF NOT EXISTS runs_by_protocol ON runs (protocol, n, seed);
CREATE INDEX IF NOT EXISTS runs_by_spec ON runs (spec_digest);
CREATE TABLE IF NOT EXISTS round_columns (
    run_key TEXT NOT NULL,
    name TEXT NOT NULL,
    data BLOB NOT NULL,
    PRIMARY KEY (run_key, name)
);
CREATE TABLE IF NOT EXISTS rows (
    run_key TEXT NOT NULL,
    row_fn TEXT NOT NULL,
    row_json TEXT NOT NULL,
    PRIMARY KEY (run_key, row_fn)
);
CREATE TABLE IF NOT EXISTS trace_segments (
    run_key TEXT NOT NULL,
    segment_index INTEGER NOT NULL,
    footer_json TEXT NOT NULL,
    kinds BLOB NOT NULL,
    rounds BLOB NOT NULL,
    nodes BLOB NOT NULL,
    peers BLOB NOT NULL,
    payloads BLOB NOT NULL,
    details BLOB NOT NULL,
    PRIMARY KEY (run_key, segment_index)
);
"""

_RUN_SCALARS = (
    "run_key, spec_digest, engine, code_version, status, summary_json, "
    "rounds_executed, stop_reason, peak_payload_bytes, elapsed_seconds, "
    "created_at, spec_json"
)


class RunStore:
    """Content-addressed persistence for simulation runs (SQLite, WAL).

    One connection per instance; open one instance per thread or process
    (WAL mode gives concurrent readers alongside a single writer).  The
    constructor validates the file: a path that is not an SQLite database,
    a truncated/corrupt database, a schema-version mismatch or a
    byte-order mismatch all raise :class:`StoreError` instead of
    returning garbage rows.
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        self._conn: sqlite3.Connection | None = None
        try:
            self._conn = sqlite3.connect(self.path)
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            has_tables = self._conn.execute(
                "SELECT COUNT(*) FROM sqlite_master WHERE type='table'"
            ).fetchone()[0]
            if has_tables:
                verdicts = [
                    row[0] for row in self._conn.execute("PRAGMA quick_check")
                ]
                if verdicts != ["ok"]:
                    raise StoreError(
                        f"run store {self.path} failed integrity check: "
                        f"{'; '.join(verdicts[:3])}"
                    )
            self._conn.executescript(_SCHEMA)
            self._check_meta()
        except sqlite3.DatabaseError as exc:
            self.close()
            raise StoreError(
                f"{self.path} is not a usable run store: {exc}"
            ) from exc
        except StoreError:
            self.close()
            raise

    def _check_meta(self) -> None:
        meta = dict(self._conn.execute("SELECT key, value FROM meta"))
        if not meta:
            self._conn.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                [
                    ("schema_version", str(SCHEMA_VERSION)),
                    ("byteorder", sys.byteorder),
                ],
            )
            self._conn.commit()
            return
        version = int(meta.get("schema_version", "0"))
        if version != SCHEMA_VERSION:
            raise StoreError(
                f"run store {self.path} has schema version {version}; "
                f"this code expects {SCHEMA_VERSION}"
            )
        byteorder = meta.get("byteorder")
        if byteorder != sys.byteorder:
            raise StoreError(
                f"run store {self.path} was written on a {byteorder}-endian "
                f"machine; this machine is {sys.byteorder}-endian"
            )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writing -----------------------------------------------------------

    def put_run(
        self,
        record: RunRecord,
        *,
        row: dict | None = None,
        row_fn: str = DEFAULT_ROW_FN,
    ) -> None:
        """Persist one run atomically (replacing any prior row for its key)."""

        spec = record.spec_dict
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO runs (run_key, spec_digest, protocol, "
                "n, f, seed, engine, code_version, status, spec_json, "
                "summary_json, rounds_executed, stop_reason, "
                "peak_payload_bytes, elapsed_seconds, created_at, "
                "outputs_blob, decisions_blob, per_node_blob) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    record.run_key,
                    record.spec_digest,
                    str(spec.get("protocol", "")),
                    int(spec.get("n", 0)),
                    int(spec.get("f", 0)),
                    int(spec.get("seed", 0)),
                    record.engine,
                    record.code_version,
                    record.status,
                    canonical_dumps(spec),
                    canonical_dumps(record.summary),
                    record.rounds_executed,
                    record.stop_reason,
                    record.peak_payload_bytes,
                    record.elapsed_seconds,
                    datetime.now(timezone.utc).isoformat(),
                    record.outputs_blob,
                    record.decisions_blob,
                    record.per_node_blob,
                ),
            )
            self._conn.execute(
                "DELETE FROM round_columns WHERE run_key = ?", (record.run_key,)
            )
            self._conn.executemany(
                "INSERT INTO round_columns (run_key, name, data) VALUES (?, ?, ?)",
                [
                    (record.run_key, name, data)
                    for name, data in record.round_columns.items()
                ],
            )
            if not record.trace_spilled:
                # A spilled run's segments were already streamed into
                # trace_segments by the sink; rewriting would drop them.
                self._conn.execute(
                    "DELETE FROM trace_segments WHERE run_key = ?",
                    (record.run_key,),
                )
                self._conn.executemany(
                    "INSERT INTO trace_segments (run_key, segment_index, "
                    "footer_json, kinds, rounds, nodes, peers, payloads, "
                    "details) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    [
                        (
                            record.run_key,
                            index,
                            canonical_dumps(footer),
                            *(blobs[name] for name in _TRACE_BLOB_NAMES),
                        )
                        for index, (footer, blobs) in enumerate(
                            record.trace_segments
                        )
                    ],
                )
            if row is not None:
                self._conn.execute(
                    "INSERT OR REPLACE INTO rows (run_key, row_fn, row_json) "
                    "VALUES (?, ?, ?)",
                    (record.run_key, row_fn, canonical_dumps(row)),
                )

    def trace_sink(self, run_key: str) -> TraceSegmentSink:
        """A spill sink for ``run_key``, clearing any stale segments first.

        Pass the result to ``Trace(spill_to=...)`` or
        ``SynchronousNetwork.enable_trace_spill``; persist the run's
        :class:`RunRecord` afterwards with ``trace_spilled=True`` so
        :meth:`put_run` leaves the streamed segments in place.
        """

        with self._conn:
            self._conn.execute(
                "DELETE FROM trace_segments WHERE run_key = ?", (run_key,)
            )
        return TraceSegmentSink(self, run_key)

    def put_row(self, run_key: str, row_fn: str, row: dict) -> None:
        """Attach an additional extracted row to an existing run."""

        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO rows (run_key, row_fn, row_json) "
                "VALUES (?, ?, ?)",
                (run_key, row_fn, canonical_dumps(row)),
            )

    # -- reading -----------------------------------------------------------

    def has_run(self, run_key: str) -> bool:
        found = self._conn.execute(
            "SELECT 1 FROM runs WHERE run_key = ? AND status = 'complete'",
            (run_key,),
        ).fetchone()
        return found is not None

    def get_run(self, run_key: str) -> StoredRun | None:
        row = self._conn.execute(
            f"SELECT {_RUN_SCALARS} FROM runs WHERE run_key = ?", (run_key,)
        ).fetchone()
        return self._stored_run(row) if row else None

    def _stored_run(self, row: tuple) -> StoredRun:
        (
            run_key,
            spec_digest,
            engine,
            code_version,
            status,
            summary_json,
            rounds_executed,
            stop_reason,
            peak_payload_bytes,
            elapsed_seconds,
            created_at,
            spec_json,
        ) = row
        return StoredRun(
            run_key=run_key,
            spec_digest=spec_digest,
            engine=engine,
            code_version=code_version,
            status=status,
            summary=json.loads(summary_json),
            rounds_executed=rounds_executed,
            stop_reason=stop_reason,
            peak_payload_bytes=peak_payload_bytes,
            elapsed_seconds=elapsed_seconds,
            created_at=created_at,
            _spec_json=spec_json,
            _store=self,
        )

    def get_trace(self, run_key: str) -> StoredTrace | None:
        """The persisted trace for a stored run (``None`` if no such run).

        A stored but untraced run yields an empty :class:`StoredTrace`
        (zero segments), not ``None``.
        """

        if self.get_run(run_key) is None:
            return None
        return self._load_trace(run_key)

    def get_row(self, run_key: str, row_fn: str = DEFAULT_ROW_FN) -> dict | None:
        """The extracted row for a *complete* run, or ``None`` on a miss."""

        found = self._conn.execute(
            "SELECT rows.row_json FROM rows JOIN runs USING (run_key) "
            "WHERE rows.run_key = ? AND rows.row_fn = ? "
            "AND runs.status = 'complete'",
            (run_key, row_fn),
        ).fetchone()
        return json.loads(found[0]) if found else None

    def query(
        self,
        *,
        protocol: str | None = None,
        n: int | None = None,
        seed: int | None = None,
        spec_digest: str | None = None,
        engine: str | None = None,
        status: str | None = "complete",
        limit: int | None = None,
    ) -> list[StoredRun]:
        """Stored runs matching the filters, in insertion order."""

        clauses, params = [], []
        for column, value in (
            ("protocol", protocol),
            ("n", n),
            ("seed", seed),
            ("spec_digest", spec_digest),
            ("engine", engine),
            ("status", status),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        sql = f"SELECT {_RUN_SCALARS} FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY rowid"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(limit)
        return [self._stored_run(row) for row in self._conn.execute(sql, params)]

    def rows(
        self,
        *,
        row_fn: str = DEFAULT_ROW_FN,
        protocol: str | None = None,
    ) -> list[dict]:
        """All stored rows for ``row_fn`` (optionally one protocol), in order."""

        sql = (
            "SELECT rows.row_json FROM rows JOIN runs USING (run_key) "
            "WHERE rows.row_fn = ? AND runs.status = 'complete'"
        )
        params: list = [row_fn]
        if protocol is not None:
            sql += " AND runs.protocol = ?"
            params.append(protocol)
        sql += " ORDER BY rows.rowid"
        return [json.loads(r[0]) for r in self._conn.execute(sql, params)]

    def pivot(
        self,
        group_by: Sequence[str],
        metrics: Sequence[str],
        *,
        row_fn: str = DEFAULT_ROW_FN,
        protocol: str | None = None,
    ) -> list[dict]:
        """Aggregate stored rows into a pivot table.

        Routes through :func:`repro.analysis.stats.aggregate_rows`, so the
        result feeds :mod:`repro.analysis.tables` renderers directly —
        experiment tables regenerate from the store without re-running
        anything.
        """

        return aggregate_rows(
            self.rows(row_fn=row_fn, protocol=protocol),
            group_by=list(group_by),
            metrics=list(metrics),
        )

    def diff(self, run_key_a: str, run_key_b: str) -> dict[str, Any]:
        """Cross-run diff: spec fields, summary metrics, per-round columns
        and the persisted traces.

        ``per_round`` maps each differing column to the first index at
        which the two runs diverge (length mismatches count from the end
        of the shorter column); a column only one run stored maps to the
        string ``"missing"`` instead of an index — a run persisted
        without per-round metrics (e.g. a lightweight benchmark cell)
        diffs cleanly rather than raising.

        ``trace`` is ``{}`` when the stored traces are identical (or both
        runs are untraced); otherwise it reports total event counts,
        per-kind count deltas (differing kinds only) and the first
        divergent event as ``{"segment", "index", "kind", "round"}``.
        Segments are compared pair-wise with cheap exits — matching
        footers plus byte-identical blobs skip without decoding — so
        diffing two identical traced runs never materialises an event.
        """

        a, b = self.get_run(run_key_a), self.get_run(run_key_b)
        if a is None or b is None:
            missing = run_key_a if a is None else run_key_b
            raise StoreError(f"run {missing} is not in the store")
        spec_a, spec_b = a.spec.to_dict(), b.spec.to_dict()
        cols_a = self._decode_round_columns(run_key_a)
        cols_b = self._decode_round_columns(run_key_b)
        per_round: dict[str, int | str] = {}
        for name in sorted(set(cols_a) | set(cols_b)):
            if name not in cols_a or name not in cols_b:
                per_round[name] = "missing"
                continue
            xa, xb = cols_a[name], cols_b[name]
            if xa == xb:
                continue
            shared = min(len(xa), len(xb))
            divergence = next(
                (i for i in range(shared) if xa[i] != xb[i]), shared
            )
            per_round[name] = divergence
        return {
            "spec": {
                k: [spec_a[k], spec_b[k]]
                for k in spec_a
                if spec_a[k] != spec_b[k]
            },
            "summary": {
                k: [a.summary.get(k), b.summary.get(k)]
                for k in sorted(set(a.summary) | set(b.summary))
                if a.summary.get(k) != b.summary.get(k)
            },
            "per_round": per_round,
            "trace": self._diff_trace(run_key_a, run_key_b),
        }

    def _diff_trace(self, run_key_a: str, run_key_b: str) -> dict[str, Any]:
        footers_a = self._load_trace_footers(run_key_a)
        footers_b = self._load_trace_footers(run_key_b)
        if not footers_a and not footers_b:
            return {}
        counts_a = _sum_kind_counts(footers_a)
        counts_b = _sum_kind_counts(footers_b)
        events_a = sum(f["events"] for f in footers_a)
        events_b = sum(f["events"] for f in footers_b)
        divergence: dict[str, Any] | None = None
        shared = min(len(footers_a), len(footers_b))
        for index in range(shared):
            blobs_a = self._load_segment_blobs(run_key_a, index)
            blobs_b = self._load_segment_blobs(run_key_b, index)
            if footers_a[index] == footers_b[index] and blobs_a == blobs_b:
                continue
            seg_a = Trace.from_segment(blobs_a)
            seg_b = Trace.from_segment(blobs_b)
            at = seg_a.first_difference(seg_b)
            if at is None:
                continue  # blobs differ byte-wise but decode identically
            ea = seg_a.event(at) if at < len(seg_a) else None
            eb = seg_b.event(at) if at < len(seg_b) else None
            divergence = {
                "segment": index,
                "index": at,
                "kind": [
                    ea.kind.value if ea else None,
                    eb.kind.value if eb else None,
                ],
                "round": [
                    ea.round_index if ea else None,
                    eb.round_index if eb else None,
                ],
            }
            break
        if divergence is None and len(footers_a) != len(footers_b):
            # Shared segments identical; the longer trace diverges at the
            # first event of its first extra segment.
            longer_key = run_key_a if len(footers_a) > shared else run_key_b
            extra = Trace.from_segment(
                self._load_segment_blobs(longer_key, shared)
            )
            event = extra.event(0)
            a_side = longer_key == run_key_a
            divergence = {
                "segment": shared,
                "index": 0,
                "kind": [
                    event.kind.value if a_side else None,
                    None if a_side else event.kind.value,
                ],
                "round": [
                    event.round_index if a_side else None,
                    None if a_side else event.round_index,
                ],
            }
        kind_deltas = {
            kind.value: [
                counts_a.get(kind.value, 0),
                counts_b.get(kind.value, 0),
            ]
            for kind in EventKind
            if counts_a.get(kind.value, 0) != counts_b.get(kind.value, 0)
        }
        if divergence is None and not kind_deltas and events_a == events_b:
            return {}
        return {
            "events": [events_a, events_b],
            "kind_counts": kind_deltas,
            "first_divergence": divergence,
        }

    # -- blob plumbing (used by StoredRun/StoredTrace) ---------------------

    def _load_blob(self, run_key: str, column: str) -> bytes | None:
        found = self._conn.execute(
            f"SELECT {column} FROM runs WHERE run_key = ?", (run_key,)
        ).fetchone()
        return found[0] if found else None

    def _load_round_columns(self, run_key: str) -> dict[str, bytes]:
        return {
            name: data
            for name, data in self._conn.execute(
                "SELECT name, data FROM round_columns WHERE run_key = ?",
                (run_key,),
            )
        }

    def _decode_round_columns(self, run_key: str) -> dict[str, list[int]]:
        decoded = {}
        for name, data in self._load_round_columns(run_key).items():
            column = array("q")
            column.frombytes(data)
            decoded[name] = column.tolist()
        return decoded

    def _load_trace_footers(self, run_key: str) -> list[dict]:
        return [
            json.loads(footer_json)
            for (footer_json,) in self._conn.execute(
                "SELECT footer_json FROM trace_segments WHERE run_key = ? "
                "ORDER BY segment_index",
                (run_key,),
            )
        ]

    def _load_segment_blobs(self, run_key: str, index: int) -> dict[str, bytes]:
        found = self._conn.execute(
            f"SELECT {', '.join(_TRACE_BLOB_NAMES)} FROM trace_segments "
            "WHERE run_key = ? AND segment_index = ?",
            (run_key, index),
        ).fetchone()
        if found is None:  # pragma: no cover - segments deleted mid-read
            raise StoreError(
                f"trace segment {index} of run {run_key} disappeared"
            )
        return dict(zip(_TRACE_BLOB_NAMES, found))

    def _load_trace(self, run_key: str) -> StoredTrace:
        footers = self._load_trace_footers(run_key)

        def load(index: int) -> Trace:
            return Trace.from_segment(self._load_segment_blobs(run_key, index))

        return StoredTrace(footers, load)
