"""The SQLite-backed run store.

Stdlib ``sqlite3`` in WAL mode — one writer, any number of concurrent
readers, no dependency beyond the standard library.  See the package
docstring (:mod:`repro.store`) for the schema and the run-key contract.

Blobs (protocol outputs, decision values, per-node counters, trace
object columns) are loaded lazily: :meth:`RunStore.get_run` reads only
the scalar columns, and the :class:`StoredRun` it returns fetches
metrics, outputs and trace segments on first access.  Persisted trace
segments are queried through :class:`StoredTrace`, which implements the
:class:`repro.sim.events.Trace` query API on top of the segment footers
so ``of_kind``/``in_round``/``decisions`` touch only the segments that
can contain matching events.
"""

from __future__ import annotations

import json
import sqlite3
import sys
from array import array
from dataclasses import dataclass, field
from datetime import datetime, timezone
from typing import Any, Callable, Iterator, Sequence

from ..analysis.stats import aggregate_rows
from ..api.spec import ScenarioSpec
from ..sim.events import EventKind, Trace, TraceEvent
from ..sim.metrics import DecisionRecord, RunMetrics
from .serialize import canonical_dumps, pickle_loads

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_ROW_FN",
    "StoreError",
    "RunRecord",
    "StoredRun",
    "StoredTrace",
    "RunStore",
]

#: Bumped on any backwards-incompatible schema change; stores created by
#: a different version refuse to open instead of misreading rows.
SCHEMA_VERSION = 1

#: Row-function label used when a caller persists a row without naming one.
DEFAULT_ROW_FN = "default"

_TRACE_BLOB_NAMES = ("kinds", "rounds", "nodes", "peers", "payloads", "details")


class StoreError(RuntimeError):
    """A run store could not be opened, validated or read."""


# ---------------------------------------------------------------------------
# Records
# ---------------------------------------------------------------------------


@dataclass
class RunRecord:
    """One finished run, fully serialised and picklable.

    Built in worker processes by
    :func:`repro.store.resumable.record_from_outcome` and shipped back to
    the single-writer parent, which persists it with
    :meth:`RunStore.put_run`.  Blob fields may be ``None`` for
    lightweight records (e.g. benchmark cells that only cache a row).
    """

    run_key: str
    spec_dict: dict
    spec_digest: str
    engine: str
    code_version: str
    status: str = "complete"
    summary: dict = field(default_factory=dict)
    rounds_executed: int = 0
    stop_reason: str = ""
    peak_payload_bytes: int = 0
    elapsed_seconds: float | None = None
    outputs_blob: bytes | None = None
    decisions_blob: bytes | None = None
    per_node_blob: bytes | None = None
    round_columns: dict[str, bytes] = field(default_factory=dict)
    trace_segments: list[tuple[dict, dict[str, bytes]]] = field(default_factory=list)

    def per_round(self) -> list[dict]:
        """Per-round metric dicts decoded from the column blobs."""

        if not self.round_columns:
            return []
        metrics = RunMetrics.from_columns(self.round_columns)
        return [r.as_dict() for r in metrics.rounds]


class StoredTrace:
    """Lazy, segment-backed implementation of the ``Trace`` query API.

    Holds the (cheap, always-loaded) segment footers plus a loader that
    materialises one segment's blobs into a :class:`Trace` on demand.
    Queries consult the footers first: ``of_kind`` skips segments whose
    footer shows a zero count for the kind, ``in_round`` skips segments
    whose round range excludes the round, and ``kind_counts``/``len``
    never load a blob at all.  Loaded segments are cached.
    """

    def __init__(
        self, footers: Sequence[dict], loader: Callable[[int], Trace]
    ) -> None:
        self._footers = list(footers)
        self._loader = loader
        self._segments: dict[int, Trace] = {}

    # -- segment plumbing --------------------------------------------------

    @property
    def segment_count(self) -> int:
        return len(self._footers)

    @property
    def loaded_segment_count(self) -> int:
        """How many segments have been materialised (laziness observable)."""

        return len(self._segments)

    def _segment(self, index: int) -> Trace:
        segment = self._segments.get(index)
        if segment is None:
            segment = self._segments[index] = self._loader(index)
        return segment

    def _select(self, wanted: Callable[[dict], bool]) -> Iterator[Trace]:
        for index, footer in enumerate(self._footers):
            if wanted(footer):
                yield self._segment(index)

    # -- Trace query API ---------------------------------------------------

    def __len__(self) -> int:
        return sum(f["events"] for f in self._footers)

    def __iter__(self) -> Iterator[TraceEvent]:
        for index in range(len(self._footers)):
            yield from self._segment(index)

    @property
    def events(self) -> list[TraceEvent]:
        return list(self)

    def kind_counts(self) -> dict[str, int]:
        """Aggregated per-kind counts — pure footer arithmetic, no blob I/O."""

        counts: dict[str, int] = {}
        for footer in self._footers:
            for kind_value, count in footer["kind_counts"].items():
                counts[kind_value] = counts.get(kind_value, 0) + count
        # Stable kind order (enum member order), matching Trace.kind_counts.
        return {k.value: counts[k.value] for k in EventKind if k.value in counts}

    def of_kind(self, kind: EventKind) -> list[TraceEvent]:
        events: list[TraceEvent] = []
        for segment in self._select(
            lambda f: f["kind_counts"].get(kind.value, 0) > 0
        ):
            events.extend(segment.of_kind(kind))
        return events

    def in_round(self, round_index: int) -> list[TraceEvent]:
        events: list[TraceEvent] = []
        for segment in self._select(
            lambda f: f["round_min"] <= round_index <= f["round_max"]
        ):
            events.extend(segment.in_round(round_index))
        return events

    def for_node(self, node_id) -> list[TraceEvent]:
        events: list[TraceEvent] = []
        for index in range(len(self._footers)):
            events.extend(self._segment(index).for_node(node_id))
        return events

    def where(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        return [e for e in self if predicate(e)]

    def decisions(self) -> list[TraceEvent]:
        return self.of_kind(EventKind.NODE_DECIDED)

    def first(self, kind: EventKind) -> TraceEvent | None:
        for segment in self._select(
            lambda f: f["kind_counts"].get(kind.value, 0) > 0
        ):
            found = segment.first(kind)
            if found is not None:
                return found
        return None


@dataclass
class StoredRun:
    """One persisted run: scalar columns eager, blobs lazy."""

    run_key: str
    spec_digest: str
    engine: str
    code_version: str
    status: str
    summary: dict
    rounds_executed: int
    stop_reason: str
    peak_payload_bytes: int
    elapsed_seconds: float | None
    created_at: str
    _spec_json: str
    _store: "RunStore"

    @property
    def spec(self) -> ScenarioSpec:
        return ScenarioSpec.from_dict(json.loads(self._spec_json))

    def metrics(self) -> RunMetrics:
        """Rebuild the run's :class:`RunMetrics` from the stored columns."""

        columns = self._store._load_round_columns(self.run_key)
        per_node = self._store._load_blob(self.run_key, "per_node_blob")
        sent, delivered = pickle_loads(per_node) if per_node else ({}, {})
        decisions_blob = self._store._load_blob(self.run_key, "decisions_blob")
        decisions = pickle_loads(decisions_blob) if decisions_blob else []
        return RunMetrics.from_columns(
            columns,
            per_node_sent=sent,
            per_node_delivered=delivered,
            decisions=decisions,
            peak_payload_bytes=self.peak_payload_bytes,
        )

    def per_round(self) -> list[dict]:
        columns = self._store._load_round_columns(self.run_key)
        return RunRecord(
            run_key=self.run_key,
            spec_dict={},
            spec_digest=self.spec_digest,
            engine=self.engine,
            code_version=self.code_version,
            round_columns=columns,
        ).per_round()

    def outputs(self) -> dict | None:
        """The correct nodes' outputs, or ``None`` if never persisted."""

        blob = self._store._load_blob(self.run_key, "outputs_blob")
        return pickle_loads(blob) if blob else None

    def decisions(self) -> list[DecisionRecord]:
        blob = self._store._load_blob(self.run_key, "decisions_blob")
        if not blob:
            return []
        return [DecisionRecord(*triple) for triple in pickle_loads(blob)]

    def trace(self) -> StoredTrace:
        """The persisted trace, queryable lazily segment by segment."""

        return self._store._load_trace(self.run_key)

    def row(self, row_fn: str = DEFAULT_ROW_FN) -> dict | None:
        return self._store.get_row(self.run_key, row_fn)

    def as_dict(self) -> dict:
        """JSON-safe scalar view (what the service endpoints return)."""

        return {
            "run_key": self.run_key,
            "spec": json.loads(self._spec_json),
            "spec_digest": self.spec_digest,
            "engine": self.engine,
            "code_version": self.code_version,
            "status": self.status,
            "summary": self.summary,
            "rounds_executed": self.rounds_executed,
            "stop_reason": self.stop_reason,
            "peak_payload_bytes": self.peak_payload_bytes,
            "elapsed_seconds": self.elapsed_seconds,
            "created_at": self.created_at,
        }


# ---------------------------------------------------------------------------
# The store
# ---------------------------------------------------------------------------

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    run_key TEXT PRIMARY KEY,
    spec_digest TEXT NOT NULL,
    protocol TEXT NOT NULL,
    n INTEGER NOT NULL,
    f INTEGER NOT NULL,
    seed INTEGER NOT NULL,
    engine TEXT NOT NULL,
    code_version TEXT NOT NULL,
    status TEXT NOT NULL,
    spec_json TEXT NOT NULL,
    summary_json TEXT NOT NULL,
    rounds_executed INTEGER NOT NULL,
    stop_reason TEXT NOT NULL,
    peak_payload_bytes INTEGER NOT NULL,
    elapsed_seconds REAL,
    created_at TEXT NOT NULL,
    outputs_blob BLOB,
    decisions_blob BLOB,
    per_node_blob BLOB
);
CREATE INDEX IF NOT EXISTS runs_by_protocol ON runs (protocol, n, seed);
CREATE INDEX IF NOT EXISTS runs_by_spec ON runs (spec_digest);
CREATE TABLE IF NOT EXISTS round_columns (
    run_key TEXT NOT NULL,
    name TEXT NOT NULL,
    data BLOB NOT NULL,
    PRIMARY KEY (run_key, name)
);
CREATE TABLE IF NOT EXISTS rows (
    run_key TEXT NOT NULL,
    row_fn TEXT NOT NULL,
    row_json TEXT NOT NULL,
    PRIMARY KEY (run_key, row_fn)
);
CREATE TABLE IF NOT EXISTS trace_segments (
    run_key TEXT NOT NULL,
    segment_index INTEGER NOT NULL,
    footer_json TEXT NOT NULL,
    kinds BLOB NOT NULL,
    rounds BLOB NOT NULL,
    nodes BLOB NOT NULL,
    peers BLOB NOT NULL,
    payloads BLOB NOT NULL,
    details BLOB NOT NULL,
    PRIMARY KEY (run_key, segment_index)
);
"""

_RUN_SCALARS = (
    "run_key, spec_digest, engine, code_version, status, summary_json, "
    "rounds_executed, stop_reason, peak_payload_bytes, elapsed_seconds, "
    "created_at, spec_json"
)


class RunStore:
    """Content-addressed persistence for simulation runs (SQLite, WAL).

    One connection per instance; open one instance per thread or process
    (WAL mode gives concurrent readers alongside a single writer).  The
    constructor validates the file: a path that is not an SQLite database,
    a truncated/corrupt database, a schema-version mismatch or a
    byte-order mismatch all raise :class:`StoreError` instead of
    returning garbage rows.
    """

    def __init__(self, path) -> None:
        self.path = str(path)
        self._conn: sqlite3.Connection | None = None
        try:
            self._conn = sqlite3.connect(self.path)
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            has_tables = self._conn.execute(
                "SELECT COUNT(*) FROM sqlite_master WHERE type='table'"
            ).fetchone()[0]
            if has_tables:
                verdicts = [
                    row[0] for row in self._conn.execute("PRAGMA quick_check")
                ]
                if verdicts != ["ok"]:
                    raise StoreError(
                        f"run store {self.path} failed integrity check: "
                        f"{'; '.join(verdicts[:3])}"
                    )
            self._conn.executescript(_SCHEMA)
            self._check_meta()
        except sqlite3.DatabaseError as exc:
            self.close()
            raise StoreError(
                f"{self.path} is not a usable run store: {exc}"
            ) from exc
        except StoreError:
            self.close()
            raise

    def _check_meta(self) -> None:
        meta = dict(self._conn.execute("SELECT key, value FROM meta"))
        if not meta:
            self._conn.executemany(
                "INSERT INTO meta (key, value) VALUES (?, ?)",
                [
                    ("schema_version", str(SCHEMA_VERSION)),
                    ("byteorder", sys.byteorder),
                ],
            )
            self._conn.commit()
            return
        version = int(meta.get("schema_version", "0"))
        if version != SCHEMA_VERSION:
            raise StoreError(
                f"run store {self.path} has schema version {version}; "
                f"this code expects {SCHEMA_VERSION}"
            )
        byteorder = meta.get("byteorder")
        if byteorder != sys.byteorder:
            raise StoreError(
                f"run store {self.path} was written on a {byteorder}-endian "
                f"machine; this machine is {sys.byteorder}-endian"
            )

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- writing -----------------------------------------------------------

    def put_run(
        self,
        record: RunRecord,
        *,
        row: dict | None = None,
        row_fn: str = DEFAULT_ROW_FN,
    ) -> None:
        """Persist one run atomically (replacing any prior row for its key)."""

        spec = record.spec_dict
        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO runs (run_key, spec_digest, protocol, "
                "n, f, seed, engine, code_version, status, spec_json, "
                "summary_json, rounds_executed, stop_reason, "
                "peak_payload_bytes, elapsed_seconds, created_at, "
                "outputs_blob, decisions_blob, per_node_blob) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    record.run_key,
                    record.spec_digest,
                    str(spec.get("protocol", "")),
                    int(spec.get("n", 0)),
                    int(spec.get("f", 0)),
                    int(spec.get("seed", 0)),
                    record.engine,
                    record.code_version,
                    record.status,
                    canonical_dumps(spec),
                    canonical_dumps(record.summary),
                    record.rounds_executed,
                    record.stop_reason,
                    record.peak_payload_bytes,
                    record.elapsed_seconds,
                    datetime.now(timezone.utc).isoformat(),
                    record.outputs_blob,
                    record.decisions_blob,
                    record.per_node_blob,
                ),
            )
            self._conn.execute(
                "DELETE FROM round_columns WHERE run_key = ?", (record.run_key,)
            )
            self._conn.executemany(
                "INSERT INTO round_columns (run_key, name, data) VALUES (?, ?, ?)",
                [
                    (record.run_key, name, data)
                    for name, data in record.round_columns.items()
                ],
            )
            self._conn.execute(
                "DELETE FROM trace_segments WHERE run_key = ?", (record.run_key,)
            )
            self._conn.executemany(
                "INSERT INTO trace_segments (run_key, segment_index, "
                "footer_json, kinds, rounds, nodes, peers, payloads, details) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [
                    (
                        record.run_key,
                        index,
                        canonical_dumps(footer),
                        *(blobs[name] for name in _TRACE_BLOB_NAMES),
                    )
                    for index, (footer, blobs) in enumerate(record.trace_segments)
                ],
            )
            if row is not None:
                self._conn.execute(
                    "INSERT OR REPLACE INTO rows (run_key, row_fn, row_json) "
                    "VALUES (?, ?, ?)",
                    (record.run_key, row_fn, canonical_dumps(row)),
                )

    def put_row(self, run_key: str, row_fn: str, row: dict) -> None:
        """Attach an additional extracted row to an existing run."""

        with self._conn:
            self._conn.execute(
                "INSERT OR REPLACE INTO rows (run_key, row_fn, row_json) "
                "VALUES (?, ?, ?)",
                (run_key, row_fn, canonical_dumps(row)),
            )

    # -- reading -----------------------------------------------------------

    def has_run(self, run_key: str) -> bool:
        found = self._conn.execute(
            "SELECT 1 FROM runs WHERE run_key = ? AND status = 'complete'",
            (run_key,),
        ).fetchone()
        return found is not None

    def get_run(self, run_key: str) -> StoredRun | None:
        row = self._conn.execute(
            f"SELECT {_RUN_SCALARS} FROM runs WHERE run_key = ?", (run_key,)
        ).fetchone()
        return self._stored_run(row) if row else None

    def _stored_run(self, row: tuple) -> StoredRun:
        (
            run_key,
            spec_digest,
            engine,
            code_version,
            status,
            summary_json,
            rounds_executed,
            stop_reason,
            peak_payload_bytes,
            elapsed_seconds,
            created_at,
            spec_json,
        ) = row
        return StoredRun(
            run_key=run_key,
            spec_digest=spec_digest,
            engine=engine,
            code_version=code_version,
            status=status,
            summary=json.loads(summary_json),
            rounds_executed=rounds_executed,
            stop_reason=stop_reason,
            peak_payload_bytes=peak_payload_bytes,
            elapsed_seconds=elapsed_seconds,
            created_at=created_at,
            _spec_json=spec_json,
            _store=self,
        )

    def get_row(self, run_key: str, row_fn: str = DEFAULT_ROW_FN) -> dict | None:
        """The extracted row for a *complete* run, or ``None`` on a miss."""

        found = self._conn.execute(
            "SELECT rows.row_json FROM rows JOIN runs USING (run_key) "
            "WHERE rows.run_key = ? AND rows.row_fn = ? "
            "AND runs.status = 'complete'",
            (run_key, row_fn),
        ).fetchone()
        return json.loads(found[0]) if found else None

    def query(
        self,
        *,
        protocol: str | None = None,
        n: int | None = None,
        seed: int | None = None,
        spec_digest: str | None = None,
        engine: str | None = None,
        status: str | None = "complete",
        limit: int | None = None,
    ) -> list[StoredRun]:
        """Stored runs matching the filters, in insertion order."""

        clauses, params = [], []
        for column, value in (
            ("protocol", protocol),
            ("n", n),
            ("seed", seed),
            ("spec_digest", spec_digest),
            ("engine", engine),
            ("status", status),
        ):
            if value is not None:
                clauses.append(f"{column} = ?")
                params.append(value)
        sql = f"SELECT {_RUN_SCALARS} FROM runs"
        if clauses:
            sql += " WHERE " + " AND ".join(clauses)
        sql += " ORDER BY rowid"
        if limit is not None:
            sql += " LIMIT ?"
            params.append(limit)
        return [self._stored_run(row) for row in self._conn.execute(sql, params)]

    def rows(
        self,
        *,
        row_fn: str = DEFAULT_ROW_FN,
        protocol: str | None = None,
    ) -> list[dict]:
        """All stored rows for ``row_fn`` (optionally one protocol), in order."""

        sql = (
            "SELECT rows.row_json FROM rows JOIN runs USING (run_key) "
            "WHERE rows.row_fn = ? AND runs.status = 'complete'"
        )
        params: list = [row_fn]
        if protocol is not None:
            sql += " AND runs.protocol = ?"
            params.append(protocol)
        sql += " ORDER BY rows.rowid"
        return [json.loads(r[0]) for r in self._conn.execute(sql, params)]

    def pivot(
        self,
        group_by: Sequence[str],
        metrics: Sequence[str],
        *,
        row_fn: str = DEFAULT_ROW_FN,
        protocol: str | None = None,
    ) -> list[dict]:
        """Aggregate stored rows into a pivot table.

        Routes through :func:`repro.analysis.stats.aggregate_rows`, so the
        result feeds :mod:`repro.analysis.tables` renderers directly —
        experiment tables regenerate from the store without re-running
        anything.
        """

        return aggregate_rows(
            self.rows(row_fn=row_fn, protocol=protocol),
            group_by=list(group_by),
            metrics=list(metrics),
        )

    def diff(self, run_key_a: str, run_key_b: str) -> dict[str, Any]:
        """Cross-run diff: spec fields, summary metrics, per-round columns.

        ``per_round`` maps each differing column to the first index at
        which the two runs diverge (length mismatches count from the end
        of the shorter column).
        """

        a, b = self.get_run(run_key_a), self.get_run(run_key_b)
        if a is None or b is None:
            missing = run_key_a if a is None else run_key_b
            raise StoreError(f"run {missing} is not in the store")
        spec_a, spec_b = a.spec.to_dict(), b.spec.to_dict()
        cols_a = self._decode_round_columns(run_key_a)
        cols_b = self._decode_round_columns(run_key_b)
        per_round: dict[str, int] = {}
        for name in sorted(set(cols_a) | set(cols_b)):
            xa, xb = cols_a.get(name, []), cols_b.get(name, [])
            if xa == xb:
                continue
            shared = min(len(xa), len(xb))
            divergence = next(
                (i for i in range(shared) if xa[i] != xb[i]), shared
            )
            per_round[name] = divergence
        return {
            "spec": {
                k: [spec_a[k], spec_b[k]]
                for k in spec_a
                if spec_a[k] != spec_b[k]
            },
            "summary": {
                k: [a.summary.get(k), b.summary.get(k)]
                for k in sorted(set(a.summary) | set(b.summary))
                if a.summary.get(k) != b.summary.get(k)
            },
            "per_round": per_round,
        }

    # -- blob plumbing (used by StoredRun/StoredTrace) ---------------------

    def _load_blob(self, run_key: str, column: str) -> bytes | None:
        found = self._conn.execute(
            f"SELECT {column} FROM runs WHERE run_key = ?", (run_key,)
        ).fetchone()
        return found[0] if found else None

    def _load_round_columns(self, run_key: str) -> dict[str, bytes]:
        return {
            name: data
            for name, data in self._conn.execute(
                "SELECT name, data FROM round_columns WHERE run_key = ?",
                (run_key,),
            )
        }

    def _decode_round_columns(self, run_key: str) -> dict[str, list[int]]:
        decoded = {}
        for name, data in self._load_round_columns(run_key).items():
            column = array("q")
            column.frombytes(data)
            decoded[name] = column.tolist()
        return decoded

    def _load_trace(self, run_key: str) -> StoredTrace:
        footers = [
            json.loads(footer_json)
            for (footer_json,) in self._conn.execute(
                "SELECT footer_json FROM trace_segments WHERE run_key = ? "
                "ORDER BY segment_index",
                (run_key,),
            )
        ]

        def load(index: int) -> Trace:
            found = self._conn.execute(
                f"SELECT {', '.join(_TRACE_BLOB_NAMES)} FROM trace_segments "
                "WHERE run_key = ? AND segment_index = ?",
                (run_key, index),
            ).fetchone()
            if found is None:  # pragma: no cover - segments deleted mid-read
                raise StoreError(
                    f"trace segment {index} of run {run_key} disappeared"
                )
            return Trace.from_segment(dict(zip(_TRACE_BLOB_NAMES, found)))

        return StoredTrace(footers, load)
