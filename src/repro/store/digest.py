"""Content-addressed run keys: spec digest + engine + code fingerprint.

The run store never invents identifiers: a run's primary key is a stable
function of *what was run* —

``run_key = sha256(spec_digest ‖ engine ‖ code_version)``

* ``spec_digest`` is :meth:`repro.api.ScenarioSpec.digest` (hex SHA-256
  of the canonical spec JSON; the seed is part of the spec);
* ``engine`` is the requested round-loop kernel (``None`` normalises to
  ``"auto"`` — the kernels are bit-identical, so the engine is part of
  the key only to keep benchmark timings from aliasing);
* ``code_version`` is :func:`code_fingerprint` — a digest over the
  ``repro`` package sources, so editing protocol code invalidates cached
  cells instead of silently serving stale results.  The
  ``REPRO_CODE_VERSION`` environment variable overrides it (useful for
  pinning a fingerprint across checkouts that differ only in comments).

Every component is independent of process, platform and hash
randomisation, which is what makes resumable sweeps safe across
interpreter restarts and worker processes.
"""

from __future__ import annotations

import hashlib
import os
from pathlib import Path
from typing import Iterable

from ..api.spec import ScenarioSpec

__all__ = ["spec_digest", "code_fingerprint", "run_key", "sweep_digest"]

#: Environment override for the code fingerprint.
CODE_VERSION_ENV = "REPRO_CODE_VERSION"

_FINGERPRINT_CACHE: dict[str, str] = {}


def spec_digest(spec: ScenarioSpec) -> str:
    """Stable content digest of a scenario spec (delegates to the spec)."""

    return spec.digest()


def code_fingerprint() -> str:
    """Digest of the ``repro`` package sources (cached per process).

    Hashes every ``*.py`` file under the installed ``repro`` package, in
    sorted relative-path order, path and contents both.  Two checkouts
    with identical sources fingerprint identically on any machine.
    """

    override = os.environ.get(CODE_VERSION_ENV)
    if override:
        return override
    package_root = Path(__file__).resolve().parent.parent
    cache_key = str(package_root)
    cached = _FINGERPRINT_CACHE.get(cache_key)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode("utf-8"))
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    fingerprint = digest.hexdigest()
    _FINGERPRINT_CACHE[cache_key] = fingerprint
    return fingerprint


def run_key(
    spec: ScenarioSpec,
    *,
    engine: str | None = None,
    code_version: str | None = None,
) -> str:
    """The content-addressed primary key of one run of ``spec``."""

    material = "\n".join(
        (
            spec.digest(),
            engine or "auto",
            code_version if code_version is not None else code_fingerprint(),
        )
    )
    return hashlib.sha256(material.encode("ascii")).hexdigest()


def sweep_digest(specs: Iterable[ScenarioSpec]) -> str:
    """Digest of an expanded sweep: the ordered spec digests, re-hashed.

    Used by :class:`repro.harness.experiments.ExperimentResult` so a JSON
    report names exactly which scenario population produced it — with the
    same digest function the store keys individual runs by.
    """

    digest = hashlib.sha256()
    for spec in specs:
        digest.update(spec.digest().encode("ascii"))
        digest.update(b"\n")
    return digest.hexdigest()
