"""Canonical serialisation shared by the run store and the JSON reports.

Two tiers, used deliberately for different data:

* **Canonical JSON** — for everything report-facing (specs, summaries,
  measurement rows).  :func:`to_jsonable` maps values onto plain JSON
  types first (numpy scalars to Python scalars, tuples to lists, mapping
  keys to strings) and :func:`canonical_dumps` emits sorted keys with
  compact separators, so the same value always serialises to the same
  bytes.  :func:`json_normalize` is the round-trip — the resumable sweep
  layer pushes *fresh* rows through it before returning them, which is
  what makes cache hits bit-identical to fresh executions by
  construction.
* **Pickle** — for Python-object columns the JSON schema cannot express
  losslessly (protocol outputs such as total-order ``ChainEntry`` chains,
  decision values, trace payload columns).  The protocol is pinned so
  stores written by different Python minors stay mutually readable.
"""

from __future__ import annotations

import json
import pickle
from typing import Any, Mapping

__all__ = [
    "to_jsonable",
    "canonical_dumps",
    "json_normalize",
    "pickle_dumps",
    "pickle_loads",
]

#: Pinned pickle protocol for object blobs (available since Python 3.4).
PICKLE_PROTOCOL = 4


def to_jsonable(value: Any) -> Any:
    """Map ``value`` onto plain JSON types, recursively.

    Numpy scalars become Python scalars (a latent drift source: a row
    holding ``np.float64`` used to serialise differently from the same
    row holding ``float``), tuples become lists and mapping keys become
    strings.  Values with no JSON image raise ``TypeError`` loudly.
    """

    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item") and not isinstance(value, Mapping):
        # numpy scalar (np.integer / np.floating / np.bool_)
        scalar = value.item()
        if isinstance(scalar, (bool, int, float, str)) or scalar is None:
            return scalar
    if isinstance(value, Mapping):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    raise TypeError(f"value of type {type(value).__name__} has no canonical JSON form")


def canonical_dumps(value: Any, *, indent: int | None = None) -> str:
    """Serialise ``value`` canonically: normalised types and sorted keys."""

    separators = (",", ":") if indent is None else None
    return json.dumps(
        to_jsonable(value),
        sort_keys=True,
        indent=indent,
        separators=separators,
        ensure_ascii=True,
    )


def json_normalize(value: Any) -> Any:
    """Round-trip ``value`` through canonical JSON.

    The identity for values already in canonical form; otherwise the
    JSON image (tuples as lists, numpy scalars as Python scalars).  Both
    the cached and the fresh path of a resumable sweep return rows in
    this form, so equality between them is structural.
    """

    return json.loads(canonical_dumps(value))


def pickle_dumps(value: Any) -> bytes:
    return pickle.dumps(value, protocol=PICKLE_PROTOCOL)


def pickle_loads(blob: bytes) -> Any:
    return pickle.loads(blob)
