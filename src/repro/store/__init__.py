"""Persistent run store: content-addressed results DB and resumable sweeps.

This package persists simulation runs so sweeps resume instead of
re-executing, results are queryable after the fact, and a service can
stream progress to clients — all on stdlib ``sqlite3`` (WAL mode, no
dependencies).

The run-key contract
--------------------
A run is addressed by **content**, never by position in a sweep::

    run_key = sha256(spec_digest ‖ "\\n" ‖ engine ‖ "\\n" ‖ code_version)

* ``spec_digest`` — :meth:`repro.api.ScenarioSpec.digest`: the SHA-256 of
  the spec's canonical JSON (sorted keys, compact separators, ASCII).
  Two specs with equal ``to_dict()`` output always share a digest,
  regardless of process, dict insertion order or platform.
* ``engine`` — the engine the caller pinned, or the literal ``"auto"``
  when engine selection was left to the simulator.  The repo's engines
  are bit-identical by contract, but the key still separates pinned
  engines so an engine-comparison sweep never aliases.
* ``code_version`` — :func:`repro.store.digest.code_fingerprint`: a
  SHA-256 over every ``*.py`` file in the installed ``repro`` package
  (sorted relative paths + contents), overridable via the
  ``REPRO_CODE_VERSION`` environment variable.  Editing the simulator
  invalidates cached cells automatically.

Identical (spec, engine, code) always hits the cache; changing any
ingredient misses it.  :class:`ResumableSweep` relies on this to run only
missing cells and still return rows bit-identical to a fresh sweep.

The schema (version 1)
----------------------
``meta``
    ``schema_version`` and the writing machine's ``byteorder`` (raw
    ``array`` blobs are native-endian; a store refuses to open on a
    machine with the other endianness).
``runs``
    One row per run key: denormalised query columns (``protocol``, ``n``,
    ``f``, ``seed``, ``engine``, ``code_version``, ``status``), the spec
    and summary as canonical JSON, scalar results (``rounds_executed``,
    ``stop_reason``, ``peak_payload_bytes``, ``elapsed_seconds``,
    ``created_at``) and three lazy pickle blobs: protocol outputs,
    decision triples and per-node counters.
``round_columns``
    The :class:`~repro.sim.metrics.RunMetrics` per-round counters, one
    raw ``array('q')`` blob per column name (the PR-5 columnar layout,
    persisted as-is).
``rows``
    Extracted report rows keyed by ``(run_key, row_fn)`` — the row
    function's qualified name — as canonical JSON, so different row
    extractors never collide on one run.
``trace_segments``
    Optional columnar trace slices: per segment a JSON footer (event
    count, per-kind counts, round range) plus the six column blobs.
    :class:`StoredTrace` answers ``of_kind``/``in_round``/``decisions``
    by consulting footers first and loading only segments that can
    match; ``kind_counts``/``len`` never touch a blob, and
    :meth:`StoredTrace.aggregate` reduces per-round/per-node/per-kind
    counts and payload-byte tallies one segment at a time without
    materialising events.

The spill-segment contract
--------------------------
Trace segments reach ``trace_segments`` by one of two exclusive routes:

* **post-run export** — ``Trace.export_segments`` slices the finished
  in-memory trace and :meth:`RunStore.put_run` writes the slices with
  the rest of the record (deleting any stale segments for the key
  first); or
* **in-run spill** — :meth:`RunStore.trace_sink` hands out a
  :class:`~repro.store.db.TraceSegmentSink` (clearing stale segments up
  front); ``Trace(spill_to=sink, segment_events=N)`` then seals and
  writes each exactly-``N``-event segment the moment the live columns
  fill, each in its own committed transaction.  Peak trace memory is
  bounded by one segment, WAL readers only ever observe fully committed
  sealed segments, and the record persisted afterwards must carry
  ``trace_spilled=True`` so ``put_run`` leaves the streamed segments in
  place.

Both routes produce byte-identical segments for the same run and
granularity (spill seals exactly the slices export would have cut), so
every consumer — :class:`StoredTrace` queries, ``aggregate``, trace
diffs, the streaming endpoint — is agnostic to how the trace arrived;
``tests/test_trace_analytics.py`` pins the equivalence.

Entry points
------------
:class:`RunStore` (open/query/diff/pivot, ``get_trace``/``trace_sink``),
:class:`ResumableSweep` (store-first sweep execution),
``python -m repro.store.serve`` (HTTP service with NDJSON progress and
trace streaming).
"""

from .db import (
    DEFAULT_ROW_FN,
    RunRecord,
    RunStore,
    SCHEMA_VERSION,
    StoredRun,
    StoredTrace,
    StoreError,
    TraceSegmentSink,
)
from .digest import code_fingerprint, run_key, spec_digest, sweep_digest
from .resumable import (
    DEFAULT_SEGMENT_EVENTS,
    ResumableSweep,
    SweepReport,
    record_from_outcome,
    row_fn_name,
)
from .serialize import canonical_dumps, json_normalize, to_jsonable

__all__ = [
    "SCHEMA_VERSION",
    "DEFAULT_ROW_FN",
    "DEFAULT_SEGMENT_EVENTS",
    "StoreError",
    "RunStore",
    "RunRecord",
    "StoredRun",
    "StoredTrace",
    "TraceSegmentSink",
    "ResumableSweep",
    "SweepReport",
    "record_from_outcome",
    "row_fn_name",
    "run_key",
    "spec_digest",
    "sweep_digest",
    "code_fingerprint",
    "canonical_dumps",
    "json_normalize",
    "to_jsonable",
]
