"""CLI entry point: ``python -m repro.store.serve --store runs.db``.

Starts the stdlib scenario service (:mod:`repro.store.service`) on the
given host/port and serves until interrupted.  The store file is created
if it does not exist; an existing file that is not a valid run store
aborts with a clear error instead of serving garbage.
"""

from __future__ import annotations

import argparse
import sys

from .db import StoreError
from .resumable import DEFAULT_SEGMENT_EVENTS
from .service import create_server


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.store.serve",
        description="Serve a run store over HTTP with streaming sweeps.",
    )
    parser.add_argument(
        "--store", required=True, help="path to the SQLite run store"
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8642, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="default worker processes per launched sweep",
    )
    parser.add_argument(
        "--engine",
        default=None,
        help="default simulation engine for launched sweeps",
    )
    parser.add_argument(
        "--segment-events",
        type=int,
        default=DEFAULT_SEGMENT_EVENTS,
        help="trace persistence granularity (events per segment)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        server = create_server(
            args.store,
            host=args.host,
            port=args.port,
            jobs=args.jobs,
            engine=args.engine,
            segment_events=args.segment_events,
        )
    except StoreError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    host, port = server.server_address[:2]
    print(f"scenario service on http://{host}:{port} (store: {args.store})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
