"""Resumable sweeps: run only the cells the store does not already hold.

:class:`ResumableSweep` wraps the :class:`repro.api.SweepRunner`
execution model with a cache lookup per scenario: each expanded spec maps
to a content-addressed run key (spec digest + engine + code fingerprint),
cells whose key already holds a complete run and a row for the requested
row function are served from the store, and only the missing cells
execute — across worker processes exactly like a plain sweep.  The
multi-process story stays single-writer: workers *return* fully
serialised :class:`~repro.store.db.RunRecord` values and the parent
process performs every store write.

Bit-identity is by construction, not by luck: fresh rows are pushed
through the same canonical-JSON round-trip the store persists
(:func:`repro.store.serialize.json_normalize`), so a sweep returns
byte-identical rows whether a cell was executed or loaded — asserted by
``tests/test_store.py`` across protocols including churned total-order.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..api.spec import ScenarioSpec
from ..api.sweep import (
    RowFn,
    ScenarioOutcome,
    SweepSpec,
    _default_row,
    map_jobs,
    run_scenario,
)
from ..analysis.stats import aggregate_rows
from ..sim.events import DEFAULT_SEGMENT_EVENTS
from .db import RunRecord, RunStore, StoreError
from .digest import code_fingerprint, run_key
from .serialize import json_normalize, pickle_dumps

__all__ = [
    "DEFAULT_SEGMENT_EVENTS",
    "SweepReport",
    "ResumableSweep",
    "record_from_outcome",
    "row_fn_name",
]

#: Rich progress callback: ``(index, spec, row, record, cached)`` — the
#: record is a RunRecord for fresh cells and a StoredRun for cache hits;
#: both expose ``per_round()`` for round-by-round metric streaming.
CellCallback = Callable[[int, ScenarioSpec, dict, object, bool], None]


def row_fn_name(fn: RowFn | None) -> str:
    """The stable label a row function's cached rows are stored under."""

    fn = fn or _default_row
    return f"{fn.__module__}.{fn.__qualname__}"


def record_from_outcome(
    outcome: ScenarioOutcome,
    *,
    engine: str | None = None,
    code_version: str | None = None,
    segment_events: int = DEFAULT_SEGMENT_EVENTS,
    elapsed_seconds: float | None = None,
) -> RunRecord:
    """Serialise one executed scenario into a picklable store record.

    Captures the summary, per-round metric columns, per-node counters,
    decisions, the correct nodes' outputs and — for traced runs — the
    columnar trace sliced into footer-indexed segments.  The summary
    additionally discloses which tally implementation produced the run
    (``tally_backend``: ``"numpy"`` on the vector kernel, ``"scalar"``
    everywhere else) — the numbers are bit-identical either way, but
    stored runs should say how they were computed.
    """

    spec = outcome.spec
    metrics = outcome.result.metrics
    version = code_version if code_version is not None else code_fingerprint()
    summary = json_normalize(metrics.summary())
    summary["tally_backend"] = outcome.network.tally_backend()
    return RunRecord(
        run_key=run_key(spec, engine=engine, code_version=version),
        spec_dict=spec.to_dict(),
        spec_digest=spec.digest(),
        engine=engine or "auto",
        code_version=version,
        status="complete",
        summary=summary,
        rounds_executed=outcome.result.rounds_executed,
        stop_reason=outcome.result.stop_reason,
        peak_payload_bytes=metrics.peak_payload_bytes,
        elapsed_seconds=elapsed_seconds,
        outputs_blob=pickle_dumps(outcome.outputs()),
        decisions_blob=pickle_dumps(
            [(d.node_id, d.round_index, d.value) for d in metrics.decisions]
        ),
        per_node_blob=pickle_dumps(
            (dict(metrics.per_node_sent), dict(metrics.per_node_delivered))
        ),
        round_columns=metrics.export_columns(),
        trace_segments=(
            outcome.result.trace.export_segments(max_events=segment_events)
            if spec.trace
            else []
        ),
    )


def _run_case_record(payload: tuple) -> tuple[RunRecord, dict]:
    """Worker entry point: run the cell, return (record, normalised row).

    Mirrors :func:`repro.api.sweep._run_case` but additionally serialises
    the full run for the parent to persist.  The code fingerprint is
    computed in the parent and shipped in, so every worker keys cells
    identically without re-hashing the source tree.
    """

    spec_dict, row_fn, engine, code_version, segment_events, accounting = payload
    spec = ScenarioSpec.from_dict(spec_dict)
    start = time.perf_counter()
    outcome = run_scenario(spec, engine=engine, payload_accounting=accounting)
    elapsed = time.perf_counter() - start
    record = record_from_outcome(
        outcome,
        engine=engine,
        code_version=code_version,
        segment_events=segment_events,
        elapsed_seconds=elapsed,
    )
    return record, json_normalize(row_fn(outcome))


@dataclass
class SweepReport:
    """What a resumable sweep did: the rows plus the cache accounting."""

    rows: list[dict] = field(default_factory=list)
    run_keys: list[str] = field(default_factory=list)
    ran: int = 0
    skipped: int = 0

    @property
    def total(self) -> int:
        return len(self.rows)


class ResumableSweep:
    """A store-backed sweep runner: cache hits skip execution entirely.

    ``jobs``/``engine`` mean exactly what they mean on
    :class:`~repro.api.SweepRunner`.  ``segment_events`` sets the trace
    persistence granularity for traced scenarios.  The store handle is
    used from the calling thread only (single writer).
    """

    def __init__(
        self,
        store: RunStore,
        *,
        jobs: int = 1,
        engine: str | None = None,
        segment_events: int = DEFAULT_SEGMENT_EVENTS,
        code_version: str | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be at least 1")
        self.store = store
        self.jobs = jobs
        self.engine = engine
        self.segment_events = segment_events
        self.code_version = (
            code_version if code_version is not None else code_fingerprint()
        )

    def run(
        self,
        sweeps: SweepSpec | Sequence[SweepSpec],
        *,
        row_fn: RowFn | None = None,
        on_cell: CellCallback | None = None,
    ) -> SweepReport:
        """Expand ``sweeps``, execute the missing cells, return every row.

        Rows come back in expansion order; ``on_cell`` fires once per
        scenario in that same order with the row, the backing record and
        whether it was served from the store.
        """

        if isinstance(sweeps, SweepSpec):
            sweeps = [sweeps]
        scenarios = [spec for sweep in sweeps for spec in sweep.scenarios()]
        return self.run_specs(scenarios, row_fn=row_fn, on_cell=on_cell)

    def run_specs(
        self,
        scenarios: Sequence[ScenarioSpec],
        *,
        row_fn: RowFn | None = None,
        on_cell: CellCallback | None = None,
        payload_accounting: bool = False,
    ) -> SweepReport:
        """Execute (or serve from the store) an explicit scenario list.

        The execution engine underneath :meth:`run`, exposed for callers
        whose scenarios are not grid expansions — the scenario search
        hands its mutated candidate batches here.  Rows come back in
        ``scenarios`` order, duplicate run keys execute once, and
        ``payload_accounting`` switches on wire-byte measurement for the
        fresh executions (cache-served rows carry whatever accounting
        their original execution ran under — callers that depend on byte
        columns must use a row function that records them, so cached and
        fresh rows stay interchangeable).
        """

        scenarios = list(scenarios)
        extract = row_fn or _default_row
        fn_name = row_fn_name(extract)
        keys = [
            run_key(spec, engine=self.engine, code_version=self.code_version)
            for spec in scenarios
        ]

        cached_rows: dict[int, dict] = {}
        for index, key in enumerate(keys):
            row = self.store.get_row(key, fn_name)
            if row is not None:
                cached_rows[index] = row

        # One payload per *distinct* missing key, in first-occurrence order
        # (a grid with duplicate axis values expands to identical specs —
        # run them once, reuse the result).
        payload_indices: list[int] = []
        scheduled: set[str] = set()
        for index in range(len(scenarios)):
            if index in cached_rows or keys[index] in scheduled:
                continue
            scheduled.add(keys[index])
            payload_indices.append(index)
        payloads = [
            (
                scenarios[i].to_dict(),
                extract,
                self.engine,
                self.code_version,
                self.segment_events,
                payload_accounting,
            )
            for i in payload_indices
        ]
        results = map_jobs(_run_case_record, payloads, self.jobs)

        report = SweepReport(run_keys=keys)
        fresh: dict[str, tuple[dict, RunRecord]] = {}
        for index, spec in enumerate(scenarios):
            key = keys[index]
            cached = True
            if index in cached_rows:
                row: dict = cached_rows[index]
                record: object = self.store.get_run(key)
            elif key in fresh:
                row, record = fresh[key]
            else:
                record, row = next(results)
                if record.run_key != key:  # pragma: no cover - defensive
                    raise StoreError(
                        f"worker keyed cell {index} as {record.run_key[:12]}…, "
                        f"parent expected {key[:12]}… — code-version drift "
                        "between parent and worker processes"
                    )
                self.store.put_run(record, row=row, row_fn=fn_name)
                fresh[key] = (row, record)
                report.ran += 1
                cached = False
            report.rows.append(row)
            if on_cell is not None:
                on_cell(index, spec, row, record, cached)
        report.skipped = len(scenarios) - report.ran
        return report

    def run_aggregated(
        self,
        sweeps: SweepSpec | Sequence[SweepSpec],
        *,
        group_by: Sequence[str],
        metrics: Sequence[str],
        row_fn: RowFn | None = None,
        on_cell: CellCallback | None = None,
    ) -> list[dict]:
        """Run (or resume) and aggregate, mirroring ``SweepRunner``."""

        report = self.run(sweeps, row_fn=row_fn, on_cell=on_cell)
        return aggregate_rows(
            report.rows, group_by=list(group_by), metrics=list(metrics)
        )
