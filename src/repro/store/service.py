"""The scenario service: launch sweeps over HTTP, stream progress as NDJSON.

A thin stdlib front-end over :class:`~repro.store.db.RunStore` and
:class:`~repro.store.resumable.ResumableSweep`.  The default server is a
``ThreadingHTTPServer`` — no framework, no dependency — and the streaming
endpoint emits newline-delimited JSON over an ``HTTP/1.0``-style
connection-close response, so any client that can read lines can follow a
sweep round by round::

    POST /sweeps        {"sweep": {"protocol": "consensus", "base": {...},
                         "axes": {"n": [4, 5, 6]}}, "jobs": 2}
    GET  /sweeps/<id>/stream      -> one JSON object per line:
        {"event": "sweep-start", "cells": 3, ...}
        {"event": "cell", "index": 0, "cached": false, "row": {...}}
        {"event": "round", "index": 0, "round": 0, "messages_sent": ...}
        ...
        {"event": "sweep-complete", "ran": 3, "skipped": 0}

Every connected stream client sees the *full* event sequence regardless of
when it attached: a :class:`SweepJob` records the events it has emitted and
replays the prefix to late joiners before handing them live events.

Query endpoints: ``GET /health``, ``GET /runs`` (filters as query params),
``GET /runs/<run_key>``, ``GET /runs/<run_key>/rounds``,
``GET /sweeps/<id>``.  ``GET /runs/<run_key>/trace?kind=&round=`` streams
the persisted trace as NDJSON — a ``trace-start`` header line, one
``segment`` batch per stored segment with matching events (footer-pruned,
so filtered queries never load irrelevant blobs), then ``trace-complete``
— the same connection-close replay semantics as the sweep stream.  SQLite
connections are per-thread (the handler pool opens read-only-use stores
on demand); the sweep executor thread is the only writer, preserving the
store's single-writer discipline.

Client disconnects mid-stream (``BrokenPipeError``/
``ConnectionResetError``) are clean unsubscribes: the handler swallows
them wherever they surface (event loop, response write or the final
flush in ``handle_one_request``) so a vanished client never dumps a
traceback through ``handle_error`` or poisons its worker thread.

If FastAPI happens to be installed, :func:`create_fastapi_app` exposes the
same service as an ASGI app; the stdlib server remains the supported path
and the adapter raises :class:`StoreError` when FastAPI is absent.
"""

from __future__ import annotations

import dataclasses
import itertools
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Iterator
from urllib.parse import parse_qs, urlparse

from ..api.sweep import SweepSpec
from ..sim.events import EventKind, TraceEvent
from .db import RunStore, StoredTrace, StoreError
from .resumable import DEFAULT_SEGMENT_EVENTS, ResumableSweep
from .serialize import canonical_dumps

__all__ = ["ScenarioService", "SweepJob", "create_server", "create_fastapi_app"]


def _trace_event_json(event: TraceEvent) -> dict:
    """One trace event as a JSON-safe dict (payload/detail via ``repr``)."""

    return {
        "kind": event.kind.value,
        "round": event.round_index,
        "node": event.node_id,
        "peer": event.peer_id,
        "payload": None if event.payload is None else repr(event.payload),
        "detail": None if event.detail is None else repr(event.detail),
    }


def _parse_trace_filters(
    query: dict[str, list[str]]
) -> tuple[EventKind | None, int | None]:
    """Decode the ``kind``/``round`` query params, raising on bad values."""

    kind: EventKind | None = None
    round_index: int | None = None
    if query.get("kind"):
        value = query["kind"][0]
        try:
            kind = EventKind(value)
        except ValueError:
            known = ", ".join(k.value for k in EventKind)
            raise ValueError(f"unknown kind {value!r}; known: {known}")
    if query.get("round"):
        try:
            round_index = int(query["round"][0])
        except ValueError:
            raise ValueError(f"round must be an integer, not {query['round'][0]!r}")
    return kind, round_index

_SWEEP_FIELDS = frozenset(f.name for f in dataclasses.fields(SweepSpec))


def _sweep_from_dict(payload: dict) -> SweepSpec:
    """Build a SweepSpec from a JSON object of its dataclass fields."""

    if not isinstance(payload, dict):
        raise ValueError("each sweep must be a JSON object")
    unknown = sorted(set(payload) - _SWEEP_FIELDS)
    if unknown:
        raise ValueError(f"unknown sweep fields: {', '.join(unknown)}")
    if "protocol" not in payload:
        raise ValueError("sweep needs a 'protocol'")
    kwargs = dict(payload)
    if "seed_tags" in kwargs:
        kwargs["seed_tags"] = tuple(kwargs["seed_tags"])
    return SweepSpec(**kwargs)


class SweepJob:
    """One launched sweep: an append-only event log plus completion state.

    ``events()`` yields every event from the beginning, blocking until new
    ones arrive — late subscribers replay the recorded prefix first, so
    concurrent stream clients all observe the same sequence.
    """

    def __init__(self, job_id: str, cells: int) -> None:
        self.job_id = job_id
        self.cells = cells
        self.status = "running"
        self.error: str | None = None
        self.report_summary: dict | None = None
        self._events: list[dict] = []
        self._done = False
        self._cond = threading.Condition()

    # -- producer side (sweep executor thread) -----------------------------

    def emit(self, event: dict) -> None:
        with self._cond:
            self._events.append(event)
            self._cond.notify_all()

    def finish(self, *, status: str, error: str | None = None) -> None:
        with self._cond:
            self.status = status
            self.error = error
            self._done = True
            self._cond.notify_all()

    def ensure_finished(self, *, error: str) -> None:
        """Force a terminal state if the job does not have one yet.

        A registered job that never reaches ``finish`` strands every
        stream subscriber: ``events()`` blocks forever waiting for more
        events.  This is the safety net for producer-side failures that
        bypass the normal completion path — the executor thread failing
        to start at all, or dying on something other than ``Exception``.
        Idempotent; does nothing once the job is already done.
        """

        with self._cond:
            if self._done:
                return
            self._events.append({"event": "error", "message": error})
            self.status = "failed"
            self.error = error
            self._done = True
            self._cond.notify_all()

    # -- consumer side (stream handlers) -----------------------------------

    def events(self) -> Iterator[dict]:
        index = 0
        while True:
            with self._cond:
                while index >= len(self._events) and not self._done:
                    self._cond.wait()
                if index >= len(self._events):
                    return
                batch = self._events[index:]
                index = len(self._events)
            yield from batch

    def as_dict(self) -> dict:
        with self._cond:
            return {
                "id": self.job_id,
                "cells": self.cells,
                "status": self.status,
                "error": self.error,
                "events": len(self._events),
                "report": self.report_summary,
            }


class ScenarioService:
    """Store-backed sweep launcher shared by every HTTP handler thread."""

    def __init__(
        self,
        store_path: str,
        *,
        jobs: int = 1,
        engine: str | None = None,
        segment_events: int = DEFAULT_SEGMENT_EVENTS,
    ) -> None:
        self.store_path = str(store_path)
        self.jobs = jobs
        self.engine = engine
        self.segment_events = segment_events
        self._jobs: dict[str, SweepJob] = {}
        self._job_ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        # Validate (and create) the store eagerly so a bad path fails at
        # service construction, not on the first request.
        RunStore(self.store_path).close()

    # -- per-thread read stores --------------------------------------------

    def reader(self) -> RunStore:
        store = getattr(self._local, "store", None)
        if store is None:
            store = self._local.store = RunStore(self.store_path)
        return store

    # -- sweep jobs ---------------------------------------------------------

    def get_job(self, job_id: str) -> SweepJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def launch_sweep(self, payload: dict) -> SweepJob:
        """Validate the request, start the executor thread, return the job."""

        raw = payload.get("sweep") or payload.get("sweeps")
        if raw is None:
            raise ValueError("request needs a 'sweep' (or 'sweeps') object")
        sweep_dicts = raw if isinstance(raw, list) else [raw]
        sweeps = [_sweep_from_dict(d) for d in sweep_dicts]
        scenarios = [spec for sweep in sweeps for spec in sweep.scenarios()]
        jobs = int(payload.get("jobs", self.jobs))
        engine = payload.get("engine", self.engine)

        with self._lock:
            job = SweepJob(f"sweep-{next(self._job_ids)}", len(scenarios))
            self._jobs[job.job_id] = job

        worker = threading.Thread(
            target=self._execute,
            args=(job, sweeps, jobs, engine),
            name=f"scenario-service-{job.job_id}",
            daemon=True,
        )
        try:
            worker.start()
        except Exception as exc:
            # The job is already registered; without a terminal event a
            # later GET /sweeps/<id>/stream would hang forever on a job
            # that can never progress.
            job.ensure_finished(error=f"failed to start sweep thread: {exc}")
            raise
        return job

    def _execute(
        self,
        job: SweepJob,
        sweeps: list[SweepSpec],
        jobs: int,
        engine: str | None,
    ) -> None:
        try:
            with RunStore(self.store_path) as store:
                runner = ResumableSweep(
                    store,
                    jobs=jobs,
                    engine=engine,
                    segment_events=self.segment_events,
                )

                def on_cell(index, spec, row, record, cached) -> None:
                    job.emit(
                        {
                            "event": "cell",
                            "index": index,
                            "run_key": record.run_key,
                            "cached": cached,
                            "row": row,
                        }
                    )
                    for metrics_row in record.per_round():
                        job.emit(
                            {"event": "round", "index": index, **metrics_row}
                        )

                job.emit(
                    {
                        "event": "sweep-start",
                        "id": job.job_id,
                        "cells": job.cells,
                        "jobs": jobs,
                        "engine": engine or "auto",
                    }
                )
                report = runner.run(sweeps, on_cell=on_cell)
                job.report_summary = {
                    "ran": report.ran,
                    "skipped": report.skipped,
                    "total": report.total,
                }
                job.emit({"event": "sweep-complete", **job.report_summary})
                job.finish(status="complete")
        except Exception as exc:  # noqa: BLE001 - reported to the client
            job.emit({"event": "error", "message": str(exc)})
            job.finish(status="failed", error=str(exc))
        finally:
            # Non-Exception exits (SystemExit, KeyboardInterrupt delivered
            # to the worker thread) would otherwise leave the job running
            # forever with subscribers blocked; no-op on the normal paths.
            job.ensure_finished(
                error="sweep thread exited without reporting completion"
            )

    # -- query endpoints ----------------------------------------------------

    def health(self) -> dict:
        store = self.reader()
        return {
            "status": "ok",
            "store": self.store_path,
            "runs": len(store.query(status=None)),
        }

    def list_runs(self, filters: dict[str, list[str]]) -> list[dict]:
        def first(key: str) -> str | None:
            values = filters.get(key)
            return values[0] if values else None

        def as_int(value: str | None) -> int | None:
            return int(value) if value is not None else None

        runs = self.reader().query(
            protocol=first("protocol"),
            n=as_int(first("n")),
            seed=as_int(first("seed")),
            spec_digest=first("spec_digest"),
            engine=first("engine"),
            status=first("status") or "complete",
            limit=as_int(first("limit")),
        )
        return [run.as_dict() for run in runs]

    def get_run(self, run_key: str) -> dict | None:
        run = self.reader().get_run(run_key)
        return run.as_dict() if run else None

    def get_rounds(self, run_key: str) -> list[dict] | None:
        run = self.reader().get_run(run_key)
        return run.per_round() if run else None

    def get_trace(self, run_key: str) -> StoredTrace | None:
        run = self.reader().get_run(run_key)
        return run.trace() if run else None


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the shared :class:`ScenarioService`."""

    # HTTP/1.0 keeps the streaming endpoint framing-free: the response body
    # ends when the connection closes, so NDJSON needs no chunked encoding.
    protocol_version = "HTTP/1.0"
    service: ScenarioService  # set by create_server on the subclass

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        pass  # keep test/CI output clean

    def handle(self) -> None:
        """Treat mid-write client disconnects as clean unsubscribes.

        ``_stream_events``/``_stream_trace`` already swallow disconnects
        inside their write loops, but the trailing ``wfile.flush()`` in
        ``handle_one_request`` (and any non-streaming response write) can
        still raise after the client vanishes; without this guard the
        exception escapes to ``socketserver``'s ``handle_error`` and dumps
        a traceback from the worker thread.
        """

        try:
            super().handle()
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True

    # -- response helpers ---------------------------------------------------

    def _send_json(self, payload: Any, status: int = 200) -> None:
        body = (canonical_dumps(payload) + "\n").encode("ascii")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str) -> None:
        self._send_json({"error": message}, status=status)

    def _stream_events(self, job: SweepJob) -> None:
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()
        try:
            for event in job.events():
                self.wfile.write((canonical_dumps(event) + "\n").encode("ascii"))
                self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away; the job keeps running

    def _stream_trace(
        self,
        run_key: str,
        trace: StoredTrace,
        kind: EventKind | None,
        round_index: int | None,
    ) -> None:
        """NDJSON the stored trace, one batch per segment with matches."""

        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.end_headers()

        def write(obj: dict) -> None:
            self.wfile.write((canonical_dumps(obj) + "\n").encode("ascii"))
            self.wfile.flush()

        try:
            write(
                {
                    "event": "trace-start",
                    "run_key": run_key,
                    "segments": trace.segment_count,
                    "events": len(trace),
                }
            )
            streamed = 0
            for segment_index, batch in trace.select_batches(
                kind=kind, round_index=round_index
            ):
                if not batch:
                    continue
                write(
                    {
                        "event": "segment",
                        "segment": segment_index,
                        "events": [_trace_event_json(e) for e in batch],
                    }
                )
                streamed += len(batch)
            write({"event": "trace-complete", "streamed": streamed})
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-replay; nothing to clean up

    # -- routing ------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["health"]:
                self._send_json(self.service.health())
            elif parts == ["runs"]:
                self._send_json(self.service.list_runs(parse_qs(url.query)))
            elif len(parts) == 2 and parts[0] == "runs":
                run = self.service.get_run(parts[1])
                if run is None:
                    self._send_error(404, f"no run {parts[1]}")
                else:
                    self._send_json(run)
            elif len(parts) == 3 and parts[0] == "runs" and parts[2] == "rounds":
                rounds = self.service.get_rounds(parts[1])
                if rounds is None:
                    self._send_error(404, f"no run {parts[1]}")
                else:
                    self._send_json(rounds)
            elif len(parts) == 3 and parts[0] == "runs" and parts[2] == "trace":
                try:
                    kind, round_index = _parse_trace_filters(parse_qs(url.query))
                except ValueError as exc:
                    self._send_error(400, str(exc))
                    return
                trace = self.service.get_trace(parts[1])
                if trace is None:
                    self._send_error(404, f"no run {parts[1]}")
                else:
                    self._stream_trace(parts[1], trace, kind, round_index)
            elif len(parts) == 2 and parts[0] == "sweeps":
                job = self.service.get_job(parts[1])
                if job is None:
                    self._send_error(404, f"no sweep {parts[1]}")
                else:
                    self._send_json(job.as_dict())
            elif len(parts) == 3 and parts[0] == "sweeps" and parts[2] == "stream":
                job = self.service.get_job(parts[1])
                if job is None:
                    self._send_error(404, f"no sweep {parts[1]}")
                else:
                    self._stream_events(job)
            else:
                self._send_error(404, f"unknown path {url.path}")
        except StoreError as exc:
            self._send_error(500, str(exc))

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts != ["sweeps"]:
            self._send_error(404, f"unknown path {url.path}")
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            payload = json.loads(self.rfile.read(length) or b"{}")
            job = self.service.launch_sweep(payload)
        except (ValueError, KeyError, TypeError) as exc:
            self._send_error(400, str(exc))
            return
        except RuntimeError as exc:
            # launch_sweep re-raises thread-start failures after marking
            # the job failed; that is a server-side condition, not a bad
            # request, and must not dump through handle_error.
            self._send_error(500, str(exc))
            return
        self._send_json(
            {
                "id": job.job_id,
                "cells": job.cells,
                "stream": f"/sweeps/{job.job_id}/stream",
            },
            status=202,
        )


def create_server(
    store_path: str,
    *,
    host: str = "127.0.0.1",
    port: int = 8642,
    jobs: int = 1,
    engine: str | None = None,
    segment_events: int = DEFAULT_SEGMENT_EVENTS,
) -> ThreadingHTTPServer:
    """Build a ready-to-``serve_forever`` threaded HTTP server.

    ``port=0`` binds an ephemeral port (handy for tests); the bound
    address is available as ``server.server_address``.
    """

    service = ScenarioService(
        store_path, jobs=jobs, engine=engine, segment_events=segment_events
    )
    handler = type("_BoundHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    server.service = service  # type: ignore[attr-defined]
    return server


def create_fastapi_app(store_path: str, *, jobs: int = 1, engine: str | None = None):
    """The same service as a FastAPI/ASGI app, if FastAPI is installed.

    The stdlib server above is the dependency-free supported path; this
    adapter exists for deployments that already run an ASGI stack.
    """

    try:
        from fastapi import FastAPI, HTTPException
        from fastapi.responses import StreamingResponse
    except ImportError as exc:  # pragma: no cover - fastapi not in the image
        raise StoreError(
            "FastAPI is not installed; use repro.store.service.create_server "
            "(stdlib) instead"
        ) from exc

    service = ScenarioService(store_path, jobs=jobs, engine=engine)
    app = FastAPI(title="repro scenario service")

    @app.get("/health")
    def health() -> dict:
        return service.health()

    @app.get("/runs")
    def runs(
        protocol: str | None = None,
        n: int | None = None,
        seed: int | None = None,
        limit: int | None = None,
    ) -> list[dict]:
        filters: dict[str, list[str]] = {}
        for key, value in (
            ("protocol", protocol),
            ("n", n),
            ("seed", seed),
            ("limit", limit),
        ):
            if value is not None:
                filters[key] = [str(value)]
        return service.list_runs(filters)

    @app.get("/runs/{run_key}")
    def run(run_key: str) -> dict:
        found = service.get_run(run_key)
        if found is None:
            raise HTTPException(status_code=404, detail=f"no run {run_key}")
        return found

    @app.get("/runs/{run_key}/trace")
    def trace(run_key: str, kind: str | None = None, round: int | None = None):
        query: dict[str, list[str]] = {}
        if kind is not None:
            query["kind"] = [kind]
        if round is not None:
            query["round"] = [str(round)]
        try:
            kind_filter, round_index = _parse_trace_filters(query)
        except ValueError as exc:
            raise HTTPException(status_code=400, detail=str(exc))
        stored = service.get_trace(run_key)
        if stored is None:
            raise HTTPException(status_code=404, detail=f"no run {run_key}")

        def lines():
            yield canonical_dumps(
                {
                    "event": "trace-start",
                    "run_key": run_key,
                    "segments": stored.segment_count,
                    "events": len(stored),
                }
            ) + "\n"
            streamed = 0
            for segment_index, batch in stored.select_batches(
                kind=kind_filter, round_index=round_index
            ):
                if not batch:
                    continue
                yield canonical_dumps(
                    {
                        "event": "segment",
                        "segment": segment_index,
                        "events": [_trace_event_json(e) for e in batch],
                    }
                ) + "\n"
                streamed += len(batch)
            yield canonical_dumps(
                {"event": "trace-complete", "streamed": streamed}
            ) + "\n"

        return StreamingResponse(lines(), media_type="application/x-ndjson")

    @app.post("/sweeps", status_code=202)
    def sweeps(payload: dict) -> dict:
        job = service.launch_sweep(payload)
        return {
            "id": job.job_id,
            "cells": job.cells,
            "stream": f"/sweeps/{job.job_id}/stream",
        }

    @app.get("/sweeps/{job_id}/stream")
    def stream(job_id: str):
        job = service.get_job(job_id)
        if job is None:
            raise HTTPException(status_code=404, detail=f"no sweep {job_id}")
        lines = (canonical_dumps(event) + "\n" for event in job.events())
        return StreamingResponse(lines, media_type="application/x-ndjson")

    return app
