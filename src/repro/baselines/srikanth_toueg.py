"""Classic reliable broadcast with known ``n`` and ``f`` (Srikanth & Toueg).

This is the algorithm the paper's Algorithm 1 generalises: the absolute
thresholds ``f + 1`` (echo relay) and ``2f + 1`` (acceptance) require every
node to know the fault bound ``f`` in advance.  The baseline exists for two
reasons:

* experiment E9 compares the message and round complexity of the id-only
  algorithm against it on identical workloads (the paper argues they are
  essentially unchanged);
* experiment E5 shows what happens when the *assumed* ``f`` is wrong —
  the classic algorithm silently loses its guarantees, whereas the id-only
  algorithm has no such parameter to misconfigure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..sim.messages import Broadcast, NodeId, Outgoing
from ..sim.node import Process, RoundView
from ..core.reliable_broadcast import AcceptanceRecord, Echo, Initial, Present

__all__ = ["SrikanthTouegBroadcastProcess"]


class SrikanthTouegBroadcastProcess(Process):
    """A correct participant of the classic (known-``f``) reliable broadcast.

    The message format is shared with the id-only implementation so the two
    are directly comparable; only the quorum rules differ.

    Parameters
    ----------
    assumed_f:
        The fault bound the node was configured with.  The guarantees hold
        when ``assumed_f`` is a true upper bound and ``n > 3·assumed_f``;
        the resiliency-boundary experiment deliberately misconfigures it.
    """

    def __init__(
        self,
        node_id: NodeId,
        *,
        source: NodeId,
        assumed_f: int,
        message: Hashable | None = None,
    ) -> None:
        super().__init__(node_id)
        self._source = source
        self._message = message
        self._assumed_f = assumed_f
        self._accepted: dict[tuple[Hashable, NodeId], AcceptanceRecord] = {}
        self._echo_senders: dict[tuple[Hashable, NodeId], set[NodeId]] = {}
        self._echoed: set[tuple[Hashable, NodeId]] = set()

    @property
    def source(self) -> NodeId:
        return self._source

    @property
    def assumed_f(self) -> int:
        return self._assumed_f

    @property
    def accepted(self) -> tuple[AcceptanceRecord, ...]:
        return tuple(sorted(self._accepted.values(), key=lambda rec: rec.round_index))

    def has_accepted(self, message: Hashable, source: NodeId | None = None) -> bool:
        source = self._source if source is None else source
        return (message, source) in self._accepted

    @property
    def output(self):
        for (message, source) in self._accepted:
            if source == self._source:
                return message
        return None

    def step(self, view: RoundView) -> Sequence[Outgoing]:
        if view.round_index == 1:
            if self.node_id == self._source:
                return [Broadcast(Initial(self._message, self._source))]
            return [Broadcast(Present())]

        outgoing: list[Outgoing] = []
        if view.round_index == 2:
            for payload in view.inbox.payloads_from(self._source):
                if isinstance(payload, Initial) and payload.source == self._source:
                    key = (payload.message, payload.source)
                    if key not in self._echoed:
                        self._echoed.add(key)
                        outgoing.append(Broadcast(Echo(*key)))

        # Cumulative distinct-echoer bookkeeping with the classic absolute
        # thresholds: relay at f+1 echoes, accept at 2f+1.
        for sender, payload in view.inbox.items():
            if isinstance(payload, Echo):
                key = (payload.message, payload.source)
                self._echo_senders.setdefault(key, set()).add(sender)

        for key, senders in sorted(self._echo_senders.items(), key=lambda kv: repr(kv[0])):
            if len(senders) >= self._assumed_f + 1 and key not in self._echoed:
                self._echoed.add(key)
                outgoing.append(Broadcast(Echo(*key)))
            if len(senders) >= 2 * self._assumed_f + 1 and key not in self._accepted:
                self._accepted[key] = AcceptanceRecord(
                    message=key[0], source=key[1], round_index=view.round_index
                )
        return outgoing
