"""Classic known-(n, f) baseline algorithms the paper generalises.

These exist for comparison only: they require every node to be configured
with the system size, the fault bound and (for the king rotation) the full
membership list — exactly the knowledge the id-only algorithms avoid.
"""

from .dolev_approx import DolevApproxProcess, trim_f_and_midpoint
from .known_f_consensus import KNOWN_PHASE_LENGTH, KnownFConsensusProcess
from .srikanth_toueg import SrikanthTouegBroadcastProcess

__all__ = [
    "DolevApproxProcess",
    "KNOWN_PHASE_LENGTH",
    "KnownFConsensusProcess",
    "SrikanthTouegBroadcastProcess",
    "trim_f_and_midpoint",
]
