"""Classic approximate agreement with known ``f`` (Dolev et al. 1986).

The known-parameters counterpart of the paper's Algorithm 4: every node
broadcasts its value, discards the ``f`` smallest and ``f`` largest
received values, and outputs the midpoint of the rest.  The only difference
from the id-only algorithm is that the number of discarded values is the
*configured* ``f`` rather than the observed ``⌊nv/3⌋`` — which is exactly
what goes wrong when the configured ``f`` underestimates the real number of
Byzantine nodes (experiment E5) and what is impossible to configure when
the membership is unknown or changing (experiment E10).
"""

from __future__ import annotations

from typing import Sequence

from ..core.approximate_agreement import ValueMessage
from ..sim.messages import Broadcast, NodeId, Outgoing
from ..sim.node import Process, RoundView

__all__ = ["DolevApproxProcess", "trim_f_and_midpoint"]


def trim_f_and_midpoint(values: Sequence[float], assumed_f: int) -> float:
    """Discard ``assumed_f`` values from both ends and take the midpoint."""

    if not values:
        raise ValueError("cannot aggregate an empty set of received values")
    ordered = sorted(float(v) for v in values)
    if len(ordered) > 2 * assumed_f:
        trimmed = ordered[assumed_f : len(ordered) - assumed_f]
    else:
        trimmed = [ordered[len(ordered) // 2]]
    return (trimmed[0] + trimmed[-1]) / 2.0


class DolevApproxProcess(Process):
    """Single-round classic approximate agreement with a configured ``f``."""

    def __init__(
        self, node_id: NodeId, *, input_value: float, assumed_f: int
    ) -> None:
        super().__init__(node_id)
        self._input = float(input_value)
        self._assumed_f = assumed_f
        self._output: float | None = None
        self._received: list[float] = []

    @property
    def input_value(self) -> float:
        return self._input

    @property
    def assumed_f(self) -> int:
        return self._assumed_f

    @property
    def received_values(self) -> tuple[float, ...]:
        return tuple(self._received)

    @property
    def output(self) -> float | None:
        return self._output

    def step(self, view: RoundView) -> Sequence[Outgoing]:
        if view.round_index == 1:
            return [Broadcast(ValueMessage(self._input))]
        if self._output is None:
            values: list[float] = []
            for sender in sorted(view.inbox.senders):
                for payload in view.inbox.payloads_from(sender):
                    if isinstance(payload, ValueMessage):
                        values.append(float(payload.value))
                        break
            self._received = values
            if values:
                self._output = trim_f_and_midpoint(values, self._assumed_f)
            self.halt()
        return ()
