"""Classic king-style consensus with known ``n``, ``f`` and membership.

This is the known-parameters counterpart of the paper's Algorithm 3 (which
itself generalises Berman–Garay–Perry early-stopping consensus).  Because
``n``, ``f`` and the full membership list are known and identifiers can be
ranked, the rotor-coordinator degenerates to "rotate through the ``f + 1``
smallest identifiers", and the relative ``nv/3`` / ``2·nv/3`` thresholds
become the absolute ``f + 1`` / ``n − f``.

The phase structure is kept identical to the id-only implementation (input,
prefer, strongprefer, king, resolve) so that experiment E9's comparison of
round and message complexity isolates exactly the thing the paper changes:
how the thresholds and the coordinator rotation are computed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..core.consensus import ConsensusInput, Prefer, StrongPrefer
from ..core.rotor_coordinator import Opinion
from ..sim.messages import Broadcast, Inbox, NodeId, Outgoing, Payload
from ..sim.node import Process, RoundView

__all__ = ["KnownFConsensusProcess", "KNOWN_PHASE_LENGTH"]

#: Rounds per phase: input, prefer, strongprefer+king-announce, resolve.
KNOWN_PHASE_LENGTH = 4


class KnownFConsensusProcess(Process):
    """A correct participant of the known-(n, f) king consensus.

    Parameters
    ----------
    membership:
        The full, globally known list of node identifiers.
    assumed_f:
        The fault bound used for the ``f + 1`` / ``n − f`` thresholds and
        for the length of the king rotation.
    """

    def __init__(
        self,
        node_id: NodeId,
        *,
        input_value: Hashable,
        membership: Sequence[NodeId],
        assumed_f: int,
    ) -> None:
        super().__init__(node_id)
        self._input = input_value
        self._opinion: Hashable = input_value
        self._membership = sorted(membership)
        self._n = len(self._membership)
        self._f = assumed_f
        self._kings = self._membership[: assumed_f + 1] or self._membership[:1]
        self._phase = 0
        self._output: Hashable | None = None
        self._pending_strong: dict[Hashable, int] = {}
        self._linger = None

    # -- results -----------------------------------------------------------------

    @property
    def input_value(self) -> Hashable:
        return self._input

    @property
    def opinion(self) -> Hashable:
        return self._opinion

    @property
    def output(self) -> Hashable | None:
        return self._output

    @property
    def phase(self) -> int:
        return self._phase

    def king_of_phase(self, phase: int) -> NodeId:
        """The coordinator of a phase: rotate through the f+1 smallest ids."""

        return self._kings[(phase - 1) % len(self._kings)]

    # -- helpers --------------------------------------------------------------------

    @staticmethod
    def _support(inbox: Inbox, message_type: type) -> dict[Hashable, int]:
        supporters: dict[Hashable, set[NodeId]] = {}
        for sender, payload in inbox.items():
            if isinstance(payload, message_type):
                supporters.setdefault(payload.value, set()).add(sender)
        return {value: len(senders) for value, senders in supporters.items()}

    def _best(self, support: dict[Hashable, int], threshold: int) -> Hashable | None:
        candidates = [
            (count, repr(value), value)
            for value, count in support.items()
            if count >= threshold
        ]
        if not candidates:
            return None
        candidates.sort(key=lambda item: (-item[0], item[1]))
        return candidates[0][2]

    # -- the state machine --------------------------------------------------------------

    def step(self, view: RoundView) -> Sequence[Outgoing]:
        if self._output is not None:
            self._linger -= 1
            if self._linger < 0:
                self.halt()
                return ()

        phase_round = (view.round_index - 1) % KNOWN_PHASE_LENGTH + 1
        inbox = view.inbox
        n_minus_f = self._n - self._f
        f_plus_1 = self._f + 1

        if phase_round == 1:
            self._phase += 1
            return [Broadcast(ConsensusInput(self._opinion))]

        if phase_round == 2:
            support = self._support(inbox, ConsensusInput)
            winner = self._best(support, n_minus_f)
            if winner is not None:
                return [Broadcast(Prefer(winner))]
            return ()

        if phase_round == 3:
            support = self._support(inbox, Prefer)
            adopt = self._best(support, f_plus_1)
            if adopt is not None:
                self._opinion = adopt
            payloads: list[Payload] = []
            strong = self._best(support, n_minus_f)
            if strong is not None:
                payloads.append(StrongPrefer(strong))
            if self.king_of_phase(self._phase) == self.node_id:
                payloads.append(Opinion(self._opinion))
            return [Broadcast(p) for p in payloads]

        # phase_round == 4: resolve using the strongprefer counts received
        # this round and the king's opinion broadcast in the previous round.
        support = self._support(inbox, StrongPrefer)
        decide = self._best(support, n_minus_f)
        weak = self._best(support, f_plus_1)
        king = self.king_of_phase(self._phase)
        if weak is None:
            for payload in inbox.payloads_from(king):
                if isinstance(payload, Opinion):
                    self._opinion = payload.value
                    break
        if decide is not None and self._output is None:
            self._output = decide
            self._opinion = decide
            self._linger = KNOWN_PHASE_LENGTH
        return ()
