"""Protocol-aware Byzantine attacks.

Each strategy here crafts syntactically valid messages of one of the core
protocols and uses them adversarially: equivocating as the designated
sender of a reliable broadcast, stuffing the rotor-coordinator's candidate
set with fabricated identifiers, splitting the vote in consensus, skewing
the trimmed mean of approximate agreement, or lying as the selected
coordinator.  These are the behaviours the paper's proofs explicitly have
to defeat, so the experiments run each protocol against the matching
attacks (plus the generic ones from :mod:`repro.adversary.strategies`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from ..core.approximate_agreement import ValueMessage
from ..core.consensus import ConsensusInput, Prefer, StrongPrefer
from ..core.reliable_broadcast import Echo, Initial, Present
from ..core.rotor_coordinator import Opinion, RotorEcho, RotorInit
from ..sim.messages import Broadcast, NodeId, Outgoing, Unicast
from .base import AdversaryContext, AdversaryStrategy, send_split

__all__ = [
    "EquivocatingSenderStrategy",
    "FalseEchoStrategy",
    "ForgedSourceEchoStrategy",
    "CandidateStufferStrategy",
    "SplitEchoStrategy",
    "SplitVoteStrategy",
    "StrongPreferSpooferStrategy",
    "UsurperCoordinatorStrategy",
    "OutlierValueStrategy",
]


# ---------------------------------------------------------------------------
# Reliable broadcast attacks (Algorithm 1)
# ---------------------------------------------------------------------------


@dataclass
class EquivocatingSenderStrategy(AdversaryStrategy):
    """A Byzantine *designated sender* that tells half the system ``m_a`` and
    the other half ``m_b``, then echoes both to keep the confusion alive.

    Reliable broadcast does not promise that a Byzantine sender's message is
    accepted — it promises that correct nodes never accept *conflicting*
    evidence inconsistently (relay keeps acceptance within one round across
    correct nodes).
    """

    message_a: Hashable = "A"
    message_b: Hashable = "B"
    name = "rb-equivocating-sender"

    def act(self, ctx: AdversaryContext) -> Sequence[Outgoing]:
        me = ctx.node_id
        if ctx.round_index == 1:
            return send_split(
                ctx.targets(), Initial(self.message_a, me), Initial(self.message_b, me)
            )
        if ctx.round_index == 2:
            return send_split(
                ctx.targets(), Echo(self.message_a, me), Echo(self.message_b, me)
            )
        return ()


@dataclass
class FalseEchoStrategy(AdversaryStrategy):
    """Echoes a message the designated sender never broadcast.

    Tries to defeat unforgeability: if enough false echoes accumulated, a
    correct node would accept a fabricated ``(m, s)`` for a *correct* ``s``.
    With fewer than ``nv/3`` Byzantine senders this can never reach the
    acceptance quorum (Lemma 2).
    """

    forged_message: Hashable = "forged"
    victim_source: NodeId | None = None
    name = "rb-false-echo"

    def act(self, ctx: AdversaryContext) -> Sequence[Outgoing]:
        if ctx.round_index == 1:
            return [Broadcast(Present())]
        source = self.victim_source
        if source is None:
            correct = sorted(ctx.correct_ids) or sorted(ctx.known_ids)
            if not correct:
                return []
            source = correct[0]
        return [Broadcast(Echo(self.forged_message, source))]


@dataclass
class ForgedSourceEchoStrategy(AdversaryStrategy):
    """Echoes on behalf of a *non-existent* node identifier.

    The model forbids forging the sender field of the direct channel but a
    Byzantine node may claim to have heard from nodes that do not exist;
    this strategy fabricates such claims to inflate candidate/echo counts.
    """

    phantom_id: NodeId = 10_000_000
    forged_message: Hashable = "phantom"
    name = "rb-forged-source"

    def act(self, ctx: AdversaryContext) -> Sequence[Outgoing]:
        if ctx.round_index == 1:
            return [Broadcast(Present())]
        return [Broadcast(Echo(self.forged_message, self.phantom_id))]


# ---------------------------------------------------------------------------
# Rotor-coordinator attacks (Algorithm 2)
# ---------------------------------------------------------------------------


@dataclass
class CandidateStufferStrategy(AdversaryStrategy):
    """Tries to stuff the candidate set ``C_v`` with phantom identifiers so
    the rotation never reaches a correct coordinator.

    Lemma 7's counting argument shows the stuffing cannot outpace the
    rotation: each stuffed identifier costs the adversary a non-silent
    round, and there can be at most ``2f`` of those.
    """

    phantom_ids: tuple[NodeId, ...] = (9_000_001, 9_000_002, 9_000_003)
    participate: bool = True
    name = "rotor-candidate-stuffer"

    def act(self, ctx: AdversaryContext) -> Sequence[Outgoing]:
        if ctx.round_index == 1:
            return [Broadcast(RotorInit())] if self.participate else []
        actions: list[Outgoing] = []
        if ctx.round_index == 2:
            for sender in sorted(ctx.known_ids):
                actions.append(Broadcast(RotorEcho(sender)))
        for phantom in self.phantom_ids:
            actions.append(Broadcast(RotorEcho(phantom)))
        return actions


@dataclass
class SplitEchoStrategy(AdversaryStrategy):
    """Sends ``echo(p)`` for its own identifier to only half of the nodes,
    attempting to make candidate sets diverge persistently.

    The reliable-broadcast style maintenance of ``C_v`` (relay on ``nv/3``)
    bounds the divergence to a single round (Lemma 6).
    """

    name = "rotor-split-echo"

    def act(self, ctx: AdversaryContext) -> Sequence[Outgoing]:
        me = ctx.node_id
        if ctx.round_index == 1:
            targets = ctx.targets()
            half = targets[: len(targets) // 2]
            return [Unicast(dest, RotorInit()) for dest in half]
        return [
            Unicast(dest, RotorEcho(me))
            for index, dest in enumerate(ctx.targets())
            if index % 2 == 0
        ]


@dataclass
class UsurperCoordinatorStrategy(AdversaryStrategy):
    """Behaves just enough to get into the candidate set, then — whenever it
    could plausibly be the selected coordinator — sends *different* opinions
    to different nodes.

    This is the attack the ``f + 1`` rotation is designed to survive: a
    Byzantine coordinator can split opinions for one phase, but a good round
    with a correct coordinator happens before any correct node stops.
    """

    opinion_a: Hashable = 0
    opinion_b: Hashable = 1
    name = "rotor-usurper"

    def act(self, ctx: AdversaryContext) -> Sequence[Outgoing]:
        if ctx.round_index == 1:
            return [Broadcast(RotorInit())]
        if ctx.round_index == 2:
            return [Broadcast(RotorEcho(sender)) for sender in sorted(ctx.known_ids)]
        return send_split(
            ctx.targets(), Opinion(self.opinion_a), Opinion(self.opinion_b)
        )


# ---------------------------------------------------------------------------
# Consensus attacks (Algorithm 3 / 5)
# ---------------------------------------------------------------------------


@dataclass
class SplitVoteStrategy(AdversaryStrategy):
    """Full-stack consensus equivocation.

    Participates in the initialization (so it counts towards every ``nv``),
    then every round sends ``input``/``prefer``/``strongprefer`` for value
    ``a`` to one half of the system and for value ``b`` to the other half,
    and equivocates as coordinator if it is ever selected.
    """

    value_a: Hashable = 0
    value_b: Hashable = 1
    name = "consensus-split-vote"

    def act(self, ctx: AdversaryContext) -> Sequence[Outgoing]:
        if ctx.round_index == 1:
            return [Broadcast(RotorInit())]
        if ctx.round_index == 2:
            return [Broadcast(RotorEcho(sender)) for sender in sorted(ctx.known_ids)]
        actions: list[Outgoing] = []
        targets = ctx.targets()
        half = len(targets) // 2
        for index, dest in enumerate(targets):
            value = self.value_a if index < half else self.value_b
            actions.append(Unicast(dest, ConsensusInput(value)))
            actions.append(Unicast(dest, Prefer(value)))
            actions.append(Unicast(dest, StrongPrefer(value)))
            actions.append(Unicast(dest, Opinion(value)))
        return actions


@dataclass
class StrongPreferSpooferStrategy(AdversaryStrategy):
    """Stays quiet except for ``strongprefer`` spam for a fixed value,
    attempting to trick nodes into terminating with a value nobody input.

    Termination requires ``2·nv/3`` strongprefer support; with fewer than
    ``nv/3`` Byzantine senders the spam can neither trigger termination nor
    (alone) stop nodes from adopting the coordinator's opinion.
    """

    value: Hashable = 1
    name = "consensus-strongprefer-spoofer"

    def act(self, ctx: AdversaryContext) -> Sequence[Outgoing]:
        if ctx.round_index == 1:
            return [Broadcast(RotorInit())]
        if ctx.round_index == 2:
            return [Broadcast(RotorEcho(sender)) for sender in sorted(ctx.known_ids)]
        return [Broadcast(StrongPrefer(self.value))]


# ---------------------------------------------------------------------------
# Approximate agreement attacks (Algorithm 4)
# ---------------------------------------------------------------------------


@dataclass
class OutlierValueStrategy(AdversaryStrategy):
    """Sends wildly different extreme values to different nodes, trying to
    push their trimmed midpoints apart (or outside the correct input range).

    Lemma 12 shows the ``⌊nv/3⌋`` trimming removes every Byzantine value, so
    the outputs stay inside the correct range regardless.
    """

    low: float = -1.0e9
    high: float = 1.0e9
    name = "approx-outlier"

    def act(self, ctx: AdversaryContext) -> Sequence[Outgoing]:
        actions: list[Outgoing] = []
        iteration = ctx.round_index - 1
        for index, dest in enumerate(ctx.targets()):
            value = self.low if index % 2 == 0 else self.high
            actions.append(Unicast(dest, ValueMessage(value, iteration=iteration)))
            if iteration > 0:
                actions.append(
                    Unicast(dest, ValueMessage(value, iteration=iteration - 1))
                )
        return actions
