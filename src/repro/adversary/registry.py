"""Name-based registry of adversary strategies.

The experiment harness and workload generators refer to adversary
behaviours by short names (e.g. ``"silent"``, ``"consensus-split-vote"``)
so that experiment definitions stay declarative and the full strategy
matrix can be enumerated programmatically.
"""

from __future__ import annotations

from typing import Callable

from .base import AdversaryStrategy
from .protocol_attacks import (
    CandidateStufferStrategy,
    EquivocatingSenderStrategy,
    FalseEchoStrategy,
    ForgedSourceEchoStrategy,
    OutlierValueStrategy,
    SplitEchoStrategy,
    SplitVoteStrategy,
    StrongPreferSpooferStrategy,
    UsurperCoordinatorStrategy,
)
from .strategies import (
    CoordinatedEquivocationStrategy,
    CrashStrategy,
    EquivocateValueStrategy,
    RandomNoiseStrategy,
    ReplayStrategy,
    SilentStrategy,
)

__all__ = ["STRATEGY_FACTORIES", "make_strategy", "available_strategies"]

#: Factories for every registered strategy, keyed by its short name.
STRATEGY_FACTORIES: dict[str, Callable[[], AdversaryStrategy]] = {
    "silent": SilentStrategy,
    "crash": CrashStrategy,
    "random-noise": RandomNoiseStrategy,
    "replay": ReplayStrategy,
    "equivocate-value": EquivocateValueStrategy,
    "coordinated-equivocation": CoordinatedEquivocationStrategy,
    "rb-equivocating-sender": EquivocatingSenderStrategy,
    "rb-false-echo": FalseEchoStrategy,
    "rb-forged-source": ForgedSourceEchoStrategy,
    "rotor-candidate-stuffer": CandidateStufferStrategy,
    "rotor-split-echo": SplitEchoStrategy,
    "rotor-usurper": UsurperCoordinatorStrategy,
    "consensus-split-vote": SplitVoteStrategy,
    "consensus-strongprefer-spoofer": StrongPreferSpooferStrategy,
    "approx-outlier": OutlierValueStrategy,
}


def make_strategy(name: str, **kwargs) -> AdversaryStrategy:
    """Instantiate a registered strategy by name.

    Keyword arguments are forwarded to the strategy constructor, so callers
    can customise e.g. the split values of ``consensus-split-vote``.
    """

    try:
        factory = STRATEGY_FACTORIES[name]
    except KeyError as exc:
        known = ", ".join(sorted(STRATEGY_FACTORIES))
        raise KeyError(f"unknown adversary strategy {name!r}; known: {known}") from exc
    return factory(**kwargs)


def available_strategies() -> list[str]:
    """The names of every registered strategy, sorted."""

    return sorted(STRATEGY_FACTORIES)
