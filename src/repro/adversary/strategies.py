"""Protocol-agnostic Byzantine strategies.

These strategies know nothing about the protocol being attacked; they
implement generic misbehaviour (staying silent, crashing, spamming, replay
amplification, value equivocation, or faithfully mimicking a correct node).
Protocol-aware attacks — crafted ``echo``/``prefer``/``opinion`` spoofing —
live in :mod:`repro.adversary.protocol_attacks` because they need the
protocols' message types.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..sim.messages import Broadcast, Outgoing, Payload, Unicast
from ..sim.node import Process, RoundView
from .base import AdversaryContext, AdversaryStrategy, send_split

__all__ = [
    "SilentStrategy",
    "CrashStrategy",
    "RandomNoiseStrategy",
    "ReplayStrategy",
    "EquivocateValueStrategy",
    "MimicStrategy",
    "DelayedStrategy",
    "CoordinatedEquivocationStrategy",
]


class SilentStrategy(AdversaryStrategy):
    """Never sends anything.

    The mildest Byzantine behaviour — equivalent to an initially crashed
    node.  Correct nodes simply never learn that this node exists, which is
    exactly the "a Byzantine node may get itself known to only a subset of
    nodes" scenario the paper's model allows.
    """

    name = "silent"

    def act(self, ctx: AdversaryContext) -> Sequence[Outgoing]:  # noqa: ARG002
        return ()


@dataclass
class CrashStrategy(AdversaryStrategy):
    """Participates honestly-looking (broadcasts a filler payload) for a few
    rounds, then crashes and stays silent forever.

    ``filler`` is the payload broadcast while alive; protocols that expect a
    "present"/"init" first-round message can be given the appropriate
    payload by the workload generator.
    """

    crash_after_round: int = 1
    filler: Payload = "present"
    name = "crash"

    def act(self, ctx: AdversaryContext) -> Sequence[Outgoing]:
        if ctx.round_index > self.crash_after_round:
            return ()
        return [Broadcast(self.filler)]


@dataclass
class RandomNoiseStrategy(AdversaryStrategy):
    """Broadcasts payloads drawn from a caller-supplied factory.

    The factory receives the adversary context so it can construct
    syntactically valid protocol messages with garbage contents; the default
    factory produces opaque tokens that correct protocols ignore, which
    still stresses the ``nv`` bookkeeping (the noise node becomes a known
    sender everywhere).
    """

    payload_factory: Callable[[AdversaryContext], Payload] | None = None
    messages_per_round: int = 1
    name = "random-noise"

    def act(self, ctx: AdversaryContext) -> Sequence[Outgoing]:
        actions: list[Outgoing] = []
        for i in range(self.messages_per_round):
            if self.payload_factory is not None:
                payload = self.payload_factory(ctx)
            else:
                payload = ("noise", int(ctx.rng.integers(0, 1_000_000)), i)
            actions.append(Broadcast(payload))
        return actions


@dataclass
class ReplayStrategy(AdversaryStrategy):
    """Re-broadcasts every payload it received in the previous round.

    An amplification attack: the adversary tries to push other nodes over
    their relative thresholds by repeating whatever echoes are in flight.
    (The model permits duplicates across rounds; within a round duplicates
    are discarded by the receivers.)
    """

    name = "replay"

    def act(self, ctx: AdversaryContext) -> Sequence[Outgoing]:
        seen: list[Payload] = []
        for _, payload in ctx.view.inbox.items():
            if payload not in seen:
                seen.append(payload)
        return [Broadcast(payload) for payload in seen]


@dataclass
class EquivocateValueStrategy(AdversaryStrategy):
    """Sends ``payload_a`` to one half of the system and ``payload_b`` to the
    other half, every round.

    This is the generic "conflicting information" behaviour the paper's
    model explicitly allows and that reliable broadcast is designed to
    neutralise.
    """

    payload_a: Payload = ("value", 0)
    payload_b: Payload = ("value", 1)
    name = "equivocate-value"

    def act(self, ctx: AdversaryContext) -> Sequence[Outgoing]:
        return send_split(ctx.targets(), self.payload_a, self.payload_b)


class MimicStrategy(AdversaryStrategy):
    """Runs a real correct protocol process and forwards its messages.

    A Byzantine node that behaves correctly is the hardest case to *detect*
    and the easiest to *tolerate*; experiments use it as a sanity baseline
    (protocol guarantees must hold a fortiori).
    """

    name = "mimic-correct"

    def __init__(self, inner_factory: Callable[[int], Process]) -> None:
        self._inner_factory = inner_factory
        self._inner: Process | None = None

    def act(self, ctx: AdversaryContext) -> Sequence[Outgoing]:
        if self._inner is None:
            self._inner = self._inner_factory(ctx.node_id)
        if self._inner.halted:
            return ()
        return list(self._inner.step(RoundView(ctx.round_index, ctx.view.inbox)))


@dataclass
class CoordinatedEquivocationStrategy(AdversaryStrategy):
    """Phased, coordinated, multi-round equivocation.

    For the first ``quiet_rounds`` rounds after activation the node looks
    honest — it broadcasts ``filler`` so every correct node counts it into
    its membership estimate ``nv`` (raising the relative thresholds the
    later lies have to clear).  From then on it splits the membership into
    two deterministic halves (sorted ids, :func:`send_split`) and sends
    ``payload_a`` to one half and ``payload_b`` to the other, swapping the
    halves on every odd round so each victim accumulates *both* conflicting
    values over time.

    The coordination is free: every Byzantine node running this strategy
    derives the same halves from the same sorted target list and the same
    global round parity, so ``f`` attackers push the same lie at the same
    victims simultaneously — the strongest form of the conflicting-
    information behaviour the paper's model allows, without any covert
    channel.  Activation state lives in ``ctx.memory`` so the phase
    counter survives across rounds and composes with late joins (a joiner
    starts its own quiet phase at its first active round).
    """

    quiet_rounds: int = 2
    payload_a: Payload = ("value", 0)
    payload_b: Payload = ("value", 1)
    flip_each_round: bool = True
    filler: Payload = "present"
    name = "coordinated-equivocation"

    def act(self, ctx: AdversaryContext) -> Sequence[Outgoing]:
        memory = ctx.memory.setdefault("coordinated-equivocation", {})
        start = memory.setdefault("first_round", ctx.round_index)
        if ctx.round_index - start < self.quiet_rounds:
            return [Broadcast(self.filler)]
        payload_a, payload_b = self.payload_a, self.payload_b
        # Parity of the *global* round, not the local phase: nodes that
        # activated in different rounds still flip in lock-step.
        if self.flip_each_round and ctx.round_index % 2 == 1:
            payload_a, payload_b = payload_b, payload_a
        return send_split(ctx.targets(), payload_a, payload_b)


@dataclass
class DelayedStrategy(AdversaryStrategy):
    """Stays silent until ``start_round`` and then delegates to ``inner``.

    Models a late-revealing Byzantine node: correct nodes' ``nv`` counters
    do not include it initially, which is precisely the situation the
    relative (nv/3) thresholds have to survive.
    """

    inner: AdversaryStrategy
    start_round: int = 3
    name = "delayed"

    def act(self, ctx: AdversaryContext) -> Sequence[Outgoing]:
        if ctx.round_index < self.start_round:
            return ()
        return self.inner.act(ctx)
