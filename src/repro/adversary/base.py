"""Byzantine process machinery.

A Byzantine node in the simulator is a :class:`ByzantineProcess` — an
ordinary :class:`~repro.sim.node.Process` whose behaviour is supplied by an
:class:`AdversaryStrategy`.  The strategy receives an
:class:`AdversaryContext` each round containing:

* its own inbox (Byzantine nodes receive messages like everyone else);
* the accumulated set of node identifiers it has heard from;
* optionally, an omniscient :class:`~repro.sim.network.SystemView` with the
  full membership and read access to the correct processes' public state
  (strongest possible adversary, as the paper's proofs assume);
* its own random generator and a persistent ``memory`` dict for
  stateful strategies.

Strategies return a list of :class:`~repro.sim.messages.Broadcast` /
:class:`~repro.sim.messages.Unicast` actions, so equivocation (sending
different payloads to different destinations) is expressed directly with
unicasts.  The one thing a strategy can *not* do is forge the sender field —
the network stamps the true identifier on every envelope, exactly as the
model prescribes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Sequence

import numpy as np

from ..sim.messages import Broadcast, NodeId, Outgoing, Payload, Unicast, intern_payload
from ..sim.network import SystemView
from ..sim.node import Process, RoundView
from ..sim.rng import make_rng

__all__ = ["AdversaryContext", "AdversaryStrategy", "ByzantineProcess", "send_split"]


@dataclass
class AdversaryContext:
    """Everything an adversary strategy may look at in one round."""

    node_id: NodeId
    view: RoundView
    known_ids: frozenset[NodeId]
    system: SystemView | None
    rng: np.random.Generator
    memory: dict[str, Any] = field(default_factory=dict)

    @property
    def round_index(self) -> int:
        return self.view.round_index

    @property
    def correct_ids(self) -> frozenset[NodeId]:
        """Correct node identifiers, if the omniscient view is available."""

        if self.system is None:
            return frozenset()
        return self.system.correct_ids

    def targets(self) -> list[NodeId]:
        """A deterministic list of nodes worth sending to.

        Prefers the omniscient membership when available, otherwise falls
        back to the identifiers this node has heard from (which is all a
        non-omniscient Byzantine node could know).
        """

        if self.system is not None:
            return sorted(self.system.active_ids)
        return sorted(self.known_ids | {self.node_id})


class AdversaryStrategy(abc.ABC):
    """A pluggable Byzantine behaviour."""

    #: Human-readable name used by the registry and by experiment reports.
    name: str = "abstract"

    @abc.abstractmethod
    def act(self, ctx: AdversaryContext) -> Sequence[Outgoing]:
        """Produce this node's messages for the current round."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


class ByzantineProcess(Process):
    """A network participant controlled by an adversary strategy."""

    def __init__(
        self,
        node_id: NodeId,
        strategy: AdversaryStrategy,
        *,
        seed: int = 0,
    ) -> None:
        super().__init__(node_id)
        self._strategy = strategy
        self._rng = make_rng(seed)
        self._system: SystemView | None = None
        self._known: frozenset[NodeId] = frozenset()
        self._memory: dict[str, Any] = {}

    @property
    def is_byzantine(self) -> bool:
        return True

    @property
    def strategy(self) -> AdversaryStrategy:
        return self._strategy

    def observe_system(self, system: SystemView) -> None:
        """Called by the network before each round (omniscient adversary)."""

        self._system = system

    def step(self, view: RoundView) -> Sequence[Outgoing]:
        # Same shared-union memoization as KnownSenders.observe: every
        # Byzantine node with the same prior membership reuses one union
        # per shared inbox instead of copying an O(n) frozenset a round.
        known = self._known
        self._known = known = view.inbox.memo(
            ("byz-known", known),
            lambda ib: intern_payload(known | ib.senders),
        )
        ctx = AdversaryContext(
            node_id=self.node_id,
            view=view,
            known_ids=known,
            system=self._system,
            rng=self._rng,
            memory=self._memory,
        )
        return list(self._strategy.act(ctx))


def send_split(
    targets: Sequence[NodeId],
    payload_a: Payload,
    payload_b: Payload,
) -> list[Outgoing]:
    """Send ``payload_a`` to the first half of ``targets`` and ``payload_b``
    to the second half — the canonical equivocation pattern.
    """

    actions: list[Outgoing] = []
    half = len(targets) // 2
    for index, dest in enumerate(targets):
        payload = payload_a if index < half else payload_b
        actions.append(Unicast(dest, payload))
    return actions
