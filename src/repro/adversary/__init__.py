"""Byzantine adversary strategies and the Byzantine process wrapper."""

from .base import AdversaryContext, AdversaryStrategy, ByzantineProcess, send_split
from .protocol_attacks import (
    CandidateStufferStrategy,
    EquivocatingSenderStrategy,
    FalseEchoStrategy,
    ForgedSourceEchoStrategy,
    OutlierValueStrategy,
    SplitEchoStrategy,
    SplitVoteStrategy,
    StrongPreferSpooferStrategy,
    UsurperCoordinatorStrategy,
)
from .registry import STRATEGY_FACTORIES, available_strategies, make_strategy
from .strategies import (
    CoordinatedEquivocationStrategy,
    CrashStrategy,
    DelayedStrategy,
    EquivocateValueStrategy,
    MimicStrategy,
    RandomNoiseStrategy,
    ReplayStrategy,
    SilentStrategy,
)

__all__ = [
    "AdversaryContext",
    "AdversaryStrategy",
    "ByzantineProcess",
    "CandidateStufferStrategy",
    "CoordinatedEquivocationStrategy",
    "CrashStrategy",
    "DelayedStrategy",
    "EquivocateValueStrategy",
    "EquivocatingSenderStrategy",
    "FalseEchoStrategy",
    "ForgedSourceEchoStrategy",
    "MimicStrategy",
    "OutlierValueStrategy",
    "RandomNoiseStrategy",
    "ReplayStrategy",
    "STRATEGY_FACTORIES",
    "SilentStrategy",
    "SplitEchoStrategy",
    "SplitVoteStrategy",
    "StrongPreferSpooferStrategy",
    "UsurperCoordinatorStrategy",
    "available_strategies",
    "make_strategy",
    "send_split",
]
