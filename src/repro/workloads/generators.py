"""Workload primitives: identifiers, inputs, and network assembly.

The experiments and the integration tests all construct simulated systems
the same way: pick a set of sparse (non-consecutive) identifiers, decide
which of them are Byzantine, instantiate the protocol processes for the
correct nodes and an adversary strategy for each Byzantine node, and wire
everything into a :class:`~repro.sim.network.SynchronousNetwork`.  This
module holds those primitives (:func:`sparse_ids`, :func:`build_network`,
:class:`SystemSpec`, …).

The per-protocol ``*_system`` helpers that used to live here are now thin
**deprecated shims** over the declarative :mod:`repro.api` layer: construct
a :class:`repro.api.ScenarioSpec` and call :func:`repro.api.build_system`
(or :func:`repro.api.run_scenario`) instead.  The shims build identical
systems for identical seeds, so existing code keeps reproducing the same
executions while it migrates.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

import numpy as np

from ..adversary.base import AdversaryStrategy, ByzantineProcess
from ..adversary.registry import make_strategy
from ..sim.delays import DelayModel
from ..sim.messages import NodeId
from ..sim.network import SynchronousNetwork
from ..sim.node import Process
from ..sim.rng import derive, make_rng

__all__ = [
    "sparse_ids",
    "split_correct_byzantine",
    "binary_inputs",
    "real_inputs",
    "SystemSpec",
    "build_network",
    "reliable_broadcast_system",
    "rotor_coordinator_system",
    "consensus_system",
    "approximate_agreement_system",
]


def sparse_ids(n: int, *, seed: int = 0, low: int = 10, high: int = 1_000_000) -> list[NodeId]:
    """Generate ``n`` unique, non-consecutive identifiers.

    The id-only model stresses that identifiers are unique but *not*
    consecutive, so every workload draws them at random from a large space.
    """

    if n < 1:
        raise ValueError("n must be positive")
    if high - low < n:
        raise ValueError("identifier space too small for n nodes")
    rng = make_rng(seed)
    ids: set[int] = set()
    while len(ids) < n:
        ids.update(int(x) for x in rng.integers(low, high, size=n - len(ids)))
    return sorted(ids)


def split_correct_byzantine(
    ids: Sequence[NodeId], f: int, *, seed: int = 0
) -> tuple[list[NodeId], list[NodeId]]:
    """Choose which ``f`` of the identifiers are Byzantine (uniformly)."""

    if f < 0 or f > len(ids):
        raise ValueError("f must be between 0 and n")
    rng = make_rng(seed)
    byz = set(
        int(ids[i]) for i in rng.choice(len(ids), size=f, replace=False)
    ) if f else set()
    correct = [i for i in ids if i not in byz]
    return correct, sorted(byz)


def binary_inputs(
    correct_ids: Sequence[NodeId], *, ones_fraction: float = 0.5, seed: int = 0
) -> dict[NodeId, int]:
    """Assign binary inputs with roughly ``ones_fraction`` ones."""

    rng = make_rng(seed)
    shuffled = list(correct_ids)
    rng.shuffle(shuffled)
    ones = int(round(ones_fraction * len(shuffled)))
    return {node: (1 if index < ones else 0) for index, node in enumerate(shuffled)}


def real_inputs(
    correct_ids: Sequence[NodeId],
    *,
    low: float = 0.0,
    high: float = 100.0,
    seed: int = 0,
) -> dict[NodeId, float]:
    """Assign uniformly random real inputs in ``[low, high]``."""

    rng = make_rng(seed)
    return {node: float(rng.uniform(low, high)) for node in sorted(correct_ids)}


@dataclass
class SystemSpec:
    """A fully specified simulated system, ready to run."""

    network: SynchronousNetwork
    correct_ids: list[NodeId]
    byzantine_ids: list[NodeId]
    params: dict[str, object] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return len(self.correct_ids) + len(self.byzantine_ids)

    @property
    def f(self) -> int:
        return len(self.byzantine_ids)

    def correct_processes(self) -> dict[NodeId, Process]:
        return {i: self.network.process(i) for i in self.correct_ids}


def _resolve_strategy(
    strategy: str | AdversaryStrategy | Callable[[], AdversaryStrategy] | None,
) -> Callable[[], AdversaryStrategy]:
    """Normalise the many ways callers can specify an adversary."""

    if strategy is None:
        return lambda: make_strategy("silent")
    if isinstance(strategy, str):
        return lambda: make_strategy(strategy)
    if isinstance(strategy, AdversaryStrategy):
        return lambda: strategy
    return strategy


def build_network(
    *,
    correct_factory: Callable[[NodeId], Process],
    correct_ids: Sequence[NodeId],
    byzantine_ids: Sequence[NodeId] = (),
    strategy: str | AdversaryStrategy | Callable[[], AdversaryStrategy] | None = None,
    seed: int = 0,
    delay_model: DelayModel | None = None,
    trace: bool = False,
) -> SystemSpec:
    """Assemble a network from per-node factories and an adversary spec."""

    strategy_factory = _resolve_strategy(strategy)
    processes: list[Process] = [correct_factory(node) for node in correct_ids]
    for index, node in enumerate(byzantine_ids):
        processes.append(
            ByzantineProcess(
                node,
                strategy_factory(),
                seed=derive(seed, "byz", node, index),
            )
        )
    network = SynchronousNetwork(
        processes, seed=derive(seed, "network"), delay_model=delay_model, trace=trace
    )
    return SystemSpec(
        network=network,
        correct_ids=list(correct_ids),
        byzantine_ids=list(byzantine_ids),
    )


# ---------------------------------------------------------------------------
# Deprecated per-protocol shims (migrate to repro.api)
# ---------------------------------------------------------------------------


def _deprecated_shim(helper: str, protocol: str) -> None:
    warnings.warn(
        f"repro.workloads.{helper}() is deprecated; build a "
        f"repro.api.ScenarioSpec(protocol={protocol!r}, ...) and use "
        "repro.api.build_system()/run_scenario() instead",
        DeprecationWarning,
        stacklevel=3,
    )


def _shim_build(
    protocol: str,
    n: int,
    f: int,
    *,
    strategy: str | AdversaryStrategy | Callable[[], AdversaryStrategy] | None,
    seed: int,
    trace: bool,
    inputs: str = "default",
    input_params: dict | None = None,
    params: dict | None = None,
) -> SystemSpec:
    """Route a legacy helper call through the declarative registry.

    String strategies travel inside the spec; live strategy objects (which
    are not JSON-representable) are forwarded as a build-time override.
    """

    from ..api.registry import build_system
    from ..api.spec import ScenarioSpec

    named = strategy if isinstance(strategy, str) else "silent"
    override = None if isinstance(strategy, str) or strategy is None else strategy
    spec = ScenarioSpec(
        protocol=protocol,
        n=n,
        f=f,
        adversary=named,
        seed=seed,
        trace=trace,
        inputs=inputs,
        input_params=input_params or {},
        params=params or {},
    )
    return build_system(spec, strategy=override)


def reliable_broadcast_system(
    n: int,
    f: int,
    *,
    message: Hashable = "hello",
    strategy: str | AdversaryStrategy | None = None,
    byzantine_sender: bool = False,
    seed: int = 0,
    trace: bool = False,
) -> SystemSpec:
    """Deprecated: Algorithm 1 workload (use ``protocol="reliable-broadcast"``).

    When ``byzantine_sender`` is true the designated sender is one of the
    Byzantine nodes (the interesting case for the unforgeability and relay
    properties); otherwise the sender is the correct node with the smallest
    identifier.
    """

    _deprecated_shim("reliable_broadcast_system", "reliable-broadcast")
    return _shim_build(
        "reliable-broadcast",
        n,
        f,
        strategy=strategy,
        seed=seed,
        trace=trace,
        params={"message": message, "byzantine_sender": byzantine_sender},
    )


def rotor_coordinator_system(
    n: int,
    f: int,
    *,
    strategy: str | AdversaryStrategy | None = None,
    seed: int = 0,
    trace: bool = False,
) -> SystemSpec:
    """Deprecated: Algorithm 2 workload (use ``protocol="rotor-coordinator"``)."""

    _deprecated_shim("rotor_coordinator_system", "rotor-coordinator")
    return _shim_build(
        "rotor-coordinator", n, f, strategy=strategy, seed=seed, trace=trace
    )


def consensus_system(
    n: int,
    f: int,
    *,
    inputs: dict[NodeId, Hashable] | None = None,
    ones_fraction: float = 0.5,
    strategy: str | AdversaryStrategy | None = None,
    seed: int = 0,
    trace: bool = False,
    substitution: str = "narrow",
) -> SystemSpec:
    """Deprecated: Algorithm 3 workload (use ``protocol="consensus"``).

    ``substitution`` is forwarded to :class:`ConsensusProcess`; the
    non-default ``"broad"`` value exists only for the A1 ablation.
    """

    _deprecated_shim("consensus_system", "consensus")
    if inputs is None:
        kind, options = "binary", {"ones_fraction": ones_fraction}
    else:
        kind, options = "explicit", {"values": dict(inputs)}
    return _shim_build(
        "consensus",
        n,
        f,
        strategy=strategy,
        seed=seed,
        trace=trace,
        inputs=kind,
        input_params=options,
        params={"substitution": substitution},
    )


def approximate_agreement_system(
    n: int,
    f: int,
    *,
    inputs: dict[NodeId, float] | None = None,
    low: float = 0.0,
    high: float = 100.0,
    iterations: int = 1,
    strategy: str | AdversaryStrategy | None = None,
    seed: int = 0,
    trace: bool = False,
) -> SystemSpec:
    """Deprecated: Algorithm 4 workload (use ``protocol="approximate-agreement"``).

    ``iterations == 1`` builds the single-shot Algorithm 4; larger values
    build the iterated variant used for the convergence experiment E4 and
    the dynamic-network experiment E10.
    """

    _deprecated_shim("approximate_agreement_system", "approximate-agreement")
    if inputs is None:
        kind, options = "real", {"low": low, "high": high}
    else:
        kind, options = "explicit", {"values": dict(inputs)}
    return _shim_build(
        "approximate-agreement",
        n,
        f,
        strategy=strategy,
        seed=seed,
        trace=trace,
        inputs=kind,
        input_params=options,
        params={"iterations": iterations},
    )
