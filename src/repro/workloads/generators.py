"""Workload generators: identifiers, inputs, adversary placement, networks.

The experiments and the integration tests all construct simulated systems
the same way: pick a set of sparse (non-consecutive) identifiers, decide
which of them are Byzantine, instantiate the protocol processes for the
correct nodes and an adversary strategy for each Byzantine node, and wire
everything into a :class:`~repro.sim.network.SynchronousNetwork`.  This
module is the single place where that assembly logic lives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Hashable, Sequence

import numpy as np

from ..adversary.base import AdversaryStrategy, ByzantineProcess
from ..adversary.registry import make_strategy
from ..core.approximate_agreement import (
    ApproximateAgreementProcess,
    IteratedApproximateAgreementProcess,
)
from ..core.consensus import ConsensusProcess
from ..core.reliable_broadcast import ReliableBroadcastProcess
from ..core.rotor_coordinator import RotorCoordinatorProcess
from ..sim.delays import DelayModel
from ..sim.messages import NodeId
from ..sim.network import SynchronousNetwork
from ..sim.node import Process
from ..sim.rng import derive, make_rng

__all__ = [
    "sparse_ids",
    "split_correct_byzantine",
    "binary_inputs",
    "real_inputs",
    "SystemSpec",
    "build_network",
    "reliable_broadcast_system",
    "rotor_coordinator_system",
    "consensus_system",
    "approximate_agreement_system",
]


def sparse_ids(n: int, *, seed: int = 0, low: int = 10, high: int = 1_000_000) -> list[NodeId]:
    """Generate ``n`` unique, non-consecutive identifiers.

    The id-only model stresses that identifiers are unique but *not*
    consecutive, so every workload draws them at random from a large space.
    """

    if n < 1:
        raise ValueError("n must be positive")
    if high - low < n:
        raise ValueError("identifier space too small for n nodes")
    rng = make_rng(seed)
    ids: set[int] = set()
    while len(ids) < n:
        ids.update(int(x) for x in rng.integers(low, high, size=n - len(ids)))
    return sorted(ids)


def split_correct_byzantine(
    ids: Sequence[NodeId], f: int, *, seed: int = 0
) -> tuple[list[NodeId], list[NodeId]]:
    """Choose which ``f`` of the identifiers are Byzantine (uniformly)."""

    if f < 0 or f > len(ids):
        raise ValueError("f must be between 0 and n")
    rng = make_rng(seed)
    byz = set(
        int(ids[i]) for i in rng.choice(len(ids), size=f, replace=False)
    ) if f else set()
    correct = [i for i in ids if i not in byz]
    return correct, sorted(byz)


def binary_inputs(
    correct_ids: Sequence[NodeId], *, ones_fraction: float = 0.5, seed: int = 0
) -> dict[NodeId, int]:
    """Assign binary inputs with roughly ``ones_fraction`` ones."""

    rng = make_rng(seed)
    shuffled = list(correct_ids)
    rng.shuffle(shuffled)
    ones = int(round(ones_fraction * len(shuffled)))
    return {node: (1 if index < ones else 0) for index, node in enumerate(shuffled)}


def real_inputs(
    correct_ids: Sequence[NodeId],
    *,
    low: float = 0.0,
    high: float = 100.0,
    seed: int = 0,
) -> dict[NodeId, float]:
    """Assign uniformly random real inputs in ``[low, high]``."""

    rng = make_rng(seed)
    return {node: float(rng.uniform(low, high)) for node in sorted(correct_ids)}


@dataclass
class SystemSpec:
    """A fully specified simulated system, ready to run."""

    network: SynchronousNetwork
    correct_ids: list[NodeId]
    byzantine_ids: list[NodeId]
    params: dict[str, object] = field(default_factory=dict)

    @property
    def n(self) -> int:
        return len(self.correct_ids) + len(self.byzantine_ids)

    @property
    def f(self) -> int:
        return len(self.byzantine_ids)

    def correct_processes(self) -> dict[NodeId, Process]:
        return {i: self.network.process(i) for i in self.correct_ids}


def _resolve_strategy(
    strategy: str | AdversaryStrategy | Callable[[], AdversaryStrategy] | None,
) -> Callable[[], AdversaryStrategy]:
    """Normalise the many ways callers can specify an adversary."""

    if strategy is None:
        return lambda: make_strategy("silent")
    if isinstance(strategy, str):
        return lambda: make_strategy(strategy)
    if isinstance(strategy, AdversaryStrategy):
        return lambda: strategy
    return strategy


def build_network(
    *,
    correct_factory: Callable[[NodeId], Process],
    correct_ids: Sequence[NodeId],
    byzantine_ids: Sequence[NodeId] = (),
    strategy: str | AdversaryStrategy | Callable[[], AdversaryStrategy] | None = None,
    seed: int = 0,
    delay_model: DelayModel | None = None,
    trace: bool = False,
) -> SystemSpec:
    """Assemble a network from per-node factories and an adversary spec."""

    strategy_factory = _resolve_strategy(strategy)
    processes: list[Process] = [correct_factory(node) for node in correct_ids]
    for index, node in enumerate(byzantine_ids):
        processes.append(
            ByzantineProcess(
                node,
                strategy_factory(),
                seed=derive(seed, "byz", node, index),
            )
        )
    network = SynchronousNetwork(
        processes, seed=derive(seed, "network"), delay_model=delay_model, trace=trace
    )
    return SystemSpec(
        network=network,
        correct_ids=list(correct_ids),
        byzantine_ids=list(byzantine_ids),
    )


# ---------------------------------------------------------------------------
# Ready-made systems for each protocol
# ---------------------------------------------------------------------------


def reliable_broadcast_system(
    n: int,
    f: int,
    *,
    message: Hashable = "hello",
    strategy: str | AdversaryStrategy | None = None,
    byzantine_sender: bool = False,
    seed: int = 0,
    trace: bool = False,
) -> SystemSpec:
    """Algorithm 1 workload: one designated sender, ``f`` Byzantine nodes.

    When ``byzantine_sender`` is true the designated sender is one of the
    Byzantine nodes (the interesting case for the unforgeability and relay
    properties); otherwise the sender is the correct node with the smallest
    identifier.
    """

    ids = sparse_ids(n, seed=derive(seed, "ids"))
    correct, byz = split_correct_byzantine(ids, f, seed=derive(seed, "split"))
    if byzantine_sender and byz:
        source = byz[0]
    else:
        source = correct[0]
    spec = build_network(
        correct_factory=lambda node: ReliableBroadcastProcess(
            node, source=source, message=message
        ),
        correct_ids=correct,
        byzantine_ids=byz,
        strategy=strategy,
        seed=seed,
        trace=trace,
    )
    spec.params.update({"source": source, "message": message})
    return spec


def rotor_coordinator_system(
    n: int,
    f: int,
    *,
    strategy: str | AdversaryStrategy | None = None,
    seed: int = 0,
    trace: bool = False,
) -> SystemSpec:
    """Algorithm 2 workload: every correct node runs the rotor-coordinator."""

    ids = sparse_ids(n, seed=derive(seed, "ids"))
    correct, byz = split_correct_byzantine(ids, f, seed=derive(seed, "split"))
    spec = build_network(
        correct_factory=lambda node: RotorCoordinatorProcess(node, opinion=node),
        correct_ids=correct,
        byzantine_ids=byz,
        strategy=strategy,
        seed=seed,
        trace=trace,
    )
    return spec


def consensus_system(
    n: int,
    f: int,
    *,
    inputs: dict[NodeId, Hashable] | None = None,
    ones_fraction: float = 0.5,
    strategy: str | AdversaryStrategy | None = None,
    seed: int = 0,
    trace: bool = False,
    substitution: str = "narrow",
) -> SystemSpec:
    """Algorithm 3 workload with binary (or caller-supplied) inputs.

    ``substitution`` is forwarded to :class:`ConsensusProcess`; the
    non-default ``"broad"`` value exists only for the A1 ablation.
    """

    ids = sparse_ids(n, seed=derive(seed, "ids"))
    correct, byz = split_correct_byzantine(ids, f, seed=derive(seed, "split"))
    if inputs is None:
        inputs = binary_inputs(
            correct, ones_fraction=ones_fraction, seed=derive(seed, "inputs")
        )
    spec = build_network(
        correct_factory=lambda node: ConsensusProcess(
            node, input_value=inputs[node], substitution=substitution
        ),
        correct_ids=correct,
        byzantine_ids=byz,
        strategy=strategy,
        seed=seed,
        trace=trace,
    )
    spec.params.update({"inputs": dict(inputs)})
    return spec


def approximate_agreement_system(
    n: int,
    f: int,
    *,
    inputs: dict[NodeId, float] | None = None,
    low: float = 0.0,
    high: float = 100.0,
    iterations: int = 1,
    strategy: str | AdversaryStrategy | None = None,
    seed: int = 0,
    trace: bool = False,
) -> SystemSpec:
    """Algorithm 4 workload with real-valued inputs.

    ``iterations == 1`` builds the single-shot Algorithm 4; larger values
    build the iterated variant used for the convergence experiment E4 and
    the dynamic-network experiment E10.
    """

    ids = sparse_ids(n, seed=derive(seed, "ids"))
    correct, byz = split_correct_byzantine(ids, f, seed=derive(seed, "split"))
    if inputs is None:
        inputs = real_inputs(correct, low=low, high=high, seed=derive(seed, "inputs"))

    def factory(node: NodeId) -> Process:
        if iterations <= 1:
            return ApproximateAgreementProcess(node, input_value=inputs[node])
        return IteratedApproximateAgreementProcess(
            node, input_value=inputs[node], iterations=iterations
        )

    spec = build_network(
        correct_factory=factory,
        correct_ids=correct,
        byzantine_ids=byz,
        strategy=strategy,
        seed=seed,
        trace=trace,
    )
    spec.params.update({"inputs": dict(inputs), "iterations": iterations})
    return spec
