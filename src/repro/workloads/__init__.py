"""Workload primitives: identifiers, inputs, adversary placement, networks.

The ``*_system`` helpers re-exported here are deprecated shims; build a
:class:`repro.api.ScenarioSpec` and use :func:`repro.api.run_scenario` or
:func:`repro.api.build_system` instead.
"""

from .generators import (
    SystemSpec,
    approximate_agreement_system,
    binary_inputs,
    build_network,
    consensus_system,
    real_inputs,
    reliable_broadcast_system,
    rotor_coordinator_system,
    sparse_ids,
    split_correct_byzantine,
)

__all__ = [
    "SystemSpec",
    "approximate_agreement_system",
    "binary_inputs",
    "build_network",
    "consensus_system",
    "real_inputs",
    "reliable_broadcast_system",
    "rotor_coordinator_system",
    "sparse_ids",
    "split_correct_byzantine",
]
