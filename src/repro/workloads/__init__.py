"""Workload construction: identifiers, inputs, adversary placement, systems."""

from .generators import (
    SystemSpec,
    approximate_agreement_system,
    binary_inputs,
    build_network,
    consensus_system,
    real_inputs,
    reliable_broadcast_system,
    rotor_coordinator_system,
    sparse_ids,
    split_correct_byzantine,
)

__all__ = [
    "SystemSpec",
    "approximate_agreement_system",
    "binary_inputs",
    "build_network",
    "consensus_system",
    "real_inputs",
    "reliable_broadcast_system",
    "rotor_coordinator_system",
    "sparse_ids",
    "split_correct_byzantine",
]
