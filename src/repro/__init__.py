"""repro — Byzantine agreement with unknown participants and failures.

A reproduction of Khanchandani & Wattenhofer, *Byzantine Agreement with
Unknown Participants and Failures* (IPDPS 2021, arXiv:2102.10442): the
id-only agreement algorithms (reliable broadcast, rotor-coordinator,
consensus, approximate agreement, parallel consensus, dynamic total
ordering), the synchronous round-based simulator they run on, Byzantine
adversary strategies, classic known-(n, f) baselines, and the experiment
harness that regenerates the evaluation described in ``DESIGN.md``.

Quick start — the declarative :mod:`repro.api` layer is the front door::

    from repro.api import ScenarioSpec, run_scenario

    outcome = run_scenario(
        ScenarioSpec(protocol="consensus", n=10, f=3,
                     adversary="consensus-split-vote", seed=1)
    )
    print(outcome.result.decided_outputs())

Sweeps over cartesian grids run through the same layer, in parallel::

    from repro.api import SweepSpec, run_sweep

    rows = run_sweep(
        SweepSpec(protocol="consensus",
                  grid={"n": (4, 7, 10, 13),
                        "adversary": ("silent", "consensus-split-vote")},
                  repetitions=5),
        jobs=4,                       # bit-identical to jobs=1
        group_by=("n", "adversary"),
        metrics=("agreement", "rounds", "messages"),
    )

Migration note: the per-protocol helpers ``consensus_system``,
``reliable_broadcast_system``, ``rotor_coordinator_system`` and
``approximate_agreement_system`` in :mod:`repro.workloads` are deprecated
shims kept for backwards compatibility.  Replace
``consensus_system(n, f, strategy=..., seed=...)`` with
``run_scenario(ScenarioSpec(protocol="consensus", n=n, f=f,
adversary=..., seed=...))`` — identical seeds build identical systems —
and see :func:`repro.api.available_protocols` for every registered name.
"""

from . import adversary, analysis, api, baselines, core, dynamic, harness, sim, workloads
from .api import (
    REGISTRY,
    ScenarioOutcome,
    ScenarioSpec,
    SweepRunner,
    SweepSpec,
    available_protocols,
    build_system,
    run_scenario,
    run_sweep,
)
from .core import (
    ApproximateAgreementProcess,
    ConsensusProcess,
    IteratedApproximateAgreementProcess,
    ParallelConsensusProcess,
    ReliableBroadcastProcess,
    RotorCoordinatorProcess,
    TotalOrderProcess,
)
from .harness import run_experiment, run_many
from .sim import SynchronousNetwork
from .workloads import (
    approximate_agreement_system,
    consensus_system,
    reliable_broadcast_system,
    rotor_coordinator_system,
)

__version__ = "1.1.0"

__all__ = [
    "ApproximateAgreementProcess",
    "ConsensusProcess",
    "IteratedApproximateAgreementProcess",
    "ParallelConsensusProcess",
    "REGISTRY",
    "ReliableBroadcastProcess",
    "RotorCoordinatorProcess",
    "ScenarioOutcome",
    "ScenarioSpec",
    "SweepRunner",
    "SweepSpec",
    "SynchronousNetwork",
    "TotalOrderProcess",
    "__version__",
    "adversary",
    "analysis",
    "api",
    "approximate_agreement_system",
    "available_protocols",
    "baselines",
    "build_system",
    "consensus_system",
    "core",
    "dynamic",
    "harness",
    "reliable_broadcast_system",
    "rotor_coordinator_system",
    "run_experiment",
    "run_many",
    "run_scenario",
    "run_sweep",
    "sim",
    "workloads",
]
