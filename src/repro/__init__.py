"""repro — Byzantine agreement with unknown participants and failures.

A reproduction of Khanchandani & Wattenhofer, *Byzantine Agreement with
Unknown Participants and Failures* (IPDPS 2021, arXiv:2102.10442): the
id-only agreement algorithms (reliable broadcast, rotor-coordinator,
consensus, approximate agreement, parallel consensus, dynamic total
ordering), the synchronous round-based simulator they run on, Byzantine
adversary strategies, classic known-(n, f) baselines, and the experiment
harness that regenerates the evaluation described in ``DESIGN.md``.

Quick start::

    from repro import consensus_system

    spec = consensus_system(n=10, f=3, strategy="consensus-split-vote", seed=1)
    result = spec.network.run(max_rounds=100)
    print(result.decided_outputs())
"""

from . import adversary, analysis, baselines, core, dynamic, harness, sim, workloads
from .core import (
    ApproximateAgreementProcess,
    ConsensusProcess,
    IteratedApproximateAgreementProcess,
    ParallelConsensusProcess,
    ReliableBroadcastProcess,
    RotorCoordinatorProcess,
    TotalOrderProcess,
)
from .harness import run_experiment, run_many
from .sim import SynchronousNetwork
from .workloads import (
    approximate_agreement_system,
    consensus_system,
    reliable_broadcast_system,
    rotor_coordinator_system,
)

__version__ = "1.0.0"

__all__ = [
    "ApproximateAgreementProcess",
    "ConsensusProcess",
    "IteratedApproximateAgreementProcess",
    "ParallelConsensusProcess",
    "ReliableBroadcastProcess",
    "RotorCoordinatorProcess",
    "SynchronousNetwork",
    "TotalOrderProcess",
    "__version__",
    "adversary",
    "analysis",
    "approximate_agreement_system",
    "baselines",
    "consensus_system",
    "core",
    "dynamic",
    "harness",
    "reliable_broadcast_system",
    "rotor_coordinator_system",
    "run_experiment",
    "run_many",
    "sim",
    "workloads",
]
