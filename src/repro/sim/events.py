"""Structured trace events on a columnar store.

Traces are optional (they cost memory proportional to message count) and
are mainly used by the debugging helpers in the examples and by a handful
of integration tests that assert on *when* something happened rather than
just on final outputs.

The columnar contract
---------------------
A traced run used to allocate one frozen :class:`TraceEvent` dataclass per
recorded event — hundreds of thousands of objects for a single n=250
sweep, which made ``trace=True`` runs an order of magnitude slower than
the untraced fast path.  :class:`Trace` now stores events as parallel
columns instead:

* ``kind`` — one byte per event (:class:`EventKind` member codes, in enum
  member order, in a ``array('B')``);
* ``round`` — the round index per event (``array('q')``);
* ``node`` / ``peer`` — node-id columns (plain lists; ``None`` marks an
  absent id, e.g. the peer of a ``ROUND_START``);
* ``payload`` / ``detail`` — object-reference columns.  Payload entries
  reference the same (typically interned, see
  :func:`repro.sim.messages.intern_payload`) payload objects the network
  moved, so a broadcast fan-out costs one shared reference per recipient
  rather than a per-event copy of anything.

:class:`TraceEvent` survives as a *lazily materialised view*: iteration
and every query helper (:meth:`Trace.of_kind`, :meth:`Trace.for_node`,
:meth:`Trace.in_round`, :meth:`Trace.where`, :meth:`Trace.first`, …)
build event objects on demand from the columns, so the query API is
unchanged while recording never allocates per-event objects.

Recording happens through a narrow interface the engine kernels share:
:meth:`Trace.record_event` appends one event without constructing a
``TraceEvent``, and the bulk variants
:meth:`Trace.record_sends_columnar` /
:meth:`Trace.record_deliveries_columnar` append a whole fan-out (one
sender, one payload, many destinations) as column extensions — the fast
path records a broadcast round in a handful of ``extend`` calls instead
of one object allocation per (message, destination) pair.
:meth:`Trace.record` still accepts a pre-built :class:`TraceEvent` for
callers outside the hot path.

Event order, field values and query results are bit-identical to the
object-per-event backend; ``tests/test_trace_golden.py`` pins that
against fixtures recorded from the pre-columnar implementation, and the
Hypothesis round-trip property in ``tests/test_properties.py`` checks the
query helpers against a list-of-dataclass reference model.
"""

from __future__ import annotations

import pickle
from array import array
from dataclasses import dataclass
from enum import Enum
from itertools import repeat
from typing import Any, Callable, Iterable, Iterator, Sequence

from .messages import NodeId, Payload

__all__ = ["EventKind", "TraceEvent", "Trace"]


class EventKind(Enum):
    """The kinds of things the simulator can record."""

    ROUND_START = "round_start"
    MESSAGE_SENT = "message_sent"
    MESSAGE_DELIVERED = "message_delivered"
    NODE_DECIDED = "node_decided"
    NODE_HALTED = "node_halted"
    NODE_JOINED = "node_joined"
    NODE_LEFT = "node_left"


#: Column codes: enum member order is the stable kind <-> byte mapping.
_KIND_BY_CODE: tuple[EventKind, ...] = tuple(EventKind)
_KIND_CODE: dict[EventKind, int] = {kind: code for code, kind in enumerate(EventKind)}
_KIND_BYTE: dict[EventKind, bytes] = {
    kind: bytes((code,)) for kind, code in _KIND_CODE.items()
}


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event, materialised on demand from the columns."""

    kind: EventKind
    round_index: int
    node_id: NodeId | None = None
    peer_id: NodeId | None = None
    payload: Payload | None = None
    detail: Any = None


class Trace:
    """An append-only columnar event store with :class:`TraceEvent` views.

    The constructor accepts an optional iterable of pre-built events (for
    tests and reference models); the engines always start from an empty
    store and append through the ``record_*`` interface.
    """

    __slots__ = (
        "enabled",
        "_kinds",
        "_rounds",
        "_node_ids",
        "_peer_ids",
        "_payloads",
        "_details",
    )

    def __init__(
        self, events: Iterable[TraceEvent] | None = None, enabled: bool = True
    ) -> None:
        self.enabled = enabled
        self._kinds = array("B")
        self._rounds = array("q")
        self._node_ids: list[NodeId | None] = []
        self._peer_ids: list[NodeId | None] = []
        self._payloads: list[Payload | None] = []
        self._details: list[Any] = []
        if events:
            # Constructor seeding stores the events regardless of `enabled`
            # (matching the pre-columnar dataclass, whose `events` field was
            # independent of the flag); `enabled` only gates *recording*.
            for event in events:
                self._append(
                    event.kind,
                    event.round_index,
                    event.node_id,
                    event.peer_id,
                    event.payload,
                    event.detail,
                )

    # -- recording -------------------------------------------------------------

    def _append(
        self,
        kind: EventKind,
        round_index: int,
        node_id: NodeId | None,
        peer_id: NodeId | None,
        payload: Payload | None,
        detail: Any,
    ) -> None:
        self._kinds.append(_KIND_CODE[kind])
        self._rounds.append(round_index)
        self._node_ids.append(node_id)
        self._peer_ids.append(peer_id)
        self._payloads.append(payload)
        self._details.append(detail)

    def record(self, event: TraceEvent) -> None:
        """Append a pre-built event (the non-hot-path entry point)."""

        if self.enabled:
            self._append(
                event.kind,
                event.round_index,
                event.node_id,
                event.peer_id,
                event.payload,
                event.detail,
            )

    def record_event(
        self,
        kind: EventKind,
        round_index: int,
        node_id: NodeId | None = None,
        peer_id: NodeId | None = None,
        payload: Payload | None = None,
        detail: Any = None,
    ) -> None:
        """Append one event straight onto the columns (no object built)."""

        if self.enabled:
            self._append(kind, round_index, node_id, peer_id, payload, detail)

    def _extend_fanout(
        self,
        kind: EventKind,
        round_index: int,
        node_column: Iterable[NodeId],
        peer_column: Iterable[NodeId],
        payload: Payload,
        k: int,
    ) -> None:
        """One column extension per column; keeps every column in lockstep."""

        self._kinds.frombytes(_KIND_BYTE[kind] * k)
        self._rounds.extend(repeat(round_index, k))
        self._node_ids.extend(node_column)
        self._peer_ids.extend(peer_column)
        self._payloads.extend(repeat(payload, k))
        self._details.extend(repeat(None, k))

    def record_sends_columnar(
        self,
        round_index: int,
        sender: NodeId,
        payload: Payload,
        dests: Sequence[NodeId],
    ) -> None:
        """Bulk-append one ``MESSAGE_SENT`` event per destination.

        Equivalent to recording ``TraceEvent(MESSAGE_SENT, round_index,
        node_id=sender, peer_id=dest, payload=payload)`` for each ``dest``
        in order, but as one column extension per column.
        """

        if self.enabled and dests:
            self._extend_fanout(
                EventKind.MESSAGE_SENT,
                round_index,
                repeat(sender, len(dests)),
                dests,
                payload,
                len(dests),
            )

    def record_deliveries_columnar(
        self,
        round_index: int,
        sender: NodeId,
        payload: Payload,
        dests: Sequence[NodeId],
    ) -> None:
        """Bulk-append one ``MESSAGE_DELIVERED`` event per destination.

        Equivalent to recording ``TraceEvent(MESSAGE_DELIVERED,
        round_index, node_id=dest, peer_id=sender, payload=payload)`` for
        each ``dest`` in order, but as one column extension per column.
        """

        if self.enabled and dests:
            self._extend_fanout(
                EventKind.MESSAGE_DELIVERED,
                round_index,
                dests,
                repeat(sender, len(dests)),
                payload,
                len(dests),
            )

    # -- persistence hooks -----------------------------------------------------

    def export_segments(
        self, *, max_events: int = 8192
    ) -> list[tuple[dict, dict[str, bytes]]]:
        """Slice the columns into ``(footer, blobs)`` segments for persistence.

        Each segment covers up to ``max_events`` consecutive events.  The
        footer is a small JSON-safe index — event count, per-kind counts
        (by :class:`EventKind` value) and the round range — that lets a
        reader decide *without touching the blobs* whether a segment can
        contain anything a query wants; the run store keeps footers in a
        queryable column and loads blobs lazily.  ``kinds``/``rounds``
        blobs are raw array bytes (native byte order); the object columns
        (node/peer ids, payloads, details) are pickled lists, so payload
        sharing within a segment survives via the pickle memo.  An empty
        trace exports zero segments.
        """

        if max_events < 1:
            raise ValueError("max_events must be positive")
        segments = []
        for start in range(0, len(self._kinds), max_events):
            stop = min(start + max_events, len(self._kinds))
            kinds = self._kinds[start:stop]
            rounds = self._rounds[start:stop]
            kind_counts = {}
            for code, kind in enumerate(_KIND_BY_CODE):
                count = kinds.count(code)
                if count:
                    kind_counts[kind.value] = count
            footer = {
                "events": stop - start,
                "kind_counts": kind_counts,
                "round_min": min(rounds),
                "round_max": max(rounds),
            }
            blobs = {
                "kinds": kinds.tobytes(),
                "rounds": rounds.tobytes(),
                "nodes": pickle.dumps(self._node_ids[start:stop], protocol=4),
                "peers": pickle.dumps(self._peer_ids[start:stop], protocol=4),
                "payloads": pickle.dumps(self._payloads[start:stop], protocol=4),
                "details": pickle.dumps(self._details[start:stop], protocol=4),
            }
            segments.append((footer, blobs))
        return segments

    @classmethod
    def from_segment(cls, blobs: dict[str, bytes]) -> "Trace":
        """Rebuild one exported segment as a standalone query-able trace."""

        trace = cls()
        trace._kinds.frombytes(blobs["kinds"])
        trace._rounds.frombytes(blobs["rounds"])
        trace._node_ids = pickle.loads(blobs["nodes"])
        trace._peer_ids = pickle.loads(blobs["peers"])
        trace._payloads = pickle.loads(blobs["payloads"])
        trace._details = pickle.loads(blobs["details"])
        return trace

    # -- materialisation -------------------------------------------------------

    def _view(self, index: int) -> TraceEvent:
        return TraceEvent(
            _KIND_BY_CODE[self._kinds[index]],
            self._rounds[index],
            self._node_ids[index],
            self._peer_ids[index],
            self._payloads[index],
            self._details[index],
        )

    @property
    def events(self) -> list[TraceEvent]:
        """Every event, materialised (kept for backward compatibility)."""

        return [self._view(i) for i in range(len(self._kinds))]

    def __len__(self) -> int:
        return len(self._kinds)

    def __iter__(self) -> Iterator[TraceEvent]:
        return map(self._view, range(len(self._kinds)))

    # -- queries ---------------------------------------------------------------

    def of_kind(self, kind: EventKind) -> list[TraceEvent]:
        code = _KIND_CODE[kind]
        return [self._view(i) for i, c in enumerate(self._kinds) if c == code]

    def for_node(self, node_id: NodeId) -> list[TraceEvent]:
        return [
            self._view(i) for i, n in enumerate(self._node_ids) if n == node_id
        ]

    def in_round(self, round_index: int) -> list[TraceEvent]:
        return [
            self._view(i) for i, r in enumerate(self._rounds) if r == round_index
        ]

    def where(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        return [e for e in self if predicate(e)]

    def decisions(self) -> list[TraceEvent]:
        return self.of_kind(EventKind.NODE_DECIDED)

    def first(self, kind: EventKind) -> TraceEvent | None:
        try:
            return self._view(self._kinds.index(_KIND_CODE[kind]))
        except ValueError:
            return None

    def kind_counts(self) -> dict[str, int]:
        """Event counts per kind value (cheap: scans the byte column only)."""

        kinds = self._kinds
        counts: dict[str, int] = {}
        for code, kind in enumerate(_KIND_BY_CODE):
            count = kinds.count(code)
            if count:
                counts[kind.value] = count
        return counts
