"""Structured trace events on a columnar store.

Traces are optional (they cost memory proportional to message count) and
are mainly used by the debugging helpers in the examples and by a handful
of integration tests that assert on *when* something happened rather than
just on final outputs.

The columnar contract
---------------------
A traced run used to allocate one frozen :class:`TraceEvent` dataclass per
recorded event — hundreds of thousands of objects for a single n=250
sweep, which made ``trace=True`` runs an order of magnitude slower than
the untraced fast path.  :class:`Trace` now stores events as parallel
columns instead:

* ``kind`` — one byte per event (:class:`EventKind` member codes, in enum
  member order, in a ``array('B')``);
* ``round`` — the round index per event (``array('q')``);
* ``node`` / ``peer`` — node-id columns (plain lists; ``None`` marks an
  absent id, e.g. the peer of a ``ROUND_START``);
* ``payload`` / ``detail`` — object-reference columns.  Payload entries
  reference the same (typically interned, see
  :func:`repro.sim.messages.intern_payload`) payload objects the network
  moved, so a broadcast fan-out costs one shared reference per recipient
  rather than a per-event copy of anything.

:class:`TraceEvent` survives as a *lazily materialised view*: iteration
and every query helper (:meth:`Trace.of_kind`, :meth:`Trace.for_node`,
:meth:`Trace.in_round`, :meth:`Trace.where`, :meth:`Trace.first`, …)
build event objects on demand from the columns, so the query API is
unchanged while recording never allocates per-event objects.

Aggregation happens on the columns too: :meth:`Trace.aggregate` groups
events by round, node or kind and reduces them to counts or serialised
payload-byte tallies without materialising a single :class:`TraceEvent` —
the same rows :meth:`repro.store.db.StoredTrace.aggregate` computes
segment-by-segment over persisted traces, so in-memory and stored answers
are interchangeable (and asserted identical by the analytics tests).

Recording happens through a narrow interface the engine kernels share:
:meth:`Trace.record_event` appends one event without constructing a
``TraceEvent``, and the bulk variants
:meth:`Trace.record_sends_columnar` /
:meth:`Trace.record_deliveries_columnar` append a whole fan-out (one
sender, one payload, many destinations) as column extensions — the fast
path records a broadcast round in a handful of ``extend`` calls instead
of one object allocation per (message, destination) pair.
:meth:`Trace.record` still accepts a pre-built :class:`TraceEvent` for
callers outside the hot path.

Event order, field values and query results are bit-identical to the
object-per-event backend; ``tests/test_trace_golden.py`` pins that
against fixtures recorded from the pre-columnar implementation, and the
Hypothesis round-trip property in ``tests/test_properties.py`` checks the
query helpers against a list-of-dataclass reference model.
"""

from __future__ import annotations

import pickle
from array import array
from dataclasses import dataclass
from enum import Enum
from itertools import repeat
from typing import Any, Callable, Iterable, Iterator, Sequence

from .messages import NodeId, Payload, payload_nbytes

__all__ = [
    "DEFAULT_SEGMENT_EVENTS",
    "EventKind",
    "TraceEvent",
    "Trace",
    "format_aggregate_rows",
]

#: Default trace-segment granularity (events per sealed/persisted segment).
#: Shared by :meth:`Trace.export_segments` callers, the spill mode and the
#: run store layer (re-exported as ``repro.store.DEFAULT_SEGMENT_EVENTS``).
DEFAULT_SEGMENT_EVENTS = 8192


class EventKind(Enum):
    """The kinds of things the simulator can record."""

    ROUND_START = "round_start"
    MESSAGE_SENT = "message_sent"
    MESSAGE_DELIVERED = "message_delivered"
    NODE_DECIDED = "node_decided"
    NODE_HALTED = "node_halted"
    NODE_JOINED = "node_joined"
    NODE_LEFT = "node_left"


#: Column codes: enum member order is the stable kind <-> byte mapping.
_KIND_BY_CODE: tuple[EventKind, ...] = tuple(EventKind)
_KIND_CODE: dict[EventKind, int] = {kind: code for code, kind in enumerate(EventKind)}
_KIND_BYTE: dict[EventKind, bytes] = {
    kind: bytes((code,)) for kind, code in _KIND_CODE.items()
}


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event, materialised on demand from the columns."""

    kind: EventKind
    round_index: int
    node_id: NodeId | None = None
    peer_id: NodeId | None = None
    payload: Payload | None = None
    detail: Any = None


# -- aggregation plumbing (shared with repro.store.db.StoredTrace) -----------

#: Grouping axes and reducers ``aggregate`` understands.
AGGREGATE_GROUPS = ("round", "node", "kind")
AGGREGATE_REDUCERS = ("count", "payload_bytes")


def check_aggregate_args(
    kinds, by: str, reduce
) -> tuple[frozenset[int] | None, tuple[str, ...]]:
    """Validate ``aggregate`` arguments; return (kind-code filter, reducers).

    ``kinds`` may be ``None`` (all kinds), one :class:`EventKind` or an
    iterable of them; ``reduce`` may be one reducer name or a sequence.
    """

    if by not in AGGREGATE_GROUPS:
        raise ValueError(
            f"by must be one of {AGGREGATE_GROUPS}, not {by!r}"
        )
    reducers = (reduce,) if isinstance(reduce, str) else tuple(reduce)
    for name in reducers:
        if name not in AGGREGATE_REDUCERS:
            raise ValueError(
                f"reduce must draw from {AGGREGATE_REDUCERS}, not {name!r}"
            )
    if not reducers:
        raise ValueError("reduce must name at least one reducer")
    if kinds is None:
        return None, reducers
    if isinstance(kinds, EventKind):
        kinds = (kinds,)
    return frozenset(_KIND_CODE[kind] for kind in kinds), reducers


def format_aggregate_rows(
    groups: dict, by: str, reducers: tuple[str, ...]
) -> list[dict]:
    """Turn an accumulated ``{group key: [tallies]}`` dict into sorted rows.

    Kind groups come back in enum member order (matching ``kind_counts``),
    round/node groups in ascending key order with ``None`` keys (events
    without a node, e.g. ``ROUND_START``) last.  Row dicts are JSON-safe
    and feed :func:`repro.analysis.tables.render_table` / ``aggregate_rows``
    directly.
    """

    if by == "kind":
        keys = [code for code in range(len(_KIND_BY_CODE)) if code in groups]
        labels = [_KIND_BY_CODE[code].value for code in keys]
    else:
        keys = sorted(groups, key=lambda k: (k is None, k))
        labels = keys
    return [
        {by: label, **dict(zip(reducers, groups[key]))}
        for key, label in zip(keys, labels)
    ]


class Trace:
    """An append-only columnar event store with :class:`TraceEvent` views.

    The constructor accepts an optional iterable of pre-built events (for
    tests and reference models); the engines always start from an empty
    store and append through the ``record_*`` interface.

    **Spill mode.** ``spill_to`` takes a segment sink (see
    :meth:`repro.store.RunStore.trace_sink`): whenever the live columns
    reach ``segment_events`` entries, the leading ``segment_events`` events
    are sealed into a ``(footer, blobs)`` segment — byte- and
    boundary-identical to what :meth:`export_segments` would have produced
    on the full trace — written through the sink, and dropped from memory,
    so peak trace memory is bounded by one segment regardless of run size.
    While spilling, ``len``/``kind_counts`` cover the whole trace (sealed
    footers plus the live tail) but the event-level queries only see the
    unspilled tail; call :meth:`finalize_spill` after the run to seal the
    tail and get the :class:`repro.store.StoredTrace` view over everything
    (``SynchronousNetwork.run`` does this automatically and puts the stored
    view on its :class:`RunResult`).
    """

    __slots__ = (
        "enabled",
        "_kinds",
        "_rounds",
        "_node_ids",
        "_peer_ids",
        "_payloads",
        "_details",
        "_spill",
        "_segment_events",
        "_spilled_footers",
    )

    def __init__(
        self,
        events: Iterable[TraceEvent] | None = None,
        enabled: bool = True,
        *,
        spill_to: Any = None,
        segment_events: int = DEFAULT_SEGMENT_EVENTS,
    ) -> None:
        if segment_events < 1:
            raise ValueError("segment_events must be positive")
        self.enabled = enabled
        self._spill = spill_to
        self._segment_events = segment_events
        self._spilled_footers: list[dict] = []
        self._kinds = array("B")
        self._rounds = array("q")
        self._node_ids: list[NodeId | None] = []
        self._peer_ids: list[NodeId | None] = []
        self._payloads: list[Payload | None] = []
        self._details: list[Any] = []
        if events:
            # Constructor seeding stores the events regardless of `enabled`
            # (matching the pre-columnar dataclass, whose `events` field was
            # independent of the flag); `enabled` only gates *recording*.
            for event in events:
                self._append(
                    event.kind,
                    event.round_index,
                    event.node_id,
                    event.peer_id,
                    event.payload,
                    event.detail,
                )

    # -- recording -------------------------------------------------------------

    def _append(
        self,
        kind: EventKind,
        round_index: int,
        node_id: NodeId | None,
        peer_id: NodeId | None,
        payload: Payload | None,
        detail: Any,
    ) -> None:
        self._kinds.append(_KIND_CODE[kind])
        self._rounds.append(round_index)
        self._node_ids.append(node_id)
        self._peer_ids.append(peer_id)
        self._payloads.append(payload)
        self._details.append(detail)
        if self._spill is not None and len(self._kinds) >= self._segment_events:
            self._drain_spill()

    def record(self, event: TraceEvent) -> None:
        """Append a pre-built event (the non-hot-path entry point)."""

        if self.enabled:
            self._append(
                event.kind,
                event.round_index,
                event.node_id,
                event.peer_id,
                event.payload,
                event.detail,
            )

    def record_event(
        self,
        kind: EventKind,
        round_index: int,
        node_id: NodeId | None = None,
        peer_id: NodeId | None = None,
        payload: Payload | None = None,
        detail: Any = None,
    ) -> None:
        """Append one event straight onto the columns (no object built)."""

        if self.enabled:
            self._append(kind, round_index, node_id, peer_id, payload, detail)

    def _extend_fanout(
        self,
        kind: EventKind,
        round_index: int,
        node_column: Iterable[NodeId],
        peer_column: Iterable[NodeId],
        payload: Payload,
        k: int,
    ) -> None:
        """One column extension per column; keeps every column in lockstep."""

        self._kinds.frombytes(_KIND_BYTE[kind] * k)
        self._rounds.extend(repeat(round_index, k))
        self._node_ids.extend(node_column)
        self._peer_ids.extend(peer_column)
        self._payloads.extend(repeat(payload, k))
        self._details.extend(repeat(None, k))
        if self._spill is not None and len(self._kinds) >= self._segment_events:
            self._drain_spill()

    def record_sends_columnar(
        self,
        round_index: int,
        sender: NodeId,
        payload: Payload,
        dests: Sequence[NodeId],
    ) -> None:
        """Bulk-append one ``MESSAGE_SENT`` event per destination.

        Equivalent to recording ``TraceEvent(MESSAGE_SENT, round_index,
        node_id=sender, peer_id=dest, payload=payload)`` for each ``dest``
        in order, but as one column extension per column.
        """

        if self.enabled and dests:
            self._extend_fanout(
                EventKind.MESSAGE_SENT,
                round_index,
                repeat(sender, len(dests)),
                dests,
                payload,
                len(dests),
            )

    def record_deliveries_columnar(
        self,
        round_index: int,
        sender: NodeId,
        payload: Payload,
        dests: Sequence[NodeId],
    ) -> None:
        """Bulk-append one ``MESSAGE_DELIVERED`` event per destination.

        Equivalent to recording ``TraceEvent(MESSAGE_DELIVERED,
        round_index, node_id=dest, peer_id=sender, payload=payload)`` for
        each ``dest`` in order, but as one column extension per column.
        """

        if self.enabled and dests:
            self._extend_fanout(
                EventKind.MESSAGE_DELIVERED,
                round_index,
                dests,
                repeat(sender, len(dests)),
                payload,
                len(dests),
            )

    # -- persistence hooks -----------------------------------------------------

    def _segment_slice(self, start: int, stop: int) -> tuple[dict, dict[str, bytes]]:
        """Project events ``[start, stop)`` onto a ``(footer, blobs)`` pair."""

        kinds = self._kinds[start:stop]
        rounds = self._rounds[start:stop]
        kind_counts = {}
        for code, kind in enumerate(_KIND_BY_CODE):
            count = kinds.count(code)
            if count:
                kind_counts[kind.value] = count
        footer = {
            "events": stop - start,
            "kind_counts": kind_counts,
            "round_min": min(rounds),
            "round_max": max(rounds),
        }
        blobs = {
            "kinds": kinds.tobytes(),
            "rounds": rounds.tobytes(),
            "nodes": pickle.dumps(self._node_ids[start:stop], protocol=4),
            "peers": pickle.dumps(self._peer_ids[start:stop], protocol=4),
            "payloads": pickle.dumps(self._payloads[start:stop], protocol=4),
            "details": pickle.dumps(self._details[start:stop], protocol=4),
        }
        return footer, blobs

    def export_segments(
        self, *, max_events: int = DEFAULT_SEGMENT_EVENTS
    ) -> list[tuple[dict, dict[str, bytes]]]:
        """Slice the columns into ``(footer, blobs)`` segments for persistence.

        Each segment covers up to ``max_events`` consecutive events.  The
        footer is a small JSON-safe index — event count, per-kind counts
        (by :class:`EventKind` value) and the round range — that lets a
        reader decide *without touching the blobs* whether a segment can
        contain anything a query wants; the run store keeps footers in a
        queryable column and loads blobs lazily.  ``kinds``/``rounds``
        blobs are raw array bytes (native byte order); the object columns
        (node/peer ids, payloads, details) are pickled lists, so payload
        sharing within a segment survives via the pickle memo.  An empty
        trace exports zero segments.

        A spilling trace already streamed its segments through the sink;
        exporting it again would double-persist, so it refuses.
        """

        if max_events < 1:
            raise ValueError("max_events must be positive")
        if self._spill is not None:
            raise ValueError(
                "trace is spilling to a store; its segments are already "
                "persisted — use finalize_spill() instead of export_segments()"
            )
        return [
            self._segment_slice(start, min(start + max_events, len(self._kinds)))
            for start in range(0, len(self._kinds), max_events)
        ]

    # -- spill mode ------------------------------------------------------------

    @property
    def spilling(self) -> bool:
        return self._spill is not None

    @property
    def spilled_segment_count(self) -> int:
        return len(self._spilled_footers)

    @property
    def live_events(self) -> int:
        """Events currently held in memory (the unspilled tail)."""

        return len(self._kinds)

    def _seal_segment(self, stop: int) -> None:
        """Seal the leading ``stop`` events through the sink and drop them."""

        footer, blobs = self._segment_slice(0, stop)
        self._spill.write(len(self._spilled_footers), footer, blobs)
        self._spilled_footers.append(footer)
        del self._kinds[:stop]
        del self._rounds[:stop]
        del self._node_ids[:stop]
        del self._peer_ids[:stop]
        del self._payloads[:stop]
        del self._details[:stop]

    def _drain_spill(self) -> None:
        while len(self._kinds) >= self._segment_events:
            self._seal_segment(self._segment_events)

    def finalize_spill(self):
        """Seal the live tail and return the stored, fully queryable view.

        The returned object is whatever the sink's ``stored_trace()``
        yields — for a :meth:`repro.store.RunStore.trace_sink` that is a
        :class:`repro.store.StoredTrace` whose query answers are
        bit-identical to an in-memory trace of the same run.
        """

        if self._spill is None:
            raise ValueError("trace has no spill sink to finalize")
        if self._kinds:
            self._seal_segment(len(self._kinds))
        return self._spill.stored_trace()

    @classmethod
    def from_segment(cls, blobs: dict[str, bytes]) -> "Trace":
        """Rebuild one exported segment as a standalone query-able trace."""

        trace = cls()
        trace._kinds.frombytes(blobs["kinds"])
        trace._rounds.frombytes(blobs["rounds"])
        trace._node_ids = pickle.loads(blobs["nodes"])
        trace._peer_ids = pickle.loads(blobs["peers"])
        trace._payloads = pickle.loads(blobs["payloads"])
        trace._details = pickle.loads(blobs["details"])
        return trace

    # -- materialisation -------------------------------------------------------

    def _view(self, index: int) -> TraceEvent:
        return TraceEvent(
            _KIND_BY_CODE[self._kinds[index]],
            self._rounds[index],
            self._node_ids[index],
            self._peer_ids[index],
            self._payloads[index],
            self._details[index],
        )

    @property
    def events(self) -> list[TraceEvent]:
        """Every event, materialised (kept for backward compatibility)."""

        return [self._view(i) for i in range(len(self._kinds))]

    def event(self, index: int) -> TraceEvent:
        """The event at ``index``, materialised on demand."""

        if index < 0 or index >= len(self._kinds):
            raise IndexError(index)
        return self._view(index)

    def first_difference(self, other: "Trace") -> int | None:
        """Index of the first event at which two traces differ.

        Compared column-wise (kind, round, node, peer, payload, detail)
        without materialising events until a mismatch; a shared prefix
        with differing lengths diverges at the shorter length, identical
        traces return ``None``.  The per-segment primitive behind
        :meth:`repro.store.RunStore.diff`'s trace section.
        """

        n = min(len(self._kinds), len(other._kinds))
        for i in range(n):
            if (
                self._kinds[i] != other._kinds[i]
                or self._rounds[i] != other._rounds[i]
                or self._node_ids[i] != other._node_ids[i]
                or self._peer_ids[i] != other._peer_ids[i]
                or self._payloads[i] != other._payloads[i]
                or self._details[i] != other._details[i]
            ):
                return i
        if len(self._kinds) != len(other._kinds):
            return n
        return None

    def __len__(self) -> int:
        if self._spilled_footers:
            return sum(f["events"] for f in self._spilled_footers) + len(
                self._kinds
            )
        return len(self._kinds)

    def __iter__(self) -> Iterator[TraceEvent]:
        return map(self._view, range(len(self._kinds)))

    # -- queries ---------------------------------------------------------------

    def of_kind(self, kind: EventKind) -> list[TraceEvent]:
        code = _KIND_CODE[kind]
        return [self._view(i) for i, c in enumerate(self._kinds) if c == code]

    def for_node(self, node_id: NodeId) -> list[TraceEvent]:
        return [
            self._view(i) for i, n in enumerate(self._node_ids) if n == node_id
        ]

    def in_round(self, round_index: int) -> list[TraceEvent]:
        return [
            self._view(i) for i, r in enumerate(self._rounds) if r == round_index
        ]

    def where(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        return [e for e in self if predicate(e)]

    def decisions(self) -> list[TraceEvent]:
        return self.of_kind(EventKind.NODE_DECIDED)

    def first(self, kind: EventKind) -> TraceEvent | None:
        try:
            return self._view(self._kinds.index(_KIND_CODE[kind]))
        except ValueError:
            return None

    def kind_counts(self) -> dict[str, int]:
        """Event counts per kind value (cheap: scans the byte column only).

        On a spilling trace this covers sealed footers plus the live tail,
        so the totals always describe the whole run.
        """

        kinds = self._kinds
        spilled: dict[str, int] = {}
        for footer in self._spilled_footers:
            for value, count in footer["kind_counts"].items():
                spilled[value] = spilled.get(value, 0) + count
        counts: dict[str, int] = {}
        for code, kind in enumerate(_KIND_BY_CODE):
            count = kinds.count(code) + spilled.get(kind.value, 0)
            if count:
                counts[kind.value] = count
        return counts

    # -- aggregation -----------------------------------------------------------

    def accumulate_aggregate(
        self,
        groups: dict,
        codes: frozenset[int] | None,
        by: str,
        reducers: Sequence[str],
    ) -> None:
        """Fold this trace's columns into a ``{group key: [tallies]}`` dict.

        The accumulation primitive behind :meth:`aggregate` — and behind
        :meth:`repro.store.db.StoredTrace.aggregate`, which calls it once
        per loaded segment and merges into one shared dict.  Group keys are
        kind *codes* for ``by="kind"`` (formatted to values by
        :func:`format_aggregate_rows`), raw column values otherwise.  No
        :class:`TraceEvent` is materialised.
        """

        kinds = self._kinds
        keys = (
            kinds
            if by == "kind"
            else self._rounds if by == "round" else self._node_ids
        )
        slots = len(reducers)
        count_slot = reducers.index("count") if "count" in reducers else None
        bytes_slot = (
            reducers.index("payload_bytes")
            if "payload_bytes" in reducers
            else None
        )
        payloads = self._payloads
        for i in range(len(kinds)):
            if codes is not None and kinds[i] not in codes:
                continue
            key = keys[i]
            tally = groups.get(key)
            if tally is None:
                tally = groups[key] = [0] * slots
            if count_slot is not None:
                tally[count_slot] += 1
            if bytes_slot is not None:
                payload = payloads[i]
                if payload is not None:
                    tally[bytes_slot] += payload_nbytes(payload)

    def aggregate(
        self,
        kinds=None,
        *,
        by: str = "round",
        reduce="count",
    ) -> list[dict]:
        """Group-and-reduce straight on the columns (no event objects).

        ``kinds`` filters to one :class:`EventKind` or an iterable of them
        (``None`` keeps every kind); ``by`` groups by ``"round"``,
        ``"node"`` or ``"kind"``; ``reduce`` names one or more reducers —
        ``"count"`` (events per group) and/or ``"payload_bytes"``
        (serialised payload bytes per group, via
        :func:`repro.sim.messages.payload_nbytes`; events without a
        payload contribute zero).  Returns one JSON-safe row per group,
        e.g. ``{"round": 3, "count": 120, "payload_bytes": 5400}`` —
        ready for :mod:`repro.analysis.tables` renderers and pivots.
        """

        codes, reducers = check_aggregate_args(kinds, by, reduce)
        groups: dict = {}
        self.accumulate_aggregate(groups, codes, by, reducers)
        return format_aggregate_rows(groups, by, reducers)

    def select(
        self,
        *,
        kind: EventKind | None = None,
        round_index: int | None = None,
        node_id: NodeId | None = None,
    ) -> list[TraceEvent]:
        """Events matching every given filter, in recording order.

        The conjunction the streaming trace endpoint applies per segment;
        filters are tested on the raw columns and only matching events are
        materialised.
        """

        code = _KIND_CODE[kind] if kind is not None else None
        out: list[TraceEvent] = []
        for i in range(len(self._kinds)):
            if code is not None and self._kinds[i] != code:
                continue
            if round_index is not None and self._rounds[i] != round_index:
                continue
            if node_id is not None and self._node_ids[i] != node_id:
                continue
            out.append(self._view(i))
        return out
