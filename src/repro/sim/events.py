"""Structured trace events.

Traces are optional (they cost memory proportional to message count) and
are mainly used by the debugging helpers in the examples and by a handful
of integration tests that assert on *when* something happened rather than
just on final outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Iterator

from .messages import NodeId, Payload

__all__ = ["EventKind", "TraceEvent", "Trace"]


class EventKind(Enum):
    """The kinds of things the simulator can record."""

    ROUND_START = "round_start"
    MESSAGE_SENT = "message_sent"
    MESSAGE_DELIVERED = "message_delivered"
    NODE_DECIDED = "node_decided"
    NODE_HALTED = "node_halted"
    NODE_JOINED = "node_joined"
    NODE_LEFT = "node_left"


@dataclass(frozen=True)
class TraceEvent:
    """One recorded event."""

    kind: EventKind
    round_index: int
    node_id: NodeId | None = None
    peer_id: NodeId | None = None
    payload: Payload | None = None
    detail: Any = None


@dataclass
class Trace:
    """An append-only list of :class:`TraceEvent` with query helpers."""

    events: list[TraceEvent] = field(default_factory=list)
    enabled: bool = True

    def record(self, event: TraceEvent) -> None:
        if self.enabled:
            self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    # -- queries ---------------------------------------------------------------

    def of_kind(self, kind: EventKind) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def for_node(self, node_id: NodeId) -> list[TraceEvent]:
        return [e for e in self.events if e.node_id == node_id]

    def in_round(self, round_index: int) -> list[TraceEvent]:
        return [e for e in self.events if e.round_index == round_index]

    def where(self, predicate: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        return [e for e in self.events if predicate(e)]

    def decisions(self) -> list[TraceEvent]:
        return self.of_kind(EventKind.NODE_DECIDED)

    def first(self, kind: EventKind) -> TraceEvent | None:
        for event in self.events:
            if event.kind == kind:
                return event
        return None
