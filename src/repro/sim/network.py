"""The synchronous round-based network engine.

This module implements the system model of Section IV of the paper (the
*id-only model*):

* ``n`` nodes with unique, not necessarily consecutive identifiers;
* computation proceeds in lock-step rounds — messages sent in round ``r``
  are consumed in round ``r + 1`` (other delay models are available for the
  Section IX impossibility experiments);
* a node can broadcast to everyone or reply to a node it has heard from;
* sender identifiers on the wire are truthful (no spoofing on the direct
  channel), but Byzantine nodes may put arbitrary claims inside payloads;
* duplicate messages from the same node within a round are discarded.

The engine is intentionally single-threaded and deterministic: given the
same processes, adversary strategies, delay model and seed, a run produces
exactly the same trace.  Determinism is what lets the experiment harness
treat every (configuration, seed) pair as a reproducible data point.

Engine architecture
-------------------
The round loop runs on one of four interchangeable kernels, all of which
produce bit-identical traces, metrics and outputs (guarded by
``tests/test_engine_equivalence.py``):

``vector``
    The columnar synchronous path.  Shares the fast path's staging and
    delivery machinery, but broadcast-only rounds materialise a
    :class:`~repro.sim.messages.ColumnarInbox` — parallel sender/payload-
    index columns over an interned payload table — so the protocol math
    in :mod:`repro.core.tally` can batch quorum counts and support
    tallies with numpy (``np.bincount``/``np.unique``) instead of
    scanning Python objects per node.  Rounds that cannot be represented
    columnarly (unicasts, unhashable payloads) fall back to the ``fast``
    representation for that round, so the engine is always safe to pick.

``fast``
    The synchronous fast path.  When every message is delivered exactly one
    round later (:class:`~repro.sim.delays.SynchronousDelay`), there is no
    need for a delivery queue at all: the messages sent in round ``r`` *are*
    the inboxes of round ``r + 1``.  Sends are staged as per-sender batches
    — one interned ``(sender, payload, destinations)`` record per action
    instead of one :class:`~repro.sim.messages.Envelope` per (message,
    destination) pair — and materialised into inboxes at the start of the
    next round.  When a round consists solely of broadcasts (the common
    case for the paper's algorithms), every recipient sees the same
    messages, so a single shared :class:`~repro.sim.messages.Inbox` is
    built once and handed to all of them.  Membership churn is handled by
    filtering each batch's recorded destinations against the active set at
    delivery time, exactly like the queued engines do per envelope.

``queue``
    The general path for arbitrary delay models.  Envelopes are bucketed
    by delivery round (``dict[deliver_round, list[Envelope]]``), so each
    round pops exactly the envelopes that are due instead of rescanning
    every pending envelope (the pre-bucketing engine was ``O(pending)``
    per round, which is quadratic for long-delay models).

``legacy``
    A faithful copy of the original single-list engine, kept as the
    reference oracle for the equivalence suite and as the baseline for
    ``benchmarks/bench_scaling.py``.  Do not use it for real workloads.

Engine selection is ``engine="auto"`` by default — ``vector`` when the
delay model reports :attr:`~repro.sim.delays.DelayModel.synchronous`,
``queue`` otherwise.  The ``REPRO_ENGINE`` environment variable overrides
``auto`` (useful for A/B benchmarking whole sweeps without touching call
sites); an explicit non-auto constructor argument always wins.  Unknown
engine names raise :class:`~repro.sim.errors.UnknownEngineError` eagerly,
at construction / ``set_engine`` time.

Shared by the ``fast`` and ``queue`` kernels (but deliberately *not* by
``legacy``): the sorted active-membership list and the Byzantine id set
are cached and invalidated only on membership events (the old engine
re-sorted the active set for every single broadcast), the omniscient
:class:`SystemView` is built lazily and only when a Byzantine process is
scheduled, and per-round delivery counters are committed to
:class:`~repro.sim.metrics.RunMetrics` in one bulk call.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from .delays import DelayModel, SynchronousDelay
from .errors import (
    ConfigurationError,
    DuplicateNodeError,
    InvalidOutgoingError,
    MembershipError,
    RoundLimitExceeded,
    UnknownEngineError,
)
from .events import DEFAULT_SEGMENT_EVENTS, EventKind, Trace
from .messages import (
    Broadcast,
    ColumnarInbox,
    Envelope,
    Inbox,
    InboxBuilder,
    NodeId,
    Outgoing,
    Unicast,
    payload_nbytes,
)
from .metrics import RunMetrics
from .node import Process, RoundView
from .rng import make_rng

__all__ = [
    "ENGINE_CHOICES",
    "SystemView",
    "RunResult",
    "SynchronousNetwork",
    "all_correct_decided",
    "all_correct_halted",
]

#: Valid values for the ``engine`` constructor argument / ``REPRO_ENGINE``.
ENGINE_CHOICES = ("auto", "fast", "vector", "queue", "legacy")

#: Kernels that require a synchronous delay model (staged delivery).
_SYNCHRONOUS_ONLY = ("fast", "vector")

#: Environment variable overriding ``engine="auto"`` for every network.
ENGINE_ENV_VAR = "REPRO_ENGINE"


@dataclass(frozen=True)
class SystemView:
    """A global, omniscient snapshot offered to adversary strategies.

    Correct processes never see this — they only get a :class:`RoundView`.
    Byzantine strategies may use it to adapt (e.g. to target the node whose
    candidate set is smallest), modelling a worst-case adversary.
    """

    round_index: int
    active_ids: frozenset[NodeId]
    byzantine_ids: frozenset[NodeId]
    correct_processes: Mapping[NodeId, Process]
    rng: np.random.Generator

    @property
    def correct_ids(self) -> frozenset[NodeId]:
        return self.active_ids - self.byzantine_ids

    @property
    def n(self) -> int:
        return len(self.active_ids)

    @property
    def f(self) -> int:
        return len(self.byzantine_ids & self.active_ids)


@dataclass
class RunResult:
    """Everything a finished (or stopped) simulation exposes."""

    processes: dict[NodeId, Process]
    metrics: RunMetrics
    #: The run's trace: an in-memory :class:`Trace`, or — when the network
    #: was spilling (``enable_trace_spill``) — the finalized
    #: :class:`repro.store.StoredTrace` view, which answers the same query
    #: API bit-identically.
    trace: Any
    rounds_executed: int
    stop_reason: str

    # -- convenience accessors -------------------------------------------------

    def process(self, node_id: NodeId) -> Process:
        return self.processes[node_id]

    @property
    def correct_processes(self) -> dict[NodeId, Process]:
        return {i: p for i, p in self.processes.items() if not p.is_byzantine}

    @property
    def byzantine_processes(self) -> dict[NodeId, Process]:
        return {i: p for i, p in self.processes.items() if p.is_byzantine}

    def outputs(self, correct_only: bool = True) -> dict[NodeId, Any]:
        """Decision values per node (``None`` for undecided nodes)."""

        source = self.correct_processes if correct_only else self.processes
        return {i: p.output for i, p in source.items()}

    def decided_outputs(self) -> dict[NodeId, Any]:
        """Decision values of correct nodes that actually decided."""

        return {i: p.output for i, p in self.correct_processes.items() if p.decided}

    def agreement_reached(self) -> bool:
        """True when every correct node decided and on the same value."""

        outputs = [p.output for p in self.correct_processes.values()]
        if not outputs or any(p is None for p in outputs):
            return False
        first = outputs[0]
        return all(value == first for value in outputs)

    def distinct_decisions(self) -> set[Any]:
        return {p.output for p in self.correct_processes.values() if p.decided}


def all_correct_decided(network: "SynchronousNetwork") -> bool:
    """Stop condition: every correct process (halted or not) has decided."""

    procs = network.correct_processes()
    return bool(procs) and all(p.decided for p in procs)


def all_correct_halted(network: "SynchronousNetwork") -> bool:
    """Stop condition: every active correct process has halted."""

    procs = network.correct_processes()
    return bool(procs) and all(p.halted for p in procs)


class SynchronousNetwork:
    """Drives a set of processes round by round.

    Parameters
    ----------
    processes:
        The initial participants.  Byzantine participants are ordinary
        :class:`Process` objects whose ``is_byzantine`` is ``True`` (see
        :class:`repro.adversary.base.ByzantineProcess`).
    delay_model:
        Maps each message to its delivery round; defaults to the
        synchronous next-round model.
    seed:
        Seed for the network-level RNG (delays, adversary randomness).
    trace:
        When ``True`` a full :class:`~repro.sim.events.Trace` is recorded.
    joins:
        Optional mapping ``round -> iterable of processes`` activated at the
        *start* of that round (they may send from that round onwards).
    leaves:
        Optional mapping ``round -> iterable of node ids`` removed at the
        start of that round.  Used by churn schedules; protocol-level
        "absent" announcements are the protocol's own business.
    engine:
        Round-loop kernel: one of :data:`ENGINE_CHOICES`.  ``"auto"`` (the
        default) picks ``fast`` for synchronous delay models and ``queue``
        otherwise; the ``REPRO_ENGINE`` environment variable overrides
        ``auto``.  All engines produce bit-identical results.
    """

    def __init__(
        self,
        processes: Iterable[Process],
        *,
        delay_model: DelayModel | None = None,
        seed: int = 0,
        trace: bool = False,
        joins: Mapping[int, Iterable[Process]] | None = None,
        leaves: Mapping[int, Iterable[NodeId]] | None = None,
        engine: str = "auto",
    ) -> None:
        self._processes: dict[NodeId, Process] = {}
        self._correct_map: dict[NodeId, Process] = {}
        for process in processes:
            self._register(process)
        self._active: set[NodeId] = set(self._processes)
        self._delay_model = delay_model or SynchronousDelay()
        self._rng = make_rng(seed)
        self._trace = Trace(enabled=trace)
        self._metrics = RunMetrics()
        self._round = 0
        self._decided_seen: set[NodeId] = set()
        self._joins: dict[int, list[Process]] = {
            int(r): list(ps) for r, ps in (joins or {}).items()
        }
        self._leaves: dict[int, list[NodeId]] = {
            int(r): list(ids) for r, ids in (leaves or {}).items()
        }
        # -- engine state ------------------------------------------------------
        # queue engine: envelopes bucketed by delivery round.
        self._bucketed: dict[int, list[Envelope]] = {}
        # fast engine: per-sender batches staged for the next round, plus the
        # common destination tuple when the round was broadcast-only.
        self._staged: list[tuple[NodeId, Any, tuple[NodeId, ...]]] | None = None
        self._staged_shared: tuple[NodeId, ...] | None = None
        # legacy engine: the original flat pending list.
        self._legacy_pending: list[Envelope] = []
        # membership caches (fast/queue engines only; see module docstring).
        self._sorted_cache: tuple[NodeId, ...] | None = None
        self._byz_cache: frozenset[NodeId] | None = None
        #: Number of times the sorted-membership cache was rebuilt.  The old
        #: engine re-sorted up to ``2 + broadcasts`` times per round; the
        #: regression test pins this to one rebuild per membership event.
        self.sorted_rebuilds = 0
        #: Opt-in wire-volume accounting (serialised payload bytes); see
        #: :meth:`enable_payload_accounting`.
        self._measure_bytes = False
        #: Opt-in per-phase wall-clock accumulation (deliver/step/stage
        #: seconds); see :meth:`enable_phase_profile`.
        self._phase_profile: dict[str, float] | None = None
        self._engine = "auto"
        env = os.environ.get(ENGINE_ENV_VAR, "").strip()
        if env and env not in ENGINE_CHOICES:
            # Validated eagerly even when an explicit constructor engine
            # would win: a misspelt A/B override must never be silently
            # ignored (or surface only at mid-run resolution).
            raise UnknownEngineError(env, ENGINE_CHOICES, source=ENGINE_ENV_VAR)
        if engine == "auto" and env:
            if env in _SYNCHRONOUS_ONLY and not self._delay_model.synchronous:
                # The env override A/B-tests whole sweeps; networks the
                # staged kernels cannot drive (delayed delivery) stay on
                # auto rather than crashing the sweep.
                pass
            else:
                engine = env
        self.set_engine(engine)

    # -- engine selection --------------------------------------------------------

    @property
    def engine(self) -> str:
        """The configured kernel (possibly ``"auto"``)."""

        return self._engine

    def set_engine(self, engine: str) -> None:
        """Select the round-loop kernel; only allowed before round 1."""

        if engine not in ENGINE_CHOICES:
            raise UnknownEngineError(engine, ENGINE_CHOICES)
        if engine in _SYNCHRONOUS_ONLY and not self._delay_model.synchronous:
            raise ConfigurationError(
                f"the {engine} engine requires a synchronous delay model; "
                "use engine='queue' (or 'auto') for delayed delivery"
            )
        if self._round > 0 and engine != self._engine:
            raise ConfigurationError("cannot switch engines after the run started")
        self._engine = engine

    def resolved_engine(self) -> str:
        """The kernel that actually runs (``auto`` resolved)."""

        if self._engine != "auto":
            return self._engine
        return "vector" if self._delay_model.synchronous else "queue"

    def tally_backend(self) -> str:
        """Which :mod:`repro.core.tally` implementation this run uses.

        The vector kernel hands protocols columnar inboxes, so its tallies
        run on the numpy backend; every other kernel (and the vector
        kernel's own fallback rounds) uses the scalar reference.  Recorded
        in run summaries and bench cells so stored results disclose the
        implementation that produced them.
        """

        return "numpy" if self.resolved_engine() == "vector" else "scalar"

    def enable_trace_spill(
        self, sink, *, segment_events: int = DEFAULT_SEGMENT_EVENTS
    ) -> None:
        """Flush sealed trace segments through ``sink`` during the run.

        ``sink`` is a segment sink (see
        :meth:`repro.store.RunStore.trace_sink`); while the run executes,
        every ``segment_events`` recorded events are sealed and written
        out, bounding peak trace memory by one segment.  :meth:`run`
        finalizes the spill when it completes and puts the resulting
        stored view on ``RunResult.trace``, so callers query the finished
        trace exactly as they would an in-memory one.  Must be configured
        on a traced network before the first round.
        """

        if not self._trace.enabled:
            raise ConfigurationError(
                "trace spill requires tracing (construct with trace=True)"
            )
        if self._round > 0 or len(self._trace):
            raise ConfigurationError(
                "trace spill must be enabled before the run starts"
            )
        self._trace = Trace(
            enabled=True, spill_to=sink, segment_events=segment_events
        )

    def enable_payload_accounting(self) -> None:
        """Record serialised payload bytes alongside the message counters.

        Every kernel accounts identically (per send action, next to the
        message-count bookkeeping), so byte totals are engine-independent.
        Off by default: sizing a payload costs a pickle per action, which
        the throughput benchmarks must not pay on their timed runs.
        """

        self._measure_bytes = True

    # -- registration / membership ----------------------------------------------

    def _register(self, process: Process) -> None:
        if process.node_id in self._processes:
            raise DuplicateNodeError(process.node_id)
        self._processes[process.node_id] = process
        if not process.is_byzantine:
            self._correct_map[process.node_id] = process

    def _invalidate_membership(self) -> None:
        self._sorted_cache = None
        self._byz_cache = None

    def add_process(self, process: Process, *, at_round: int | None = None) -> None:
        """Add a participant, immediately or at the start of ``at_round``."""

        if at_round is None or at_round <= self._round:
            self._register(process)
            self._active.add(process.node_id)
            self._invalidate_membership()
        else:
            self._joins.setdefault(at_round, []).append(process)

    def remove_process(self, node_id: NodeId, *, at_round: int | None = None) -> None:
        """Remove a participant, immediately or at the start of ``at_round``."""

        if at_round is None or at_round <= self._round:
            if node_id not in self._processes:
                raise MembershipError(f"cannot remove unknown node {node_id}")
            self._active.discard(node_id)
            self._invalidate_membership()
        else:
            self._leaves.setdefault(at_round, []).append(node_id)

    def _apply_membership_changes(self, round_index: int) -> None:
        changed = False
        for process in self._joins.pop(round_index, []):
            if process.node_id in self._processes:
                raise MembershipError(
                    f"node {process.node_id} joined twice (round {round_index})"
                )
            self._register(process)
            self._active.add(process.node_id)
            changed = True
            self._trace.record_event(
                EventKind.NODE_JOINED, round_index, node_id=process.node_id
            )
        for node_id in self._leaves.pop(round_index, []):
            if node_id not in self._processes:
                raise MembershipError(
                    f"node {node_id} left without ever joining (round {round_index})"
                )
            self._active.discard(node_id)
            changed = True
            self._trace.record_event(
                EventKind.NODE_LEFT, round_index, node_id=node_id
            )
        if changed:
            self._invalidate_membership()

    # -- introspection -------------------------------------------------------------

    @property
    def current_round(self) -> int:
        return self._round

    @property
    def rng(self) -> np.random.Generator:
        return self._rng

    @property
    def metrics(self) -> RunMetrics:
        return self._metrics

    @property
    def trace(self) -> Trace:
        return self._trace

    def processes(self) -> dict[NodeId, Process]:
        return dict(self._processes)

    def process(self, node_id: NodeId) -> Process:
        return self._processes[node_id]

    def active_ids(self) -> frozenset[NodeId]:
        return frozenset(self._active)

    def byzantine_ids(self) -> frozenset[NodeId]:
        cache = self._byz_cache
        if cache is None:
            cache = frozenset(
                i for i in self._active if self._processes[i].is_byzantine
            )
            self._byz_cache = cache
        return cache

    def correct_processes(self) -> list[Process]:
        return [
            self._processes[i]
            for i in self._active_sorted()
            if not self._processes[i].is_byzantine
        ]

    def active_correct_processes(self) -> list[Process]:
        return [p for p in self.correct_processes() if not p.halted]

    def pending_messages(self) -> int:
        """Number of messages in flight, whichever engine is running."""

        count = len(self._legacy_pending)
        count += sum(len(bucket) for bucket in self._bucketed.values())
        if self._staged:
            count += sum(len(dests) for _, _, dests in self._staged)
        return count

    def _active_sorted(self) -> tuple[NodeId, ...]:
        cache = self._sorted_cache
        if cache is None:
            cache = tuple(sorted(self._active))
            self._sorted_cache = cache
            self.sorted_rebuilds += 1
        return cache

    # -- the round loop --------------------------------------------------------------

    def enable_phase_profile(self) -> None:
        """Accumulate per-phase wall-clock seconds for the structured kernels.

        After enabling, :meth:`phase_profile` reports cumulative
        ``deliver``/``step``/``stage`` seconds (the legacy kernel is one
        monolithic loop and reports nothing).  Purely observational — the
        executed rounds are unchanged.
        """

        self._phase_profile = {"deliver": 0.0, "step": 0.0, "stage": 0.0}

    def phase_profile(self) -> dict[str, float] | None:
        """Cumulative per-phase seconds, or ``None`` when not enabled."""

        profile = self._phase_profile
        return dict(profile) if profile is not None else None

    def step_round(self) -> None:
        """Execute exactly one round."""

        engine = self.resolved_engine()
        if engine == "legacy":
            self._step_round_legacy()
            return
        self._round += 1
        round_index = self._round
        self._apply_membership_changes(round_index)
        round_metrics = self._metrics.start_round(round_index)
        self._trace.record_event(EventKind.ROUND_START, round_index)
        profile = self._phase_profile
        clock = perf_counter if profile is not None else None

        # 1. Deliver messages scheduled for this round.
        started = clock() if clock else 0.0
        if engine == "fast":
            inboxes = self._deliver_staged(round_index)
        elif engine == "vector":
            inboxes = self._deliver_staged(round_index, columnar=True)
        else:
            inboxes = self._deliver_bucketed(round_index)
        if clock:
            now = clock()
            profile["deliver"] += now - started
            started = now

        # 2. Step every active process.
        outgoing_by_node = self._step_processes(round_index, round_metrics, inboxes)
        if clock:
            now = clock()
            profile["step"] += now - started
            started = now

        # 3. Schedule the outgoing messages.
        if engine in _SYNCHRONOUS_ONLY:
            self._stage_outgoing(outgoing_by_node, round_index)
        else:
            for node_id, actions in outgoing_by_node.items():
                for action in actions:
                    self._schedule(node_id, action, round_index)
        if clock:
            profile["stage"] += clock() - started

    # -- delivery (fast engine) ----------------------------------------------------

    def _deliver_staged(
        self, round_index: int, *, columnar: bool = False
    ) -> dict[NodeId, Inbox]:
        """Turn last round's staged batches into this round's inboxes.

        With ``columnar=True`` (the vector kernel) a broadcast-only round
        skips the per-sender dict build entirely: the staged batches feed
        :meth:`ColumnarInbox.from_staged` directly, giving every recipient
        a shared column view the numpy tallies operate on.  Rounds with
        unicasts (or unhashable payloads) fall back to the fast kernel's
        object delivery, so the two kernels differ only in representation.
        """

        staged, shared = self._staged, self._staged_shared
        self._staged = None
        self._staged_shared = None
        if not staged:
            return {}
        active = self._active
        trace = self._trace
        if trace.enabled:
            # One bulk column append per staged batch: the whole fan-out of
            # a broadcast becomes a handful of `extend`s instead of one
            # TraceEvent per (message, destination) pair.  When membership
            # did not change since staging, the recorded destination tuple
            # *is* the current sorted-active cache, so the per-destination
            # liveness filter is skipped entirely.
            active_now = self._active_sorted()
            bulk = trace.record_deliveries_columnar
            for sender, payload, dests in staged:
                delivered = (
                    dests
                    if dests is active_now
                    else [d for d in dests if d in active]
                )
                bulk(round_index, sender, payload, delivered)
        if shared is not None:
            # Broadcast-only round: every recipient sees the same messages,
            # so one Inbox serves all of them.  Batches are grouped by
            # sender directly — no intermediate (sender, payload) pair list
            # — and the single shared Inbox is also what lets the batched
            # total-order wrapper be routed once per round instead of once
            # per receiving node (see repro.core.total_order).
            if columnar:
                inbox = ColumnarInbox.from_staged(staged)
            else:
                by_sender: dict[NodeId, list[Any]] = {}
                for sender, payload, _ in staged:
                    bucket = by_sender.get(sender)
                    if bucket is None:
                        by_sender[sender] = bucket = []
                    bucket.append(payload)
                inbox = Inbox(by_sender)
            return {dest: inbox for dest in shared if dest in active}
        pairs_by_dest: dict[NodeId, list[tuple[NodeId, Any]]] = {}
        for sender, payload, dests in staged:
            pair = (sender, payload)
            for dest in dests:
                if dest in active:
                    bucket = pairs_by_dest.get(dest)
                    if bucket is None:
                        pairs_by_dest[dest] = bucket = []
                    bucket.append(pair)
        processes = self._processes
        return {
            dest: Inbox.from_pairs(pairs)
            for dest, pairs in pairs_by_dest.items()
            if not processes[dest].halted
        }

    def _stage_outgoing(
        self,
        outgoing_by_node: dict[NodeId, Sequence[Outgoing]],
        round_index: int,
    ) -> None:
        """Record this round's sends as batches for next round's delivery."""

        staged: list[tuple[NodeId, Any, tuple[NodeId, ...]]] = []
        broadcast_only = True
        broadcast_dests: tuple[NodeId, ...] | None = None
        trace = self._trace
        record_send = self._metrics.record_send
        measure_bytes = self._measure_bytes
        for node_id, actions in outgoing_by_node.items():
            for action in actions:
                if isinstance(action, Broadcast):
                    # Membership cannot change while staging, so every
                    # broadcast in the round shares one destination tuple.
                    dests = self._active_sorted()
                    broadcast_dests = dests
                    record_send(node_id, len(dests), broadcast=True)
                elif isinstance(action, Unicast):
                    dests = (action.dest,)
                    broadcast_only = False
                    record_send(node_id, 1, broadcast=False)
                else:
                    raise InvalidOutgoingError(node_id, action)
                if measure_bytes:
                    self._metrics.record_payload(
                        payload_nbytes(action.payload), len(dests)
                    )
                staged.append((node_id, action.payload, dests))
                if trace.enabled:
                    trace.record_sends_columnar(
                        round_index, node_id, action.payload, dests
                    )
        self._staged = staged
        self._staged_shared = broadcast_dests if (staged and broadcast_only) else None

    # -- delivery (queue engine) ----------------------------------------------------

    def _deliver_bucketed(self, round_index: int) -> dict[NodeId, Inbox]:
        """Pop the envelope buckets that are due and build the inboxes."""

        pending = self._bucketed
        if not pending:
            return {}
        due_keys = [key for key in pending if key <= round_index]
        if not due_keys:
            return {}
        due_keys.sort()
        active = self._active
        trace = self._trace
        pairs_by_dest: dict[NodeId, list[tuple[NodeId, Any]]] = {}
        for key in due_keys:
            for envelope in pending.pop(key):
                dest = envelope.dest
                if dest not in active:
                    continue  # the destination left before delivery
                bucket = pairs_by_dest.get(dest)
                if bucket is None:
                    pairs_by_dest[dest] = bucket = []
                bucket.append((envelope.sender, envelope.payload))
                if trace.enabled:
                    trace.record_event(
                        EventKind.MESSAGE_DELIVERED,
                        round_index,
                        node_id=dest,
                        peer_id=envelope.sender,
                        payload=envelope.payload,
                    )
        processes = self._processes
        return {
            dest: Inbox.from_pairs(pairs)
            for dest, pairs in pairs_by_dest.items()
            if not processes[dest].halted
        }

    # -- stepping (fast + queue engines) ---------------------------------------------

    def _step_processes(
        self,
        round_index: int,
        round_metrics,
        inboxes: dict[NodeId, Inbox],
    ) -> dict[NodeId, Sequence[Outgoing]]:
        active_sorted = self._active_sorted()
        byzantine_ids = self.byzantine_ids()
        round_metrics.active_nodes = len(active_sorted)
        round_metrics.byzantine_nodes = len(byzantine_ids)
        system_view: SystemView | None = None
        outgoing_by_node: dict[NodeId, Sequence[Outgoing]] = {}
        delivered: list[tuple[NodeId, int]] = []
        halted_nodes = 0
        empty = Inbox.empty()
        processes = self._processes
        for node_id in active_sorted:
            process = processes[node_id]
            if process.halted:
                halted_nodes += 1
                continue
            inbox = inboxes.get(node_id, empty)
            delivered.append((node_id, len(inbox)))
            if process.is_byzantine and hasattr(process, "observe_system"):
                if system_view is None:
                    # Built lazily: rounds without scheduled Byzantine nodes
                    # never pay for the omniscient snapshot.
                    system_view = SystemView(
                        round_index=round_index,
                        active_ids=frozenset(self._active),
                        byzantine_ids=byzantine_ids,
                        correct_processes=dict(self._correct_map),
                        rng=self._rng,
                    )
                process.observe_system(system_view)
            outgoing = process.step(RoundView(round_index=round_index, inbox=inbox))
            if outgoing:
                outgoing_by_node[node_id] = outgoing
            self._record_decision(process, round_index)
            if process.halted:
                self._trace.record_event(
                    EventKind.NODE_HALTED, round_index, node_id=node_id
                )
        round_metrics.halted_nodes = halted_nodes
        self._metrics.record_deliveries(delivered)
        return outgoing_by_node

    def _record_decision(self, process: Process, round_index: int) -> None:
        if process.is_byzantine or process.node_id in self._decided_seen:
            return
        if process.decided:
            self._decided_seen.add(process.node_id)
            self._metrics.record_decision(process.node_id, round_index, process.output)
            self._trace.record_event(
                EventKind.NODE_DECIDED,
                round_index,
                node_id=process.node_id,
                detail=process.output,
            )

    def _schedule(self, sender: NodeId, action: Outgoing, round_index: int) -> None:
        if isinstance(action, Broadcast):
            destinations = self._active_sorted()
            self._metrics.record_send(sender, len(destinations), broadcast=True)
            if self._measure_bytes:
                self._metrics.record_payload(
                    payload_nbytes(action.payload), len(destinations)
                )
            for dest in destinations:
                self._enqueue(sender, dest, action.payload, round_index)
        elif isinstance(action, Unicast):
            self._metrics.record_send(sender, 1, broadcast=False)
            if self._measure_bytes:
                self._metrics.record_payload(payload_nbytes(action.payload), 1)
            self._enqueue(sender, action.dest, action.payload, round_index)
        else:
            raise InvalidOutgoingError(sender, action)

    def _enqueue(
        self, sender: NodeId, dest: NodeId, payload: Any, round_index: int
    ) -> None:
        deliver = self._delay_model.delivery_round(sender, dest, round_index, self._rng)
        envelope = Envelope(
            sender=sender,
            dest=dest,
            payload=payload,
            sent_round=round_index,
            deliver_round=deliver,
        )
        bucket = self._bucketed.get(deliver)
        if bucket is None:
            self._bucketed[deliver] = bucket = []
        bucket.append(envelope)
        self._trace.record_event(
            EventKind.MESSAGE_SENT,
            round_index,
            node_id=sender,
            peer_id=dest,
            payload=payload,
        )

    # -- the legacy reference engine ---------------------------------------------------

    def _step_round_legacy(self) -> None:
        """The original pre-bucketing round loop, preserved verbatim.

        This is the oracle the equivalence tests compare the fast and queue
        engines against, and the baseline ``benchmarks/bench_scaling.py``
        measures speedups from.  It deliberately keeps the original cost
        profile: a flat pending list scanned in full every round, fresh
        ``sorted(self._active)`` calls, per-delivery metric updates and an
        unconditionally constructed :class:`SystemView`.  The one deviation
        is trace recording, which goes through the scalar
        :meth:`~repro.sim.events.Trace.record_event` interface (one call
        per event, like the original) — the columnar store has no
        per-event object to build.
        """

        self._round += 1
        round_index = self._round
        self._apply_membership_changes(round_index)
        round_metrics = self._metrics.start_round(round_index)
        self._trace.record_event(EventKind.ROUND_START, round_index)

        # 1. Deliver messages scheduled for this round.
        builder = InboxBuilder()
        still_pending: list[Envelope] = []
        for envelope in self._legacy_pending:
            if envelope.deliver_round > round_index:
                still_pending.append(envelope)
                continue
            if envelope.dest not in self._active:
                continue  # the destination left before delivery
            builder.add(envelope.dest, envelope.sender, envelope.payload)
            self._trace.record_event(
                EventKind.MESSAGE_DELIVERED,
                round_index,
                node_id=envelope.dest,
                peer_id=envelope.sender,
                payload=envelope.payload,
            )
        self._legacy_pending = still_pending

        # 2. Step every active process.
        active_ids = frozenset(self._active)
        byzantine_ids = frozenset(
            i for i in self._active if self._processes[i].is_byzantine
        )
        round_metrics.active_nodes = len(active_ids)
        round_metrics.byzantine_nodes = len(byzantine_ids)
        system_view = SystemView(
            round_index=round_index,
            active_ids=active_ids,
            byzantine_ids=byzantine_ids,
            correct_processes={
                i: p for i, p in self._processes.items() if not p.is_byzantine
            },
            rng=self._rng,
        )

        outgoing_by_node: dict[NodeId, Sequence[Outgoing]] = {}
        for node_id in sorted(self._active):
            process = self._processes[node_id]
            if process.halted:
                round_metrics.halted_nodes += 1
                continue
            inbox = builder.build(node_id)
            self._metrics.record_delivery(node_id, len(inbox))
            if process.is_byzantine and hasattr(process, "observe_system"):
                process.observe_system(system_view)
            view = RoundView(round_index=round_index, inbox=inbox)
            outgoing = process.step(view)
            if outgoing:
                outgoing_by_node[node_id] = outgoing
            self._record_decision(process, round_index)
            if process.halted:
                self._trace.record_event(
                    EventKind.NODE_HALTED, round_index, node_id=node_id
                )

        # 3. Schedule the outgoing messages.
        for node_id, actions in outgoing_by_node.items():
            for action in actions:
                self._schedule_legacy(node_id, action, round_index)

    def _schedule_legacy(
        self, sender: NodeId, action: Outgoing, round_index: int
    ) -> None:
        if isinstance(action, Broadcast):
            destinations = sorted(self._active)
            self._metrics.record_send(sender, len(destinations), broadcast=True)
            if self._measure_bytes:
                self._metrics.record_payload(
                    payload_nbytes(action.payload), len(destinations)
                )
            for dest in destinations:
                self._enqueue_legacy(sender, dest, action.payload, round_index)
        elif isinstance(action, Unicast):
            self._metrics.record_send(sender, 1, broadcast=False)
            if self._measure_bytes:
                self._metrics.record_payload(payload_nbytes(action.payload), 1)
            self._enqueue_legacy(sender, action.dest, action.payload, round_index)
        else:
            raise InvalidOutgoingError(sender, action)

    def _enqueue_legacy(
        self, sender: NodeId, dest: NodeId, payload: Any, round_index: int
    ) -> None:
        deliver = self._delay_model.delivery_round(sender, dest, round_index, self._rng)
        self._legacy_pending.append(
            Envelope(
                sender=sender,
                dest=dest,
                payload=payload,
                sent_round=round_index,
                deliver_round=deliver,
            )
        )
        self._trace.record_event(
            EventKind.MESSAGE_SENT,
            round_index,
            node_id=sender,
            peer_id=dest,
            payload=payload,
        )

    # -- running to completion -------------------------------------------------------

    def run(
        self,
        *,
        max_rounds: int = 1000,
        stop_when: Callable[["SynchronousNetwork"], bool] | None = None,
        raise_on_limit: bool = False,
    ) -> RunResult:
        """Run until ``stop_when`` is satisfied or ``max_rounds`` elapse.

        The default stop condition is "every active correct process has
        decided", which is what the single-shot agreement experiments use.
        """

        condition = stop_when or all_correct_decided
        stop_reason = "round_limit"
        for _ in range(max_rounds):
            self.step_round()
            if condition(self):
                stop_reason = "stop_condition"
                break
        trace = self._trace
        if trace.spilling:
            # Seal the tail and hand back the fully queryable stored view;
            # see enable_trace_spill.  The live Trace stays attached to the
            # network but is empty from here on.
            trace = trace.finalize_spill()
        result = RunResult(
            processes=dict(self._processes),
            metrics=self._metrics,
            trace=trace,
            rounds_executed=self._round,
            stop_reason=stop_reason,
        )
        if stop_reason == "round_limit" and raise_on_limit:
            raise RoundLimitExceeded(max_rounds, result)
        return result
